//! # ga-ip — reproduction of the customizable FPGA GA IP core
//!
//! Umbrella crate re-exporting the whole workspace. See the README for
//! the architecture overview, DESIGN.md for the paper-to-module map,
//! and EXPERIMENTS.md for paper-vs-measured results.
//!
//! ```
//! use ga_ip::prelude::*;
//!
//! // Program the cycle-accurate GA core over its init handshake and
//! // run it against a block-ROM fitness module, exactly like the
//! // paper's test setup (Fig. 4).
//! let mut system = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
//!     LookupFem::for_function(TestFunction::F3),
//! )]));
//! let params = GaParams::new(16, 8, 10, 1, 0x2961);
//! let run = system.program_and_run(&params, 10_000_000).unwrap();
//! assert_eq!(run.best.fitness, TestFunction::F3.eval_u16(run.best.chrom));
//! ```

#![forbid(unsafe_code)]

pub use carng;
pub use ga_core;
pub use ga_ehw;
pub use ga_fitness;
pub use ga_synth;
pub use hwsim;
pub use swga;

/// The most common imports in one place.
pub mod prelude {
    pub use carng::{CaRng, Lfsr16, Rng16};
    pub use ga_core::{
        GaEngine, GaEngine32, GaParams, GaRun, GaSystem, HwRun, Individual, PresetMode, UserIn,
    };
    pub use ga_ehw::{healing_fitness, Fault, Vrc, VrcFem};
    pub use ga_fitness::{CordicFem, FemBank, FemSlot, LookupFem, TestFunction};
    pub use hwsim::Clocked;
}
