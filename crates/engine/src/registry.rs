//! The [`EngineRegistry`]: the one place backends are enumerated.
//!
//! Every consumer — the serve dispatcher, the bench sweep bins, the
//! fault campaign's golden-run capture, the conformance suite — asks
//! the registry instead of naming engines, so adding a backend is a
//! registry change, not a grep across the tree (see DESIGN.md for the
//! add-a-backend recipe).

use std::sync::OnceLock;

use crate::adapters::{
    BehavioralEngine, BitSimWideEngine, Rtl32Engine, RtlInterpEngine, SwgaEngine,
};
use crate::spec::{BackendKind, Engine};

/// An ordered collection of [`Engine`]s, keyed by [`BackendKind`].
pub struct EngineRegistry {
    engines: Vec<Box<dyn Engine>>,
}

impl EngineRegistry {
    /// An empty registry (for tests composing custom engine sets).
    pub fn new() -> Self {
        EngineRegistry {
            engines: Vec::new(),
        }
    }

    /// The production registry: all seven backends, in
    /// [`BackendKind::ALL`] order.
    pub fn with_default_engines() -> Self {
        let mut r = EngineRegistry::new();
        r.register(Box::new(BehavioralEngine));
        r.register(Box::new(RtlInterpEngine));
        r.register(Box::new(BitSimWideEngine::<1>));
        r.register(Box::new(BitSimWideEngine::<2>));
        r.register(Box::new(BitSimWideEngine::<4>));
        r.register(Box::new(SwgaEngine));
        r.register(Box::new(Rtl32Engine));
        r
    }

    /// Add (or replace) the engine for its [`BackendKind`]. Replacement
    /// semantics let a test swap one backend for an instrumented double
    /// without rebuilding the whole set.
    pub fn register(&mut self, engine: Box<dyn Engine>) {
        let kind = engine.kind();
        self.engines.retain(|e| e.kind() != kind);
        self.engines.push(engine);
    }

    /// The engine for `kind`, if registered.
    pub fn get(&self, kind: BackendKind) -> Option<&dyn Engine> {
        self.engines
            .iter()
            .find(|e| e.kind() == kind)
            .map(|e| e.as_ref())
    }

    /// All registered engines, in registration order.
    pub fn engines(&self) -> impl Iterator<Item = &dyn Engine> {
        self.engines.iter().map(|e| e.as_ref())
    }

    /// All registered kinds, in registration order.
    pub fn kinds(&self) -> Vec<BackendKind> {
        self.engines.iter().map(|e| e.kind()).collect()
    }

    /// The kinds whose engines implement chromosome width `width`.
    pub fn supporting_width(&self, width: u8) -> Vec<BackendKind> {
        self.engines
            .iter()
            .filter(|e| e.capabilities().widths.contains(&width))
            .map(|e| e.kind())
            .collect()
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        EngineRegistry::with_default_engines()
    }
}

/// The process-wide production registry, built once on first use.
pub fn global() -> &'static EngineRegistry {
    static REGISTRY: OnceLock<EngineRegistry> = OnceLock::new();
    REGISTRY.get_or_init(EngineRegistry::with_default_engines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_covers_every_kind_in_order() {
        assert_eq!(global().kinds(), BackendKind::ALL.to_vec());
        for kind in BackendKind::ALL {
            let e = global().get(kind).expect("registered");
            assert_eq!(e.kind(), kind);
        }
    }

    #[test]
    fn width_queries_partition_the_registry() {
        assert_eq!(
            global().supporting_width(16),
            vec![
                BackendKind::Behavioral,
                BackendKind::RtlInterp,
                BackendKind::BitSim64,
                BackendKind::BitSim128,
                BackendKind::BitSim256,
                BackendKind::Swga,
            ]
        );
        assert_eq!(global().supporting_width(32), vec![BackendKind::Rtl32]);
        assert!(global().supporting_width(8).is_empty());
    }

    #[test]
    fn degradation_targets_are_registered_and_narrower() {
        // A fallback engine must exist and must not itself degrade
        // (no fallback chains): the serve layer relies on both.
        for e in global().engines() {
            if let Some(to) = e.capabilities().degrades_to {
                let target = global().get(to).expect("fallback engine registered");
                assert_eq!(target.capabilities().degrades_to, None, "no chains");
            }
        }
    }

    #[test]
    fn registration_replaces_by_kind() {
        let mut r = EngineRegistry::new();
        assert!(r.get(BackendKind::Behavioral).is_none());
        r.register(Box::new(BehavioralEngine));
        r.register(Box::new(BehavioralEngine));
        assert_eq!(r.kinds(), vec![BackendKind::Behavioral]);
    }
}
