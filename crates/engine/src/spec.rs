//! The engine-layer vocabulary: what a run request looks like
//! ([`RunSpec`]), what every backend promises ([`Capabilities`]), how a
//! run can fail ([`EngineError`]), and what every backend reports back
//! ([`RunOutcome`]) — plus the [`Engine`] trait tying them together.
//!
//! The shape is deliberately backend-neutral: `best_chrom` is `u32` so
//! the ganged 32-bit core fits the same outcome as the 16-bit engines,
//! and the per-generation [`TrajPoint`] trajectory carries enough state
//! (best individual + fitness sum) for both the Table V convergence
//! metric and the fault-campaign golden comparison, regardless of which
//! backend produced it.

use std::fmt;

use ga_core::GaParams;
use ga_ehw::{healing_fitness, Fault, TruthTable};
use ga_fitness::TestFunction;

/// Which engine executes a run. One variant per registered backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The behavioral reference engine (`ga_core::GaEngine`).
    Behavioral,
    /// The cycle-accurate hardware system (`ga_core::GaSystem`).
    RtlInterp,
    /// The compiled 64-lane netlist simulation: compatible jobs share
    /// one bit-sliced CA-RNG run, one job per lane.
    BitSim64,
    /// The 128-lane (two `u64` words per net) wide netlist simulation.
    BitSim128,
    /// The 256-lane (four words per net) wide netlist simulation — one
    /// pack amortizes the bit-sliced CA-RNG run across 256 jobs.
    BitSim256,
    /// The instrumented software GA (`swga::CountingGa`) — the paper's
    /// PowerPC reference implementation.
    Swga,
    /// The ganged dual-core 32-bit system (`ga_core::GaSystem32Hw`,
    /// Fig. 6 / §III-D) for `width: 32` jobs.
    Rtl32,
}

impl BackendKind {
    /// Every backend, in dispatch-priority order.
    pub const ALL: [BackendKind; 7] = [
        BackendKind::Behavioral,
        BackendKind::RtlInterp,
        BackendKind::BitSim64,
        BackendKind::BitSim128,
        BackendKind::BitSim256,
        BackendKind::Swga,
        BackendKind::Rtl32,
    ];

    /// Stable lowercase name used in the JSONL schema and reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Behavioral => "behavioral",
            BackendKind::RtlInterp => "rtl",
            BackendKind::BitSim64 => "bitsim64",
            BackendKind::BitSim128 => "bitsim128",
            BackendKind::BitSim256 => "bitsim256",
            BackendKind::Swga => "swga",
            BackendKind::Rtl32 => "rtl32",
        }
    }

    /// Parse a backend name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
    }
}

/// What a run optimizes — the backend-neutral fitness selection. Every
/// engine evaluates a `Workload` the same way, so results are
/// bit-identical across backends regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One of the paper's benchmark fitness functions. 32-bit engines
    /// evaluate the split-average extension
    /// ([`TestFunction::eval_u32_split`]).
    Function(TestFunction),
    /// VRC healing (`ga-ehw`): evolve a 16-bit fabric configuration
    /// whose *faulted* truth table reproduces `target`. Fitness is
    /// [`ga_ehw::healing_fitness`]; the chromosome *is* the
    /// configuration bitstring, so this workload is 16-bit only
    /// (admission enforces it).
    VrcHeal {
        /// The target 4-input truth table.
        target: TruthTable,
        /// The injected fault the configuration must work around.
        fault: Fault,
    },
}

impl Workload {
    /// Evaluate a 16-bit chromosome.
    pub fn eval_u16(self, chrom: u16) -> u16 {
        match self {
            Workload::Function(f) => f.eval_u16(chrom),
            Workload::VrcHeal { target, fault } => healing_fitness(chrom, target, Some(fault)),
        }
    }

    /// Evaluate a 32-bit chromosome via the split-average extension.
    /// Only function workloads reach 32-bit engines (admission rejects
    /// 32-bit healing specs), so healing panics here by design.
    pub fn eval_u32_split(self, chrom: u32) -> u16 {
        match self {
            Workload::Function(f) => f.eval_u32_split(chrom),
            Workload::VrcHeal { .. } => {
                unreachable!("VRC healing is admitted at width 16 only")
            }
        }
    }
}

impl From<TestFunction> for Workload {
    fn from(f: TestFunction) -> Self {
        Workload::Function(f)
    }
}

/// One GA execution request, backend-neutral: everything an engine
/// needs to know to run, nothing about *how* it runs (watchdog budgets
/// live in [`Limits`], chosen by the caller, not the job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Chromosome width in bits. Checked against
    /// [`Capabilities::widths`] at admission.
    pub width: u8,
    /// Fitness selection (benchmark function or VRC healing).
    pub workload: Workload,
    /// The Table III parameter set. Held unvalidated so a bad spec
    /// surfaces as a typed [`EngineError::InvalidSpec`], never a panic.
    pub params: GaParams,
    /// Optional wall-clock budget; expiry cancels the run with
    /// [`EngineError::DeadlineExceeded`]. An in-flight generation (or
    /// simulated cycle) always completes first.
    pub deadline_ms: Option<u64>,
}

/// What one backend supports — the registry's dispatch metadata. All
/// fields are static properties of the engine, not of any one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Chromosome widths this engine implements.
    pub widths: &'static [u8],
    /// How many compatible runs one invocation can execute in lockstep
    /// (1 = solo only; 64 for the bit-sliced netlist).
    pub pack_width: usize,
    /// Honors [`RunSpec::deadline_ms`].
    pub deadline: bool,
    /// Enforces a simulated-work watchdog ([`Limits`]).
    pub watchdog: bool,
    /// Reports simulated clock cycles in [`RunOutcome::cycles`].
    pub reports_cycles: bool,
    /// Supports fault-injection hooks (scan-chain / net campaigns).
    pub fault_injection: bool,
    /// Can expose a generation-stepping handle ([`Engine::stepper`])
    /// for island-model composition.
    pub stepping: bool,
    /// Where an *infrastructure* failure (watchdog) may gracefully
    /// degrade to, if anywhere. Spec errors never degrade.
    pub degrades_to: Option<BackendKind>,
}

impl Capabilities {
    /// The admission check: width support first (so a wrong-width spec
    /// is reported as [`EngineError::UnsupportedWidth`] even when its
    /// parameters are also bad), then the Table III parameter ranges.
    pub fn admit(&self, spec: &RunSpec) -> Result<(), EngineError> {
        if !self.widths.contains(&spec.width) {
            return Err(EngineError::UnsupportedWidth { width: spec.width });
        }
        if matches!(spec.workload, Workload::VrcHeal { .. }) && spec.width != 16 {
            return Err(EngineError::InvalidSpec {
                msg: "VRC healing is a 16-bit workload (the chromosome is the \
                      fabric configuration)"
                    .into(),
            });
        }
        spec.params
            .validate()
            .map_err(|msg| EngineError::InvalidSpec { msg })
    }
}

/// Caller-chosen execution budgets, separate from the job itself so a
/// service can tighten them without rewriting specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Simulated-cycle watchdog for the cycle-accurate backends.
    pub sim_watchdog_cycles: u64,
    /// Simulated-step watchdog for the compiled-netlist backend.
    pub stream_watchdog_steps: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            sim_watchdog_cycles: 2_000_000_000,
            stream_watchdog_steps: 2_000_000_000,
        }
    }
}

/// An admitted run: proof that [`Capabilities::admit`] passed. Engines
/// only accept `Prepared`, so the width/parameter checks cannot be
/// skipped by a confused caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prepared {
    spec: RunSpec,
}

impl Prepared {
    /// Wrap an admitted spec. Called by [`Engine::prepare`]; custom
    /// engines with extra admission rules construct it the same way
    /// after their own checks.
    pub fn new(spec: RunSpec) -> Self {
        Prepared { spec }
    }

    /// The admitted spec.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }
}

/// How a run can fail — every variant is a typed, non-panicking result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Parameters outside the hardware ranges of Table III.
    InvalidSpec {
        /// The validation failure.
        msg: String,
    },
    /// Chromosome width not implemented by this engine.
    UnsupportedWidth {
        /// The requested width.
        width: u8,
    },
    /// The spec's wall-clock deadline expired; the run was cancelled.
    DeadlineExceeded,
    /// A simulated-work watchdog fired ([`Limits`]).
    Watchdog {
        /// Simulated cycles (or netlist steps) charged before giving up.
        cycles: u64,
    },
}

impl EngineError {
    /// Whether the failure is a property of the *infrastructure* budget
    /// rather than of the spec — the only class of error where falling
    /// back to [`Capabilities::degrades_to`] can change the answer from
    /// an error into a result. Deadlines are caller contracts and spec
    /// errors are deterministic, so neither degrades.
    pub fn is_infrastructure(&self) -> bool {
        matches!(self, EngineError::Watchdog { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidSpec { msg } => write!(f, "invalid spec: {msg}"),
            EngineError::UnsupportedWidth { width } => {
                write!(f, "chromosome width {width} unsupported by this engine")
            }
            EngineError::DeadlineExceeded => write!(f, "wall-clock deadline expired"),
            EngineError::Watchdog { cycles } => {
                write!(f, "simulation watchdog expired after {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One point of a run's per-generation trajectory: generation 0 is the
/// initial population. Wide enough for every backend (chromosomes as
/// `u32`, 16-bit chromosomes zero-extended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajPoint {
    /// Generation index (0 = initial population).
    pub gen: u32,
    /// Best chromosome of the population.
    pub best_chrom: u32,
    /// Its fitness.
    pub best_fitness: u16,
    /// Population fitness sum (drives the Table V convergence metric).
    pub fit_sum: u32,
}

/// What a completed run reports back — the one shape every backend
/// produces, so consumers (serve, bench, conformance) never see
/// engine-specific result types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Best chromosome found (16-bit engines zero-extend).
    pub best_chrom: u32,
    /// Its fitness.
    pub best_fitness: u16,
    /// Generations actually run (the full budget on success).
    pub generations: u32,
    /// Fitness evaluations consumed.
    pub evaluations: u64,
    /// Table V style convergence generation, if the run settled.
    pub conv_gen: Option<u32>,
    /// Simulated clock cycles (cycle-accurate backends only).
    pub cycles: Option<u64>,
    /// RNG draws consumed, where the engine counts them.
    pub rng_draws: Option<u64>,
    /// Per-generation history, generation 0 included.
    pub trajectory: Vec<TrajPoint>,
}

/// Table V convergence generation over a backend-neutral trajectory:
/// the first generation after which the population-average fitness
/// never again moves by ≥ 5% window over window. Exactly the algorithm
/// of `ga_core::behavioral::GaRun::convergence_generation`, lifted to
/// [`TrajPoint`] so every backend shares one implementation.
pub fn convergence_generation(trajectory: &[TrajPoint], pop_size: u8) -> Option<u32> {
    if trajectory.len() < 2 {
        return None;
    }
    let avg = |t: &TrajPoint| t.fit_sum as f64 / pop_size as f64;
    // Walk backward to find the last window that still moved ≥ 5%.
    let mut settled_from = 0usize;
    for (i, w) in trajectory.windows(2).enumerate() {
        let (a, b) = (avg(&w[0]), avg(&w[1]));
        let moved = a <= 0.0 || ((b - a).abs() / a) >= 0.05;
        if moved {
            settled_from = i + 1;
        }
    }
    if settled_from + 1 >= trajectory.len() {
        None
    } else {
        Some(trajectory[settled_from.max(1)].gen)
    }
}

/// A GA execution backend. Object-safe: the registry stores
/// `Box<dyn Engine>` and every consumer dispatches through it.
pub trait Engine: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Static dispatch metadata.
    fn capabilities(&self) -> Capabilities;

    /// Admit a spec. The default is [`Capabilities::admit`]; engines
    /// with extra admission rules override and still return a
    /// [`Prepared`] token on success.
    fn prepare(&self, spec: RunSpec) -> Result<Prepared, EngineError> {
        self.capabilities().admit(&spec)?;
        Ok(Prepared::new(spec))
    }

    /// Execute one admitted run under the caller's budgets.
    fn run(&self, prepared: &Prepared, limits: &Limits) -> Result<RunOutcome, EngineError>;

    /// Execute a batch of compatible admitted runs. Engines with
    /// `pack_width > 1` override this to share work across the batch
    /// (the bit-sliced netlist runs one lockstep simulation for all
    /// lanes); the default just runs them one by one.
    fn run_pack(
        &self,
        prepared: &[Prepared],
        limits: &Limits,
    ) -> Vec<Result<RunOutcome, EngineError>> {
        prepared.iter().map(|p| self.run(p, limits)).collect()
    }

    /// A generation-stepping handle for island-model composition, if
    /// the engine supports it (`capabilities().stepping`). The member
    /// arrives with its population *uninitialized*; the island driver
    /// owns the init / step / migrate schedule.
    fn stepper(&self, prepared: &Prepared) -> Option<Box<dyn ga_core::IslandMember>> {
        let _ = prepared;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carng::CaRng;
    use ga_core::GaEngine;

    #[test]
    fn backend_names_roundtrip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.name()), Some(b));
            assert_eq!(BackendKind::parse(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(BackendKind::parse("vhdl"), None);
    }

    #[test]
    fn admission_reports_width_before_params() {
        let caps = Capabilities {
            widths: &[16],
            pack_width: 1,
            deadline: true,
            watchdog: false,
            reports_cycles: false,
            fault_injection: false,
            stepping: true,
            degrades_to: None,
        };
        // Both the width and the parameters are bad: width wins, so the
        // caller learns the job can never run here regardless of params.
        let mut spec = RunSpec {
            width: 32,
            workload: Workload::Function(TestFunction::F2),
            params: GaParams {
                pop_size: 1,
                ..GaParams::default()
            },
            deadline_ms: None,
        };
        assert_eq!(
            caps.admit(&spec),
            Err(EngineError::UnsupportedWidth { width: 32 })
        );
        spec.width = 16;
        assert!(matches!(
            caps.admit(&spec),
            Err(EngineError::InvalidSpec { .. })
        ));
        spec.params = GaParams::default();
        assert_eq!(caps.admit(&spec), Ok(()));
    }

    #[test]
    fn healing_workload_is_16_bit_only() {
        let caps = Capabilities {
            widths: &[16, 32],
            pack_width: 1,
            deadline: true,
            watchdog: false,
            reports_cycles: false,
            fault_injection: false,
            stepping: false,
            degrades_to: None,
        };
        let heal = Workload::VrcHeal {
            target: 0x9B9B,
            fault: ga_ehw::Fault::StuckAt {
                cell: 2,
                value: true,
            },
        };
        let mut spec = RunSpec {
            width: 16,
            workload: heal,
            params: GaParams::default(),
            deadline_ms: None,
        };
        assert_eq!(caps.admit(&spec), Ok(()));
        spec.width = 32;
        assert!(matches!(
            caps.admit(&spec),
            Err(EngineError::InvalidSpec { .. })
        ));
        // Healing fitness agrees with the ehw crate's definition.
        assert_eq!(
            heal.eval_u16(0x0706),
            ga_ehw::vrc::PERFECT_FITNESS,
            "known healing configuration scores perfect"
        );
    }

    #[test]
    fn only_watchdogs_are_infrastructure_failures() {
        assert!(EngineError::Watchdog { cycles: 1 }.is_infrastructure());
        assert!(!EngineError::DeadlineExceeded.is_infrastructure());
        assert!(!EngineError::UnsupportedWidth { width: 8 }.is_infrastructure());
        assert!(!EngineError::InvalidSpec { msg: String::new() }.is_infrastructure());
    }

    #[test]
    fn trajectory_convergence_matches_the_behavioral_run() {
        // The lifted helper must agree with GaRun::convergence_generation
        // on real runs across functions and seeds.
        for f in TestFunction::ALL {
            let params = GaParams::new(16, 24, 10, 1, 0x2961 ^ f as u16);
            let run = GaEngine::new(params, CaRng::new(params.seed), |c| f.eval_u16(c)).run();
            let traj: Vec<TrajPoint> = run
                .history
                .iter()
                .map(|s| TrajPoint {
                    gen: s.gen,
                    best_chrom: s.best.chrom as u32,
                    best_fitness: s.best.fitness,
                    fit_sum: s.fit_sum,
                })
                .collect();
            assert_eq!(
                convergence_generation(&traj, params.pop_size),
                run.convergence_generation(),
                "{}",
                f.name()
            );
        }
    }

    #[test]
    fn short_trajectories_never_converge() {
        assert_eq!(convergence_generation(&[], 8), None);
        let p = TrajPoint {
            gen: 0,
            best_chrom: 1,
            best_fitness: 1,
            fit_sum: 8,
        };
        assert_eq!(convergence_generation(&[p], 8), None);
    }
}
