//! The island-model composite: `ga_core::islands::run_islands_over`
//! lifted onto the engine layer, so the ring-migration driver can run
//! over *any* registered backend that exposes a stepping handle
//! ([`crate::Capabilities::stepping`]) — the behavioral CA engine or a
//! bitsim64 netlist lane stream, interchangeably.

use ga_core::islands::{island_seed, run_islands_over, IslandConfig, IslandRun};
use ga_core::GaParams;

use crate::spec::{Engine, EngineError, RunSpec};

/// An island-model run over one inner [`Engine`]. Not itself an
/// `Engine` (its result shape is [`IslandRun`], per-island, not one
/// [`crate::RunOutcome`]); it is the composition layer the `islands`
/// bench bin and `examples/islands_engine.rs` drive.
pub struct IslandsEngine<'a> {
    inner: &'a dyn Engine,
    config: IslandConfig,
}

impl<'a> IslandsEngine<'a> {
    /// Compose over `inner`, which must advertise stepping support.
    pub fn new(inner: &'a dyn Engine, config: IslandConfig) -> Result<Self, EngineError> {
        if !inner.capabilities().stepping {
            return Err(EngineError::InvalidSpec {
                msg: format!(
                    "backend {} has no stepping handle; islands need one",
                    inner.kind().name()
                ),
            });
        }
        Ok(IslandsEngine { inner, config })
    }

    /// Run the ring. Island *k* gets the shared CA stream jumped ahead
    /// to its [`island_seed`] slot and a generation budget of
    /// `epoch × epochs` (so stream-backed members extract exactly the
    /// draws the schedule will consume); `spec.params.n_gens` is
    /// superseded by the island schedule.
    pub fn run(&self, spec: RunSpec) -> Result<IslandRun, EngineError> {
        let total_gens = self.config.epoch * self.config.epochs;
        let members = (0..self.config.islands)
            .map(|k| {
                let seed = island_seed(spec.params.seed, k, self.config.islands);
                let p = GaParams {
                    seed,
                    n_gens: total_gens,
                    ..spec.params
                };
                let prepared = self.inner.prepare(RunSpec { params: p, ..spec })?;
                self.inner
                    .stepper(&prepared)
                    .ok_or_else(|| EngineError::InvalidSpec {
                        msg: format!("{} refused a stepping handle", self.inner.kind().name()),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(run_islands_over(self.config, members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{BehavioralEngine, BitSimWideEngine, SwgaEngine};
    use ga_fitness::TestFunction;

    fn spec(params: GaParams) -> RunSpec {
        RunSpec {
            width: 16,
            workload: crate::spec::Workload::Function(TestFunction::Bf6),
            params,
            deadline_ms: None,
        }
    }

    #[test]
    fn composite_matches_the_core_island_runner() {
        // Over the behavioral backend the composite must reproduce
        // ga_core::run_islands exactly: same seeds, same engines.
        let params = GaParams::new(32, 32, 10, 1, 0x2961);
        let config = IslandConfig {
            islands: 4,
            epoch: 8,
            epochs: 4,
        };
        let composite = IslandsEngine::new(&BehavioralEngine, config)
            .expect("behavioral steps")
            .run(spec(params))
            .expect("runs");
        let f = TestFunction::Bf6;
        let direct = ga_core::run_islands(params, config, |c| f.eval_u16(c));
        assert_eq!(composite, direct);
    }

    #[test]
    fn bitsim_islands_match_behavioral_islands() {
        // The strongest cross-backend check: netlist-extracted lane
        // streams drive the same ring to the same result.
        let params = GaParams::new(16, 16, 10, 1, 0xB342);
        let config = IslandConfig {
            islands: 3,
            epoch: 4,
            epochs: 4,
        };
        let beh = IslandsEngine::new(&BehavioralEngine, config)
            .expect("steps")
            .run(spec(params))
            .expect("runs");
        let bit = IslandsEngine::new(&BitSimWideEngine::<1>, config)
            .expect("steps")
            .run(spec(params))
            .expect("runs");
        assert_eq!(beh, bit, "stream-backed islands must be bit-identical");
    }

    #[test]
    fn non_stepping_backends_are_refused_up_front() {
        let config = IslandConfig {
            islands: 2,
            epoch: 2,
            epochs: 2,
        };
        assert!(matches!(
            IslandsEngine::new(&SwgaEngine, config),
            Err(EngineError::InvalidSpec { .. })
        ));
    }
}
