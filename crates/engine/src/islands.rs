//! The island-model composite: `ga_core::islands::IslandRing` lifted
//! onto the engine layer, so the ring-migration driver can run over
//! *any* registered backend that exposes a stepping handle
//! ([`crate::Capabilities::stepping`]) — the behavioral CA engine or a
//! bitsim64 netlist lane stream, interchangeably — and so the run can
//! be checkpointed after every epoch and resumed bit-identically after
//! a crash ([`CheckpointBundle`], [`IslandsEngine::resume`]).

use ga_core::islands::{island_seed, IslandConfig, IslandRing, IslandRun};
use ga_core::snapshot::{hex_decode, hex_encode, EngineSnapshot, SnapshotError};
use ga_core::{GaParams, Individual};

use crate::spec::{Engine, EngineError, RunSpec};

/// Current checkpoint-bundle format version. Decoders reject newer.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Bundle magic: "GC" (GA checkpoint).
const MAGIC: [u8; 2] = *b"GC";

/// Everything needed to resume an island run from an epoch barrier:
/// the ring configuration, how many epochs already ran, and one
/// [`EngineSnapshot`] per island in ring order (taken *after* the
/// barrier's migration, so resuming replays nothing and skips nothing).
///
/// The wire format wraps the member snapshots in the same hand-rolled
/// binary+hex discipline as the snapshots themselves: magic `GC`, a
/// version byte, the config words, then length-prefixed member
/// payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointBundle {
    /// The ring configuration the run was started with.
    pub config: IslandConfig,
    /// Epoch barriers crossed before this checkpoint was taken.
    pub epochs_done: u32,
    /// Per-island engine snapshots, `members[k]` = island *k*.
    pub members: Vec<EngineSnapshot>,
}

impl CheckpointBundle {
    /// Serialize to the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(CHECKPOINT_VERSION);
        out.extend_from_slice(&(self.config.islands as u32).to_le_bytes());
        out.extend_from_slice(&self.config.epoch.to_le_bytes());
        out.extend_from_slice(&self.config.epochs.to_le_bytes());
        out.extend_from_slice(&self.epochs_done.to_le_bytes());
        out.extend_from_slice(&(self.members.len() as u32).to_le_bytes());
        for m in &self.members {
            let b = m.encode();
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(&b);
        }
        out
    }

    /// Decode and validate; corrupt input lands in a typed
    /// [`SnapshotError`], never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
            if *pos + n > bytes.len() {
                return Err(SnapshotError::Truncated {
                    needed: *pos + n,
                    have: bytes.len(),
                });
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let u32_at = |pos: &mut usize| -> Result<u32, SnapshotError> {
            let b = take(pos, 4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        };
        let mut pos = 0usize;
        if take(&mut pos, 2)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = take(&mut pos, 1)?[0];
        if version != CHECKPOINT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { version });
        }
        let islands = u32_at(&mut pos)? as usize;
        let config = IslandConfig {
            islands,
            epoch: u32_at(&mut pos)?,
            epochs: u32_at(&mut pos)?,
        };
        let epochs_done = u32_at(&mut pos)?;
        let count = u32_at(&mut pos)? as usize;
        if count != islands {
            return Err(SnapshotError::BadValue {
                what: "member count disagrees with the island count",
            });
        }
        if epochs_done > config.epochs {
            return Err(SnapshotError::BadValue {
                what: "checkpoint is past the configured epochs",
            });
        }
        let mut members = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let len = u32_at(&mut pos)? as usize;
            members.push(EngineSnapshot::decode(take(&mut pos, len)?)?);
        }
        if pos != bytes.len() {
            return Err(SnapshotError::Trailing {
                extra: bytes.len() - pos,
            });
        }
        Ok(CheckpointBundle {
            config,
            epochs_done,
            members,
        })
    }

    /// Lowercase-hex wire form (socket protocol, checkpoint files).
    pub fn to_hex(&self) -> String {
        hex_encode(&self.encode())
    }

    /// Decode the hex wire form.
    pub fn from_hex(s: &str) -> Result<Self, SnapshotError> {
        Self::decode(&hex_decode(s)?)
    }
}

/// An island-model run over one inner [`Engine`]. Not itself an
/// `Engine` (its result shape is [`IslandRun`], per-island, not one
/// [`crate::RunOutcome`]); it is the composition layer the `islands`
/// bench bin, `examples/islands_engine.rs`, and the serve layer's
/// island workers drive.
pub struct IslandsEngine<'a> {
    inner: &'a dyn Engine,
    config: IslandConfig,
}

/// A live epoch-granular island run: step it, checkpoint it, finish it.
/// Obtained from [`IslandsEngine::start`] (fresh) or
/// [`IslandsEngine::resume`] (from a [`CheckpointBundle`]).
pub struct IslandsDriver {
    ring: IslandRing<'static>,
}

impl IslandsDriver {
    /// Run one epoch (parallel evolution + ring migration) and return
    /// the barrier's checkpoint.
    pub fn step_epoch(&mut self) -> CheckpointBundle {
        self.ring.step_epoch();
        self.checkpoint()
    }

    /// The checkpoint for the current barrier.
    pub fn checkpoint(&self) -> CheckpointBundle {
        CheckpointBundle {
            config: self.ring.config(),
            epochs_done: self.ring.epochs_done(),
            members: self.ring.snapshots(),
        }
    }

    /// Epoch barriers crossed so far.
    pub fn epochs_done(&self) -> u32 {
        self.ring.epochs_done()
    }

    /// True once every configured epoch has run.
    pub fn done(&self) -> bool {
        self.ring.done()
    }

    /// Best individual across the ring right now.
    pub fn best(&self) -> Individual {
        self.ring.best()
    }

    /// Finish: fold the ring into the run result.
    pub fn finish(self) -> IslandRun {
        self.ring.finish()
    }
}

impl<'a> IslandsEngine<'a> {
    /// Compose over `inner`, which must advertise stepping support.
    pub fn new(inner: &'a dyn Engine, config: IslandConfig) -> Result<Self, EngineError> {
        if !inner.capabilities().stepping {
            return Err(EngineError::InvalidSpec {
                msg: format!(
                    "backend {} has no stepping handle; islands need one",
                    inner.kind().name()
                ),
            });
        }
        Ok(IslandsEngine { inner, config })
    }

    /// The total generation budget the schedule implies, after checking
    /// that `spec.params.n_gens` agrees with it. A disagreement is a
    /// typed [`EngineError::InvalidSpec`] — the schedule used to
    /// silently supersede `n_gens`, which hid caller bugs.
    fn admit_schedule(&self, spec: &RunSpec) -> Result<u32, EngineError> {
        let total = self
            .config
            .epoch
            .checked_mul(self.config.epochs)
            .ok_or_else(|| EngineError::InvalidSpec {
                msg: format!(
                    "island schedule overflows: epoch {} × epochs {}",
                    self.config.epoch, self.config.epochs
                ),
            })?;
        if spec.params.n_gens != total {
            return Err(EngineError::InvalidSpec {
                msg: format!(
                    "params.n_gens {} disagrees with the island schedule \
                     epoch {} × epochs {} = {total}",
                    spec.params.n_gens, self.config.epoch, self.config.epochs
                ),
            });
        }
        Ok(total)
    }

    /// Build one seeded stepping member per island. Island *k* gets the
    /// shared CA stream jumped ahead to its [`island_seed`] slot;
    /// stream-backed members extract exactly the draws the full
    /// `epoch × epochs` schedule will consume.
    fn members(&self, spec: &RunSpec) -> Result<Vec<Box<dyn ga_core::IslandMember>>, EngineError> {
        (0..self.config.islands)
            .map(|k| {
                let seed = island_seed(spec.params.seed, k, self.config.islands);
                let p = GaParams {
                    seed,
                    ..spec.params
                };
                let prepared = self.inner.prepare(RunSpec { params: p, ..*spec })?;
                self.inner
                    .stepper(&prepared)
                    .ok_or_else(|| EngineError::InvalidSpec {
                        msg: format!("{} refused a stepping handle", self.inner.kind().name()),
                    })
            })
            .collect()
    }

    /// Start a fresh epoch-granular run at barrier zero.
    pub fn start(&self, spec: RunSpec) -> Result<IslandsDriver, EngineError> {
        self.admit_schedule(&spec)?;
        Ok(IslandsDriver {
            ring: IslandRing::new(self.config, self.members(&spec)?),
        })
    }

    /// Reconstruct a run from a checkpoint: fresh members are built
    /// exactly as [`IslandsEngine::start`] builds them, then each is
    /// restored from its snapshot — so the remaining epochs are
    /// bit-identical to the uninterrupted run, even across stepping
    /// backends (a behavioral checkpoint resumes on bitsim and vice
    /// versa; the RNG position survives as the *(draws, next)* pair).
    pub fn resume(
        &self,
        spec: RunSpec,
        bundle: &CheckpointBundle,
    ) -> Result<IslandsDriver, EngineError> {
        self.admit_schedule(&spec)?;
        if bundle.config != self.config {
            return Err(EngineError::InvalidSpec {
                msg: format!(
                    "checkpoint was taken under a different island config \
                     ({:?} vs {:?})",
                    bundle.config, self.config
                ),
            });
        }
        if bundle.members.len() != self.config.islands {
            return Err(EngineError::InvalidSpec {
                msg: format!(
                    "checkpoint has {} member snapshots for {} islands",
                    bundle.members.len(),
                    self.config.islands
                ),
            });
        }
        let mut members = self.members(&spec)?;
        for (k, (m, snap)) in members.iter_mut().zip(&bundle.members).enumerate() {
            m.restore(snap).map_err(|e| EngineError::InvalidSpec {
                msg: format!("island {k} snapshot does not restore: {e}"),
            })?;
        }
        Ok(IslandsDriver {
            ring: IslandRing::resume(self.config, members, bundle.epochs_done),
        })
    }

    /// Run the ring to completion. Island *k* gets the shared CA stream
    /// jumped ahead to its [`island_seed`] slot; `spec.params.n_gens`
    /// must equal `epoch × epochs` ([`EngineError::InvalidSpec`]
    /// otherwise).
    pub fn run(&self, spec: RunSpec) -> Result<IslandRun, EngineError> {
        let mut driver = self.start(spec)?;
        while !driver.done() {
            driver.step_epoch();
        }
        Ok(driver.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{BehavioralEngine, BitSimWideEngine, SwgaEngine};
    use ga_fitness::TestFunction;

    fn spec(params: GaParams) -> RunSpec {
        RunSpec {
            width: 16,
            workload: crate::spec::Workload::Function(TestFunction::Bf6),
            params,
            deadline_ms: None,
        }
    }

    #[test]
    fn composite_matches_the_core_island_runner() {
        // Over the behavioral backend the composite must reproduce
        // ga_core::run_islands exactly: same seeds, same engines.
        let params = GaParams::new(32, 32, 10, 1, 0x2961);
        let config = IslandConfig {
            islands: 4,
            epoch: 8,
            epochs: 4,
        };
        let composite = IslandsEngine::new(&BehavioralEngine, config)
            .expect("behavioral steps")
            .run(spec(params))
            .expect("runs");
        let f = TestFunction::Bf6;
        let direct = ga_core::run_islands(params, config, |c| f.eval_u16(c));
        assert_eq!(composite, direct);
    }

    #[test]
    fn bitsim_islands_match_behavioral_islands() {
        // The strongest cross-backend check: netlist-extracted lane
        // streams drive the same ring to the same result.
        let params = GaParams::new(16, 16, 10, 1, 0xB342);
        let config = IslandConfig {
            islands: 3,
            epoch: 4,
            epochs: 4,
        };
        let beh = IslandsEngine::new(&BehavioralEngine, config)
            .expect("steps")
            .run(spec(params))
            .expect("runs");
        let bit = IslandsEngine::new(&BitSimWideEngine::<1>, config)
            .expect("steps")
            .run(spec(params))
            .expect("runs");
        assert_eq!(beh, bit, "stream-backed islands must be bit-identical");
    }

    #[test]
    fn non_stepping_backends_are_refused_up_front() {
        let config = IslandConfig {
            islands: 2,
            epoch: 2,
            epochs: 2,
        };
        assert!(matches!(
            IslandsEngine::new(&SwgaEngine, config),
            Err(EngineError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn mismatched_n_gens_is_a_typed_invalid_spec() {
        // The schedule must agree with params.n_gens — no silent
        // supersession.
        let config = IslandConfig {
            islands: 2,
            epoch: 4,
            epochs: 4,
        };
        let engine = IslandsEngine::new(&BehavioralEngine, config).expect("steps");
        let bad = spec(GaParams::new(16, 8, 10, 1, 0x2961)); // 8 ≠ 16
        match engine.run(bad) {
            Err(EngineError::InvalidSpec { msg }) => {
                assert!(msg.contains("n_gens"), "{msg}");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        let good = spec(GaParams::new(16, 16, 10, 1, 0x2961));
        assert!(engine.run(good).is_ok());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_across_backends() {
        // Kill after every barrier in turn; resume must converge to the
        // uninterrupted result — including resuming a behavioral
        // checkpoint on bitsim64 and vice versa.
        let params = GaParams::new(16, 12, 10, 1, 0x2961);
        let config = IslandConfig {
            islands: 3,
            epoch: 4,
            epochs: 3,
        };
        let beh = IslandsEngine::new(&BehavioralEngine, config).expect("steps");
        let bit = IslandsEngine::new(&BitSimWideEngine::<1>, config).expect("steps");
        let reference = beh.run(spec(params)).expect("runs");

        let mut driver = beh.start(spec(params)).expect("starts");
        let mut bundles = vec![driver.checkpoint()];
        while !driver.done() {
            bundles.push(driver.step_epoch());
        }
        assert_eq!(driver.finish(), reference);

        for bundle in &bundles {
            // Codec round trip on the real thing.
            let wire = CheckpointBundle::from_hex(&bundle.to_hex()).expect("wire");
            assert_eq!(&wire, bundle);
            for resumer in [&beh, &bit] {
                let mut d = resumer.resume(spec(params), &wire).expect("resumes");
                while !d.done() {
                    d.step_epoch();
                }
                assert_eq!(
                    d.finish(),
                    reference,
                    "resume from barrier {} diverged",
                    bundle.epochs_done
                );
            }
        }
    }

    #[test]
    fn bundle_decode_rejects_corruption_with_typed_errors() {
        let params = GaParams::new(8, 4, 10, 1, 0x061F);
        let config = IslandConfig {
            islands: 2,
            epoch: 2,
            epochs: 2,
        };
        let engine = IslandsEngine::new(&BehavioralEngine, config).expect("steps");
        let mut d = engine.start(spec(params)).expect("starts");
        let bundle = d.step_epoch();
        let bytes = bundle.encode();
        for n in 0..bytes.len() {
            assert!(CheckpointBundle::decode(&bytes[..n]).is_err());
        }
        let mut future = bytes.clone();
        future[2] = CHECKPOINT_VERSION + 1;
        assert!(matches!(
            CheckpointBundle::decode(&future),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert_eq!(
            CheckpointBundle::decode(&wrong_magic),
            Err(SnapshotError::BadMagic)
        );
        // A checkpoint from a different ring shape does not resume.
        let other = IslandsEngine::new(
            &BehavioralEngine,
            IslandConfig {
                islands: 3,
                epoch: 2,
                epochs: 2,
            },
        )
        .expect("steps");
        assert!(matches!(
            other.resume(spec(params), &bundle),
            Err(EngineError::InvalidSpec { .. })
        ));
    }
}
