//! The compiled-netlist cache: validate + topo-sort + compile once per
//! (design, lane-width) and share the result across every pack.
//!
//! The serve hot path runs the same synthesized design — the CA-RNG
//! netlist — for every bitsim pack, at whichever lane width the backend
//! was asked for. Re-elaborating and re-compiling it per pack would pay
//! the full validate + Kahn-sort + flatten cost on work that never
//! changes, so the engine layer keeps one process-wide keyed map
//! instead: a [`CacheKey`] names the design, the words-per-net lane
//! width it will be simulated at, and the seed layout (which input bus
//! carries the per-lane seeds), and the first request under a key
//! compiles while every later request is a read-locked map hit.
//!
//! Hit/miss counters are exposed so the serving layer can report cache
//! effectiveness per batch (`netlist_cache_hits` / `_misses` in
//! `BENCH_serve.json`) — a cold-start regression shows up as a miss
//! count above the number of distinct (design, width) pairs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use ga_synth::CompiledNetlist;

/// What one cache entry is compiled *for*: the design, the lane width
/// it will simulate at, and the seed-bus layout. Widths share the same
/// gate-level artifact today (compilation is width-independent), but
/// keying them separately keeps the entry's identity honest — an entry
/// answers exactly one backend's question — and gives the hit/miss
/// counters a per-backend meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable design name (e.g. `"ca-rng"`).
    pub design: &'static str,
    /// `u64` words per net the simulation will run with (lanes / 64).
    pub words_per_net: usize,
    /// Name of the input bus that carries per-lane seeds.
    pub seed_bus: &'static str,
}

/// A process-wide keyed map of compiled netlists with hit/miss
/// accounting. Reads take a shared lock; a miss compiles *outside* any
/// lock and the losing side of a compile race simply drops its copy.
pub struct NetlistCache {
    map: RwLock<HashMap<CacheKey, Arc<CompiledNetlist>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl NetlistCache {
    /// An empty cache (tests build private ones; production code uses
    /// [`global_cache`]).
    pub fn new() -> Self {
        NetlistCache {
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The entry for `key`, compiling it with `build` on the first
    /// request. `build` runs without any lock held, so a slow compile
    /// never blocks hits on other keys; if two threads race the same
    /// cold key, both compiles run and one artifact wins the insert
    /// (they are deterministic, so either is correct).
    pub fn get_or_compile(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> CompiledNetlist,
    ) -> Arc<CompiledNetlist> {
        if let Some(hit) = self.map.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        let mut map = self.map.write().expect("cache lock");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct cached entries.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for NetlistCache {
    fn default() -> Self {
        NetlistCache::new()
    }
}

/// The process-wide compiled-netlist cache, shared by every backend.
pub fn global_cache() -> &'static NetlistCache {
    static CACHE: OnceLock<NetlistCache> = OnceLock::new();
    CACHE.get_or_init(NetlistCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_synth::gadesign::elaborate_ca_rng;

    fn key(words: usize) -> CacheKey {
        CacheKey {
            design: "ca-rng",
            words_per_net: words,
            seed_bus: "seed",
        }
    }

    fn compile_ca() -> CompiledNetlist {
        CompiledNetlist::compile(&elaborate_ca_rng()).expect("CA-RNG compiles")
    }

    #[test]
    fn first_request_misses_then_hits() {
        let cache = NetlistCache::new();
        let a = cache.get_or_compile(key(1), compile_ca);
        assert_eq!(cache.counters(), (0, 1));
        let b = cache.get_or_compile(key(1), compile_ca);
        assert_eq!(cache.counters(), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "a hit returns the cached artifact");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn widths_are_distinct_entries() {
        let cache = NetlistCache::new();
        let w1 = cache.get_or_compile(key(1), compile_ca);
        let w4 = cache.get_or_compile(key(4), compile_ca);
        assert!(!Arc::ptr_eq(&w1, &w4), "per-width identity");
        assert_eq!(cache.counters(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_hits_are_byte_identical_to_cold_compiles() {
        // The artifact a hit returns must be indistinguishable from a
        // compile done from scratch: same instruction stream, same
        // registers, same bus maps. Debug formatting covers every field.
        let cache = NetlistCache::new();
        cache.get_or_compile(key(2), compile_ca);
        let hit = cache.get_or_compile(key(2), compile_ca);
        let cold = compile_ca();
        assert_eq!(format!("{hit:?}"), format!("{cold:?}"));
    }

    #[test]
    fn build_runs_once_per_key() {
        let cache = NetlistCache::new();
        let mut builds = 0;
        for _ in 0..5 {
            cache.get_or_compile(key(1), || {
                builds += 1;
                compile_ca()
            });
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.counters(), (4, 1));
    }
}
