//! # ga-engine — the unified engine layer
//!
//! One vocabulary over every GA execution backend in the repo. A
//! backend is an [`Engine`]: it advertises [`Capabilities`] (supported
//! chromosome widths, deadline/watchdog behavior, pack width, stepping
//! support, degradation target), admits jobs through
//! [`Engine::prepare`], and executes them into the backend-neutral
//! [`RunOutcome`] shape. The [`EngineRegistry`] enumerates the
//! backends; serve dispatch, bench sweeps, the fault campaign's golden
//! runs, and the conformance suite all go through it rather than
//! naming engines.
//!
//! Seven backends are registered by default ([`registry::global`]):
//!
//! | kind | engine | widths |
//! |---|---|---|
//! | `behavioral` | `ga_core::GaEngine` over the CA RNG | 16 |
//! | `rtl` | `ga_core::GaSystem` (cycle-accurate) | 16 |
//! | `bitsim64` | compiled netlist lane streams, 64-lane packs | 16 |
//! | `bitsim128` | the same netlist at 2 words/net, 128-lane packs | 16 |
//! | `bitsim256` | the same netlist at 4 words/net, 256-lane packs | 16 |
//! | `swga` | `swga::CountingGa` (PowerPC reference) | 16 |
//! | `rtl32` | `ga_core::GaSystem32Hw` (ganged dual core, Fig. 6) | 32 |
//!
//! The bitsim family shares one compiled CA-RNG netlist per lane width
//! through the process-wide [`NetlistCache`], so repeat packs skip
//! validate + topo-sort + compile entirely.
//!
//! [`IslandsEngine`] composes the ring-migration island model over any
//! backend with a stepping handle. See DESIGN.md for the layer diagram
//! and the add-a-backend recipe.

#![forbid(unsafe_code)]

pub mod adapters;
pub mod cache;
pub mod islands;
pub mod pack;
pub mod registry;
pub mod spec;

pub use adapters::{
    trajectory16, trajectory32, BehavioralEngine, BitSim128Engine, BitSim256Engine, BitSim64Engine,
    BitSimWideEngine, Rtl32Engine, RtlInterpEngine, SwgaEngine,
};
pub use cache::{global_cache, CacheKey, NetlistCache};
pub use islands::{CheckpointBundle, IslandsDriver, IslandsEngine, CHECKPOINT_VERSION};
pub use pack::{
    ca_lane_streams, draws_per_run, try_ca_lane_streams, try_ca_lane_streams_wide, StreamRng,
};
pub use registry::{global, EngineRegistry};
pub use spec::{
    convergence_generation, BackendKind, Capabilities, Engine, EngineError, Limits, Prepared,
    RunOutcome, RunSpec, TrajPoint, Workload,
};
