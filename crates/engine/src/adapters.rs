//! [`Engine`] adapters for the seven concrete backends.
//!
//! Each adapter owns the glue between the backend's native API and the
//! engine-layer contract: spec admission, deadline/watchdog plumbing,
//! trajectory capture, and the evaluation-count bookkeeping for
//! hardware models that do not count evaluations themselves
//! (`GaParams::evaluations_per_run` is the single source of truth).

use carng::{CaRng, Rng16, SnapshotRng};
use ga_core::behavioral::GenStats;
use ga_core::scaling::GenStats32;
use ga_core::{GaEngine, GaSystem, GaSystem32Hw};
use ga_fitness::{FemBank, FemSlot, LookupFem};
use hwsim::{Deadline, SimError};
use swga::CountingGa;

use crate::pack::{draws_per_run, try_ca_lane_streams_wide, StreamRng};
use crate::spec::{
    convergence_generation, BackendKind, Capabilities, Engine, EngineError, Limits, Prepared,
    RunOutcome, RunSpec, TrajPoint, Workload,
};

/// Build the lookup FEM realizing a workload on the RTL system: the
/// paper functions use their pre-tabulated ROM images; a healing
/// workload tabulates [`ga_ehw::healing_fitness`] over all 65 536
/// configurations (cheap — the VRC truth table is bit-parallel), so the
/// cycle-accurate core serves healing exactly like any other FEM.
fn lookup_fem(workload: Workload) -> LookupFem {
    match workload {
        Workload::Function(f) => LookupFem::for_function(f),
        Workload::VrcHeal { target, fault } => {
            LookupFem::new(ga_fitness::rom::FitnessRom::tabulate_fn(|c| {
                ga_ehw::healing_fitness(c, target, Some(fault))
            }))
        }
    }
}

/// Lift a 16-bit per-generation history (shared by the behavioral
/// engine, the RTL interpreter's probe, and the swga reference) into
/// the backend-neutral trajectory. Public because the fault campaign
/// compares raw `HwRun` histories against registry goldens.
pub fn trajectory16(history: &[GenStats]) -> Vec<TrajPoint> {
    history
        .iter()
        .map(|s| TrajPoint {
            gen: s.gen,
            best_chrom: s.best.chrom as u32,
            best_fitness: s.best.fitness,
            fit_sum: s.fit_sum,
        })
        .collect()
}

/// Lift a 32-bit history ([`GenStats32`]) into the same trajectory.
pub fn trajectory32(history: &[GenStats32]) -> Vec<TrajPoint> {
    history
        .iter()
        .map(|s| TrajPoint {
            gen: s.gen,
            best_chrom: s.best.chrom,
            best_fitness: s.best.fitness,
            fit_sum: s.fit_sum,
        })
        .collect()
}

/// The behavioral loop shared by the `Behavioral` and `BitSim64`
/// adapters (they differ only in where the RNG stream comes from). The
/// deadline is checked between generations, so an in-flight generation
/// always completes.
fn run16<R: Rng16>(spec: &RunSpec, rng: R) -> Result<RunOutcome, EngineError> {
    let params = spec.params;
    let f = spec.workload;
    let mut deadline = spec.deadline_ms.map(Deadline::after_ms);
    let mut engine = GaEngine::new(params, rng, move |c| f.eval_u16(c));
    let mut history = Vec::with_capacity(params.n_gens as usize + 1);
    history.push(engine.init_population());
    for _ in 0..params.n_gens {
        if let Some(d) = deadline.as_mut() {
            if d.is_past() {
                return Err(EngineError::DeadlineExceeded);
            }
        }
        history.push(engine.step_generation());
    }
    let best = engine.best();
    let trajectory = trajectory16(&history);
    Ok(RunOutcome {
        best_chrom: best.chrom as u32,
        best_fitness: best.fitness,
        generations: params.n_gens,
        evaluations: engine.evaluations(),
        conv_gen: convergence_generation(&trajectory, params.pop_size),
        cycles: None,
        rng_draws: Some(engine.rng_draws()),
        trajectory,
    })
}

/// A stepping handle over the behavioral engine with an arbitrary RNG
/// source — the island-member factory both 16-bit stepping adapters
/// share. The RNG must be snapshot-capable: stepping handles are the
/// checkpoint/resume surface ([`ga_core::IslandMember::snapshot`]).
fn stepper16<R: SnapshotRng + Send + 'static>(
    spec: &RunSpec,
    rng: R,
) -> Box<dyn ga_core::IslandMember> {
    let f = spec.workload;
    Box::new(GaEngine::new(spec.params, rng, move |c| f.eval_u16(c)))
}

/// The behavioral reference engine (`ga_core::GaEngine` over the CA
/// RNG). The fallback target for infrastructure degradation.
pub struct BehavioralEngine;

impl Engine for BehavioralEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::Behavioral
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            widths: &[16],
            pack_width: 1,
            deadline: true,
            watchdog: false,
            reports_cycles: false,
            fault_injection: false,
            stepping: true,
            degrades_to: None,
        }
    }

    fn run(&self, prepared: &Prepared, _limits: &Limits) -> Result<RunOutcome, EngineError> {
        let spec = prepared.spec();
        run16(spec, CaRng::new(spec.params.seed))
    }

    fn stepper(&self, prepared: &Prepared) -> Option<Box<dyn ga_core::IslandMember>> {
        let spec = prepared.spec();
        Some(stepper16(spec, CaRng::new(spec.params.seed)))
    }
}

/// The cycle-accurate 16-bit hardware system (`ga_core::GaSystem`):
/// programs the initialization handshake and runs to `GA_done` under
/// both the simulated-cycle watchdog and the spec's deadline.
pub struct RtlInterpEngine;

impl Engine for RtlInterpEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::RtlInterp
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            widths: &[16],
            pack_width: 1,
            deadline: true,
            watchdog: true,
            reports_cycles: true,
            fault_injection: true,
            stepping: false,
            degrades_to: None,
        }
    }

    fn run(&self, prepared: &Prepared, limits: &Limits) -> Result<RunOutcome, EngineError> {
        let spec = prepared.spec();
        let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(lookup_fem(
            spec.workload,
        ))]));
        sys.program(&spec.params);
        let mut deadline = spec.deadline_ms.map(Deadline::after_ms);
        let run = sys
            .run_with_deadline(limits.sim_watchdog_cycles, deadline.as_mut())
            .map_err(map_sim_error)?;
        let trajectory = trajectory16(&run.history);
        Ok(RunOutcome {
            best_chrom: run.best.chrom as u32,
            best_fitness: run.best.fitness,
            generations: spec.params.n_gens,
            evaluations: spec.params.evaluations_per_run(),
            conv_gen: convergence_generation(&trajectory, spec.params.pop_size),
            cycles: Some(run.cycles),
            rng_draws: Some(run.rng_draws),
            trajectory,
        })
    }
}

/// The compiled wide-lane netlist backend family: the CA-RNG stream
/// comes from one bit-sliced simulation of the synthesized netlist at
/// `W` words per net (a pack shares it across up to `64·W` lanes),
/// then each lane finishes as an ordinary behavioral run over its
/// [`StreamRng`]. `W ∈ {1, 2, 4}` are registered as the `bitsim64` /
/// `bitsim128` / `bitsim256` backends; a lane's stream depends only on
/// its seed, so every width produces bit-identical results.
pub struct BitSimWideEngine<const W: usize>;

/// The original 64-lane backend (`W = 1`).
pub type BitSim64Engine = BitSimWideEngine<1>;
/// The 128-lane backend (two words per net).
pub type BitSim128Engine = BitSimWideEngine<2>;
/// The 256-lane backend (four words per net).
pub type BitSim256Engine = BitSimWideEngine<4>;

impl<const W: usize> Engine for BitSimWideEngine<W> {
    fn kind(&self) -> BackendKind {
        match W {
            1 => BackendKind::BitSim64,
            2 => BackendKind::BitSim128,
            4 => BackendKind::BitSim256,
            _ => unreachable!("bitsim backends are registered at W ∈ {{1, 2, 4}}"),
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            widths: &[16],
            pack_width: 64 * W,
            deadline: true,
            watchdog: true,
            reports_cycles: false,
            fault_injection: false,
            stepping: true,
            degrades_to: Some(BackendKind::Behavioral),
        }
    }

    fn run(&self, prepared: &Prepared, limits: &Limits) -> Result<RunOutcome, EngineError> {
        // A solo run is a pack of one: the lane stream still comes from
        // the compiled netlist, not `CaRng`.
        self.run_pack(std::slice::from_ref(prepared), limits)
            .pop()
            .expect("one lane requested")
    }

    fn run_pack(
        &self,
        prepared: &[Prepared],
        limits: &Limits,
    ) -> Vec<Result<RunOutcome, EngineError>> {
        debug_assert!(!prepared.is_empty() && prepared.len() <= 64 * W);
        debug_assert!(
            prepared.windows(2).all(|w| {
                let (a, b) = (w[0].spec().params, w[1].spec().params);
                (a.pop_size, a.n_gens) == (b.pop_size, b.n_gens)
            }),
            "packed specs must share one RNG draw schedule"
        );
        let draws = draws_per_run(&prepared[0].spec().params) as usize;
        let seeds: Vec<u16> = prepared.iter().map(|p| p.spec().params.seed).collect();
        match try_ca_lane_streams_wide::<W>(&seeds, draws, limits.stream_watchdog_steps) {
            Ok(streams) => prepared
                .iter()
                .zip(streams)
                .map(|(p, stream)| run16(p.spec(), StreamRng::new(stream)))
                .collect(),
            Err(steps) => prepared
                .iter()
                .map(|_| Err(EngineError::Watchdog { cycles: steps }))
                .collect(),
        }
    }

    fn stepper(&self, prepared: &Prepared) -> Option<Box<dyn ga_core::IslandMember>> {
        // Stepping needs the whole stream up front: extract the draws a
        // full run of `n_gens` generations consumes (an island driver
        // runs epoch × epochs = n_gens generations total) plus one — a
        // snapshot taken after the final generation still records the
        // *next* draw, which is how a stream checkpoint restores into a
        // register-RNG backend. One lane is one lane at any width, so
        // the narrow simulator is the cheapest extractor.
        let spec = prepared.spec();
        let draws = draws_per_run(&spec.params) as usize + 1;
        let mut streams = crate::pack::ca_lane_streams(&[spec.params.seed], draws);
        let stream = streams.pop().expect("one lane requested");
        Some(stepper16(spec, StreamRng::new(stream)))
    }
}

/// The instrumented software GA (`swga::CountingGa`) — the PowerPC
/// reference implementation from the paper's Table VII comparison,
/// exposed as a first-class backend. Coarse deadline support: the
/// budget is checked once at admission-to-run time (the reference
/// runs generations without an interior cancellation point).
pub struct SwgaEngine;

impl Engine for SwgaEngine {
    fn kind(&self) -> BackendKind {
        BackendKind::Swga
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            widths: &[16],
            pack_width: 1,
            deadline: true,
            watchdog: false,
            reports_cycles: false,
            fault_injection: false,
            stepping: false,
            degrades_to: None,
        }
    }

    fn run(&self, prepared: &Prepared, _limits: &Limits) -> Result<RunOutcome, EngineError> {
        let spec = prepared.spec();
        if let Some(ms) = spec.deadline_ms {
            if Deadline::after_ms(ms).is_past() {
                return Err(EngineError::DeadlineExceeded);
            }
        }
        let f = spec.workload;
        let run = CountingGa::new(spec.params, move |c| f.eval_u16(c)).run();
        let trajectory = trajectory16(&run.history);
        Ok(RunOutcome {
            best_chrom: run.best.chrom as u32,
            best_fitness: run.best.fitness,
            generations: spec.params.n_gens,
            evaluations: run.evaluations,
            conv_gen: convergence_generation(&trajectory, spec.params.pop_size),
            cycles: None,
            rng_draws: Some(run.ops.call),
            trajectory,
        })
    }
}

/// The ganged dual-core 32-bit system (`ga_core::GaSystem32Hw`,
/// Fig. 6 / §III-D): two lockstep 16-bit cores behind the
/// `scalingLogic_parSel` block, evaluating the concatenated candidate
/// with [`TestFunction::eval_u32_split`].
pub struct Rtl32Engine;

impl Engine for Rtl32Engine {
    fn kind(&self) -> BackendKind {
        BackendKind::Rtl32
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            widths: &[32],
            pack_width: 1,
            deadline: true,
            watchdog: true,
            reports_cycles: true,
            fault_injection: false,
            stepping: false,
            degrades_to: None,
        }
    }

    fn run(&self, prepared: &Prepared, limits: &Limits) -> Result<RunOutcome, EngineError> {
        let spec = prepared.spec();
        let f = spec.workload;
        let mut sys = GaSystem32Hw::new(move |c: u32| f.eval_u32_split(c));
        sys.program(&spec.params);
        let start_cycles = sys.cycles();
        let mut deadline = spec.deadline_ms.map(Deadline::after_ms);
        let run = sys
            .run_with_deadline(limits.sim_watchdog_cycles, deadline.as_mut())
            .map_err(map_sim_error)?;
        let trajectory = trajectory32(&run.history);
        Ok(RunOutcome {
            best_chrom: run.best.chrom,
            best_fitness: run.best.fitness,
            generations: spec.params.n_gens,
            evaluations: spec.params.evaluations_per_run(),
            conv_gen: convergence_generation(&trajectory, spec.params.pop_size),
            cycles: Some(sys.cycles() - start_cycles),
            rng_draws: None,
            trajectory,
        })
    }
}

/// Map the simulator's error type onto the engine contract.
fn map_sim_error(e: SimError) -> EngineError {
    match e {
        SimError::Timeout { cycles } => EngineError::Watchdog { cycles },
        SimError::DeadlineExceeded { .. } => EngineError::DeadlineExceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_core::GaParams;
    use ga_fitness::TestFunction;

    fn spec(width: u8, backendless_params: GaParams) -> RunSpec {
        RunSpec {
            width,
            workload: Workload::Function(TestFunction::Bf6),
            params: backendless_params,
            deadline_ms: None,
        }
    }

    fn run_on(e: &dyn Engine, s: RunSpec) -> Result<RunOutcome, EngineError> {
        let p = e.prepare(s)?;
        e.run(&p, &Limits::default())
    }

    #[test]
    fn behavioral_and_bitsim_agree_exactly() {
        let s = spec(16, GaParams::new(16, 6, 10, 1, 0x2961));
        let a = run_on(&BehavioralEngine, s).expect("behavioral runs");
        let b = run_on(&BitSimWideEngine::<1>, s).expect("bitsim runs");
        assert_eq!(a, b, "netlist-streamed lane must match the reference RNG");
    }

    #[test]
    fn rtl_reports_cycles_and_matching_best() {
        let s = spec(16, GaParams::new(8, 4, 10, 1, 0x061F));
        let r = run_on(&RtlInterpEngine, s).expect("rtl runs");
        let b = run_on(&BehavioralEngine, s).expect("behavioral runs");
        assert!(r.cycles.expect("rtl reports cycles") > 0);
        assert_eq!(
            (r.best_chrom, r.best_fitness),
            (b.best_chrom, b.best_fitness),
            "engines must agree on the answer"
        );
        assert_eq!(r.evaluations, b.evaluations, "evaluation formula");
        assert_eq!(r.trajectory, b.trajectory, "probe matches the model");
    }

    #[test]
    fn rtl32_matches_the_behavioral_dual_core_model() {
        let params = GaParams::new(8, 4, 10, 1, 0x2961);
        let mut s = spec(32, params);
        s.workload = Workload::Function(TestFunction::F3);
        let hw = run_on(&Rtl32Engine, s).expect("rtl32 runs");
        let f = TestFunction::F3;
        let sw = ga_core::GaEngine32::new(
            params,
            CaRng::new(params.seed),
            CaRng::new(!params.seed),
            move |c| f.eval_u32_split(c),
        )
        .run();
        assert_eq!(hw.best_chrom, sw.best.chrom);
        assert_eq!(hw.best_fitness, sw.best.fitness);
        assert_eq!(hw.trajectory, trajectory32(&sw.history));
        assert_eq!(hw.evaluations, params.evaluations_per_run());
        assert!(hw.cycles.expect("rtl32 reports cycles") > 0);
    }

    #[test]
    fn healing_workload_agrees_across_16_bit_backends() {
        // The heal workload must be served bit-identically by the
        // closure path (behavioral, bitsim, swga) and the tabulated-ROM
        // path (cycle-accurate RTL).
        let mut s = spec(16, GaParams::new(16, 12, 10, 1, 0xB342));
        s.workload = Workload::VrcHeal {
            target: 0x9B9B,
            fault: ga_ehw::Fault::StuckAt {
                cell: 2,
                value: true,
            },
        };
        let reference = run_on(&BehavioralEngine, s).expect("behavioral heals");
        for e in [
            &RtlInterpEngine as &dyn Engine,
            &BitSimWideEngine::<1>,
            &BitSimWideEngine::<2>,
            &BitSimWideEngine::<4>,
        ] {
            let r = run_on(e, s).expect("backend heals");
            assert_eq!(
                (r.best_chrom, r.best_fitness, &r.trajectory),
                (
                    reference.best_chrom,
                    reference.best_fitness,
                    &reference.trajectory
                ),
                "{:?} healing run diverged",
                e.kind()
            );
        }
        // A healing chromosome's fitness is the ehw crate's definition.
        assert_eq!(
            s.workload.eval_u16(reference.best_chrom as u16),
            reference.best_fitness
        );
    }

    #[test]
    fn width_checks_are_per_engine() {
        let s16 = spec(16, GaParams::default());
        let s32 = spec(32, GaParams::default());
        assert!(BehavioralEngine.prepare(s16).is_ok());
        assert_eq!(
            BehavioralEngine.prepare(s32).expect_err("width 32 refused"),
            EngineError::UnsupportedWidth { width: 32 }
        );
        assert!(Rtl32Engine.prepare(s32).is_ok());
        assert_eq!(
            Rtl32Engine.prepare(s16).expect_err("width 16 refused"),
            EngineError::UnsupportedWidth { width: 16 }
        );
    }

    #[test]
    fn zero_deadline_cancels_every_width16_engine() {
        for e in [
            &BehavioralEngine as &dyn Engine,
            &RtlInterpEngine,
            &BitSimWideEngine::<1>,
            &SwgaEngine,
        ] {
            let mut s = spec(16, GaParams::new(8, 4, 10, 1, 0xB342));
            s.deadline_ms = Some(0);
            assert_eq!(
                run_on(e, s),
                Err(EngineError::DeadlineExceeded),
                "{} must honor a 0 ms deadline",
                e.kind().name()
            );
        }
    }

    #[test]
    fn watchdogs_are_typed_and_infrastructure() {
        let s = spec(16, GaParams::new(8, 4, 10, 1, 0xB342));
        let tight = Limits {
            sim_watchdog_cycles: 10,
            stream_watchdog_steps: 4,
        };
        let rtl = RtlInterpEngine
            .run(&RtlInterpEngine.prepare(s).expect("admits"), &tight)
            .expect_err("tight watchdog trips");
        assert_eq!(rtl, EngineError::Watchdog { cycles: 10 });
        let bit = BitSimWideEngine::<1>
            .run(&BitSimWideEngine::<1>.prepare(s).expect("admits"), &tight)
            .expect_err("tight watchdog trips");
        assert_eq!(bit, EngineError::Watchdog { cycles: 4 });
        assert!(bit.is_infrastructure());
    }

    #[test]
    fn bitsim_pack_lanes_match_solo_runs() {
        let e = BitSimWideEngine::<1>;
        let params = GaParams::new(8, 3, 10, 1, 0);
        let packed: Vec<Prepared> = [0x1111u16, 0x2222, 0x3333]
            .iter()
            .map(|&seed| {
                e.prepare(spec(16, GaParams { seed, ..params }))
                    .expect("admits")
            })
            .collect();
        let pack = e.run_pack(&packed, &Limits::default());
        for (p, r) in packed.iter().zip(&pack) {
            let solo = e.run(p, &Limits::default()).expect("solo runs");
            assert_eq!(r.as_ref().expect("lane runs"), &solo);
        }
    }

    #[test]
    fn wide_engines_report_their_own_kind_and_pack_width() {
        assert_eq!(BitSimWideEngine::<1>.kind(), BackendKind::BitSim64);
        assert_eq!(BitSimWideEngine::<2>.kind(), BackendKind::BitSim128);
        assert_eq!(BitSimWideEngine::<4>.kind(), BackendKind::BitSim256);
        assert_eq!(BitSimWideEngine::<1>.capabilities().pack_width, 64);
        assert_eq!(BitSimWideEngine::<2>.capabilities().pack_width, 128);
        assert_eq!(BitSimWideEngine::<4>.capabilities().pack_width, 256);
    }

    #[test]
    fn wide_pack_lanes_beyond_word_zero_match_solo_bitsim64() {
        // 70 jobs overflow the first 64-lane word of a 128-lane pack:
        // lanes 64..70 live in word 1 and must still equal solo 64-lane
        // runs of the same seed.
        let narrow = BitSimWideEngine::<1>;
        let wide = BitSimWideEngine::<2>;
        let params = GaParams::new(8, 3, 10, 1, 0);
        let packed: Vec<Prepared> = (0..70u16)
            .map(|i| {
                let seed = i.wrapping_mul(0x9E37) ^ 0x2961;
                wide.prepare(spec(16, GaParams { seed, ..params }))
                    .expect("admits")
            })
            .collect();
        let pack = wide.run_pack(&packed, &Limits::default());
        assert_eq!(pack.len(), 70);
        for (p, r) in packed.iter().zip(&pack) {
            let solo = narrow.run(p, &Limits::default()).expect("solo runs");
            assert_eq!(r.as_ref().expect("lane runs"), &solo);
        }
    }

    #[test]
    fn swga_matches_behavioral_trajectories() {
        let s = spec(16, GaParams::new(16, 8, 10, 1, 0xB342));
        let a = run_on(&BehavioralEngine, s).expect("behavioral runs");
        let w = run_on(&SwgaEngine, s).expect("swga runs");
        assert_eq!(a.trajectory, w.trajectory, "same algorithm, same RNG");
        assert_eq!(a.evaluations, w.evaluations);
        assert_eq!(
            (a.best_chrom, a.best_fitness),
            (w.best_chrom, w.best_fitness)
        );
    }

    #[test]
    fn steppers_exist_exactly_where_capabilities_say() {
        let s = spec(16, GaParams::new(8, 4, 10, 1, 1));
        for e in [
            &BehavioralEngine as &dyn Engine,
            &RtlInterpEngine,
            &BitSimWideEngine::<1>,
            &SwgaEngine,
        ] {
            let p = e.prepare(s).expect("admits");
            assert_eq!(
                e.stepper(&p).is_some(),
                e.capabilities().stepping,
                "{}",
                e.kind().name()
            );
        }
    }
}
