//! Job packing for the wide-lane bitsim backends.
//!
//! The compiled netlist engine (`ga_synth::bitsim`) advances 64·W
//! independent CA-RNG simulations per pass — but the *GA* around the
//! RNG is data-dependent (selection scans, fitness lookups), so the
//! whole GA cannot be bit-sliced. What CAN be shared is the expensive
//! part the netlist actually models: the RNG stream. Two jobs with the
//! same population size and generation count consume RNG draws on an
//! identical, data-independent schedule ([`draws_per_run`]), so up to
//! 64·W such jobs are packed into **one** lockstep run of the compiled
//! CA-RNG netlist — one seed per lane — and each lane's extracted
//! stream then drives an ordinary behavioral engine via [`StreamRng`].
//! Because the netlist is gate-level equivalent to `carng::CaRng`
//! (proven by `crates/synth/tests/rng_equivalence.rs` and the golden
//! vectors), a packed lane's result is bit-identical to a solo run, at
//! every lane width.
//!
//! Packs smaller than the lane count leave the tail lanes *unseeded*:
//! they hold the CA's all-zero fixed point, never produce a stream,
//! and never touch results or metrics — the padding-skew fix. Active
//! lanes are exactly `seeds.len()`.
//!
//! The compiled netlist itself comes from the process-wide
//! [`crate::cache::NetlistCache`], keyed per lane width, so repeat
//! packs skip validation, topological sorting, and flattening
//! entirely.

use std::sync::Arc;

use carng::{Rng16, SnapshotRng};
use ga_core::GaParams;
use ga_synth::bitsim::{BitSimW, CompiledNetlist};
use ga_synth::gadesign::elaborate_ca_rng;

use crate::cache::{global_cache, CacheKey};

/// Exact number of 16-bit RNG draws one GA run consumes — the packing
/// schedule. Per run: `pop` draws seed the initial population; each
/// generation breeds `pop − 1` offspring in pairs, costing two
/// selection draws plus one crossover-field draw per pair and one
/// mutation-field draw per offspring. Asserted against the engine's
/// own `rng_draws()` instrumentation in the service tests.
pub fn draws_per_run(p: &GaParams) -> u64 {
    let pop = p.pop_size as u64;
    let pairs = (pop - 1).div_ceil(2);
    pop + p.n_gens as u64 * (3 * pairs + (pop - 1))
}

/// The compiled CA-RNG netlist for a `W`-word lane width, from the
/// process-wide [`NetlistCache`](crate::cache::NetlistCache): compiled
/// once per width, a cache hit on every later pack.
fn compiled_ca(words_per_net: usize) -> Arc<CompiledNetlist> {
    global_cache().get_or_compile(
        CacheKey {
            design: "ca-rng",
            words_per_net,
            seed_bus: "seed",
        },
        || CompiledNetlist::compile(&elaborate_ca_rng()).expect("CA-RNG netlist compiles"),
    )
}

/// Run the compiled CA-RNG netlist with one seed per lane and extract
/// `draws` outputs per seeded lane — `seeds.len()` complete RNG streams
/// from one bit-sliced simulation. Zero seeds get the RNG module's
/// guard remap (0 → 1), matching `carng::CaRng`; *unseeded* tail lanes
/// stay at the CA's all-zero fixed point and are never read.
pub fn ca_lane_streams(seeds: &[u16], draws: usize) -> Vec<Vec<u16>> {
    try_ca_lane_streams(seeds, draws, u64::MAX).expect("unbounded extraction cannot trip")
}

/// [`ca_lane_streams`] under a simulated-step watchdog: extracting
/// `draws` draws costs `draws + 1` netlist steps (one load edge plus
/// one per draw); if the run would exceed `max_steps` the extraction is
/// refused up front with `Err(max_steps)` — the step count the watchdog
/// charged — so the service can degrade the pack to the behavioral
/// backend instead of burning an unbounded amount of host time.
pub fn try_ca_lane_streams(
    seeds: &[u16],
    draws: usize,
    max_steps: u64,
) -> Result<Vec<Vec<u16>>, u64> {
    try_ca_lane_streams_wide::<1>(seeds, draws, max_steps)
}

/// [`try_ca_lane_streams`] at any lane width: one bit-sliced run of the
/// `W`-word simulator extracts up to `64·W` complete RNG streams. The
/// stream a lane produces depends only on its seed, never on `W` — the
/// conformance suite pins wide lanes against solo 64-lane runs.
pub fn try_ca_lane_streams_wide<const W: usize>(
    seeds: &[u16],
    draws: usize,
    max_steps: u64,
) -> Result<Vec<Vec<u16>>, u64> {
    assert!(
        seeds.len() <= BitSimW::<W>::LANES,
        "{} seeds exceed the {} lanes of one pack",
        seeds.len(),
        BitSimW::<W>::LANES
    );
    if (draws as u64).saturating_add(1) > max_steps {
        return Err(max_steps);
    }
    let cn = compiled_ca(W);
    let seed_bus = cn.input_bus("seed").expect("seed bus").to_vec();
    let ctl_bus = cn.input_bus("ctl").expect("ctl bus").to_vec();
    let rn_bus = cn.output_bus("rn").expect("rn bus").to_vec();

    let mut sim = cn.sim_wide::<W>();
    for (lane, &s) in seeds.iter().enumerate() {
        let s = if s == 0 { 1 } else { s }; // the RNG module's zero-seed guard
        sim.set_bus_lane(&seed_bus, lane, s as u64);
    }
    sim.set_bus_all(&ctl_bus, 0b01); // ctl[0] = seed_load
    sim.step();
    sim.set_bus_all(&ctl_bus, 0b10); // ctl[1] = consume

    // The rn output bus IS the register bank, so after the load edge it
    // already reads the seed; sample-then-advance from here on matches
    // `Rng16::next_u16` (first draw after reseed is the seed itself).
    // Per step, the 16 lane-packed bus word groups are read once and
    // every active lane's draw is assembled from them — 16 net reads
    // per step instead of 16 per lane per step.
    let mut streams: Vec<Vec<u16>> = (0..seeds.len())
        .map(|_| Vec::with_capacity(draws))
        .collect();
    let mut words = [[0u64; W]; 16];
    for _ in 0..draws {
        for (w, &n) in words.iter_mut().zip(&rn_bus) {
            *w = sim.net_words(n);
        }
        for (lane, stream) in streams.iter_mut().enumerate() {
            let (wi, shift) = (lane / 64, lane % 64);
            let mut v = 0u16;
            for (bit, w) in words.iter().enumerate() {
                v |= (((w[wi] >> shift) & 1) as u16) << bit;
            }
            stream.push(v);
        }
        sim.step();
    }
    Ok(streams)
}

/// An [`Rng16`] replaying a pre-extracted draw stream — the glue
/// between a bitsim lane and the behavioral engine. The stream must
/// hold exactly the draws the consumer will ask for
/// ([`draws_per_run`]); running past the end is an internal invariant
/// violation and panics.
#[derive(Debug, Clone)]
pub struct StreamRng {
    stream: Vec<u16>,
    pos: usize,
}

impl StreamRng {
    /// Wrap an extracted lane stream.
    pub fn new(stream: Vec<u16>) -> Self {
        assert!(!stream.is_empty(), "an RNG stream cannot be empty");
        StreamRng { stream, pos: 0 }
    }

    /// Draws consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Rng16 for StreamRng {
    fn output(&self) -> u16 {
        self.stream[self.pos]
    }

    fn step(&mut self) {
        self.pos += 1;
    }

    fn fill_u16s(&mut self, out: &mut [u16]) {
        // Batch replay is a slice copy — the stream already holds the
        // consecutive draws. Panics past the end like `next_u16` would.
        out.copy_from_slice(&self.stream[self.pos..self.pos + out.len()]);
        self.pos += out.len();
    }

    fn reseed(&mut self, seed: u16) {
        // The engine reseeds with the job's seed on construction; the
        // stream's first draw must BE that seed (post zero-guard).
        let expect = if seed == 0 { 1 } else { seed };
        debug_assert_eq!(
            self.stream.first().copied(),
            Some(expect),
            "stream does not start at the reseed value"
        );
        self.pos = 0;
    }
}

impl SnapshotRng for StreamRng {
    fn load(&mut self, consumed: u64, next: u16) -> Result<(), &'static str> {
        // `consumed` is the stream cursor directly; `next` cross-checks
        // the snapshot against the extracted stream, so restoring a
        // behavioral snapshot into the wrong lane (or a corrupted one)
        // is caught instead of silently diverging.
        let pos = usize::try_from(consumed)
            .map_err(|_| "stream snapshot position does not fit in memory")?;
        if pos >= self.stream.len() {
            return Err("stream snapshot position is past the extracted stream");
        }
        if self.stream[pos] != next {
            return Err("snapshot RNG value disagrees with the extracted stream");
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carng::CaRng;

    #[test]
    fn lane_streams_match_the_reference_rng() {
        let seeds = [0xB342u16, 0x2961, 0x061F, 1, 0xFFFF];
        let streams = ca_lane_streams(&seeds, 200);
        assert_eq!(streams.len(), seeds.len());
        for (lane, (&seed, stream)) in seeds.iter().zip(&streams).enumerate() {
            let mut reference = CaRng::new(seed);
            for (k, &v) in stream.iter().enumerate() {
                assert_eq!(
                    v,
                    reference.next_u16(),
                    "lane {lane} seed {seed:#06x} diverged at draw {k}"
                );
            }
        }
    }

    #[test]
    fn zero_seed_gets_the_guard_remap() {
        let streams = ca_lane_streams(&[0], 8);
        let mut reference = CaRng::new(0); // remaps to 1 internally
        for &v in &streams[0] {
            assert_eq!(v, reference.next_u16());
        }
        assert_eq!(streams[0][0], 1);
    }

    #[test]
    fn full_64_lane_pack_is_supported() {
        let seeds: Vec<u16> = (1..=64).collect();
        let streams = ca_lane_streams(&seeds, 4);
        assert_eq!(streams.len(), 64);
        for (s, st) in seeds.iter().zip(&streams) {
            assert_eq!(st[0], *s, "first draw is the seed");
        }
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_than_64_seeds_rejected() {
        let seeds: Vec<u16> = (0..65).collect();
        let _ = ca_lane_streams(&seeds, 1);
    }

    #[test]
    fn full_256_lane_pack_matches_the_reference_rng() {
        // 256 seeds through one 4-word run: every lane — including the
        // word-boundary lanes 63/64/127/128/191/192 — must replay its
        // solo CaRng stream exactly.
        let seeds: Vec<u16> = (0..256u16).map(|i| i.wrapping_mul(2731) ^ 5).collect();
        let streams = try_ca_lane_streams_wide::<4>(&seeds, 12, u64::MAX).expect("unbounded");
        assert_eq!(streams.len(), 256);
        for (lane, (&seed, stream)) in seeds.iter().zip(&streams).enumerate() {
            let mut reference = CaRng::new(seed);
            for (k, &v) in stream.iter().enumerate() {
                assert_eq!(v, reference.next_u16(), "lane {lane} draw {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed the 128 lanes")]
    fn wide_packs_enforce_their_own_lane_cap() {
        let seeds: Vec<u16> = (0..129).collect();
        let _ = try_ca_lane_streams_wide::<2>(&seeds, 1, u64::MAX);
    }

    #[test]
    fn step_watchdog_refuses_oversized_extractions() {
        assert_eq!(try_ca_lane_streams(&[1], 100, 10), Err(10));
        let ok = try_ca_lane_streams(&[1], 9, 10).expect("9 draws + 1 load step fit in 10");
        assert_eq!(ok[0].len(), 9);
    }

    #[test]
    fn stream_rng_replays_and_reseeds() {
        let mut r = StreamRng::new(vec![7, 8, 9]);
        assert_eq!(r.next_u16(), 7);
        assert_eq!(r.next_u16(), 8);
        assert_eq!(r.consumed(), 2);
        r.reseed(7);
        assert_eq!(r.next_u16(), 7);
    }

    #[test]
    fn stream_rng_snapshot_load_is_checked() {
        let mut r = StreamRng::new(vec![7, 8, 9]);
        r.next_u16();
        assert_eq!(r.save(), 8);
        // Reposition by (consumed, next) — the cross-backend contract.
        let mut other = StreamRng::new(vec![7, 8, 9]);
        other.load(1, 8).expect("valid position");
        assert_eq!(other.next_u16(), 8);
        assert!(other.load(1, 9).is_err(), "value mismatch is typed");
        assert!(other.load(3, 7).is_err(), "past-the-end is typed");
        assert_eq!(other.consumed(), 2, "failed loads leave the cursor");
    }

    #[test]
    fn draw_formula_even_and_odd_pops() {
        // pop 8: init 8, per gen 3·ceil(7/2) + 7 = 19.
        assert_eq!(draws_per_run(&GaParams::new(8, 2, 10, 1, 1)), 8 + 2 * 19);
        // pop 15 (odd): per gen 3·7 + 14 = 35.
        assert_eq!(draws_per_run(&GaParams::new(15, 3, 10, 1, 1)), 15 + 3 * 35);
    }
}
