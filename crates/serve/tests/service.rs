//! End-to-end service tests, including the 200-job mixed-backend
//! acceptance batch: deterministic, input-ordered output at every
//! thread count, with packed bitsim lanes bit-identical to solo runs.

use carng::seeds::{PRESET_SEEDS, TABLE5_SEEDS};
use carng::CaRng;
use ga_core::{GaEngine, GaParams};
use ga_fitness::TestFunction;
use ga_serve::{
    draws_per_run, serve_batch, BackendKind, GaJob, JobResult, ServeConfig, ServeError,
};

/// The acceptance fixture: 200 jobs cycling through every registered
/// backend (including 32-bit jobs on the ganged `rtl32` composite),
/// all six fitness functions, and a few parameter shapes (including two
/// bitsim shapes so packing produces multiple groups with tails).
fn mixed_batch_200() -> Vec<GaJob> {
    let shapes = [
        GaParams::new(16, 6, 10, 1, 1),
        GaParams::new(15, 4, 12, 2, 1), // odd population
        GaParams::new(8, 8, 13, 3, 1),
    ];
    (0..200)
        .map(|i| {
            let backend = BackendKind::ALL[i % BackendKind::ALL.len()];
            let function = TestFunction::ALL[i % TestFunction::ALL.len()];
            let mut params = shapes[(i / 3) % shapes.len()];
            // The cycle-accurate interpreters are the slow path; keep
            // their jobs small.
            if matches!(backend, BackendKind::RtlInterp | BackendKind::Rtl32) {
                params = GaParams::new(8, 4, 10, 1, 1);
            }
            params.seed = (i as u16).wrapping_mul(2654).wrapping_add(17);
            if backend == BackendKind::Rtl32 {
                GaJob::new32(function, params)
            } else {
                GaJob::new(function, backend, params)
            }
        })
        .collect()
}

#[test]
fn acceptance_200_job_batch_is_deterministic_and_input_ordered() {
    let jobs = mixed_batch_200();
    let reference = serve_batch(&jobs, &ServeConfig::default());
    assert_eq!(reference.results.len(), jobs.len());
    for (i, r) in reference.results.iter().enumerate() {
        assert_eq!(r.job, i, "results must come back in input order");
        assert_eq!(r.backend, jobs[i].backend);
        assert!(r.outcome.is_ok(), "job {i} failed: {:?}", r.outcome);
    }
    assert_eq!(reference.stats.jobs(), 200);
    assert_eq!(reference.stats.errors(), 0);
    assert!(reference.stats.packs >= 2, "bitsim jobs should pack");

    // Identical payloads at every thread count (timing differs, so
    // compare the deterministic fields only).
    let payload = |rs: &[JobResult]| -> Vec<_> {
        rs.iter()
            .map(|r| (r.job, r.backend, r.outcome.clone()))
            .collect::<Vec<_>>()
    };
    for threads in [1, 2, 7, 16] {
        let cfg = ServeConfig {
            threads,
            queue_capacity: 3, // small queue: exercise backpressure too
            ..ServeConfig::default()
        };
        let got = serve_batch(&jobs, &cfg);
        assert_eq!(
            payload(&got.results),
            payload(&reference.results),
            "results changed with {threads} threads"
        );
    }
}

#[test]
fn packed_lane_equals_solo_run_even_in_the_tail() {
    // 67 compatible bitsim jobs: one full 64-lane pack plus a 3-lane
    // tail pack. Every lane must equal the same job run solo.
    let jobs: Vec<GaJob> = (0..67)
        .map(|i| {
            GaJob::new(
                TestFunction::Bf6,
                BackendKind::BitSim64,
                GaParams::new(12, 5, 10, 1, 0x1000 + i as u16),
            )
        })
        .collect();
    let packed = serve_batch(&jobs, &ServeConfig::default());
    assert_eq!(packed.stats.packs, 2);
    assert_eq!(packed.stats.packed_lanes, 67);

    for (job, r) in jobs.iter().zip(&packed.results) {
        let solo = serve_batch(std::slice::from_ref(job), &ServeConfig::default());
        assert_eq!(
            r.outcome, solo.results[0].outcome,
            "packed lane for seed {:#06x} differs from its solo run",
            job.params.seed
        );
    }
}

#[test]
fn draw_schedule_formula_matches_engine_instrumentation() {
    // The packing layer pre-computes how many draws to extract per lane;
    // if this drifts from the engine's actual consumption, packed runs
    // would truncate. Check the formula against `rng_draws()` across
    // shapes, including the paper's Table IV presets.
    for params in [
        GaParams::new(2, 1, 10, 1, 7),
        GaParams::new(8, 4, 10, 1, 7),
        GaParams::new(15, 3, 12, 2, 7),
        GaParams::new(32, 512, 12, 1, 7),
        GaParams::new(64, 64, 13, 2, 7),
        GaParams::new(128, 4, 14, 3, 7),
    ] {
        let mut engine = GaEngine::new(params, CaRng::new(params.seed), |c| {
            TestFunction::F2.eval_u16(c)
        });
        engine.init_population();
        for _ in 0..params.n_gens {
            engine.step_generation();
        }
        assert_eq!(
            draws_per_run(&params),
            engine.rng_draws(),
            "draw formula wrong for pop {} gens {}",
            params.pop_size,
            params.n_gens
        );
    }
}

#[test]
fn all_width16_backends_agree_on_the_answer() {
    let kinds = ga_engine::global().supporting_width(16);
    assert!(kinds.len() >= 4, "expected every 16-bit engine registered");
    for &seed in PRESET_SEEDS.iter().chain(&TABLE5_SEEDS) {
        let params = GaParams::new(16, 8, 10, 1, seed);
        let outs: Vec<_> = kinds
            .iter()
            .map(|&b| {
                let job = GaJob::new(TestFunction::Mbf6_2, b, params);
                serve_batch(&[job], &ServeConfig::default()).results[0]
                    .outcome
                    .clone()
                    .expect("backend runs")
            })
            .collect();
        for (kind, out) in kinds.iter().zip(&outs).skip(1) {
            assert_eq!(
                (outs[0].best_chrom, outs[0].best_fitness),
                (out.best_chrom, out.best_fitness),
                "behavioral vs {}, seed {seed}",
                kind.name()
            );
            assert_eq!(
                outs[0].conv_gen,
                out.conv_gen,
                "{} seed {seed}",
                kind.name()
            );
            assert_eq!(
                outs[0].evaluations,
                out.evaluations,
                "{} seed {seed}",
                kind.name()
            );
        }
    }
}

#[test]
fn errors_are_per_job_and_counted() {
    let good = GaJob::new(
        TestFunction::F2,
        BackendKind::Behavioral,
        GaParams::new(8, 4, 10, 1, 3),
    );
    let mut bad = good;
    bad.params.pop_size = 1; // below the hardware minimum
    let timed = GaJob::new(
        TestFunction::F2,
        BackendKind::RtlInterp,
        GaParams::new(8, 4, 10, 1, 3),
    )
    .with_deadline_ms(0);

    let out = serve_batch(&[good, bad, timed], &ServeConfig::default());
    assert!(out.results[0].outcome.is_ok());
    assert!(matches!(
        out.results[1].outcome,
        Err(ServeError::InvalidJob { .. })
    ));
    assert_eq!(out.results[2].outcome, Err(ServeError::DeadlineExceeded));
    assert_eq!(out.stats.jobs(), 3);
    assert_eq!(out.stats.errors(), 2);
}
