//! Property-based tests of the hand-rolled JSONL job schema: the
//! parser faces operator-authored request files, so its grammar gets
//! randomized scrutiny — string escapes, surrogate-free unicode,
//! numeric boundaries, duplicate keys — with every rejection checked
//! to stay aligned to its input line.

#![allow(clippy::unwrap_used)]

use std::fmt::Write as _;

use ga_serve::jsonl::{escape_string, parse_job, parse_object, JsonValue};
use ga_serve::ServeError;
use proptest::prelude::*;

/// Any Unicode scalar value (surrogates excluded by construction, as
/// `char` requires).
fn any_scalar() -> impl Strategy<Value = char> {
    prop_oneof![
        (0x20u32..0xD800).boxed(),
        (0xE000u32..0x11_0000).boxed(),
        // Weight the troublemakers: controls and the escaped pair.
        (0u32..0x20).boxed(),
        Just('"' as u32).boxed(),
        Just('\\' as u32).boxed(),
    ]
    .prop_map(|cp| char::from_u32(cp).expect("surrogate-free by construction"))
}

fn any_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any_scalar(), 0..24).prop_map(|cs| cs.into_iter().collect())
}

/// A value the flat schema can carry, paired with its rendering.
fn any_value() -> impl Strategy<Value = (String, JsonValue)> {
    prop_oneof![
        any_string()
            .prop_map(|s| (format!("\"{}\"", escape_string(&s)), JsonValue::Str(s)))
            .boxed(),
        any::<i64>()
            .prop_map(|n| (format!("{n}"), JsonValue::Num(n as f64)))
            .boxed(),
        // The numeric extremes the integer fields clamp against.
        prop_oneof![
            Just(0u64),
            Just(u8::MAX as u64),
            Just(u16::MAX as u64),
            Just(u32::MAX as u64),
            Just(u64::MAX),
        ]
        .prop_map(|n| (format!("{}", n as f64), JsonValue::Num(n as f64)))
        .boxed(),
        any::<bool>()
            .prop_map(|b| (format!("{b}"), JsonValue::Bool(b)))
            .boxed(),
        Just(("null".to_string(), JsonValue::Null)).boxed(),
    ]
}

/// Render pairs as one flat JSON object line.
fn render(pairs: &[(String, (String, JsonValue))]) -> String {
    let mut out = String::from("{");
    for (i, (k, (rendered, _))) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_string(k), rendered);
    }
    out.push('}');
    out
}

/// A syntactically valid job line, returned with its parts.
fn valid_job_line(pop: u8, gens: u32, xover: u8, mutation: u8, seed: u16) -> String {
    format!("{{\"fn\":\"F3\",\"pop\":{pop},\"gens\":{gens},\"xover\":{xover},\"mut\":{mutation},\"seed\":{seed}}}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary flat objects (unique keys, escape-heavy strings,
    /// boundary numerics) round-trip exactly through render → parse.
    #[test]
    fn flat_objects_roundtrip(
        keys in prop::collection::vec(any_string(), 0..8),
        values in prop::collection::vec(any_value(), 8..9),
    ) {
        // Make keys unique by suffixing their index; values cycle.
        let pairs: Vec<(String, (String, JsonValue))> = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| (format!("{k}#{i}"), values[i % values.len()].clone()))
            .collect();
        let line = render(&pairs);
        let parsed = parse_object(&line);
        prop_assert!(parsed.is_ok(), "line {line:?} rejected: {parsed:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.len(), pairs.len());
        for ((want_k, (_, want_v)), (got_k, got_v)) in pairs.iter().zip(&parsed) {
            prop_assert_eq!(want_k, got_k);
            prop_assert_eq!(want_v, got_v);
        }
    }

    /// Every integer field accepts exactly its documented range; a
    /// value one past the maximum is rejected with a parse error that
    /// carries the caller's line number.
    #[test]
    fn numeric_bounds_are_exact(line_no in 0usize..100_000) {
        // In-range extremes parse.
        for (pop, gens, xover, mutation, seed) in [
            (0u8, 0u32, 0u8, 0u8, 0u16),
            (u8::MAX, u32::MAX, u8::MAX, u8::MAX, u16::MAX),
        ] {
            let line = valid_job_line(pop, gens, xover, mutation, seed);
            let job = parse_job(&line, line_no);
            prop_assert!(job.is_ok(), "extremes must parse: {line} -> {job:?}");
        }
        // One past each field's max is a line-aligned parse error.
        for over in [
            r#"{"fn":"F3","pop":256,"gens":8,"xover":10,"mut":1,"seed":7}"#,
            r#"{"fn":"F3","pop":32,"gens":4294967296,"xover":10,"mut":1,"seed":7}"#,
            r#"{"fn":"F3","pop":32,"gens":8,"xover":256,"mut":1,"seed":7}"#,
            r#"{"fn":"F3","pop":32,"gens":8,"xover":10,"mut":256,"seed":7}"#,
            r#"{"fn":"F3","pop":32,"gens":8,"xover":10,"mut":1,"seed":65536}"#,
            r#"{"fn":"F3","pop":-1,"gens":8,"xover":10,"mut":1,"seed":7}"#,
        ] {
            match parse_job(over, line_no) {
                Err(ServeError::Parse { line, .. }) => prop_assert_eq!(line, line_no),
                other => prop_assert!(false, "accepted {over}: {other:?}"),
            }
        }
    }

    /// Duplicating any key of a valid job line turns it into a parse
    /// error aligned to the same line.
    #[test]
    fn duplicate_keys_rejected_line_aligned(
        line_no in 0usize..100_000,
        dup_idx in 0usize..6,
        pop in 2u8..=u8::MAX, gens in 1u32..1000, seed in 0u16..=u16::MAX,
    ) {
        let line = valid_job_line(pop, gens, 10, 1, seed);
        prop_assert!(parse_job(&line, line_no).is_ok(), "baseline must parse: {line}");
        let key = ["fn", "pop", "gens", "xover", "mut", "seed"][dup_idx];
        let dup_field = if key == "fn" {
            "\"fn\":\"F2\"".to_string()
        } else {
            format!("\"{key}\":1")
        };
        let dup = format!("{},{dup_field}}}", &line[..line.len() - 1]);
        match parse_job(&dup, line_no) {
            Err(ServeError::Parse { line, msg }) => {
                prop_assert_eq!(line, line_no, "diagnostic drifted off its line");
                prop_assert!(msg.contains("duplicate key"), "msg: {msg}");
            }
            other => prop_assert!(false, "accepted duplicate {key}: {other:?}"),
        }
    }

    /// Strings survive the full escape gauntlet: serialize with
    /// `escape_string`, parse back, compare code point for code point.
    #[test]
    fn strings_roundtrip_through_escaping(s in any_string()) {
        let line = format!("{{\"k\":\"{}\"}}", escape_string(&s));
        let parsed = parse_object(&line);
        prop_assert!(parsed.is_ok(), "string {s:?} rejected as {line:?}: {parsed:?}");
        prop_assert_eq!(&parsed.unwrap()[0].1, &JsonValue::Str(s));
    }

    /// Mangled lines never panic the parser and always carry the
    /// caller's line number in their diagnostics (the invariant the
    /// line-aligned output format depends on).
    #[test]
    fn mangled_lines_error_line_aligned(
        line_no in 0usize..100_000,
        cut in 1usize..40,
        junk in any_string(),
    ) {
        let base = valid_job_line(32, 8, 10, 1, 7);
        let cut = cut.min(base.len() - 1);
        for candidate in [base[..cut].to_string(), format!("{junk}{base}"), junk.clone()] {
            match parse_job(&candidate, line_no) {
                Ok(_) => {} // junk may happen to be empty-prefix valid
                Err(ServeError::Parse { line, .. }) => prop_assert_eq!(line, line_no),
                Err(ServeError::InvalidJob { .. }) => {} // width gate, still line-slotted by the driver
                Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            }
        }
    }
}
