//! Socket front-end tests: golden-stable streaming over concurrent
//! connections, graceful drain, and the admission-control rejections
//! (quota, rate limit, load shedding).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use ga_serve::{GaJob, NetConfig, Server};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/jobs16.jsonl"
);
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/results16_golden.jsonl"
);

/// Stream `lines` to the server on one connection (writer thread +
/// concurrent reader, like a real pipelined client), half-close, and
/// collect every response line until the server closes the socket.
fn stream_lines(addr: std::net::SocketAddr, lines: Vec<String>) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut write_half = stream.try_clone().expect("clone");
    let writer = thread::spawn(move || {
        for line in lines {
            write_half.write_all(line.as_bytes()).expect("send");
            write_half.write_all(b"\n").expect("send newline");
        }
        let _ = write_half.shutdown(std::net::Shutdown::Write);
    });
    let got: Vec<String> = BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read response"))
        .collect();
    writer.join().expect("writer");
    got
}

fn fixture_lines() -> Vec<String> {
    std::fs::read_to_string(FIXTURE)
        .expect("read jobs16.jsonl")
        .lines()
        .map(str::to_string)
        .collect()
}

fn golden_lines() -> Vec<String> {
    std::fs::read_to_string(GOLDEN)
        .expect("read results16_golden.jsonl")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn concurrent_connections_stream_golden_stable_line_aligned_results() {
    // The acceptance criterion: >=2 concurrent connections, each
    // getting byte-identical results to the batch-mode golden, line
    // numbers aligned per connection. Connection A streams the whole
    // fixture (35 lines incl. parse errors, deadline, rtl32, heal and
    // island jobs); connection B concurrently streams a 13-line prefix
    // and must get exactly the first 13 golden lines.
    let server = Server::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.local_addr();
    let jobs = fixture_lines();
    let golden = golden_lines();
    assert_eq!(jobs.len(), golden.len(), "fixture has no blank lines");

    let (got_a, got_b) = thread::scope(|s| {
        let full = jobs.clone();
        let prefix: Vec<String> = jobs[..13].to_vec();
        let a = s.spawn(move || stream_lines(addr, full));
        let b = s.spawn(move || stream_lines(addr, prefix));
        (a.join().expect("conn A"), b.join().expect("conn B"))
    });
    assert_eq!(got_a, golden, "full stream must match the batch golden");
    assert_eq!(got_b, golden[..13], "prefix stream is line-aligned too");

    let summary = server.drain();
    assert_eq!(summary.admission.connections, 2);
    // Conn A's non-JSON line, its two unsupported-width lines, and the
    // half-specified island triple are all rejected at the reader,
    // before any backend.
    assert_eq!(summary.admission.rejected_parse, 4);
    // Conn A served its 31 parseable jobs, conn B the prefix's 13.
    assert_eq!(summary.stats.jobs(), 44);
    assert_eq!(summary.admission.rejected_closed, 0, "nothing raced drain");
}

#[test]
fn crlf_streams_parse_identically_to_lf() {
    // A CRLF-sending network client (satellite bugfix): same results,
    // same positions, and a CRLF "blank" line skips without shifting
    // the numbering.
    let server = Server::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.local_addr();
    let jobs = fixture_lines();
    // stream_lines appends '\n' to each line; a trailing '\r' makes the
    // wire bytes CRLF. Insert a bare "\r" line (a CRLF blank) up front:
    // it must consume line number 0 and produce no output.
    let mut crlf: Vec<String> = vec!["\r".into()];
    crlf.extend(jobs[..6].iter().map(|l| format!("{l}\r")));
    let got = stream_lines(addr, crlf);
    let golden = golden_lines();
    // Expected: the first six golden lines with every job id shifted by
    // one (the blank line advanced the numbering).
    let expected: Vec<String> = golden[..6]
        .iter()
        .enumerate()
        .map(|(i, line)| {
            let old = format!("{{\"job\":{i},");
            let new = format!("{{\"job\":{},", i + 1);
            assert!(line.starts_with(&old), "golden line {i} shape: {line}");
            line.replacen(&old, &new, 1)
        })
        .collect();
    assert_eq!(got, expected, "CRLF client must see LF-identical results");
    server.drain();
}

#[test]
fn drain_answers_every_admitted_job_with_no_lost_tails() {
    // Graceful-drain acceptance: a client that never hangs up is forced
    // to EOF after the grace window, but every line it managed to send
    // still gets exactly one result line before the socket closes.
    let cfg = NetConfig {
        drain_grace_ms: 50,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut write_half = stream.try_clone().expect("clone");
    let n = 20usize;
    for i in 0..n {
        let line = format!(
            "{{\"fn\":\"F3\",\"backend\":\"behavioral\",\"pop\":8,\"gens\":2,\
             \"xover\":10,\"mut\":1,\"seed\":{i}}}"
        );
        write_half.write_all(line.as_bytes()).expect("send");
        write_half.write_all(b"\n").expect("send newline");
    }
    write_half.flush().expect("flush");
    // Deliberately no shutdown and no EOF: the connection idles with 20
    // jobs submitted when the drain lands.
    thread::sleep(Duration::from_millis(50)); // let the reader ingest
    let reader = thread::spawn(move || {
        BufReader::new(stream)
            .lines()
            .map(|l| l.expect("read response"))
            .collect::<Vec<String>>()
    });
    let summary = server.drain();
    let got = reader.join().expect("reader");
    assert_eq!(got.len(), n, "every admitted job answered before close");
    for (i, line) in got.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"job\":{i},")) && line.contains("\"ok\":true"),
            "line {i}: {line}"
        );
    }
    assert_eq!(summary.stats.jobs(), n as u64);
    assert_eq!(summary.stats.errors(), 0);
}

#[test]
fn quota_rejects_excess_lines_with_typed_errors_in_position() {
    let cfg = NetConfig {
        max_jobs_per_conn: 3,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let lines: Vec<String> = (0..5)
        .map(|i| {
            format!("{{\"fn\":\"F2\",\"pop\":8,\"gens\":2,\"xover\":10,\"mut\":1,\"seed\":{i}}}")
        })
        .collect();
    let got = stream_lines(addr, lines);
    assert_eq!(got.len(), 5, "rejected lines are answered, not dropped");
    for (i, line) in got.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"job\":{i},")),
            "line {i}: {line}"
        );
        if i < 3 {
            assert!(line.contains("\"ok\":true"), "line {i}: {line}");
        } else {
            assert!(
                line.contains("\"error\":\"quota_exceeded\"")
                    && line.contains("\"backend\":\"none\""),
                "line {i}: {line}"
            );
        }
    }
    let summary = server.drain();
    assert_eq!(summary.admission.rejected_quota, 2);
    assert_eq!(
        summary.stats.jobs(),
        3,
        "only admitted jobs reach a backend"
    );
}

#[test]
fn rate_limit_sheds_bursts_but_answers_every_line() {
    // Burst 2 at 1 job/s sustained: a 4-line burst must see at least
    // the burst capacity admitted and at least one rate_limited line;
    // on a slow CI box the bucket may refill mid-burst, so the split is
    // asserted as bounds, not exact counts.
    let cfg = NetConfig {
        rate_per_sec: 1,
        rate_burst: 2,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let lines: Vec<String> = (0..4)
        .map(|i| {
            format!("{{\"fn\":\"F2\",\"pop\":8,\"gens\":2,\"xover\":10,\"mut\":1,\"seed\":{i}}}")
        })
        .collect();
    let got = stream_lines(addr, lines);
    assert_eq!(got.len(), 4);
    let ok = got.iter().filter(|l| l.contains("\"ok\":true")).count();
    let limited = got
        .iter()
        .filter(|l| l.contains("\"error\":\"rate_limited\""))
        .count();
    assert_eq!(ok + limited, 4, "every line gets exactly one verdict");
    assert!(ok >= 2, "burst capacity must be admitted: {got:?}");
    assert!(
        limited >= 1,
        "the tail of the burst must be limited: {got:?}"
    );
    let summary = server.drain();
    assert_eq!(summary.admission.rejected_rate as usize, limited);
}

/// Gate for the shed test's parking hook (a plain `fn` pointer, so it
/// talks to the test through a static).
static PARK: AtomicBool = AtomicBool::new(false);

fn park_first_job(_: usize, _: &GaJob) {
    while PARK.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn shed_mode_answers_queue_full_when_the_queue_is_at_capacity() {
    // One worker parked on the first job + a one-slot queue: the second
    // line fills the queue and every further line must shed with a
    // typed queue_full line (not block, not drop).
    let mut cfg = NetConfig {
        shed: true,
        ..Default::default()
    };
    cfg.serve.threads = 1;
    cfg.serve.queue_capacity = 1;
    cfg.serve.pre_exec = Some(park_first_job);
    PARK.store(true, Ordering::SeqCst);
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut write_half = stream.try_clone().expect("clone");
    let job = |seed: usize| {
        format!("{{\"fn\":\"F3\",\"pop\":8,\"gens\":2,\"xover\":10,\"mut\":1,\"seed\":{seed}}}\n")
    };
    // First job: popped by the (parked) worker.
    write_half.write_all(job(0).as_bytes()).expect("send");
    write_half.flush().expect("flush");
    thread::sleep(Duration::from_millis(100));
    // Second fills the one-slot queue; third through fifth must shed.
    for i in 1..5 {
        write_half.write_all(job(i).as_bytes()).expect("send");
    }
    write_half.flush().expect("flush");
    thread::sleep(Duration::from_millis(100)); // let the reader shed 2..5
    PARK.store(false, Ordering::SeqCst);
    let _ = write_half.shutdown(std::net::Shutdown::Write);
    let got: Vec<String> = BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read response"))
        .collect();

    assert_eq!(got.len(), 5);
    for (i, line) in got.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"job\":{i},")),
            "line {i}: {line}"
        );
    }
    assert!(got[0].contains("\"ok\":true"), "line 0: {}", got[0]);
    assert!(got[1].contains("\"ok\":true"), "line 1: {}", got[1]);
    for line in &got[2..] {
        assert!(line.contains("\"error\":\"queue_full\""), "line: {line}");
    }
    let summary = server.drain();
    assert_eq!(summary.admission.shed_queue_full, 3);
    assert_eq!(summary.stats.jobs(), 2);
}
