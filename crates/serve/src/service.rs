//! The scheduler: shard a batch over a worker pool, pack compatible
//! bitsim jobs, and return results in input order.

use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use ga_bench::{default_threads, lane_chunks, BenchReport, Stopwatch};
use ga_synth::bitsim::BitSim;

use crate::backend;
use crate::job::{BackendKind, GaJob, JobResult};
use crate::queue::BoundedQueue;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (clamped to the number of work units).
    pub threads: usize,
    /// Bounded queue capacity — the backpressure window between the
    /// submitter and the pool.
    pub queue_capacity: usize,
    /// Simulated-cycle watchdog for the RTL backend.
    pub rtl_watchdog_cycles: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: default_threads(),
            queue_capacity: 64,
            rtl_watchdog_cycles: 2_000_000_000,
        }
    }
}

/// Per-backend throughput/latency counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendCounters {
    /// Jobs that ran (or were rejected) on this backend.
    pub jobs: u64,
    /// Of those, how many ended in a typed error.
    pub errors: u64,
    /// Sum of per-job latencies.
    pub total_micros: u64,
    /// Largest single-job latency.
    pub max_micros: u64,
}

impl BackendCounters {
    fn absorb(&mut self, micros: u64, ok: bool) {
        self.jobs += 1;
        if !ok {
            self.errors += 1;
        }
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Mean per-job latency in microseconds (0 when idle).
    pub fn avg_micros(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.jobs as f64
        }
    }
}

/// Aggregate statistics for one served batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Counters for the behavioral backend.
    pub behavioral: BackendCounters,
    /// Counters for the RTL-interpreter backend.
    pub rtl: BackendCounters,
    /// Counters for the 64-lane bitsim backend.
    pub bitsim: BackendCounters,
    /// Number of 64-lane packs executed.
    pub packs: u64,
    /// Total *active* lanes across all packs — equals the number of
    /// real bitsim jobs, NOT `packs × 64`: idle tail lanes of a short
    /// pack do not count (the padding-skew fix).
    pub packed_lanes: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

impl ServeStats {
    /// Counters for one backend.
    pub fn counters(&self, b: BackendKind) -> &BackendCounters {
        match b {
            BackendKind::Behavioral => &self.behavioral,
            BackendKind::RtlInterp => &self.rtl,
            BackendKind::BitSim64 => &self.bitsim,
        }
    }

    fn counters_mut(&mut self, b: BackendKind) -> &mut BackendCounters {
        match b {
            BackendKind::Behavioral => &mut self.behavioral,
            BackendKind::RtlInterp => &mut self.rtl,
            BackendKind::BitSim64 => &mut self.bitsim,
        }
    }

    /// Total jobs across backends.
    pub fn jobs(&self) -> u64 {
        self.behavioral.jobs + self.rtl.jobs + self.bitsim.jobs
    }

    /// Total errored jobs across backends.
    pub fn errors(&self) -> u64 {
        self.behavioral.errors + self.rtl.errors + self.bitsim.errors
    }

    /// Batch throughput in jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.jobs() as f64 / self.wall_seconds
        }
    }

    /// Render as a `BenchReport` (emitted as `BENCH_serve.json`). The
    /// `lanes` field reports the pack width of the bitsim backend when
    /// any pack ran, else 1.
    pub fn to_report(&self, threads: usize) -> BenchReport {
        let lanes = if self.packs > 0 {
            BitSim::LANES as u64
        } else {
            1
        };
        BenchReport::new("serve", self.wall_seconds, lanes, threads as u64)
            .metric("jobs", self.jobs() as f64)
            .metric("errors", self.errors() as f64)
            .metric("jobs_per_sec", self.jobs_per_sec())
            .metric("behavioral_jobs", self.behavioral.jobs as f64)
            .metric("behavioral_avg_us", self.behavioral.avg_micros())
            .metric("rtl_jobs", self.rtl.jobs as f64)
            .metric("rtl_avg_us", self.rtl.avg_micros())
            .metric("bitsim64_jobs", self.bitsim.jobs as f64)
            .metric("bitsim64_avg_us", self.bitsim.avg_micros())
            .metric("bitsim64_packs", self.packs as f64)
            .metric("bitsim64_active_lanes", self.packed_lanes as f64)
    }
}

/// A served batch: results in input order plus the aggregate counters.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// `results[i]` belongs to `jobs[i]`, always.
    pub results: Vec<JobResult>,
    /// Aggregate throughput/latency statistics.
    pub stats: ServeStats,
}

/// A schedulable unit: one job, or a pack of compatible bitsim jobs.
enum Unit {
    Solo(usize),
    Pack(Vec<usize>),
}

/// Shard the batch into units. Valid bitsim jobs are grouped by
/// [`GaJob::pack_key`] in first-appearance order and chunked into packs
/// of at most 64 (the tail pack simply carries fewer active lanes);
/// everything else — including *invalid* bitsim jobs, which must
/// surface their own typed error — runs solo.
fn plan_units(jobs: &[GaJob]) -> Vec<Unit> {
    let mut units = Vec::new();
    let mut groups: Vec<((u8, u32), Vec<usize>)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        if job.backend == BackendKind::BitSim64 && job.validate().is_ok() {
            let key = job.pack_key();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        } else {
            units.push(Unit::Solo(i));
        }
    }
    for (_, members) in groups {
        for chunk in lane_chunks(members.len(), BitSim::LANES) {
            units.push(Unit::Pack(members[chunk].to_vec()));
        }
    }
    units
}

fn exec_unit(jobs: &[GaJob], unit: &Unit, cfg: &ServeConfig) -> Vec<JobResult> {
    match unit {
        Unit::Solo(i) => {
            let t = Instant::now();
            let outcome = backend::run_single(&jobs[*i], cfg.rtl_watchdog_cycles);
            vec![JobResult {
                job: *i,
                backend: jobs[*i].backend,
                outcome,
                micros: t.elapsed().as_micros() as u64,
            }]
        }
        Unit::Pack(idxs) => backend::run_pack(jobs, idxs),
    }
}

/// Execute a batch of jobs and return results **in input order**.
///
/// The caller thread feeds a bounded queue (blocking when full — the
/// backpressure path) while `cfg.threads` scoped workers drain it.
/// Results land in a slot-per-job table, so the output order is the
/// input order regardless of thread count, completion order, or how
/// jobs were packed.
pub fn serve_batch(jobs: &[GaJob], cfg: &ServeConfig) -> ServeOutcome {
    let sw = Stopwatch::start();
    let units = plan_units(jobs);
    let mut stats = ServeStats::default();
    for u in &units {
        if let Unit::Pack(idxs) = u {
            stats.packs += 1;
            stats.packed_lanes += idxs.len() as u64;
        }
    }

    let threads = cfg.threads.clamp(1, units.len().max(1));
    let queue: BoundedQueue<Unit> = BoundedQueue::new(cfg.queue_capacity.max(1));
    let slots: Mutex<Vec<Option<JobResult>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());

    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                while let Some(unit) = queue.pop() {
                    let produced = exec_unit(jobs, &unit, cfg);
                    let mut table = slots.lock().expect("result table poisoned");
                    for r in produced {
                        let idx = r.job;
                        debug_assert!(table[idx].is_none(), "job {idx} produced twice");
                        table[idx] = Some(r);
                    }
                }
            });
        }
        for unit in units {
            // Blocks while the queue is full; the queue is only closed
            // below, after every unit is in.
            queue.push(unit).expect("queue closed while feeding");
        }
        queue.close();
    });

    let results: Vec<JobResult> = slots
        .into_inner()
        .expect("result table poisoned")
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect();
    for r in &results {
        stats
            .counters_mut(r.backend)
            .absorb(r.micros, r.outcome.is_ok());
    }
    stats.wall_seconds = sw.seconds();
    ServeOutcome { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ServeError;
    use ga_core::GaParams;
    use ga_fitness::TestFunction;

    fn quick_job(backend: BackendKind, seed: u16) -> GaJob {
        GaJob::new(TestFunction::F3, backend, GaParams::new(8, 3, 10, 1, seed))
    }

    #[test]
    fn results_are_input_ordered_for_any_thread_count() {
        let jobs: Vec<GaJob> = (0..30)
            .map(|i| {
                let b = match i % 3 {
                    0 => BackendKind::Behavioral,
                    1 => BackendKind::BitSim64,
                    _ => BackendKind::Behavioral,
                };
                quick_job(b, 0x1000 + i as u16)
            })
            .collect();
        let reference = serve_batch(
            &jobs,
            &ServeConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2, 8] {
            let out = serve_batch(
                &jobs,
                &ServeConfig {
                    threads,
                    ..Default::default()
                },
            );
            for (i, (a, b)) in reference.results.iter().zip(&out.results).enumerate() {
                assert_eq!(a.job, i);
                assert_eq!(b.job, i);
                assert_eq!(a.outcome, b.outcome, "job {i} differs at {threads} threads");
            }
        }
    }

    #[test]
    fn small_queue_capacity_still_completes() {
        // Backpressure path: 2-slot queue, many units — the feeder must
        // block and resume rather than drop or deadlock.
        let jobs: Vec<GaJob> = (0..25)
            .map(|i| quick_job(BackendKind::Behavioral, 0x2000 + i as u16))
            .collect();
        let out = serve_batch(
            &jobs,
            &ServeConfig {
                threads: 3,
                queue_capacity: 2,
                ..Default::default()
            },
        );
        assert_eq!(out.results.len(), 25);
        assert_eq!(out.stats.jobs(), 25);
        assert_eq!(out.stats.errors(), 0);
    }

    #[test]
    fn packing_groups_by_key_and_honors_tails() {
        // 70 compatible bitsim jobs + 5 of another shape: 2 packs
        // (64 + 6 active lanes) + 1 pack of 5 → lanes counted as jobs,
        // not as packs × 64.
        let mut jobs: Vec<GaJob> = (0..70u16)
            .map(|i| quick_job(BackendKind::BitSim64, 0x3000 + i))
            .collect();
        for i in 0..5u16 {
            jobs.push(GaJob::new(
                TestFunction::F2,
                BackendKind::BitSim64,
                GaParams::new(16, 2, 10, 1, 0x4000 + i),
            ));
        }
        let out = serve_batch(&jobs, &ServeConfig::default());
        assert_eq!(out.stats.packs, 3);
        assert_eq!(out.stats.packed_lanes, 75);
        assert_eq!(out.stats.bitsim.jobs, 75);
        assert_eq!(out.stats.errors(), 0);
    }

    #[test]
    fn invalid_jobs_error_without_poisoning_the_batch() {
        let mut jobs = vec![
            quick_job(BackendKind::Behavioral, 1),
            quick_job(BackendKind::BitSim64, 2),
        ];
        jobs[1].params.pop_size = 0; // invalid → solo unit, typed error
        let mut wide = quick_job(BackendKind::Behavioral, 3);
        wide.width = 32;
        jobs.push(wide);
        let out = serve_batch(&jobs, &ServeConfig::default());
        assert!(out.results[0].outcome.is_ok());
        assert!(matches!(
            out.results[1].outcome,
            Err(ServeError::InvalidJob { .. })
        ));
        assert_eq!(
            out.results[2].outcome,
            Err(ServeError::UnsupportedWidth { width: 32 })
        );
        assert_eq!(out.stats.errors(), 2);
        assert_eq!(out.stats.packs, 0, "invalid bitsim jobs never pack");
    }

    #[test]
    fn report_carries_the_serve_schema() {
        let jobs = vec![quick_job(BackendKind::BitSim64, 9)];
        let out = serve_batch(&jobs, &ServeConfig::default());
        let json = out.stats.to_report(4).to_json();
        for key in [
            "\"name\": \"serve\"",
            "jobs_per_sec",
            "bitsim64_packs",
            "bitsim64_active_lanes",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
