//! The scheduler: shard a batch over a worker pool, pack compatible
//! bitsim jobs, and return results in input order.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use ga_bench::{default_threads, lane_chunks, run_sweep, BenchReport, Stopwatch};

use crate::backend;
use crate::job::{BackendKind, GaJob, JobResult, ServeError};

/// Retry policy for *transient* job failures (worker panics caught at
/// the pool boundary). Deterministic errors — validation, watchdogs,
/// deadlines — are never retried: rerunning them buys nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per work unit, including the first (1 = never
    /// retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            backoff_ms: 5,
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (clamped to the number of work units). The pool
    /// size that actually ran is recorded in
    /// [`ServeStats::threads_used`] and is what `BENCH_serve.json`
    /// reports.
    pub threads: usize,
    /// Bounded queue capacity for the streaming submission front-end
    /// ([`crate::BoundedQueue`]). The batch scheduler itself
    /// distributes planned units over the pool with an atomic claim
    /// loop ([`ga_bench::run_sweep`]) and does not consume this knob.
    pub queue_capacity: usize,
    /// Simulated-cycle watchdog for the RTL backend.
    pub rtl_watchdog_cycles: u64,
    /// Simulated-step watchdog for bitsim64 stream extraction. A trip
    /// degrades the affected jobs to the behavioral backend (typed
    /// [`crate::job::Degradation`] metadata) instead of failing them.
    pub bitsim_watchdog_steps: u64,
    /// Retry-with-backoff policy for transient (panic) failures.
    pub retry: RetryPolicy,
    /// Chaos/fault-injection hook, called with `(index, job)` right
    /// before each job executes. A panic here exercises exactly the
    /// worker-crash path a misbehaving backend would: caught at the
    /// pool boundary, retried per [`RetryPolicy`], then failed as a
    /// typed internal error for that unit only. A plain `fn` pointer so
    /// the config stays `Clone + Debug`.
    pub pre_exec: Option<fn(usize, &GaJob)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: default_threads(),
            queue_capacity: 64,
            rtl_watchdog_cycles: 2_000_000_000,
            bitsim_watchdog_steps: 2_000_000_000,
            retry: RetryPolicy::default(),
            pre_exec: None,
        }
    }
}

/// Exact buckets for latencies below 16 µs, then four sub-buckets per
/// power-of-two octave up to 2^40 µs (~12.7 days): a fixed-size
/// log-scale layout whose relative quantization error is bounded at 25%
/// while the whole histogram stays a flat `u64` array that merges
/// across workers with a plain element-wise add.
const HISTO_EXACT: usize = 16;
/// First octave covered by sub-bucketed ranges (2^4 = 16 µs).
const HISTO_FIRST_OCTAVE: u32 = 4;
/// Last octave; anything larger clamps into the final bucket.
const HISTO_LAST_OCTAVE: u32 = 40;
/// Sub-buckets per octave.
const HISTO_SUBS: usize = 4;
/// Total bucket count.
pub const HISTO_BUCKETS: usize =
    HISTO_EXACT + (HISTO_LAST_OCTAVE - HISTO_FIRST_OCTAVE + 1) as usize * HISTO_SUBS;

/// Fixed-bucket log-scale latency histogram (microseconds).
///
/// Replaces the old mean-only accounting: every recorded latency lands
/// in one of [`HISTO_BUCKETS`] buckets (exact below 16 µs, ≤25%
/// relative error above), so [`LatencyHisto::percentile`] can answer
/// p50/p95/p99 without keeping per-job samples, and two histograms —
/// one per worker, say — merge loss-free with [`LatencyHisto::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHisto {
    buckets: [u64; HISTO_BUCKETS],
    count: u64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHisto {
    /// Bucket index for a latency of `micros`.
    fn index(micros: u64) -> usize {
        if micros < HISTO_EXACT as u64 {
            return micros as usize;
        }
        let octave = (63 - micros.leading_zeros()).min(HISTO_LAST_OCTAVE);
        let sub = ((micros >> (octave - 2)) & 0x3) as usize;
        HISTO_EXACT + (octave - HISTO_FIRST_OCTAVE) as usize * HISTO_SUBS + sub
    }

    /// Lower bound (µs) of bucket `i` — the value [`Self::percentile`]
    /// reports, so percentiles never overstate a latency.
    fn lower_bound(i: usize) -> u64 {
        if i < HISTO_EXACT {
            return i as u64;
        }
        let rel = i - HISTO_EXACT;
        let octave = HISTO_FIRST_OCTAVE + (rel / HISTO_SUBS) as u32;
        let sub = (rel % HISTO_SUBS) as u64;
        (1u64 << octave) + sub * (1u64 << (octave - 2))
    }

    /// Record one latency.
    pub fn record(&mut self, micros: u64) {
        self.buckets[Self::index(micros)] += 1;
        self.count += 1;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The latency (µs) at quantile `q` (`0.0..=1.0`): the lower bound
    /// of the bucket holding the `ceil(q·count)`-th smallest sample.
    /// Zero when nothing was recorded.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::lower_bound(i);
            }
        }
        Self::lower_bound(HISTO_BUCKETS - 1)
    }

    /// Fold another histogram in (per-worker histograms merge into the
    /// batch aggregate with no precision loss — buckets just add).
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// Per-backend throughput/latency counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackendCounters {
    /// Jobs that ran (or were rejected) on this backend.
    pub jobs: u64,
    /// Of those, how many ended in a typed error.
    pub errors: u64,
    /// Sum of per-job latencies.
    pub total_micros: u64,
    /// Largest single-job latency.
    pub max_micros: u64,
    /// Log-scale latency distribution (the p50/p95/p99 source).
    pub histo: LatencyHisto,
}

impl BackendCounters {
    pub(crate) fn absorb(&mut self, micros: u64, ok: bool) {
        self.jobs += 1;
        if !ok {
            self.errors += 1;
        }
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
        self.histo.record(micros);
    }

    /// Fold another backend's counters in (used when per-worker stats
    /// merge into the server-wide aggregate).
    fn merge(&mut self, other: &BackendCounters) {
        self.jobs += other.jobs;
        self.errors += other.errors;
        self.total_micros += other.total_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
        self.histo.merge(&other.histo);
    }

    /// Mean per-job latency in microseconds (0 when idle).
    pub fn avg_micros(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.jobs as f64
        }
    }
}

/// Aggregate statistics for one served batch. Counters are kept per
/// registered [`BackendKind`] (one slot per kind, registry order), so
/// adding a backend to the engine registry automatically adds its
/// throughput row here and in `BENCH_serve.json` — no hardcoded
/// per-backend fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// `(kind, counters)` per registered backend, registry order.
    per_backend: Vec<(BackendKind, BackendCounters)>,
    /// Number of lockstep packs executed.
    pub packs: u64,
    /// Total *active* lanes across all packs — equals the number of
    /// real packed jobs, NOT `packs × 64`: idle tail lanes of a short
    /// pack do not count (the padding-skew fix).
    pub packed_lanes: u64,
    /// Jobs answered by a fallback backend after their requested one
    /// failed transiently (graceful degradation).
    pub degraded: u64,
    /// Worker threads the batch actually ran on — the *clamped* pool
    /// size, not the configured one. This is the `threads` value
    /// `BENCH_serve.json` reports.
    pub threads_used: u64,
    /// Wall time spent executing pack units, summed across workers —
    /// the denominator of the `bitsim_pack_jobs_per_sec` metric.
    pub pack_micros: u64,
    /// Compiled-netlist cache hits charged to this batch (delta of the
    /// process-wide [`ga_engine::NetlistCache`] counters across it).
    pub cache_hits: u64,
    /// Compiled-netlist cache misses charged to this batch.
    pub cache_misses: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            per_backend: ga_engine::global()
                .kinds()
                .into_iter()
                .map(|k| (k, BackendCounters::default()))
                .collect(),
            packs: 0,
            packed_lanes: 0,
            degraded: 0,
            threads_used: 1,
            pack_micros: 0,
            cache_hits: 0,
            cache_misses: 0,
            wall_seconds: 0.0,
        }
    }
}

impl ServeStats {
    /// Counters for one backend (zeroed when it never ran).
    pub fn counters(&self, b: BackendKind) -> BackendCounters {
        self.per_backend
            .iter()
            .find(|(k, _)| *k == b)
            .map(|(_, c)| c.clone())
            .unwrap_or_default()
    }

    /// Registry rank of a backend kind — the metric-emission order
    /// contract of `BENCH_serve.json`. Unregistered kinds sort last.
    fn registry_rank(b: BackendKind) -> usize {
        ga_engine::global()
            .kinds()
            .iter()
            .position(|k| *k == b)
            .unwrap_or(usize::MAX)
    }

    pub(crate) fn counters_mut(&mut self, b: BackendKind) -> &mut BackendCounters {
        // A kind missing its slot (stats built before the backend was
        // registered, or a degradation target touched first) is
        // inserted at its *registry position*, never appended: the
        // documented report order must not depend on which backend
        // happened to run first.
        let at = match self.per_backend.iter().position(|(k, _)| *k == b) {
            Some(at) => at,
            None => {
                let rank = Self::registry_rank(b);
                let at = self
                    .per_backend
                    .iter()
                    .position(|(k, _)| Self::registry_rank(*k) > rank)
                    .unwrap_or(self.per_backend.len());
                self.per_backend.insert(at, (b, BackendCounters::default()));
                at
            }
        };
        &mut self.per_backend[at].1
    }

    /// Fold one result's latency/error/degradation accounting in.
    pub(crate) fn absorb_result(&mut self, r: &JobResult) {
        self.counters_mut(r.backend)
            .absorb(r.micros, r.outcome.is_ok());
        if r.degraded.is_some() {
            self.degraded += 1;
        }
    }

    /// Fold another stats block in: per-backend counters (histograms
    /// included), pack accounting, and cache deltas all add. The
    /// identity fields — `threads_used`, `wall_seconds` — are the
    /// owner's and are deliberately left alone; the socket server
    /// merges each worker's and connection's local stats through this
    /// and then stamps its own pool size and lifetime.
    pub fn merge(&mut self, other: &ServeStats) {
        for (kind, c) in &other.per_backend {
            self.counters_mut(*kind).merge(c);
        }
        self.packs += other.packs;
        self.packed_lanes += other.packed_lanes;
        self.degraded += other.degraded;
        self.pack_micros += other.pack_micros;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Total jobs across backends.
    pub fn jobs(&self) -> u64 {
        self.per_backend.iter().map(|(_, c)| c.jobs).sum()
    }

    /// Total errored jobs across backends.
    pub fn errors(&self) -> u64 {
        self.per_backend.iter().map(|(_, c)| c.errors).sum()
    }

    /// Batch throughput in jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.jobs() as f64 / self.wall_seconds
        }
    }

    /// Throughput of the packed bitsim path alone, in jobs per second:
    /// active pack lanes over the wall time spent inside pack units.
    /// Zero when no pack ran.
    pub fn pack_jobs_per_sec(&self) -> f64 {
        if self.pack_micros == 0 {
            0.0
        } else {
            self.packed_lanes as f64 / (self.pack_micros as f64 / 1e6)
        }
    }

    /// Render as a `BenchReport` (emitted as `BENCH_serve.json`) with a
    /// `<name>_jobs` / `<name>_avg_us` / `<name>_p50_us` /
    /// `<name>_p95_us` / `<name>_p99_us` / `<name>_max_us` block for
    /// **every** backend in the stats — the per-backend floor
    /// `benchcheck --require-backend-throughput` asserts, in registry
    /// order. The percentiles come from the merged [`LatencyHisto`];
    /// `_max_us` is the exact recorded maximum (the counter that used
    /// to be accumulated but silently dropped from the report). The
    /// report's `threads` field is [`ServeStats::threads_used`] — the
    /// pool size that actually ran, never the configured one. The
    /// `lanes` field reports the widest registered pack when any pack
    /// ran, else 1.
    pub fn to_report(&self) -> BenchReport {
        let lanes = if self.packs > 0 {
            ga_engine::global()
                .engines()
                .map(|e| e.capabilities().pack_width)
                .max()
                .unwrap_or(1) as u64
        } else {
            1
        };
        let mut report = BenchReport::new("serve", self.wall_seconds, lanes, self.threads_used)
            .metric("jobs", self.jobs() as f64)
            .metric("errors", self.errors() as f64)
            .metric("jobs_per_sec", self.jobs_per_sec());
        // Defensive re-sort: counters_mut keeps registry order on
        // insert, but the emission contract is pinned here regardless
        // of how the stats were assembled or merged.
        let mut ordered: Vec<&(BackendKind, BackendCounters)> = self.per_backend.iter().collect();
        ordered.sort_by_key(|(k, _)| Self::registry_rank(*k));
        for (kind, c) in ordered {
            report = report
                .metric(format!("{}_jobs", kind.name()), c.jobs as f64)
                .metric(format!("{}_avg_us", kind.name()), c.avg_micros())
                .metric(
                    format!("{}_p50_us", kind.name()),
                    c.histo.percentile(0.50) as f64,
                )
                .metric(
                    format!("{}_p95_us", kind.name()),
                    c.histo.percentile(0.95) as f64,
                )
                .metric(
                    format!("{}_p99_us", kind.name()),
                    c.histo.percentile(0.99) as f64,
                )
                .metric(format!("{}_max_us", kind.name()), c.max_micros as f64);
        }
        report
            .metric("bitsim_packs", self.packs as f64)
            .metric("bitsim_active_lanes", self.packed_lanes as f64)
            .metric("bitsim_pack_jobs_per_sec", self.pack_jobs_per_sec())
            .metric("netlist_cache_hits", self.cache_hits as f64)
            .metric("netlist_cache_misses", self.cache_misses as f64)
            .metric("degraded_jobs", self.degraded as f64)
    }
}

/// A served batch: results in input order plus the aggregate counters.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// `results[i]` belongs to `jobs[i]`, always.
    pub results: Vec<JobResult>,
    /// Aggregate throughput/latency statistics.
    pub stats: ServeStats,
}

/// A schedulable unit: one job, or a pack of compatible packable jobs.
/// `pub(crate)` so the socket front-end (`crate::net`) can route its
/// opportunistically-gathered packs through the same panic-isolating,
/// retrying execution path the batch scheduler uses.
pub(crate) enum Unit {
    Solo(usize),
    Pack(Vec<usize>),
}

/// Shard the batch into units, driven by the registry's capabilities:
/// valid jobs whose backend advertises `pack_width > 1` are grouped by
/// `(backend, pack_key)` in first-appearance order and chunked into
/// packs of at most the backend's pack width (the tail pack simply
/// carries fewer active lanes); everything else — including *invalid*
/// packable jobs, which must surface their own typed error, and island
/// jobs, whose ring already owns its own lane streams — runs solo.
fn plan_units(jobs: &[GaJob]) -> Vec<Unit> {
    type PackGroup = ((BackendKind, (u8, u32)), usize, Vec<usize>);
    let mut units = Vec::new();
    let mut groups: Vec<PackGroup> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let pack_width = ga_engine::global()
            .get(job.backend)
            .map(|e| e.capabilities().pack_width)
            .unwrap_or(1);
        if pack_width > 1 && job.islands.is_none() && job.validate().is_ok() {
            let key = (job.backend, job.pack_key());
            match groups.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, _, members)) => members.push(i),
                None => groups.push((key, pack_width, vec![i])),
            }
        } else {
            units.push(Unit::Solo(i));
        }
    }
    for (_, pack_width, members) in groups {
        for chunk in lane_chunks(members.len(), pack_width) {
            units.push(Unit::Pack(members[chunk].to_vec()));
        }
    }
    units
}

fn exec_unit(jobs: &[GaJob], unit: &Unit, cfg: &ServeConfig) -> Vec<JobResult> {
    match unit {
        Unit::Solo(i) => {
            if let Some(hook) = cfg.pre_exec {
                hook(*i, &jobs[*i]);
            }
            vec![backend::run_single(&jobs[*i], *i, cfg)]
        }
        Unit::Pack(idxs) => {
            if let Some(hook) = cfg.pre_exec {
                for &i in idxs {
                    hook(i, &jobs[i]);
                }
            }
            backend::run_pack(jobs, idxs, cfg)
        }
    }
}

/// Recover a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// True when any member result failed with an error worth retrying
/// ([`ServeError::is_transient`]) — deterministic failures (invalid
/// job, unsupported width, deadline, watchdog) reproduce identically
/// and are never retried.
fn has_transient_failure(results: &[JobResult]) -> bool {
    results
        .iter()
        .any(|r| matches!(&r.outcome, Err(e) if e.is_transient()))
}

/// Run one unit at the pool boundary: a panic anywhere inside the unit
/// is caught, and both panics and typed transient failures are retried
/// per [`RetryPolicy`] (exponential backoff, since a transient fault
/// that just fired tends to need a beat to clear). If every attempt
/// crashes, the panic is converted into one typed
/// [`ServeError::Internal`] result per member job. The worker thread
/// itself never unwinds, so the rest of the batch keeps flowing.
pub(crate) fn exec_unit_with_recovery(
    jobs: &[GaJob],
    unit: &Unit,
    cfg: &ServeConfig,
) -> Vec<JobResult> {
    let max_attempts = cfg.retry.max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        match catch_unwind(AssertUnwindSafe(|| exec_unit(jobs, unit, cfg))) {
            Ok(results) => {
                if attempt < max_attempts && has_transient_failure(&results) {
                    let backoff = cfg.retry.backoff_ms << (attempt - 1);
                    if backoff > 0 {
                        thread::sleep(Duration::from_millis(backoff));
                    }
                    attempt += 1;
                    continue;
                }
                return results;
            }
            Err(payload) => {
                let msg = panic_message(payload);
                if attempt < max_attempts {
                    let backoff = cfg.retry.backoff_ms << (attempt - 1);
                    if backoff > 0 {
                        thread::sleep(Duration::from_millis(backoff));
                    }
                    attempt += 1;
                    continue;
                }
                let indices: &[usize] = match unit {
                    Unit::Solo(i) => std::slice::from_ref(i),
                    Unit::Pack(idxs) => idxs,
                };
                return indices
                    .iter()
                    .map(|&i| JobResult {
                        job: i,
                        backend: jobs[i].backend,
                        outcome: Err(ServeError::Internal { msg: msg.clone() }),
                        micros: 0,
                        degraded: None,
                        heal: None,
                    })
                    .collect();
            }
        }
    }
}

/// Execute a batch of jobs and return results **in input order**.
///
/// Planned units — solos and multi-lane packs alike — are distributed
/// over up to `cfg.threads` scoped workers by [`ga_bench::run_sweep`]'s
/// atomic claim loop: each worker pulls the next unclaimed unit index,
/// so independent packs execute concurrently instead of draining
/// serially behind one another. Results then scatter into a
/// slot-per-job table on the caller thread, so the output order is the
/// input order regardless of thread count, completion order, or how
/// jobs were packed. The pool size that actually ran, the wall time
/// spent inside pack units, and the batch's compiled-netlist cache
/// hit/miss deltas are all recorded in the returned [`ServeStats`].
pub fn serve_batch(jobs: &[GaJob], cfg: &ServeConfig) -> ServeOutcome {
    let sw = Stopwatch::start();
    let (cache_hits_before, cache_misses_before) = ga_engine::global_cache().counters();
    let units = plan_units(jobs);
    let mut stats = ServeStats::default();
    for u in &units {
        if let Unit::Pack(idxs) = u {
            stats.packs += 1;
            stats.packed_lanes += idxs.len() as u64;
        }
    }

    let threads = cfg.threads.clamp(1, units.len().max(1));
    stats.threads_used = threads as u64;

    let pack_micros = AtomicU64::new(0);
    let per_unit: Vec<Vec<JobResult>> = run_sweep(&units, threads, |_, unit| {
        let t = Instant::now();
        let produced = exec_unit_with_recovery(jobs, unit, cfg);
        if matches!(unit, Unit::Pack(_)) {
            pack_micros.fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
        produced
    });

    let mut slots: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
    for r in per_unit.into_iter().flatten() {
        let idx = r.job;
        debug_assert!(slots[idx].is_none(), "job {idx} produced twice");
        slots[idx] = Some(r);
    }

    // An unfilled slot is a service bug, but it must fail that job with
    // a typed error — not panic the caller after the batch already ran.
    let results: Vec<JobResult> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| JobResult {
                job: i,
                backend: jobs[i].backend,
                outcome: Err(ServeError::Internal {
                    msg: format!("job {i} produced no result"),
                }),
                micros: 0,
                degraded: None,
                heal: None,
            })
        })
        .collect();
    for r in &results {
        stats.absorb_result(r);
    }
    stats.pack_micros = pack_micros.into_inner();
    let (cache_hits_after, cache_misses_after) = ga_engine::global_cache().counters();
    stats.cache_hits = cache_hits_after.saturating_sub(cache_hits_before);
    stats.cache_misses = cache_misses_after.saturating_sub(cache_misses_before);
    stats.wall_seconds = sw.seconds();
    ServeOutcome { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ServeError;
    use ga_core::GaParams;
    use ga_fitness::TestFunction;

    fn quick_job(backend: BackendKind, seed: u16) -> GaJob {
        GaJob::new(TestFunction::F3, backend, GaParams::new(8, 3, 10, 1, seed))
    }

    #[test]
    fn results_are_input_ordered_for_any_thread_count() {
        let jobs: Vec<GaJob> = (0..30)
            .map(|i| {
                let b = match i % 3 {
                    0 => BackendKind::Behavioral,
                    1 => BackendKind::BitSim64,
                    _ => BackendKind::Behavioral,
                };
                quick_job(b, 0x1000 + i as u16)
            })
            .collect();
        let reference = serve_batch(
            &jobs,
            &ServeConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2, 8] {
            let out = serve_batch(
                &jobs,
                &ServeConfig {
                    threads,
                    ..Default::default()
                },
            );
            for (i, (a, b)) in reference.results.iter().zip(&out.results).enumerate() {
                assert_eq!(a.job, i);
                assert_eq!(b.job, i);
                assert_eq!(a.outcome, b.outcome, "job {i} differs at {threads} threads");
            }
        }
    }

    #[test]
    fn small_queue_capacity_still_completes() {
        // The legacy queue knob must stay accepted (it tunes the
        // streaming front-end, not the claim loop), and a batch with
        // far more units than threads must drain completely.
        let jobs: Vec<GaJob> = (0..25)
            .map(|i| quick_job(BackendKind::Behavioral, 0x2000 + i as u16))
            .collect();
        let out = serve_batch(
            &jobs,
            &ServeConfig {
                threads: 3,
                queue_capacity: 2,
                ..Default::default()
            },
        );
        assert_eq!(out.results.len(), 25);
        assert_eq!(out.stats.jobs(), 25);
        assert_eq!(out.stats.errors(), 0);
        assert_eq!(out.stats.threads_used, 3, "pool size is recorded");
    }

    #[test]
    fn reported_threads_are_the_clamped_pool_size() {
        // 2 units, 16 configured threads: only 2 workers can ever hold
        // a unit, and that is what the stats and the report must say.
        let jobs = vec![
            quick_job(BackendKind::Behavioral, 0x2100),
            quick_job(BackendKind::Behavioral, 0x2101),
        ];
        let out = serve_batch(
            &jobs,
            &ServeConfig {
                threads: 16,
                ..Default::default()
            },
        );
        assert_eq!(out.stats.threads_used, 2);
        let json = out.stats.to_report().to_json();
        assert!(json.contains("\"threads\": 2"), "honest threads in {json}");
    }

    #[test]
    fn packing_groups_by_key_and_honors_tails() {
        // 70 compatible bitsim jobs + 5 of another shape: 2 packs
        // (64 + 6 active lanes) + 1 pack of 5 → lanes counted as jobs,
        // not as packs × 64.
        let mut jobs: Vec<GaJob> = (0..70u16)
            .map(|i| quick_job(BackendKind::BitSim64, 0x3000 + i))
            .collect();
        for i in 0..5u16 {
            jobs.push(GaJob::new(
                TestFunction::F2,
                BackendKind::BitSim64,
                GaParams::new(16, 2, 10, 1, 0x4000 + i),
            ));
        }
        let out = serve_batch(&jobs, &ServeConfig::default());
        assert_eq!(out.stats.packs, 3);
        assert_eq!(out.stats.packed_lanes, 75);
        assert_eq!(out.stats.counters(BackendKind::BitSim64).jobs, 75);
        assert_eq!(out.stats.errors(), 0);
        // The pack path ran, so its metrics must be live: nonzero pack
        // wall time, a finite throughput, and one compiled-netlist
        // cache lookup per pack (hit or miss — the cache is
        // process-global, so other tests may have warmed it).
        assert!(out.stats.pack_micros > 0);
        assert!(out.stats.pack_jobs_per_sec() > 0.0);
        assert!(out.stats.cache_hits + out.stats.cache_misses >= out.stats.packs);
    }

    #[test]
    fn wide_backends_pack_beyond_64_lanes() {
        // 200 compatible bitsim256 jobs fit one 256-lane pack; the same
        // load on bitsim128 takes two packs (128 + 72 active lanes).
        for (backend, want_packs) in [(BackendKind::BitSim256, 1), (BackendKind::BitSim128, 2)] {
            let jobs: Vec<GaJob> = (0..200u16)
                .map(|i| quick_job(backend, 0x9000 + i))
                .collect();
            let out = serve_batch(&jobs, &ServeConfig::default());
            assert_eq!(out.stats.packs, want_packs, "{}", backend.name());
            assert_eq!(out.stats.packed_lanes, 200);
            assert_eq!(out.stats.counters(backend).jobs, 200);
            assert_eq!(out.stats.errors(), 0);
        }
    }

    #[test]
    fn every_registered_backend_serves_in_one_batch() {
        // One job per registered kind, each at a width its backend
        // implements — the batch must come back fully green with every
        // backend's counter row populated and present in the report.
        let jobs: Vec<GaJob> = ga_engine::global()
            .engines()
            .enumerate()
            .map(|(i, e)| GaJob {
                width: e.capabilities().widths[0],
                ..quick_job(e.kind(), 0x8000 + i as u16)
            })
            .collect();
        assert_eq!(jobs.len(), BackendKind::ALL.len());
        let out = serve_batch(&jobs, &ServeConfig::default());
        assert_eq!(out.stats.errors(), 0);
        let json = out.stats.to_report().to_json();
        for kind in ga_engine::global().kinds() {
            assert_eq!(out.stats.counters(kind).jobs, 1, "{}", kind.name());
            for key in [
                format!("\"{}_jobs\"", kind.name()),
                format!("\"{}_avg_us\"", kind.name()),
            ] {
                assert!(json.contains(&key), "missing {key} in {json}");
            }
        }
    }

    #[test]
    fn island_jobs_run_solo_even_on_packing_backends() {
        // A valid bitsim island job must never join a lockstep pack —
        // the ring owns its own extracted lane streams — while the
        // plain bitsim jobs around it still pack as usual.
        let island = GaJob::new(
            TestFunction::Bf6,
            BackendKind::BitSim64,
            GaParams::new(16, 8, 10, 1, 0x2961),
        )
        .with_islands(ga_core::islands::IslandConfig {
            islands: 2,
            epoch: 4,
            epochs: 2,
        });
        let mut jobs = vec![island];
        for i in 0..4u16 {
            jobs.push(quick_job(BackendKind::BitSim64, 0xD000 + i));
        }
        let out = serve_batch(&jobs, &ServeConfig::default());
        assert_eq!(out.stats.errors(), 0);
        assert_eq!(out.stats.packs, 1, "plain jobs still pack");
        assert_eq!(out.stats.packed_lanes, 4, "the island job stayed solo");
        assert!(out.results[0].outcome.is_ok(), "island job ran");
    }

    #[test]
    fn invalid_jobs_error_without_poisoning_the_batch() {
        let mut jobs = vec![
            quick_job(BackendKind::Behavioral, 1),
            quick_job(BackendKind::BitSim64, 2),
        ];
        jobs[1].params.pop_size = 0; // invalid → solo unit, typed error
        let mut wide = quick_job(BackendKind::Behavioral, 3);
        wide.width = 32;
        jobs.push(wide);
        let out = serve_batch(&jobs, &ServeConfig::default());
        assert!(out.results[0].outcome.is_ok());
        assert!(matches!(
            out.results[1].outcome,
            Err(ServeError::InvalidJob { .. })
        ));
        assert_eq!(
            out.results[2].outcome,
            Err(ServeError::UnsupportedWidth { width: 32 })
        );
        assert_eq!(out.stats.errors(), 2);
        assert_eq!(out.stats.packs, 0, "invalid bitsim jobs never pack");
    }

    /// Chaos hook: crash every attempt of the job seeded 0x5005.
    fn crash_seed_5005(i: usize, job: &GaJob) {
        if job.params.seed == 0x5005 {
            panic!("injected chaos for job {i}");
        }
    }

    #[test]
    fn panicking_job_fails_alone_and_batch_stays_input_ordered() {
        let jobs: Vec<GaJob> = (0..8)
            .map(|i| quick_job(BackendKind::Behavioral, 0x5000 + i as u16))
            .collect();
        let out = serve_batch(
            &jobs,
            &ServeConfig {
                threads: 4,
                pre_exec: Some(crash_seed_5005),
                retry: RetryPolicy {
                    max_attempts: 2,
                    backoff_ms: 0,
                },
                ..Default::default()
            },
        );
        assert_eq!(out.results.len(), jobs.len());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.job, i, "input order survives a crashing worker");
            if jobs[i].params.seed == 0x5005 {
                assert!(
                    matches!(&r.outcome,
                        Err(ServeError::Internal { msg }) if msg.contains("injected chaos")),
                    "crashing job carries the recovered panic message"
                );
            } else {
                assert!(r.outcome.is_ok(), "job {i} must be unaffected");
            }
        }
        assert_eq!(out.stats.errors(), 1);
    }

    /// Chaos hook: crash the job seeded 0x6003, but only the first time
    /// it is attempted — a transient fault the retry policy can absorb.
    fn crash_seed_6003_once(_i: usize, job: &GaJob) {
        use std::sync::atomic::{AtomicBool, Ordering};
        static FIRED: AtomicBool = AtomicBool::new(false);
        if job.params.seed == 0x6003 && !FIRED.swap(true, Ordering::SeqCst) {
            panic!("transient fault");
        }
    }

    #[test]
    fn transient_panic_is_retried_to_success() {
        let jobs: Vec<GaJob> = (0..4)
            .map(|i| quick_job(BackendKind::Behavioral, 0x6000 + i as u16))
            .collect();
        let out = serve_batch(
            &jobs,
            &ServeConfig {
                threads: 2,
                pre_exec: Some(crash_seed_6003_once),
                retry: RetryPolicy {
                    max_attempts: 2,
                    backoff_ms: 1,
                },
                ..Default::default()
            },
        );
        assert_eq!(out.stats.errors(), 0, "one retry absorbs a one-shot fault");
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.job, i);
            assert!(r.outcome.is_ok());
        }
    }

    #[test]
    fn only_transient_errors_qualify_for_retry() {
        let result = |outcome| JobResult {
            job: 0,
            backend: BackendKind::Behavioral,
            outcome,
            micros: 0,
            degraded: None,
            heal: None,
        };
        assert!(has_transient_failure(&[result(Err(
            ServeError::Internal {
                msg: "poisoned".into()
            }
        ))]));
        // Deterministic failures reproduce identically — no retry.
        assert!(!has_transient_failure(&[
            result(Err(ServeError::InvalidJob {
                msg: "pop 0".into()
            })),
            result(Err(ServeError::Watchdog { cycles: 7 })),
            result(Err(ServeError::DeadlineExceeded)),
        ]));
        assert!(!has_transient_failure(&[]));
    }

    #[test]
    fn bitsim_watchdog_degrades_lanes_without_disturbing_the_batch() {
        // Mixed batch: bitsim jobs (which will pack) interleaved with
        // behavioral twins of the same parameters. With the step
        // watchdog set far below the needed draw count, every bitsim
        // lane must come back as a *successful* behavioral answer with
        // typed degradation metadata — and match its twin exactly —
        // while the native behavioral jobs are untouched.
        let mut jobs = Vec::new();
        for i in 0..6u16 {
            jobs.push(quick_job(BackendKind::BitSim64, 0x7000 + i));
            jobs.push(quick_job(BackendKind::Behavioral, 0x7000 + i));
        }
        let out = serve_batch(
            &jobs,
            &ServeConfig {
                bitsim_watchdog_steps: 4,
                ..Default::default()
            },
        );
        assert_eq!(out.stats.errors(), 0, "degradation is not failure");
        assert_eq!(out.stats.degraded, 6);
        for pair in out.results.chunks(2) {
            let (bit, beh) = (&pair[0], &pair[1]);
            assert_eq!(bit.backend, BackendKind::Behavioral, "fallback executed");
            let d = bit.degraded.as_ref().expect("degradation is surfaced");
            assert_eq!(d.from, BackendKind::BitSim64);
            assert_eq!(d.reason, ServeError::Watchdog { cycles: 4 });
            assert_eq!(beh.degraded, None, "native jobs carry no metadata");
            assert_eq!(bit.outcome, beh.outcome, "fallback answer is exact");
        }
        let json = out.stats.to_report().to_json();
        assert!(json.contains("\"degraded_jobs\": 6"), "missing in {json}");
    }

    #[test]
    fn report_carries_the_serve_schema() {
        let jobs = vec![quick_job(BackendKind::BitSim64, 9)];
        let out = serve_batch(&jobs, &ServeConfig::default());
        let json = out.stats.to_report().to_json();
        for key in [
            "\"name\": \"serve\"",
            "jobs_per_sec",
            "bitsim_packs",
            "bitsim_active_lanes",
            "bitsim_pack_jobs_per_sec",
            "netlist_cache_hits",
            "netlist_cache_misses",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn histo_buckets_are_exact_small_then_bounded_log_error() {
        // Exact below 16 µs.
        for v in 0..16u64 {
            assert_eq!(LatencyHisto::index(v), v as usize);
            assert_eq!(LatencyHisto::lower_bound(v as usize), v);
        }
        // Index is monotone and lower_bound inverts it: every value
        // lands in a bucket whose lower bound is <= it, and the next
        // bucket's lower bound exceeds it by at most 25%.
        for v in [16u64, 17, 63, 64, 100, 1000, 12_345, 1 << 20, u64::MAX] {
            let i = LatencyHisto::index(v);
            let lo = LatencyHisto::lower_bound(i);
            assert!(lo <= v, "bucket {i} lower bound {lo} > value {v}");
            if i + 1 < HISTO_BUCKETS && v < (1u64 << HISTO_LAST_OCTAVE) {
                let next = LatencyHisto::lower_bound(i + 1);
                assert!(next > v, "value {v} not below next bucket {next}");
                assert!(
                    (next - lo) * 4 <= lo.max(1) + 3,
                    "bucket [{lo},{next}) wider than 25% at {v}"
                );
            }
        }
        // Monotone across the whole bucket range.
        for i in 1..HISTO_BUCKETS {
            assert!(LatencyHisto::lower_bound(i) > LatencyHisto::lower_bound(i - 1));
        }
    }

    #[test]
    fn histo_percentiles_are_ordered_and_exact_for_small_samples() {
        let mut h = LatencyHisto::default();
        assert_eq!(h.percentile(0.5), 0, "empty histogram reports 0");
        // 100 samples: 1 µs x90, 10 µs x9, 15 µs x1 — all in the exact
        // range, so every percentile is the precise sample value.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(10);
        }
        h.record(15);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.50), 1);
        assert_eq!(h.percentile(0.90), 1);
        assert_eq!(h.percentile(0.95), 10);
        assert_eq!(h.percentile(0.99), 10);
        assert_eq!(h.percentile(1.0), 15);
        // Ordering holds with coarse buckets too.
        h.record(1_000_000);
        assert!(h.percentile(0.5) <= h.percentile(0.95));
        assert!(h.percentile(0.95) <= h.percentile(0.99));
        assert!(h.percentile(0.99) <= h.percentile(1.0));
    }

    #[test]
    fn histo_merge_equals_combined_recording() {
        let samples_a = [1u64, 5, 90, 4_000, 65_536];
        let samples_b = [2u64, 90, 123_456, 7];
        let mut a = LatencyHisto::default();
        let mut b = LatencyHisto::default();
        let mut both = LatencyHisto::default();
        for &v in &samples_a {
            a.record(v);
            both.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both, "merge must equal recording into one");
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.percentile(q), both.percentile(q));
        }
    }

    #[test]
    fn report_emits_percentiles_and_max_for_every_backend() {
        // The regression this pins: `max_micros` used to be accumulated
        // but silently dropped from the report; now every backend block
        // carries the full `_jobs/_avg_us/_p50_us/_p95_us/_p99_us/
        // _max_us` sextet.
        let jobs: Vec<GaJob> = (0..6)
            .map(|i| quick_job(BackendKind::Behavioral, 0xA000 + i as u16))
            .collect();
        let out = serve_batch(&jobs, &ServeConfig::default());
        let json = out.stats.to_report().to_json();
        for kind in ga_engine::global().kinds() {
            for suffix in ["jobs", "avg_us", "p50_us", "p95_us", "p99_us", "max_us"] {
                let key = format!("\"{}_{suffix}\"", kind.name());
                assert!(json.contains(&key), "missing {key} in {json}");
            }
        }
        // The behavioral block is live: max is the recorded maximum and
        // bounds the histogram percentiles from above.
        let c = out.stats.counters(BackendKind::Behavioral);
        assert_eq!(c.jobs, 6);
        assert_eq!(c.histo.count(), 6);
        assert!(c.max_micros >= c.histo.percentile(0.99));
        assert!(c.histo.percentile(0.50) <= c.histo.percentile(0.95));
        let max_key = format!("\"behavioral_max_us\": {}", c.max_micros);
        assert!(json.contains(&max_key), "missing {max_key} in {json}");
    }

    #[test]
    fn metric_order_is_registry_order_even_when_degraded_target_runs_first() {
        // A degraded bitsim job makes the *behavioral* fallback the
        // first backend to absorb a result; a batch whose only native
        // jobs are late-registry kinds then exercises counters_mut on
        // kinds out of registry sequence. The emitted metric order must
        // still be the registry order.
        let jobs = vec![
            quick_job(BackendKind::BitSim64, 0xB001), // degrades to behavioral
            quick_job(BackendKind::Swga, 0xB002),
            quick_job(BackendKind::Behavioral, 0xB003),
        ];
        let out = serve_batch(
            &jobs,
            &ServeConfig {
                bitsim_watchdog_steps: 4, // force the degradation
                ..Default::default()
            },
        );
        assert_eq!(out.stats.degraded, 1, "bitsim job must degrade first");
        let json = out.stats.to_report().to_json();
        let positions: Vec<usize> = ga_engine::global()
            .kinds()
            .iter()
            .map(|k| {
                json.find(&format!("\"{}_jobs\"", k.name()))
                    .unwrap_or_else(|| panic!("{} missing from report", k.name()))
            })
            .collect();
        for w in positions.windows(2) {
            assert!(
                w[0] < w[1],
                "backend metric blocks out of registry order in {json}"
            );
        }
        // Same contract on a *merged* stats block assembled in reverse.
        let mut merged = ServeStats::default();
        merged.per_backend.clear(); // worst case: no pre-populated slots
        merged.merge(&out.stats);
        let kinds_in_order: Vec<BackendKind> = merged.per_backend.iter().map(|(k, _)| *k).collect();
        let mut sorted = kinds_in_order.clone();
        sorted.sort_by_key(|k| ServeStats::registry_rank(*k));
        assert_eq!(kinds_in_order, sorted, "merge must keep registry order");
    }

    #[test]
    fn merge_sums_counters_and_keeps_identity_fields() {
        let jobs_a = vec![quick_job(BackendKind::Behavioral, 0xC001)];
        let jobs_b: Vec<GaJob> = (0..3)
            .map(|i| quick_job(BackendKind::BitSim64, 0xC100 + i as u16))
            .collect();
        let a = serve_batch(&jobs_a, &ServeConfig::default()).stats;
        let b = serve_batch(&jobs_b, &ServeConfig::default()).stats;
        let mut m = a.clone();
        m.threads_used = 7;
        m.wall_seconds = 1.25;
        m.merge(&b);
        assert_eq!(m.jobs(), a.jobs() + b.jobs());
        assert_eq!(
            m.counters(BackendKind::BitSim64).jobs,
            b.counters(BackendKind::BitSim64).jobs
        );
        assert_eq!(m.packs, a.packs + b.packs);
        assert_eq!(m.packed_lanes, a.packed_lanes + b.packed_lanes);
        assert_eq!(m.threads_used, 7, "identity fields are the owner's");
        assert_eq!(m.wall_seconds, 1.25);
        let c = m.counters(BackendKind::Behavioral);
        assert_eq!(
            c.histo.count(),
            a.counters(BackendKind::Behavioral).histo.count()
                + b.counters(BackendKind::Behavioral).histo.count()
        );
    }
}
