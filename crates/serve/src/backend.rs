//! Backend runners: one function per engine, all returning the same
//! [`JobOutput`] shape so the service layer is engine-agnostic.

use std::time::Instant;

use carng::{CaRng, Rng16};
use ga_core::behavioral::GaRun;
use ga_core::{GaEngine, GaSystem};
use ga_fitness::{FemBank, FemSlot, LookupFem};
use hwsim::{Deadline, SimError};

use crate::job::{BackendKind, Degradation, GaJob, JobOutput, JobResult, ServeError};
use crate::pack::{draws_per_run, try_ca_lane_streams, StreamRng};
use crate::service::ServeConfig;

/// Fitness evaluations one full run consumes: the initial population
/// plus `pop − 1` offspring per generation (the elite slot is copied,
/// not re-evaluated). Used for the RTL backend, which does not count
/// evaluations itself.
pub fn evaluations_for(p: &ga_core::GaParams) -> u64 {
    p.pop_size as u64 + p.n_gens as u64 * (p.pop_size as u64 - 1)
}

/// Run one job on its selected backend, returning the full result (the
/// executing backend can differ from the requested one when the bitsim
/// netlist watchdog trips and the job degrades to the behavioral
/// engine). Validation happens here, so an out-of-range job becomes a
/// typed error result, never a panic.
pub fn run_single(job: &GaJob, i: usize, cfg: &ServeConfig) -> JobResult {
    let t = Instant::now();
    let (backend, outcome, degraded) = match job.validate() {
        Err(e) => (job.backend, Err(e), None),
        Ok(()) => match job.backend {
            BackendKind::Behavioral => (
                job.backend,
                run_engine(job, CaRng::new(job.params.seed)),
                None,
            ),
            BackendKind::RtlInterp => (job.backend, run_rtl(job, cfg.rtl_watchdog_cycles), None),
            BackendKind::BitSim64 => {
                // A solo bitsim job is a pack of one: the lane stream
                // still comes from the compiled netlist, not `CaRng`.
                let draws = draws_per_run(&job.params) as usize;
                match try_ca_lane_streams(&[job.params.seed], draws, cfg.bitsim_watchdog_steps) {
                    Ok(mut streams) => {
                        let stream = streams.pop().expect("one lane requested");
                        (job.backend, run_engine(job, StreamRng::new(stream)), None)
                    }
                    Err(steps) => degrade_to_behavioral(job, steps),
                }
            }
        },
    };
    JobResult {
        job: i,
        backend,
        outcome,
        micros: t.elapsed().as_micros() as u64,
        degraded,
    }
}

/// Graceful degradation: the bitsim64 netlist watchdog tripped, so the
/// job is answered by the behavioral reference engine instead, with the
/// switch surfaced as typed [`Degradation`] metadata rather than a
/// failed result.
fn degrade_to_behavioral(
    job: &GaJob,
    watchdog_steps: u64,
) -> (
    BackendKind,
    Result<JobOutput, ServeError>,
    Option<Degradation>,
) {
    (
        BackendKind::Behavioral,
        run_engine(job, CaRng::new(job.params.seed)),
        Some(Degradation {
            from: BackendKind::BitSim64,
            reason: ServeError::Watchdog {
                cycles: watchdog_steps,
            },
        }),
    )
}

/// Run a pack of *validated, compatible* bitsim jobs (`idxs` index into
/// `all`; at most 64, all sharing one [`GaJob::pack_key`]): one
/// lockstep netlist run extracts every lane's RNG stream, then each
/// lane finishes as an independent engine run. Per-job latency charges
/// each job its own engine time plus an even share of the shared
/// stream-extraction time. If the netlist watchdog refuses the
/// extraction, every lane degrades to the behavioral backend.
pub fn run_pack(all: &[GaJob], idxs: &[usize], cfg: &ServeConfig) -> Vec<JobResult> {
    debug_assert!(!idxs.is_empty());
    let draws = draws_per_run(&all[idxs[0]].params) as usize;
    let seeds: Vec<u16> = idxs.iter().map(|&i| all[i].params.seed).collect();
    let t = Instant::now();
    let streams = match try_ca_lane_streams(&seeds, draws, cfg.bitsim_watchdog_steps) {
        Ok(streams) => streams,
        Err(steps) => {
            return idxs
                .iter()
                .map(|&i| {
                    let t = Instant::now();
                    let (backend, outcome, degraded) = degrade_to_behavioral(&all[i], steps);
                    JobResult {
                        job: i,
                        backend,
                        outcome,
                        micros: t.elapsed().as_micros() as u64,
                        degraded,
                    }
                })
                .collect();
        }
    };
    let shared_micros = t.elapsed().as_micros() as u64 / idxs.len() as u64;

    idxs.iter()
        .zip(streams)
        .map(|(&i, stream)| {
            let t = Instant::now();
            let outcome = run_engine(&all[i], StreamRng::new(stream));
            JobResult {
                job: i,
                backend: BackendKind::BitSim64,
                outcome,
                micros: shared_micros + t.elapsed().as_micros() as u64,
                degraded: None,
            }
        })
        .collect()
}

/// The behavioral loop shared by the `Behavioral` and `BitSim64`
/// backends (they differ only in where the RNG stream comes from). The
/// deadline is checked between generations, so an in-flight generation
/// always completes.
fn run_engine<R: Rng16>(job: &GaJob, rng: R) -> Result<JobOutput, ServeError> {
    let params = job.params;
    let f = job.function;
    let mut deadline = job.deadline_ms.map(Deadline::after_ms);
    let mut engine = GaEngine::new(params, rng, move |c| f.eval_u16(c));
    let mut history = Vec::with_capacity(params.n_gens as usize + 1);
    history.push(engine.init_population());
    for _ in 0..params.n_gens {
        if let Some(d) = deadline.as_mut() {
            if d.is_past() {
                return Err(ServeError::DeadlineExceeded);
            }
        }
        history.push(engine.step_generation());
    }
    let best = engine.best();
    let evaluations = engine.evaluations();
    let run = GaRun {
        best,
        history,
        evaluations,
        rng_draws: engine.rng_draws(),
    };
    Ok(JobOutput {
        best,
        generations: params.n_gens,
        evaluations,
        conv_gen: run.convergence_generation(),
        cycles: None,
    })
}

/// The cycle-accurate backend: program the hardware system through the
/// initialization handshake and run to `GA_done` under both a
/// simulated-cycle watchdog and the job's wall-clock deadline.
fn run_rtl(job: &GaJob, watchdog_cycles: u64) -> Result<JobOutput, ServeError> {
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(job.function),
    )]));
    sys.program(&job.params);
    let mut deadline = job.deadline_ms.map(Deadline::after_ms);
    let run = sys
        .run_with_deadline(watchdog_cycles, deadline.as_mut())
        .map_err(|e| match e {
            SimError::Timeout { cycles } => ServeError::Watchdog { cycles },
            SimError::DeadlineExceeded { .. } => ServeError::DeadlineExceeded,
        })?;
    Ok(JobOutput {
        best: run.best,
        generations: job.params.n_gens,
        evaluations: evaluations_for(&job.params),
        conv_gen: run.as_ga_run().convergence_generation(),
        cycles: Some(run.cycles),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_core::GaParams;
    use ga_fitness::TestFunction;

    fn run(job: &GaJob) -> Result<JobOutput, ServeError> {
        run_single(job, 0, &ServeConfig::default()).outcome
    }

    #[test]
    fn behavioral_and_bitsim_agree_exactly() {
        let params = GaParams::new(16, 6, 10, 1, 0x2961);
        let beh = GaJob::new(TestFunction::Bf6, BackendKind::Behavioral, params);
        let bit = GaJob::new(TestFunction::Bf6, BackendKind::BitSim64, params);
        let a = run(&beh).expect("behavioral runs");
        let b = run(&bit).expect("bitsim runs");
        assert_eq!(a, b, "netlist-streamed lane must match the reference RNG");
    }

    #[test]
    fn rtl_reports_cycles_and_matching_best() {
        let params = GaParams::new(8, 4, 10, 1, 0x061F);
        let rtl = GaJob::new(TestFunction::F3, BackendKind::RtlInterp, params);
        let beh = GaJob::new(TestFunction::F3, BackendKind::Behavioral, params);
        let r = run(&rtl).expect("rtl runs");
        let b = run(&beh).expect("behavioral runs");
        assert!(r.cycles.expect("rtl reports cycles") > 0);
        assert_eq!(r.best, b.best, "engines must agree on the answer");
        assert_eq!(r.evaluations, b.evaluations, "evaluation formula");
    }

    #[test]
    fn zero_deadline_cancels_each_backend() {
        let params = GaParams::new(8, 4, 10, 1, 0xB342);
        for backend in BackendKind::ALL {
            let job = GaJob::new(TestFunction::F2, backend, params).with_deadline_ms(0);
            assert_eq!(
                run(&job),
                Err(ServeError::DeadlineExceeded),
                "{} must honor a 0 ms deadline",
                backend.name()
            );
        }
    }

    #[test]
    fn rtl_watchdog_is_typed() {
        let params = GaParams::new(8, 4, 10, 1, 0xB342);
        let job = GaJob::new(TestFunction::F2, BackendKind::RtlInterp, params);
        let cfg = ServeConfig {
            rtl_watchdog_cycles: 10,
            ..Default::default()
        };
        assert!(matches!(
            run_single(&job, 0, &cfg).outcome,
            Err(ServeError::Watchdog { cycles: 10 })
        ));
    }

    #[test]
    fn invalid_params_fail_validation_not_panic() {
        let mut job = GaJob::new(
            TestFunction::F2,
            BackendKind::Behavioral,
            GaParams::default(),
        );
        job.params.n_gens = 0;
        assert!(matches!(run(&job), Err(ServeError::InvalidJob { .. })));
    }

    #[test]
    fn bitsim_watchdog_degrades_solo_jobs_to_behavioral() {
        let params = GaParams::new(16, 6, 10, 1, 0x2961);
        let bit = GaJob::new(TestFunction::Bf6, BackendKind::BitSim64, params);
        let beh = GaJob::new(TestFunction::Bf6, BackendKind::Behavioral, params);
        let cfg = ServeConfig {
            bitsim_watchdog_steps: 4, // far below the needed draw count
            ..Default::default()
        };
        let r = run_single(&bit, 7, &cfg);
        assert_eq!(r.job, 7);
        assert_eq!(r.backend, BackendKind::Behavioral, "executed by fallback");
        assert_eq!(
            r.degraded,
            Some(Degradation {
                from: BackendKind::BitSim64,
                reason: ServeError::Watchdog { cycles: 4 },
            })
        );
        // The degraded answer is the behavioral answer, not a failure.
        assert_eq!(r.outcome, run(&beh), "fallback result matches behavioral");
    }
}
