//! Backend dispatch: every job goes through the engine registry
//! (`ga_engine::global`), so this module contains **no per-engine drive
//! loops** — it admits a job against the registered backend's
//! capabilities, runs it under the service's [`ga_engine::Limits`], and
//! applies the generic degradation policy: an *infrastructure* failure
//! (watchdog) on an engine that declares a
//! [`ga_engine::Capabilities::degrades_to`] edge is re-answered by the
//! fallback engine with typed [`Degradation`] metadata instead of
//! failing the job.

use std::time::Instant;

use ga_core::islands::IslandConfig;
use ga_engine::{global, EngineError, IslandsEngine, Limits, Prepared};

use crate::job::{
    BackendKind, Degradation, GaJob, HealReport, JobOutput, JobResult, ServeError, Workload,
};
use crate::service::ServeConfig;

/// The healing summary for a settled outcome: present iff the job was
/// a heal job and the run (native or degraded) completed.
fn heal_report(job: &GaJob, outcome: &Result<JobOutput, ServeError>) -> Option<HealReport> {
    match (job.workload, outcome) {
        (Workload::VrcHeal { .. }, Ok(o)) => Some(HealReport::from_outcome(o)),
        _ => None,
    }
}

/// Fitness evaluations one full run consumes. Delegates to the single
/// source of truth, [`ga_core::GaParams::evaluations_per_run`]; kept as
/// a named re-export because the serve tests and docs reason about the
/// service in terms of this formula.
pub fn evaluations_for(p: &ga_core::GaParams) -> u64 {
    p.evaluations_per_run()
}

/// The engine-layer budgets this service runs under.
fn limits(cfg: &ServeConfig) -> Limits {
    Limits {
        sim_watchdog_cycles: cfg.rtl_watchdog_cycles,
        stream_watchdog_steps: cfg.bitsim_watchdog_steps,
    }
}

/// Run one job on its selected backend, returning the full result (the
/// executing backend can differ from the requested one when an
/// infrastructure watchdog trips and the engine declares a degradation
/// edge). Validation happens here, so an out-of-range job becomes a
/// typed error result, never a panic.
pub fn run_single(job: &GaJob, i: usize, cfg: &ServeConfig) -> JobResult {
    let t = Instant::now();
    let engine = global().get(job.backend).expect("all kinds registered");
    let (backend, outcome, degraded) = match job.islands {
        // Island jobs run the ring composite over the backend's
        // stepping handle; they never degrade — a refusal (non-stepping
        // backend, schedule mismatch) is a deterministic typed error.
        Some(cfg_islands) => (job.backend, run_islands(job, cfg_islands), None),
        None => match engine.prepare(job.spec()) {
            Err(e) => (job.backend, Err(e.into()), None),
            Ok(p) => settle(job, engine.run(&p, &limits(cfg)), cfg),
        },
    };
    let heal = heal_report(job, &outcome);
    JobResult {
        job: i,
        backend,
        outcome,
        micros: t.elapsed().as_micros() as u64,
        degraded,
        heal,
    }
}

/// Execute an island job: the ring-migration composite
/// ([`ga_engine::IslandsEngine`]) over the requested backend, folded
/// into the standard [`JobOutput`] shape — the ring-wide best, the
/// summed evaluations, the full `epoch × epochs` generation budget.
/// Per-generation trajectory and convergence metrics are per-island
/// quantities and are deliberately absent from the aggregate.
fn run_islands(job: &GaJob, config: IslandConfig) -> Result<JobOutput, ServeError> {
    job.validate()?;
    let engine = global().get(job.backend).expect("all kinds registered");
    let ring = IslandsEngine::new(engine, config).map_err(ServeError::from)?;
    let run = ring.run(job.spec()).map_err(ServeError::from)?;
    Ok(JobOutput {
        best_chrom: run.best.chrom as u32,
        best_fitness: run.best.fitness,
        generations: job.params.n_gens,
        evaluations: run.evaluations,
        conv_gen: None,
        cycles: None,
        rng_draws: None,
        trajectory: Vec::new(),
    })
}

/// Fold an engine result into the service's (backend, outcome,
/// degradation) triple, applying the capability-driven fallback: only
/// [`EngineError::is_infrastructure`] failures degrade, and only along
/// the requested engine's declared edge.
fn settle(
    job: &GaJob,
    result: Result<JobOutput, EngineError>,
    cfg: &ServeConfig,
) -> (
    BackendKind,
    Result<JobOutput, ServeError>,
    Option<Degradation>,
) {
    match result {
        Ok(o) => (job.backend, Ok(o), None),
        Err(e) => {
            let caps = global()
                .get(job.backend)
                .expect("all kinds registered")
                .capabilities();
            match caps.degrades_to.filter(|_| e.is_infrastructure()) {
                None => (job.backend, Err(e.into()), None),
                Some(to) => {
                    let fallback = global().get(to).expect("fallback engine registered");
                    let outcome = fallback
                        .prepare(job.spec())
                        .and_then(|p| fallback.run(&p, &limits(cfg)))
                        .map_err(ServeError::from);
                    (
                        to,
                        outcome,
                        Some(Degradation {
                            from: job.backend,
                            reason: e.into(),
                        }),
                    )
                }
            }
        }
    }
}

/// Run a pack of *validated, compatible* jobs (`idxs` index into `all`;
/// at most the engine's pack width, all sharing one
/// [`GaJob::pack_key`]): one [`ga_engine::Engine::run_pack`] invocation
/// shares the lockstep work across lanes. Per-job latency charges each
/// job an even share of the shared pack time plus its own settling
/// time. If the engine fails a lane on infrastructure, that lane
/// degrades along the engine's declared edge like any solo job.
pub fn run_pack(all: &[GaJob], idxs: &[usize], cfg: &ServeConfig) -> Vec<JobResult> {
    debug_assert!(!idxs.is_empty());
    let kind = all[idxs[0]].backend;
    debug_assert!(idxs.iter().all(|&i| all[i].backend == kind));
    let engine = global().get(kind).expect("all kinds registered");
    let t = Instant::now();
    let prepared: Vec<Prepared> = idxs
        .iter()
        .map(|&i| {
            engine
                .prepare(all[i].spec())
                .expect("packed jobs pre-validated")
        })
        .collect();
    let outcomes = engine.run_pack(&prepared, &limits(cfg));
    let shared_micros = t.elapsed().as_micros() as u64 / idxs.len() as u64;

    idxs.iter()
        .zip(outcomes)
        .map(|(&i, result)| {
            let t = Instant::now();
            let (backend, outcome, degraded) = settle(&all[i], result, cfg);
            let heal = heal_report(&all[i], &outcome);
            JobResult {
                job: i,
                backend,
                outcome,
                micros: shared_micros + t.elapsed().as_micros() as u64,
                degraded,
                heal,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_core::GaParams;
    use ga_fitness::TestFunction;

    fn run(job: &GaJob) -> Result<JobOutput, ServeError> {
        run_single(job, 0, &ServeConfig::default()).outcome
    }

    #[test]
    fn evaluation_formula_is_the_params_contract() {
        // The dedicated helper must stay a pure delegation to
        // GaParams::evaluations_per_run — the one formula everything
        // (serve, engines, bench) shares.
        for (pop, gens) in [(2u8, 1u32), (8, 3), (16, 6), (128, 512)] {
            let p = GaParams::new(pop, gens, 10, 1, 1);
            assert_eq!(evaluations_for(&p), p.evaluations_per_run());
            assert_eq!(
                evaluations_for(&p),
                pop as u64 + gens as u64 * (pop as u64 - 1)
            );
        }
    }

    #[test]
    fn behavioral_and_bitsim_agree_exactly() {
        let params = GaParams::new(16, 6, 10, 1, 0x2961);
        let beh = GaJob::new(TestFunction::Bf6, BackendKind::Behavioral, params);
        let bit = GaJob::new(TestFunction::Bf6, BackendKind::BitSim64, params);
        let a = run(&beh).expect("behavioral runs");
        let b = run(&bit).expect("bitsim runs");
        assert_eq!(a, b, "netlist-streamed lane must match the reference RNG");
    }

    #[test]
    fn rtl_reports_cycles_and_matching_best() {
        let params = GaParams::new(8, 4, 10, 1, 0x061F);
        let rtl = GaJob::new(TestFunction::F3, BackendKind::RtlInterp, params);
        let beh = GaJob::new(TestFunction::F3, BackendKind::Behavioral, params);
        let r = run(&rtl).expect("rtl runs");
        let b = run(&beh).expect("behavioral runs");
        assert!(r.cycles.expect("rtl reports cycles") > 0);
        assert_eq!(
            (r.best_chrom, r.best_fitness),
            (b.best_chrom, b.best_fitness),
            "engines must agree on the answer"
        );
        assert_eq!(r.evaluations, b.evaluations, "evaluation formula");
    }

    #[test]
    fn rtl32_serves_width32_jobs() {
        let params = GaParams::new(8, 4, 10, 1, 0x2961);
        let job = GaJob::new32(TestFunction::F3, params);
        let r = run_single(&job, 0, &ServeConfig::default());
        assert_eq!(r.backend, BackendKind::Rtl32);
        let o = r.outcome.expect("rtl32 runs");
        assert!(o.cycles.expect("rtl32 reports cycles") > 0);
        assert_eq!(o.evaluations, params.evaluations_per_run());
        assert!(o.best_chrom > u16::MAX as u32, "a real 32-bit answer");
    }

    #[test]
    fn zero_deadline_cancels_each_backend() {
        let params = GaParams::new(8, 4, 10, 1, 0xB342);
        for backend in BackendKind::ALL {
            // Aim each job at a width its backend actually implements,
            // so the deadline — not the width gate — is what fires.
            let width = ga_engine::global()
                .get(backend)
                .expect("registered")
                .capabilities()
                .widths[0];
            let job = GaJob {
                width,
                ..GaJob::new(TestFunction::F2, backend, params).with_deadline_ms(0)
            };
            assert_eq!(
                run(&job),
                Err(ServeError::DeadlineExceeded),
                "{} must honor a 0 ms deadline",
                backend.name()
            );
        }
    }

    #[test]
    fn rtl_watchdog_is_typed() {
        let params = GaParams::new(8, 4, 10, 1, 0xB342);
        let job = GaJob::new(TestFunction::F2, BackendKind::RtlInterp, params);
        let cfg = ServeConfig {
            rtl_watchdog_cycles: 10,
            ..Default::default()
        };
        assert!(matches!(
            run_single(&job, 0, &cfg).outcome,
            Err(ServeError::Watchdog { cycles: 10 })
        ));
    }

    #[test]
    fn island_jobs_run_the_ring_composite_exactly() {
        let params = GaParams::new(16, 12, 10, 1, 0x2961);
        let config = IslandConfig {
            islands: 3,
            epoch: 4,
            epochs: 3,
        };
        let job =
            GaJob::new(TestFunction::Bf6, BackendKind::Behavioral, params).with_islands(config);
        let out = run(&job).expect("island job runs");

        // The serve answer is the engine composite's answer, verbatim.
        let engine = ga_engine::global()
            .get(BackendKind::Behavioral)
            .expect("registered");
        let direct = IslandsEngine::new(engine, config)
            .expect("steps")
            .run(job.spec())
            .expect("runs");
        assert_eq!(out.best_chrom, direct.best.chrom as u32);
        assert_eq!(out.best_fitness, direct.best.fitness);
        assert_eq!(out.evaluations, direct.evaluations);
        assert_eq!(out.generations, 12);

        // And the lane-stream backend answers bit-identically.
        let bit = GaJob {
            backend: BackendKind::BitSim64,
            ..job
        };
        assert_eq!(run(&bit), Ok(out), "bitsim ring must match behavioral");
    }

    #[test]
    fn island_jobs_on_non_stepping_backends_fail_typed() {
        let params = GaParams::new(16, 12, 10, 1, 0x2961);
        let job =
            GaJob::new(TestFunction::Bf6, BackendKind::Swga, params).with_islands(IslandConfig {
                islands: 2,
                epoch: 6,
                epochs: 2,
            });
        let r = run_single(&job, 0, &ServeConfig::default());
        assert!(matches!(r.outcome, Err(ServeError::InvalidJob { .. })));
        assert_eq!(r.degraded, None, "island refusals never degrade");
    }

    #[test]
    fn invalid_params_fail_validation_not_panic() {
        let mut job = GaJob::new(
            TestFunction::F2,
            BackendKind::Behavioral,
            GaParams::default(),
        );
        job.params.n_gens = 0;
        assert!(matches!(run(&job), Err(ServeError::InvalidJob { .. })));
    }

    #[test]
    fn bitsim_watchdog_degrades_solo_jobs_to_behavioral() {
        let params = GaParams::new(16, 6, 10, 1, 0x2961);
        let bit = GaJob::new(TestFunction::Bf6, BackendKind::BitSim64, params);
        let beh = GaJob::new(TestFunction::Bf6, BackendKind::Behavioral, params);
        let cfg = ServeConfig {
            bitsim_watchdog_steps: 4, // far below the needed draw count
            ..Default::default()
        };
        let r = run_single(&bit, 7, &cfg);
        assert_eq!(r.job, 7);
        assert_eq!(r.backend, BackendKind::Behavioral, "executed by fallback");
        assert_eq!(
            r.degraded,
            Some(Degradation {
                from: BackendKind::BitSim64,
                reason: ServeError::Watchdog { cycles: 4 },
            })
        );
        // The degraded answer is the behavioral answer, not a failure.
        assert_eq!(r.outcome, run(&beh), "fallback result matches behavioral");
    }
}
