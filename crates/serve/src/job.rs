//! Job and result types: the service's wire-level vocabulary.
//!
//! The execution vocabulary itself ([`BackendKind`], [`JobOutput`])
//! comes from the engine layer (`ga_engine`); this module adds the
//! service-side wrapping — the JSONL-schema job shape, typed service
//! errors, and per-result degradation metadata.

use std::fmt;

use ga_core::islands::IslandConfig;
use ga_core::GaParams;
pub use ga_ehw::PERFECT_FITNESS;
use ga_ehw::{Fault, TruthTable};
use ga_engine::{EngineError, RunSpec};
use ga_fitness::TestFunction;

pub use ga_engine::{BackendKind, Workload};

/// The default chromosome width of the IP core (the 16-bit engines).
pub const CHROM_WIDTH: u8 = 16;

/// The chromosome widths the job *schema* admits: the 16-bit core and
/// the ganged 32-bit composite (`rtl32`). The parser refuses anything
/// outside this list up front with a line-aligned `invalid_job` error;
/// whether a *specific backend* implements the width is the engine
/// registry's admission check ([`GaJob::validate`]).
pub const SUPPORTED_WIDTHS: [u8; 2] = [16, 32];

/// Look up a fitness function by its table name (`BF6`, `F2`, …),
/// case-insensitively.
pub fn function_by_name(s: &str) -> Option<TestFunction> {
    TestFunction::ALL
        .into_iter()
        .find(|f| f.name().eq_ignore_ascii_case(s))
}

/// One GA execution request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaJob {
    /// Chromosome width in bits (checked against the backend's
    /// [`ga_engine::Capabilities::widths`] at validation).
    pub width: u8,
    /// What the job optimizes: a benchmark fitness function (`fn` on
    /// the wire) or a VRC healing search (`heal_target` +
    /// `heal_fault`).
    pub workload: Workload,
    /// Executing engine.
    pub backend: BackendKind,
    /// The Table III parameter set (population, generation budget,
    /// operator thresholds, RNG seed). Held unvalidated so a bad job
    /// surfaces as a typed [`ServeError::InvalidJob`] result instead of
    /// a panic; [`GaJob::validate`] is the gate.
    pub params: GaParams,
    /// Optional wall-clock budget. Expiry cancels the job with
    /// [`ServeError::DeadlineExceeded`]; an in-flight generation (or
    /// simulated cycle) always completes first.
    pub deadline_ms: Option<u64>,
    /// Optional island-model schedule (`islands`/`epoch`/`epochs` on
    /// the wire). When set, the job runs as a ring-migration island
    /// model over the requested backend's stepping handle
    /// ([`ga_engine::IslandsEngine`]) instead of one plain run;
    /// `params.n_gens` must equal `epoch × epochs` and the backend must
    /// advertise [`ga_engine::Capabilities::stepping`]. Island jobs
    /// never join bitsim packs — the ring already owns its lanes.
    pub islands: Option<IslandConfig>,
}

impl GaJob {
    /// A 16-bit job with no deadline.
    pub fn new(function: TestFunction, backend: BackendKind, params: GaParams) -> Self {
        GaJob {
            width: CHROM_WIDTH,
            workload: Workload::Function(function),
            backend,
            params,
            deadline_ms: None,
            islands: None,
        }
    }

    /// A 32-bit job for the ganged composite with no deadline.
    pub fn new32(function: TestFunction, params: GaParams) -> Self {
        GaJob {
            width: 32,
            workload: Workload::Function(function),
            backend: BackendKind::Rtl32,
            params,
            deadline_ms: None,
            islands: None,
        }
    }

    /// A VRC healing job (always 16-bit — the chromosome is the fabric
    /// configuration) with no deadline.
    pub fn new_heal(
        target: TruthTable,
        fault: Fault,
        backend: BackendKind,
        params: GaParams,
    ) -> Self {
        GaJob {
            width: CHROM_WIDTH,
            workload: Workload::VrcHeal { target, fault },
            backend,
            params,
            deadline_ms: None,
            islands: None,
        }
    }

    /// Attach a wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Attach an island-model schedule (the job then runs as a
    /// ring-migration island model over the backend's stepping handle).
    pub fn with_islands(mut self, config: IslandConfig) -> Self {
        self.islands = Some(config);
        self
    }

    /// The engine-layer spec this job requests.
    pub fn spec(&self) -> RunSpec {
        RunSpec {
            width: self.width,
            workload: self.workload,
            params: self.params,
            deadline_ms: self.deadline_ms,
        }
    }

    /// The admission check every backend runs before touching an
    /// engine: the registered backend's capability gate (width support
    /// first, then the hardware parameter ranges), plus the island
    /// schedule gate when the job carries one — a stepping backend and
    /// `n_gens == epoch × epochs`, both typed, never panicking.
    pub fn validate(&self) -> Result<(), ServeError> {
        let engine =
            ga_engine::global()
                .get(self.backend)
                .ok_or_else(|| ServeError::InvalidJob {
                    msg: format!("backend {} is not registered", self.backend.name()),
                })?;
        engine
            .capabilities()
            .admit(&self.spec())
            .map_err(ServeError::from)?;
        if let Some(cfg) = self.islands {
            if !engine.capabilities().stepping {
                return Err(ServeError::InvalidJob {
                    msg: format!(
                        "backend {} has no stepping handle; island jobs need one",
                        self.backend.name()
                    ),
                });
            }
            if cfg.islands == 0 || cfg.epoch == 0 || cfg.epochs == 0 {
                return Err(ServeError::InvalidJob {
                    msg: "island schedule needs islands, epoch and epochs all >= 1".into(),
                });
            }
            match cfg.epoch.checked_mul(cfg.epochs) {
                Some(total) if total == self.params.n_gens => {}
                _ => {
                    return Err(ServeError::InvalidJob {
                        msg: format!(
                            "gens {} disagrees with the island schedule epoch {} × epochs {}",
                            self.params.n_gens, cfg.epoch, cfg.epochs
                        ),
                    })
                }
            }
        }
        Ok(())
    }

    /// Packing compatibility key: two jobs may share a 64-lane bitsim
    /// run iff they consume RNG draws on the same schedule, which is
    /// fully determined by population size and generation count (the
    /// draw count per generation is a function of `pop_size` alone).
    pub fn pack_key(&self) -> (u8, u32) {
        (self.params.pop_size, self.params.n_gens)
    }
}

/// What a completed job reports back — the engine layer's
/// backend-neutral outcome, verbatim.
pub type JobOutput = ga_engine::RunOutcome;

/// The typed result layer a healing job adds on top of [`JobOutput`]:
/// the healed configuration is the outcome's `best_chrom`; this struct
/// derives the healing-specific summary from the trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealReport {
    /// The evolved configuration reproduces the target on all 16 rows.
    pub healed: bool,
    /// First generation whose best individual was already perfect
    /// (0 = the initial population). `None` when the run never healed.
    pub generations_to_heal: Option<u32>,
    /// `PERFECT_FITNESS - best_fitness`: 4095 per unmatched truth-table
    /// row, 0 for a full heal.
    pub residual_error: u16,
}

impl HealReport {
    /// Derive the healing summary from a completed run.
    pub fn from_outcome(outcome: &JobOutput) -> Self {
        let generations_to_heal = outcome
            .trajectory
            .iter()
            .find(|p| p.best_fitness == PERFECT_FITNESS)
            .map(|p| p.gen);
        HealReport {
            healed: outcome.best_fitness == PERFECT_FITNESS,
            generations_to_heal,
            residual_error: PERFECT_FITNESS - outcome.best_fitness,
        }
    }
}

/// Degradation note attached to a result that was answered by a
/// different backend than the one requested: the requested backend
/// failed on infrastructure (e.g. the bitsim64 netlist watchdog
/// tripped) and the service fell back along the engine's declared
/// [`ga_engine::Capabilities::degrades_to`] edge instead of failing the
/// job. Surfaced as typed metadata so callers can tell a degraded
/// answer from a native one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The backend the job originally asked for.
    pub from: BackendKind,
    /// The typed error that triggered the fallback.
    pub reason: ServeError,
}

/// One job's result, tagged with its index in the submitted batch.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Index of the job in the input batch (results are returned in
    /// input order; this field makes the invariant checkable).
    pub job: usize,
    /// Backend that executed (or rejected) the job.
    pub backend: BackendKind,
    /// The output, or a typed failure.
    pub outcome: Result<JobOutput, ServeError>,
    /// Measured wall-clock latency. Deliberately *excluded* from the
    /// JSONL result lines so golden-file diffs stay deterministic;
    /// latency is aggregated into `BENCH_serve.json` instead.
    pub micros: u64,
    /// Set when the job was answered by a fallback backend after the
    /// requested one failed transiently (graceful degradation).
    pub degraded: Option<Degradation>,
    /// Healing summary, present iff the job's workload was
    /// [`Workload::VrcHeal`] and the run completed.
    pub heal: Option<HealReport>,
}

/// Typed service errors — every way a job can fail without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A JSONL request line did not parse.
    Parse {
        /// 0-based input line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// Parameters outside the hardware ranges of Table III.
    InvalidJob {
        /// The validation failure.
        msg: String,
    },
    /// Chromosome width not implemented by the requested backend.
    UnsupportedWidth {
        /// The requested width.
        width: u8,
    },
    /// The job's wall-clock deadline expired; the job was cancelled.
    DeadlineExceeded,
    /// A simulated-work watchdog fired (RTL cycles or bitsim steps).
    Watchdog {
        /// Cycles run before giving up.
        cycles: u64,
    },
    /// `try_push` on a full [`crate::BoundedQueue`].
    QueueFull {
        /// The queue's capacity.
        capacity: usize,
    },
    /// The queue was closed while submitting.
    QueueClosed,
    /// A client exceeded its per-connection job quota; the connection's
    /// remaining lines are rejected with this code.
    QuotaExceeded {
        /// The quota the connection was admitted under.
        limit: u64,
    },
    /// A client exceeded its sustained submission rate; the line is
    /// rejected but the connection stays open (the token bucket
    /// refills).
    RateLimited {
        /// The configured sustained rate, jobs per second.
        per_sec: u32,
    },
    /// The job's worker panicked (caught at the pool boundary) or a
    /// result slot was never filled — a service bug surfaced as a typed
    /// per-job failure instead of a process crash.
    Internal {
        /// The recovered panic message (or invariant description).
        msg: String,
    },
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::InvalidSpec { msg } => ServeError::InvalidJob { msg },
            EngineError::UnsupportedWidth { width } => ServeError::UnsupportedWidth { width },
            EngineError::DeadlineExceeded => ServeError::DeadlineExceeded,
            EngineError::Watchdog { cycles } => ServeError::Watchdog { cycles },
        }
    }
}

impl ServeError {
    /// Stable machine-readable code for the JSONL `error` field.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Parse { .. } => "parse",
            ServeError::InvalidJob { .. } => "invalid_job",
            ServeError::UnsupportedWidth { .. } => "unsupported_width",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::Watchdog { .. } => "watchdog",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::QueueClosed => "queue_closed",
            ServeError::QuotaExceeded { .. } => "quota_exceeded",
            ServeError::RateLimited { .. } => "rate_limited",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// Whether a retry could plausibly succeed: only worker-side
    /// internal failures (panics) qualify — every other error is a
    /// deterministic property of the job or the queue state.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServeError::Internal { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ServeError::InvalidJob { msg } => write!(f, "invalid job: {msg}"),
            ServeError::UnsupportedWidth { width } => {
                write!(f, "chromosome width {width} unsupported by this backend")
            }
            ServeError::DeadlineExceeded => write!(f, "wall-clock deadline expired"),
            ServeError::Watchdog { cycles } => {
                write!(f, "simulation watchdog expired after {cycles} cycles")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            ServeError::QueueClosed => write!(f, "queue closed"),
            ServeError::QuotaExceeded { limit } => {
                write!(f, "per-connection job quota exceeded (limit {limit})")
            }
            ServeError::RateLimited { per_sec } => {
                write!(f, "rate limited (sustained {per_sec} jobs/s)")
            }
            ServeError::Internal { msg } => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_roundtrip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.name()), Some(b));
            assert_eq!(BackendKind::parse(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(BackendKind::parse("vhdl"), None);
    }

    #[test]
    fn function_lookup_matches_table_names() {
        for f in TestFunction::ALL {
            assert_eq!(function_by_name(f.name()), Some(f));
            assert_eq!(function_by_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(function_by_name("rosenbrock"), None);
    }

    #[test]
    fn validation_is_typed_not_panicking() {
        let good = GaParams::default();
        let job = GaJob::new(TestFunction::F3, BackendKind::Behavioral, good);
        assert!(job.validate().is_ok());

        let wide = GaJob { width: 32, ..job };
        assert_eq!(
            wide.validate(),
            Err(ServeError::UnsupportedWidth { width: 32 })
        );

        let bad = GaJob {
            params: GaParams {
                pop_size: 1,
                ..good
            },
            ..job
        };
        assert!(matches!(bad.validate(), Err(ServeError::InvalidJob { .. })));
    }

    #[test]
    fn width_admission_is_backend_relative() {
        // 32-bit jobs are first-class on the ganged composite…
        let wide = GaJob::new32(TestFunction::F3, GaParams::default());
        assert_eq!(wide.validate(), Ok(()));
        // …while a 16-bit job aimed at it is refused, symmetrically.
        let narrow = GaJob {
            width: CHROM_WIDTH,
            ..wide
        };
        assert_eq!(
            narrow.validate(),
            Err(ServeError::UnsupportedWidth { width: 16 })
        );
        // Width support is exactly what the registry advertises.
        assert_eq!(
            ga_engine::global().supporting_width(32),
            vec![BackendKind::Rtl32]
        );
    }

    #[test]
    fn island_jobs_validate_schedule_and_stepping() {
        let cfg = IslandConfig {
            islands: 3,
            epoch: 4,
            epochs: 3,
        };
        let good = GaJob::new(
            TestFunction::Bf6,
            BackendKind::Behavioral,
            GaParams::new(16, 12, 10, 1, 0x2961),
        )
        .with_islands(cfg);
        assert_eq!(good.validate(), Ok(()));

        // The schedule must agree with n_gens — typed, never silent.
        let mismatched = GaJob {
            params: GaParams {
                n_gens: 8,
                ..good.params
            },
            ..good
        };
        let Err(ServeError::InvalidJob { msg }) = mismatched.validate() else {
            panic!("mismatched schedule accepted");
        };
        assert!(msg.contains("island schedule"), "msg: {msg}");

        // A non-stepping backend cannot host a ring.
        let swga = GaJob {
            backend: BackendKind::Swga,
            ..good
        };
        let Err(ServeError::InvalidJob { msg }) = swga.validate() else {
            panic!("non-stepping backend accepted");
        };
        assert!(msg.contains("stepping"), "msg: {msg}");

        // Degenerate schedules are refused up front.
        let zero = GaJob {
            islands: Some(IslandConfig { islands: 0, ..cfg }),
            ..good
        };
        assert!(matches!(
            zero.validate(),
            Err(ServeError::InvalidJob { .. })
        ));
    }

    #[test]
    fn pack_key_is_pop_and_gens_only() {
        let a = GaJob::new(
            TestFunction::F2,
            BackendKind::BitSim64,
            GaParams::new(32, 8, 10, 1, 0x1111),
        );
        let b = GaJob::new(
            TestFunction::Bf6,
            BackendKind::BitSim64,
            GaParams::new(32, 8, 14, 3, 0x2222),
        );
        assert_eq!(
            a.pack_key(),
            b.pack_key(),
            "fn/thresholds/seed don't matter"
        );
        let c = GaJob {
            params: GaParams {
                n_gens: 9,
                ..a.params
            },
            ..a
        };
        assert_ne!(a.pack_key(), c.pack_key());
    }

    #[test]
    fn engine_errors_map_onto_serve_errors() {
        assert_eq!(
            ServeError::from(EngineError::Watchdog { cycles: 9 }),
            ServeError::Watchdog { cycles: 9 }
        );
        assert_eq!(
            ServeError::from(EngineError::DeadlineExceeded),
            ServeError::DeadlineExceeded
        );
        assert_eq!(
            ServeError::from(EngineError::UnsupportedWidth { width: 8 }),
            ServeError::UnsupportedWidth { width: 8 }
        );
        assert!(matches!(
            ServeError::from(EngineError::InvalidSpec { msg: "x".into() }),
            ServeError::InvalidJob { .. }
        ));
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(ServeError::DeadlineExceeded.code(), "deadline_exceeded");
        assert_eq!(ServeError::Watchdog { cycles: 1 }.code(), "watchdog");
        assert_eq!(
            ServeError::Parse {
                line: 0,
                msg: String::new()
            }
            .code(),
            "parse"
        );
        assert_eq!(
            ServeError::QuotaExceeded { limit: 8 }.code(),
            "quota_exceeded"
        );
        assert_eq!(
            ServeError::RateLimited { per_sec: 100 }.code(),
            "rate_limited"
        );
    }

    #[test]
    fn admission_rejections_are_not_transient() {
        // A retry can't un-exceed a quota or refill a bucket on the
        // service's side — clients must back off, so the recovery loop
        // must not burn retries on these.
        assert!(!ServeError::QuotaExceeded { limit: 1 }.is_transient());
        assert!(!ServeError::RateLimited { per_sec: 1 }.is_transient());
        assert!(!ServeError::QueueFull { capacity: 1 }.is_transient());
        assert!(ServeError::Internal { msg: String::new() }.is_transient());
    }
}
