//! `gaserved` — batch GA execution over JSONL.
//!
//! ```text
//! gaserved --input jobs.jsonl --out results.jsonl [--threads N] [--queue-cap N]
//! gaserved --list-backends
//! ```
//!
//! Reads one job per input line, runs the batch through the sharded
//! service, and writes exactly one result line per input line, in input
//! order. Lines that fail to parse become `"backend":"none"` error
//! lines in the same position — the batch never aborts on a bad line.
//! A human summary goes to stderr, and the machine-readable throughput
//! report goes to `BENCH_serve.json` (honoring `GA_BENCH_OUT`).

use std::fs;
use std::process::ExitCode;

use ga_serve::{jsonl, serve_batch, GaJob, JobResult, ServeConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut out = None;
    let mut cfg = ServeConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let r = match arg.as_str() {
            "--input" => value("--input").map(|v| input = Some(v)),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--threads" => value("--threads").and_then(|v| {
                v.parse()
                    .map(|n: usize| cfg.threads = n.max(1))
                    .map_err(|e| format!("--threads: {e}"))
            }),
            "--queue-cap" => value("--queue-cap").and_then(|v| {
                v.parse()
                    .map(|n: usize| cfg.queue_capacity = n.max(1))
                    .map_err(|e| format!("--queue-cap: {e}"))
            }),
            "--list-backends" => {
                // One line per registered engine, machine-greppable:
                // the CI registry-enumeration check parses this.
                for e in ga_engine::global().engines() {
                    let caps = e.capabilities();
                    let widths: Vec<String> = caps.widths.iter().map(|w| w.to_string()).collect();
                    println!(
                        "{} widths={} pack_width={} degrades_to={}",
                        e.kind().name(),
                        widths.join(","),
                        caps.pack_width,
                        caps.degrades_to.map_or("none", |k| k.name()),
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: gaserved --input jobs.jsonl --out results.jsonl \
                     [--threads N] [--queue-cap N] | gaserved --list-backends"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?} (try --help)")),
        };
        if let Err(msg) = r {
            eprintln!("gaserved: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let (Some(input), Some(out)) = (input, out) else {
        eprintln!("gaserved: --input and --out are required (try --help)");
        return ExitCode::FAILURE;
    };

    let text = match fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gaserved: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse every line first. Parse failures keep their line slot so
    // the output stays line-aligned with the input; parseable jobs are
    // submitted as one batch with their line index as the job id.
    let mut parse_errors = Vec::new(); // (line index, error line)
    let mut jobs: Vec<(usize, GaJob)> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match jsonl::parse_job(line, line_no) {
            Ok(job) => jobs.push((line_no, job)),
            Err(e) => parse_errors.push((line_no, jsonl::parse_error_line(line_no, &e))),
        }
    }

    let batch: Vec<GaJob> = jobs.iter().map(|&(_, j)| j).collect();
    let outcome = serve_batch(&batch, &cfg);

    // Re-key batch-relative job ids back to input line numbers, merge
    // with the parse-error lines, and emit in line order.
    let mut lines: Vec<(usize, String)> = parse_errors;
    for r in &outcome.results {
        let line_no = jobs[r.job].0;
        let rekeyed = JobResult {
            job: line_no,
            ..r.clone()
        };
        lines.push((line_no, jsonl::result_line(&rekeyed)));
    }
    lines.sort_by_key(|(line_no, _)| *line_no);

    let mut body = String::new();
    for (_, line) in &lines {
        body.push_str(line);
        body.push('\n');
    }
    if let Err(e) = fs::write(&out, body) {
        eprintln!("gaserved: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }

    let stats = &outcome.stats;
    eprintln!(
        "gaserved: {} jobs ({} ok, {} errors, {} parse failures) in {:.3}s \
         [{:.1} jobs/s, {} threads, {} bitsim packs]",
        lines.len(),
        stats.jobs() - stats.errors(),
        stats.errors(),
        lines.len() - outcome.results.len(),
        stats.wall_seconds,
        stats.jobs_per_sec(),
        stats.threads_used,
        stats.packs,
    );
    stats.to_report().emit_or_warn();
    ExitCode::SUCCESS
}
