//! `gaserved` — GA execution over JSONL, batch or persistent socket.
//!
//! ```text
//! gaserved --input jobs.jsonl --out results.jsonl [--threads N] [--queue-cap N]
//! gaserved --listen 127.0.0.1:4567 [--threads N] [--queue-cap N] [--shed]
//!          [--max-jobs-per-conn N] [--rate N] [--burst N] [--drain-grace-ms N]
//! gaserved --island-worker 127.0.0.1:0
//! gaserved --list-backends
//! ```
//!
//! **Batch mode** reads one job per input line, runs the batch through
//! the sharded service, and writes exactly one result line per input
//! line, in input order. Lines that fail to parse become
//! `"backend":"none"` error lines in the same position — the batch
//! never aborts on a bad line.
//!
//! **Listen mode** serves the same wire format over a persistent TCP
//! socket — one connection per client, results line-aligned per
//! connection — and announces the bound address on stdout as
//! `listening <addr>` (so `--listen 127.0.0.1:0` is scriptable). The
//! server runs until **stdin reaches EOF** (the std-only shutdown
//! signal: run it with a held-open pipe and close it to stop), then
//! drains gracefully — stops accepting, finishes every admitted job,
//! flushes per-connection tails.
//!
//! **Island-worker mode** hosts one shard of a sharded island run: it
//! binds, announces `listening <addr>` the same way, accepts a single
//! coordinator connection, and serves the `ga_serve::islands` op
//! protocol (init/epoch/inject/snapshot/finish) until the run finishes
//! or the coordinator disconnects.
//!
//! In both modes a human summary goes to stderr and the
//! machine-readable throughput report — now with per-backend
//! p50/p95/p99/max latency — goes to `BENCH_serve.json` (honoring
//! `GA_BENCH_OUT`).

use std::fs;
use std::io::Read as _;
use std::process::ExitCode;

use ga_serve::{jsonl, serve_batch, GaJob, JobResult, NetConfig, ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut out = None;
    let mut listen = None;
    let mut island_worker = None;
    let mut net = NetConfig::default();
    let mut cfg = ServeConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let r = match arg.as_str() {
            "--input" => value("--input").map(|v| input = Some(v)),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--listen" => value("--listen").map(|v| listen = Some(v)),
            "--island-worker" => value("--island-worker").map(|v| island_worker = Some(v)),
            "--shed" => {
                net.shed = true;
                Ok(())
            }
            "--max-jobs-per-conn" => value("--max-jobs-per-conn").and_then(|v| {
                v.parse()
                    .map(|n: u64| net.max_jobs_per_conn = n)
                    .map_err(|e| format!("--max-jobs-per-conn: {e}"))
            }),
            "--rate" => value("--rate").and_then(|v| {
                v.parse()
                    .map(|n: u32| net.rate_per_sec = n)
                    .map_err(|e| format!("--rate: {e}"))
            }),
            "--burst" => value("--burst").and_then(|v| {
                v.parse()
                    .map(|n: u32| net.rate_burst = n)
                    .map_err(|e| format!("--burst: {e}"))
            }),
            "--drain-grace-ms" => value("--drain-grace-ms").and_then(|v| {
                v.parse()
                    .map(|n: u64| net.drain_grace_ms = n)
                    .map_err(|e| format!("--drain-grace-ms: {e}"))
            }),
            "--threads" => value("--threads").and_then(|v| {
                v.parse()
                    .map(|n: usize| cfg.threads = n.max(1))
                    .map_err(|e| format!("--threads: {e}"))
            }),
            "--queue-cap" => value("--queue-cap").and_then(|v| {
                v.parse()
                    .map(|n: usize| cfg.queue_capacity = n.max(1))
                    .map_err(|e| format!("--queue-cap: {e}"))
            }),
            "--list-backends" => {
                // One line per registered engine, machine-greppable:
                // the CI registry-enumeration check parses this.
                for e in ga_engine::global().engines() {
                    let caps = e.capabilities();
                    let widths: Vec<String> = caps.widths.iter().map(|w| w.to_string()).collect();
                    println!(
                        "{} widths={} pack_width={} degrades_to={}",
                        e.kind().name(),
                        widths.join(","),
                        caps.pack_width,
                        caps.degrades_to.map_or("none", |k| k.name()),
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: gaserved --input jobs.jsonl --out results.jsonl \
                     [--threads N] [--queue-cap N]\n       \
                     gaserved --listen ADDR [--threads N] [--queue-cap N] [--shed] \
                     [--max-jobs-per-conn N] [--rate N] [--burst N] [--drain-grace-ms N]\n       \
                     gaserved --island-worker ADDR\n       \
                     gaserved --list-backends"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?} (try --help)")),
        };
        if let Err(msg) = r {
            eprintln!("gaserved: {msg}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(addr) = island_worker {
        // One shard of a sharded island run: serve the op protocol on a
        // single coordinator connection, then exit.
        return match ga_serve::serve_island_worker(&addr) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gaserved: island worker: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(addr) = listen {
        net.serve = cfg;
        return run_listener(&addr, net);
    }

    let (Some(input), Some(out)) = (input, out) else {
        eprintln!("gaserved: --input and --out are required (try --help)");
        return ExitCode::FAILURE;
    };

    let text = match fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gaserved: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse every line first. Parse failures keep their line slot so
    // the output stays line-aligned with the input; parseable jobs are
    // submitted as one batch with their line index as the job id.
    let mut parse_errors = Vec::new(); // (line index, error line)
    let mut jobs: Vec<(usize, GaJob)> = Vec::new();
    // Explicit line-ending strip (not `str::lines`): the batch path
    // shares the socket reader's contract, so CRLF files parse — and
    // CRLF "blank" lines skip — identically in both modes.
    for (line_no, raw) in text.split('\n').enumerate() {
        let line = jsonl::strip_line_ending(raw);
        if line.trim().is_empty() {
            continue;
        }
        match jsonl::parse_job(line, line_no) {
            Ok(job) => jobs.push((line_no, job)),
            Err(e) => parse_errors.push((line_no, jsonl::parse_error_line(line_no, &e))),
        }
    }

    let batch: Vec<GaJob> = jobs.iter().map(|&(_, j)| j).collect();
    let outcome = serve_batch(&batch, &cfg);

    // Re-key batch-relative job ids back to input line numbers, merge
    // with the parse-error lines, and emit in line order.
    let mut lines: Vec<(usize, String)> = parse_errors;
    for r in &outcome.results {
        let line_no = jobs[r.job].0;
        let rekeyed = JobResult {
            job: line_no,
            ..r.clone()
        };
        lines.push((line_no, jsonl::result_line(&rekeyed)));
    }
    lines.sort_by_key(|(line_no, _)| *line_no);

    let mut body = String::new();
    for (_, line) in &lines {
        body.push_str(line);
        body.push('\n');
    }
    if let Err(e) = fs::write(&out, body) {
        eprintln!("gaserved: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }

    let stats = &outcome.stats;
    eprintln!(
        "gaserved: {} jobs ({} ok, {} errors, {} parse failures) in {:.3}s \
         [{:.1} jobs/s, {} threads, {} bitsim packs]",
        lines.len(),
        stats.jobs() - stats.errors(),
        stats.errors(),
        lines.len() - outcome.results.len(),
        stats.wall_seconds,
        stats.jobs_per_sec(),
        stats.threads_used,
        stats.packs,
    );
    stats.to_report().emit_or_warn();
    ExitCode::SUCCESS
}

/// Listen mode: bind, announce, serve until stdin EOF, drain, report.
fn run_listener(addr: &str, net: NetConfig) -> ExitCode {
    let server = match Server::bind(addr, net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gaserved: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Announce on stdout so `--listen 127.0.0.1:0` is scriptable: the
    // caller reads this line to learn the ephemeral port.
    println!("listening {}", server.local_addr());
    // std-only shutdown signal: block until our stdin is closed, then
    // drain. CI holds the pipe open for the test window; interactively,
    // Ctrl-D stops the server.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    let summary = server.drain();
    let stats = &summary.stats;
    let adm = &summary.admission;
    eprintln!(
        "gaserved: drained after {:.3}s — {} conns, {} lines, {} jobs \
         ({} errors, {} degraded), rejected {}p/{}q/{}r, shed {}, closed {}",
        stats.wall_seconds,
        adm.connections,
        adm.lines,
        stats.jobs(),
        stats.errors(),
        stats.degraded,
        adm.rejected_parse,
        adm.rejected_quota,
        adm.rejected_rate,
        adm.shed_queue_full,
        adm.rejected_closed,
    );
    stats.to_report().emit_or_warn();
    ExitCode::SUCCESS
}
