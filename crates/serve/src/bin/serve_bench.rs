//! `serve_bench` — the committed `BENCH_serve.json` generator.
//!
//! Runs the acceptance workload (the same 200-job mixed-backend batch
//! the integration suite pins: jobs cycling every registered engine,
//! all six fitness functions, three parameter shapes) through
//! `serve_batch` and emits the serving-layer throughput report. The
//! batch construction is deterministic, so the committed snapshot is
//! reproducible with:
//!
//! ```text
//! GA_BENCH_OUT=. cargo run --release -p ga-serve --bin serve_bench
//! ```
//!
//! The report carries the pack-path throughput
//! (`bitsim_pack_jobs_per_sec`: active pack lanes over wall time spent
//! inside pack units) and the compiled-netlist cache hit/miss deltas
//! that CI floors.

use ga_core::GaParams;
use ga_fitness::TestFunction;
use ga_serve::{serve_batch, BackendKind, GaJob, ServeConfig};

/// The acceptance batch: 200 jobs cycling through every registered
/// backend (including 32-bit jobs on the ganged `rtl32` composite) and
/// all six fitness functions, with the cycle-accurate interpreters kept
/// on small parameters. Mirrors `mixed_batch_200` in the service
/// integration tests.
fn mixed_batch_200() -> Vec<GaJob> {
    let shapes = [
        GaParams::new(16, 6, 10, 1, 1),
        GaParams::new(15, 4, 12, 2, 1), // odd population
        GaParams::new(8, 8, 13, 3, 1),
    ];
    (0..200)
        .map(|i| {
            let backend = BackendKind::ALL[i % BackendKind::ALL.len()];
            let function = TestFunction::ALL[i % TestFunction::ALL.len()];
            let mut params = shapes[(i / 3) % shapes.len()];
            if matches!(backend, BackendKind::RtlInterp | BackendKind::Rtl32) {
                params = GaParams::new(8, 4, 10, 1, 1);
            }
            params.seed = (i as u16).wrapping_mul(2654).wrapping_add(17);
            if backend == BackendKind::Rtl32 {
                GaJob::new32(function, params)
            } else {
                GaJob::new(function, backend, params)
            }
        })
        .collect()
}

fn main() {
    let jobs = mixed_batch_200();
    let out = serve_batch(&jobs, &ServeConfig::default());
    let stats = &out.stats;
    assert_eq!(stats.jobs(), 200, "acceptance batch must fully serve");
    assert_eq!(stats.errors(), 0, "acceptance batch must be green");

    eprintln!(
        "serve_bench: 200 jobs in {:.3}s [{:.1} jobs/s overall, \
         {:.1} jobs/s on the pack path, {} packs / {} lanes, \
         {} threads, cache {}h/{}m]",
        stats.wall_seconds,
        stats.jobs_per_sec(),
        stats.pack_jobs_per_sec(),
        stats.packs,
        stats.packed_lanes,
        stats.threads_used,
        stats.cache_hits,
        stats.cache_misses,
    );
    stats.to_report().emit_or_warn();
}
