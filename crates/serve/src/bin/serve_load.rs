//! `serve_load` — sustained-load driver for the socket front-end, and
//! the committed `BENCH_serve.json` generator.
//!
//! Boots `ga_serve::Server` on an ephemeral localhost port, drives a
//! deterministic mixed-backend job stream over several concurrent TCP
//! connections (each client writes and reads on separate threads, like
//! a real pipelined submitter), verifies that every submitted line came
//! back exactly once and green, then drains the server and emits its
//! merged stats — including the per-backend
//! `_p50_us/_p95_us/_p99_us/_max_us` latency block — as
//! `BENCH_serve.json` (honoring `GA_BENCH_OUT`).
//!
//! The committed snapshot is reproducible with:
//!
//! ```text
//! GA_BENCH_OUT=. cargo run --release -p ga-serve --bin serve_load
//! ```
//!
//! `GA_BENCH_QUICK=1` (the CI burst) cuts the per-connection job count
//! so the step stays fast; `--conns`/`--jobs`/`--threads` override the
//! defaults. With `--connect ADDR` the bin is a pure client instead:
//! it drives the same burst against an already-running
//! `gaserved --listen` (the CI localhost step) and emits no report —
//! the external server owns the stats and reports them at drain.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::thread;
use std::time::Instant;

use ga_core::GaParams;
use ga_fitness::TestFunction;
use ga_serve::{jsonl, BackendKind, GaJob, NetConfig, Server};

/// The load mix: small fast parameter shapes cycling the lockstep-pack
/// family plus the scalar engines, heavy on the cheap backends so the
/// sustained rate lands in the tens of thousands of jobs per second.
/// The cycle-accurate RTL interpreters are deliberately excluded — one
/// 20 ms RTL job per thousand would own every p99 and measure nothing
/// about the serving layer.
fn job_for(conn: usize, i: usize) -> GaJob {
    const MIX: [BackendKind; 8] = [
        BackendKind::Behavioral,
        BackendKind::BitSim64,
        BackendKind::Behavioral,
        BackendKind::BitSim64,
        BackendKind::Swga,
        BackendKind::BitSim128,
        BackendKind::Behavioral,
        BackendKind::BitSim256,
    ];
    let backend = MIX[i % MIX.len()];
    let function = TestFunction::ALL[(conn + i) % TestFunction::ALL.len()];
    // One shared (pop, gens) shape keeps every bitsim job pack-compatible.
    let mut params = GaParams::new(8, 2, 10, 1, 1);
    params.seed = ((conn * 7919 + i) as u16)
        .wrapping_mul(2654)
        .wrapping_add(17);
    GaJob::new(function, backend, params)
}

/// Run the client fleet: one connection per client, a writer thread
/// streaming job lines while the spawning thread reads responses
/// concurrently — a client that wrote everything before reading
/// anything would deadlock against TCP backpressure once both socket
/// buffers fill. Returns per-connection `(ok, failed)` counts.
fn run_clients(addr: SocketAddr, conns: usize, jobs_per_conn: usize) -> Vec<(usize, usize)> {
    thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect to listener");
                    let mut write_half = stream.try_clone().expect("clone socket");
                    let writer = thread::spawn(move || {
                        for i in 0..jobs_per_conn {
                            let line = jsonl::job_line(&job_for(c, i));
                            write_half.write_all(line.as_bytes()).expect("send line");
                            write_half.write_all(b"\n").expect("send newline");
                        }
                        // Half-close: the server reader sees EOF while
                        // responses keep flowing back to us.
                        let _ = write_half.shutdown(std::net::Shutdown::Write);
                    });
                    let mut ok = 0usize;
                    let mut failed = 0usize;
                    for (seen, line) in BufReader::new(stream).lines().enumerate() {
                        let line = line.expect("read result line");
                        // Results must echo this connection's 0-based
                        // line numbers, in order.
                        assert!(
                            line.starts_with(&format!("{{\"job\":{seen},")),
                            "out-of-order or misnumbered result: {line}"
                        );
                        if line.contains("\"ok\":true") {
                            ok += 1;
                        } else {
                            failed += 1;
                        }
                    }
                    writer.join().expect("writer thread");
                    (ok, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    })
}

fn main() -> ExitCode {
    let mut conns = 4usize;
    let mut jobs_per_conn = if std::env::var_os("GA_BENCH_QUICK").is_some() {
        1_200
    } else {
        6_000
    };
    let mut connect = None;
    let mut net = NetConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let r = match arg.as_str() {
            "--conns" => value("--conns").and_then(|v| {
                v.parse()
                    .map(|n: usize| conns = n.max(1))
                    .map_err(|e| format!("--conns: {e}"))
            }),
            "--jobs" => value("--jobs").and_then(|v| {
                v.parse()
                    .map(|n: usize| jobs_per_conn = n.max(1))
                    .map_err(|e| format!("--jobs: {e}"))
            }),
            "--threads" => value("--threads").and_then(|v| {
                v.parse()
                    .map(|n: usize| net.serve.threads = n.max(1))
                    .map_err(|e| format!("--threads: {e}"))
            }),
            "--connect" => value("--connect").map(|v| connect = Some(v)),
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(msg) = r {
            eprintln!("serve_load: {msg}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(target) = connect {
        // Pure-client mode: burst against an external listener. The
        // server owns the stats; here we only verify that every line
        // came back once, in order, and green.
        let addr = match target.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(a) => a,
            None => {
                eprintln!("serve_load: cannot resolve {target}");
                return ExitCode::FAILURE;
            }
        };
        let t = Instant::now();
        let per_conn = run_clients(addr, conns, jobs_per_conn);
        let wall = t.elapsed().as_secs_f64();
        let total_ok: usize = per_conn.iter().map(|&(ok, _)| ok).sum();
        let total_failed: usize = per_conn.iter().map(|&(_, f)| f).sum();
        let expected = conns * jobs_per_conn;
        assert_eq!(total_ok + total_failed, expected, "every line answered");
        assert_eq!(total_failed, 0, "burst must be green");
        eprintln!(
            "serve_load: {expected} jobs over {conns} conns to {addr} \
             in {wall:.3}s [{:.0} jobs/s client-side]",
            expected as f64 / wall,
        );
        return ExitCode::SUCCESS;
    }

    let server = match Server::bind("127.0.0.1:0", net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_load: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let per_conn = run_clients(addr, conns, jobs_per_conn);
    let summary = server.drain();
    let stats = &summary.stats;

    let total_ok: usize = per_conn.iter().map(|&(ok, _)| ok).sum();
    let total_failed: usize = per_conn.iter().map(|&(_, f)| f).sum();
    let expected = conns * jobs_per_conn;
    assert_eq!(
        total_ok + total_failed,
        expected,
        "every submitted line must come back exactly once"
    );
    assert_eq!(total_failed, 0, "load run must be green");
    assert_eq!(stats.jobs() as usize, expected, "server-side job count");
    assert_eq!(stats.degraded, 0, "no degraded lanes under load");

    let beh = stats.counters(BackendKind::Behavioral);
    eprintln!(
        "serve_load: {} jobs over {} conns in {:.3}s [{:.0} jobs/s, \
         {} threads, {} packs / {} lanes; behavioral p50/p95/p99/max = \
         {}/{}/{}/{} us]",
        stats.jobs(),
        summary.admission.connections,
        stats.wall_seconds,
        stats.jobs_per_sec(),
        stats.threads_used,
        stats.packs,
        stats.packed_lanes,
        beh.histo.percentile(0.50),
        beh.histo.percentile(0.95),
        beh.histo.percentile(0.99),
        beh.max_micros,
    );
    stats.to_report().emit_or_warn();
    ExitCode::SUCCESS
}
