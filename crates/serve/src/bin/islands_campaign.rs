//! `islands_campaign` — the sharded multi-process island proof run.
//!
//! Three phases over one island job (BF6, 3 islands × 4-generation
//! epochs × 3 epochs, the Table III operator rates):
//!
//! 1. **Reference**: the in-process [`ga_engine::IslandsDriver`] run,
//!    recording the [`CheckpointBundle`] at every epoch barrier.
//! 2. **Sharded**: one `gaserved --island-worker` process per island,
//!    ring-routed by [`ga_serve::Coordinator`]; every barrier's bundle
//!    must equal the in-process one byte for byte.
//! 3. **Kill + resume**: a fresh sharded run is killed after its first
//!    barrier (one worker process is SIGKILLed mid-epoch; the
//!    coordinator surfaces the broken shard as a typed error), then
//!    resumed from the durable checkpoint file on *bitsim64* workers —
//!    snapshots are backend-neutral — and must finish bit-identically.
//!
//! Emits `BENCH_islands.json` (honoring `GA_BENCH_OUT`) with the floor
//! metrics CI checks: shards, epochs, migrations, checkpoint bytes,
//! resume count, resume exactness, and per-barrier trajectory matches.
//! Exits nonzero on any divergence.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Instant;

use ga_bench::BenchReport;
use ga_core::islands::IslandConfig;
use ga_core::GaParams;
use ga_engine::{CheckpointBundle, IslandsEngine};
use ga_fitness::TestFunction;
use ga_serve::islands::read_checkpoint;
use ga_serve::{BackendKind, Coordinator, GaJob};

/// One worker process: `gaserved --island-worker 127.0.0.1:0`, with the
/// announced ephemeral address scraped off its stdout.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn(gaserved: &PathBuf) -> Result<Worker, String> {
        let mut child = Command::new(gaserved)
            .args(["--island-worker", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", gaserved.display()))?;
        let stdout = child.stdout.take().ok_or("no stdout pipe")?;
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("worker announce: {e}"))?;
        let addr = line
            .strip_prefix("listening ")
            .ok_or_else(|| format!("bad announce line {line:?}"))?
            .trim()
            .to_string();
        Ok(Worker { child, addr })
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_ring(gaserved: &PathBuf, n: usize) -> Result<Vec<Worker>, String> {
    (0..n).map(|_| Worker::spawn(gaserved)).collect()
}

fn addrs(ring: &[Worker]) -> Vec<String> {
    ring.iter().map(|w| w.addr.clone()).collect()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("islands_campaign: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let t0 = Instant::now();
    let gaserved = match std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("gaserved")))
        .filter(|p| p.exists())
    {
        Some(p) => p,
        None => return fail("gaserved not found next to this binary (build it first)"),
    };

    let config = IslandConfig {
        islands: 3,
        epoch: 4,
        epochs: 3,
    };
    let job = GaJob::new(
        TestFunction::Bf6,
        BackendKind::Behavioral,
        GaParams::new(16, 12, 10, 1, 0x2961),
    )
    .with_islands(config);
    let ckpt = std::env::temp_dir().join(format!("islands_campaign_{}.ckpt", std::process::id()));

    // Phase 1 — the in-process reference trajectory, barrier by barrier.
    let engine = ga_engine::global().get(job.backend).expect("registered");
    let composite = IslandsEngine::new(engine, config).expect("behavioral steps");
    let mut driver = composite.start(job.spec()).expect("starts");
    let mut reference_bundles: Vec<CheckpointBundle> = Vec::new();
    while !driver.done() {
        reference_bundles.push(driver.step_epoch());
    }
    let reference = driver.finish();
    let checkpoint_bytes = reference_bundles
        .last()
        .map(|b| b.encode().len())
        .unwrap_or(0);

    // Phase 2 — the sharded run must reproduce every barrier exactly.
    let mut trajectory_matches = 0u64;
    let mut migrations = 0u64;
    {
        let mut ring = match spawn_ring(&gaserved, config.islands) {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        let run = (|| -> Result<(), String> {
            let mut coord = Coordinator::connect(&job, &addrs(&ring), &ckpt, None)?;
            for want in &reference_bundles {
                let got = coord.step_epoch()?;
                if got != *want {
                    return Err(format!(
                        "barrier {} bundle diverged from the in-process driver",
                        want.epochs_done
                    ));
                }
                trajectory_matches += 1;
            }
            migrations = coord.migrations;
            let sharded = coord.finish()?;
            if sharded != reference {
                return Err("sharded run result diverged from the in-process run".into());
            }
            Ok(())
        })();
        for w in &mut ring {
            w.kill();
        }
        if let Err(e) = run {
            return fail(&e);
        }
    }

    // Phase 3 — kill a worker mid-run, resume from the last durable
    // checkpoint on the *other* stepping backend.
    let mut resume_count = 0u64;
    let mut resume_exact = 0u64;
    {
        let mut ring = match spawn_ring(&gaserved, config.islands) {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        let first = (|| -> Result<(), String> {
            let mut coord = Coordinator::connect(&job, &addrs(&ring), &ckpt, None)?;
            coord.step_epoch()?; // barrier 1 lands in the checkpoint file
            ring[1].kill(); // the "crash": SIGKILL one shard process
            match coord.step_epoch() {
                Ok(_) => Err("coordinator did not notice the killed shard".into()),
                Err(e) => {
                    eprintln!("islands_campaign: killed shard surfaced as: {e}");
                    Ok(())
                }
            }
        })();
        for w in &mut ring {
            w.kill();
        }
        if let Err(e) = first {
            return fail(&e);
        }

        let bundle = match read_checkpoint(&ckpt) {
            Ok(b) => b,
            Err(e) => return fail(&format!("checkpoint did not survive the crash: {e}")),
        };
        if bundle.epochs_done != 1 {
            return fail(&format!(
                "expected the barrier-1 checkpoint, found epochs_done {}",
                bundle.epochs_done
            ));
        }
        let resumed_job = GaJob {
            backend: BackendKind::BitSim64,
            ..job
        };
        let mut ring = match spawn_ring(&gaserved, config.islands) {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        let resumed = (|| -> Result<(), String> {
            let mut coord =
                Coordinator::connect(&resumed_job, &addrs(&ring), &ckpt, Some(&bundle))?;
            resume_count += 1;
            while !coord.done() {
                let got = coord.step_epoch()?;
                if got != reference_bundles[got.epochs_done as usize - 1] {
                    return Err(format!("resumed barrier {} diverged", got.epochs_done));
                }
                trajectory_matches += 1;
            }
            if coord.finish()? != reference {
                return Err("resumed run result diverged from the reference".into());
            }
            resume_exact += 1;
            Ok(())
        })();
        for w in &mut ring {
            w.kill();
        }
        if let Err(e) = resumed {
            return fail(&e);
        }
    }
    let _ = std::fs::remove_file(&ckpt);

    let wall = t0.elapsed().as_secs_f64();
    // Sharded epochs actually executed: the full phase-2 run, the one
    // pre-kill epoch, and the resumed tail.
    let epochs_run = (config.epochs + 1 + (config.epochs - 1)) as u64;
    println!(
        "islands_campaign: {} shards × {} epochs sharded + killed + resumed in {wall:.3}s \
         ({} barrier bundles bit-identical, {} migrations, checkpoint {} bytes)",
        config.islands, config.epochs, trajectory_matches, migrations, checkpoint_bytes
    );
    BenchReport::new(
        "islands",
        wall,
        config.islands as u64,
        config.islands as u64,
    )
    .metric("shards", config.islands as f64)
    .metric("epochs", config.epochs as f64)
    .metric("migrations", migrations as f64)
    .metric("checkpoint_bytes", checkpoint_bytes as f64)
    .metric("resume_count", resume_count as f64)
    .metric("resume_exact", resume_exact as f64)
    .metric("trajectory_matches", trajectory_matches as f64)
    .metric("epochs_per_sec", epochs_run as f64 / wall)
    .metric("best_fitness", reference.best.fitness as f64)
    .emit_or_warn();
    ExitCode::SUCCESS
}
