//! # ga-serve — a job-oriented GA execution service
//!
//! The layer where every engine of the reproduction sits behind one
//! production-shaped API. A batch of [`GaJob`]s (chromosome width,
//! fitness-function selection, the Table III parameters, seed,
//! generation budget, optional wall-clock deadline) is planned into
//! units (solos and multi-lane packs), distributed over scoped workers
//! by an atomic claim loop (`ga_bench::run_sweep`), and each job is
//! dispatched through the **engine registry** (`ga_engine::global`) to
//! whichever backend it names — `behavioral`, `rtl`, the wide-lane
//! `bitsim64`/`bitsim128`/`bitsim256` family, `swga`, or the 32-bit
//! `rtl32` composite. The service itself contains no per-engine drive
//! loops: admission, packing eligibility (`pack_width`), and the
//! degradation policy (`degrades_to`) are all read off each engine's
//! [`ga_engine::Capabilities`].
//!
//! The service provides a bounded job queue with backpressure for
//! streaming submitters ([`BoundedQueue`]: the submitter blocks while
//! the queue is full), per-job timeout/cancellation with a typed
//! [`ServeError`], and **deterministic, input-ordered results** —
//! result *i* always belongs to `jobs[i]`, whatever the thread count
//! or backend mix. The `gaserved` binary drives the service offline
//! over JSONL files and surfaces per-backend throughput/latency
//! counters — plus the pack-path throughput and the compiled-netlist
//! cache hit/miss deltas — through `ga-bench`'s `BenchReport` as
//! `BENCH_serve.json`.

pub mod backend;
pub mod islands;
pub mod job;
pub mod jsonl;
pub mod net;
pub mod pack;
pub mod queue;
pub mod service;

pub use islands::{read_checkpoint, serve_island_worker, write_checkpoint, Coordinator};
pub use job::{
    BackendKind, GaJob, HealReport, JobOutput, JobResult, ServeError, Workload, CHROM_WIDTH,
};
pub use net::{AdmissionStats, DrainSummary, NetConfig, Server};
pub use pack::{ca_lane_streams, draws_per_run, StreamRng};
pub use queue::BoundedQueue;
pub use service::{
    serve_batch, BackendCounters, LatencyHisto, ServeConfig, ServeOutcome, ServeStats,
};
