//! # ga-serve — a job-oriented GA execution service
//!
//! The first layer where all three engines of the reproduction sit
//! behind one production-shaped API. A batch of [`GaJob`]s (chromosome
//! width, fitness-function selection, the Table III parameters, seed,
//! generation budget, optional wall-clock deadline) is sharded across a
//! scoped-thread worker pool and each job is dispatched to a pluggable
//! backend:
//!
//! * [`BackendKind::Behavioral`] — the reference algorithm
//!   (`ga_core::GaEngine` over the `carng` CA PRNG);
//! * [`BackendKind::RtlInterp`] — the cycle-accurate hardware system
//!   (`ga_core::GaSystem`), with both a simulated-cycle watchdog and a
//!   host wall-clock deadline;
//! * [`BackendKind::BitSim64`] — up to 64 *compatible* jobs (same
//!   population size and generation count, hence the same RNG draw
//!   schedule) packed into one 64-lane run of the compiled CA-RNG
//!   netlist (`ga_synth::bitsim`), each lane feeding its own GA engine.
//!
//! The service provides a bounded job queue with backpressure
//! ([`BoundedQueue`]: the submitter blocks while the queue is full),
//! per-job timeout/cancellation with a typed [`ServeError`], and
//! **deterministic, input-ordered results** — result *i* always belongs
//! to `jobs[i]`, whatever the thread count or backend mix. The
//! `gaserved` binary drives the service offline over JSONL files and
//! surfaces per-backend throughput/latency counters through
//! `ga-bench`'s `BenchReport` as `BENCH_serve.json`.

pub mod backend;
pub mod job;
pub mod jsonl;
pub mod pack;
pub mod queue;
pub mod service;

pub use job::{BackendKind, GaJob, JobOutput, JobResult, ServeError, CHROM_WIDTH};
pub use pack::{ca_lane_streams, draws_per_run, StreamRng};
pub use queue::BoundedQueue;
pub use service::{serve_batch, BackendCounters, ServeConfig, ServeOutcome, ServeStats};
