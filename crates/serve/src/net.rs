//! The persistent TCP front-end: `gaserved --listen`.
//!
//! Each accepted connection speaks exactly the batch-mode JSONL wire
//! format — one job per line in, one result line out per non-empty
//! input line, in input order, with the `job` field echoing the 0-based
//! input line number (blank lines advance the numbering but produce no
//! output, same as the file path). Because the per-line results are
//! deterministic and timing-free, a golden `results.jsonl` produced by
//! the batch binary diffs byte-identical against what a socket client
//! streams back.
//!
//! Layering (mirrors the batch scheduler, shares its execution path):
//!
//! * one **reader thread per connection** parses lines, applies
//!   admission control (per-connection quota, token-bucket rate limit,
//!   then the shared [`BoundedQueue`] — blocking backpressure by
//!   default, `try_push` load-shedding when [`NetConfig::shed`] is on)
//!   and answers every rejected line immediately with a typed
//!   [`ServeError`] line, so nothing ever goes unanswered;
//! * a fixed **worker pool** pops work items, opportunistically gathers
//!   packable same-key jobs from the queue
//!   ([`BoundedQueue::take_matching`]) up to the backend's pack width,
//!   and routes every unit through the batch scheduler's
//!   panic-isolating, retrying executor
//!   (`service::exec_unit_with_recovery`) — the streaming path gets the
//!   same degradation and recovery semantics for free;
//! * a per-connection **reorder buffer** puts completed results back on
//!   the wire in input order however the pool interleaves them.
//!
//! [`Server::drain`] is the graceful-shutdown path the CI step and the
//! stdin-EOF trigger in `gaserved --listen` exercise: stop accepting,
//! give connected clients a grace window to finish submitting, force
//! EOF on the laggards' read halves, run the queue dry, and only then
//! join the pool — every job admitted before the drain gets its result
//! line flushed. The merged [`ServeStats`] (per-worker histograms and
//! counters folded together) is returned so the listener can emit the
//! same `BENCH_serve.json` report as the batch binary.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ga_bench::Stopwatch;

use crate::job::{GaJob, JobResult, ServeError};
use crate::jsonl;
use crate::queue::{relock, BoundedQueue};
use crate::service::{exec_unit_with_recovery, ServeConfig, ServeStats, Unit};

/// Tuning knobs for the socket front-end, wrapping the scheduler's
/// [`ServeConfig`] (worker count, queue capacity, watchdogs, retry).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The execution-layer configuration (threads = worker pool size,
    /// queue_capacity = the shared admission queue's bound).
    pub serve: ServeConfig,
    /// Per-connection job quota; once a connection has submitted this
    /// many jobs, every further line is answered with
    /// [`ServeError::QuotaExceeded`]. `0` = unlimited.
    pub max_jobs_per_conn: u64,
    /// Sustained per-connection submission rate (token bucket refill,
    /// jobs/second). Lines arriving with the bucket empty are answered
    /// with [`ServeError::RateLimited`]. `0` = unlimited.
    pub rate_per_sec: u32,
    /// Token-bucket burst capacity (the bucket's size). Clamped to at
    /// least 1 when rate limiting is on.
    pub rate_burst: u32,
    /// Load-shed instead of blocking: admit via
    /// [`BoundedQueue::try_push`] and answer
    /// [`ServeError::QueueFull`] lines when the queue is at capacity,
    /// rather than parking the reader (backpressure). Off by default —
    /// blocking keeps golden-fixture streams deterministic.
    pub shed: bool,
    /// How long [`Server::drain`] waits for connected clients to hang
    /// up on their own before forcing EOF on their read halves.
    pub drain_grace_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            serve: ServeConfig::default(),
            max_jobs_per_conn: 0,
            rate_per_sec: 0,
            rate_burst: 0,
            shed: false,
            drain_grace_ms: 2_000,
        }
    }
}

/// Admission/rejection counters the reader threads keep, aggregated
/// across the server's lifetime. These count *lines answered without
/// reaching a backend*, so they sit beside — not inside — the
/// per-backend [`ServeStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Connections accepted.
    pub connections: u64,
    /// Non-empty lines read across all connections.
    pub lines: u64,
    /// Lines rejected with a `parse` error.
    pub rejected_parse: u64,
    /// Lines rejected with `quota_exceeded`.
    pub rejected_quota: u64,
    /// Lines rejected with `rate_limited`.
    pub rejected_rate: u64,
    /// Lines shed with `queue_full` (only in [`NetConfig::shed`] mode).
    pub shed_queue_full: u64,
    /// Lines refused with `queue_closed` (raced the drain).
    pub rejected_closed: u64,
}

/// What [`Server::drain`] hands back: the merged execution stats (the
/// `BENCH_serve.json` source) plus the admission-layer counters.
#[derive(Debug, Clone)]
pub struct DrainSummary {
    /// Merged per-backend counters/histograms, pack accounting, cache
    /// deltas, pool size, and server wall time.
    pub stats: ServeStats,
    /// Reader-side admission counters.
    pub admission: AdmissionStats,
}

/// One queued unit of work: a parsed job plus everything needed to put
/// its result line back on the right connection in the right order.
struct WorkItem {
    job: GaJob,
    /// Wire-level job id: the 0-based input line number on its
    /// connection (blank lines advance it).
    line: usize,
    /// Per-connection response slot (dense — one per answered line).
    seq: u64,
    conn: Arc<ConnState>,
}

/// The write half of one connection: results are inserted by seq and
/// flushed to the socket strictly in order.
struct ConnState {
    stream: TcpStream,
    out: Mutex<Reorder>,
}

struct Reorder {
    next: u64,
    pending: BTreeMap<u64, String>,
}

impl ConnState {
    /// Park `line` at slot `seq`; write every now-contiguous line to
    /// the socket. Write errors are swallowed — a client that hung up
    /// mid-stream forfeits its remaining results, but the jobs still
    /// count in the server stats.
    fn emit(&self, seq: u64, line: String) {
        let mut o = relock(self.out.lock());
        o.pending.insert(seq, line);
        loop {
            let next = o.next;
            let Some(text) = o.pending.remove(&next) else {
                break;
            };
            let mut w = &self.stream;
            let _ = w
                .write_all(text.as_bytes())
                .and_then(|()| w.write_all(b"\n"));
            o.next += 1;
        }
    }
}

/// Token bucket for the per-connection rate limit. `per_sec == 0`
/// disables it.
struct TokenBucket {
    per_sec: f64,
    capacity: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(per_sec: u32, burst: u32) -> Self {
        let capacity = burst.max(1) as f64;
        TokenBucket {
            per_sec: per_sec as f64,
            capacity,
            tokens: capacity,
            last: Instant::now(),
        }
    }

    fn admit(&mut self) -> bool {
        if self.per_sec <= 0.0 {
            return true;
        }
        let now = Instant::now();
        self.tokens = (self.tokens + now.duration_since(self.last).as_secs_f64() * self.per_sec)
            .min(self.capacity);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// State shared by the accept loop, the connection readers, and the
/// worker pool.
struct Shared {
    cfg: NetConfig,
    queue: BoundedQueue<WorkItem>,
    shutdown: AtomicBool,
    active_conns: AtomicU64,
    next_conn_id: AtomicU64,
    admission: Mutex<AdmissionStats>,
    /// Read-half clones of *live* connections (pruned when a reader
    /// exits — a lingering clone would hold the socket open and starve
    /// clients waiting for EOF), so drain can force EOF on clients that
    /// outstay the grace window.
    conn_streams: Mutex<Vec<(u64, TcpStream)>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// The listening server. Construct with [`Server::bind`], stop with
/// [`Server::drain`] — dropping without draining aborts connections
/// without their tails.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<ServeStats>>,
    sw: Stopwatch,
    cache_before: (u64, u64),
    threads: usize,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the accept loop plus the worker pool.
    pub fn bind(addr: &str, cfg: NetConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let threads = cfg.serve.threads.max(1);
        let queue_capacity = cfg.serve.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            cfg,
            queue: BoundedQueue::new(queue_capacity),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(0),
            admission: Mutex::new(AdmissionStats::default()),
            conn_streams: Mutex::new(Vec::new()),
            conn_handles: Mutex::new(Vec::new()),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
            workers,
            sw: Stopwatch::start(),
            cache_before: ga_engine::global_cache().counters(),
            threads,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, give connected clients
    /// [`NetConfig::drain_grace_ms`] to hang up, force EOF on the rest,
    /// run the queue dry, join the pool, and merge the stats. Every job
    /// admitted before the drain gets its result line written before
    /// this returns.
    pub fn drain(mut self) -> DrainSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is parked in `accept()`; poke it awake with a
        // throwaway connection so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Grace window: let clients that are still submitting finish
        // and close on their own terms…
        let deadline = Instant::now() + Duration::from_millis(self.shared.cfg.drain_grace_ms);
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        // …then force EOF on whoever is left. Their already-read lines
        // are in the queue and still get answered; only un-sent input
        // is cut off.
        for (_, s) in relock(self.shared.conn_streams.lock()).iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *relock(self.shared.conn_handles.lock()));
        for h in handles {
            let _ = h.join();
        }
        // No reader is alive, so nothing else will enqueue: close the
        // queue, let the workers drain the tail, and fold their stats.
        self.shared.queue.close();
        let mut stats = ServeStats::default();
        for w in self.workers.drain(..) {
            if let Ok(local) = w.join() {
                stats.merge(&local);
            }
        }
        stats.threads_used = self.threads as u64;
        stats.wall_seconds = self.sw.seconds();
        let (hits, misses) = ga_engine::global_cache().counters();
        stats.cache_hits = hits.saturating_sub(self.cache_before.0);
        stats.cache_misses = misses.saturating_sub(self.cache_before.1);
        DrainSummary {
            stats,
            admission: *relock(self.shared.admission.lock()),
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the drain poke (or a raced real client) lands here
        }
        let Ok(stream) = stream else { continue };
        relock(shared.admission.lock()).connections += 1;
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        if let Ok(read_half) = stream.try_clone() {
            relock(shared.conn_streams.lock()).push((conn_id, read_half));
        }
        let shared2 = Arc::clone(shared);
        let handle = thread::spawn(move || {
            connection_loop(&shared2, stream);
            // Drop the registered read-half clone: an fd left behind
            // would keep the socket open after the in-flight results
            // flush, and the client would never see EOF.
            relock(shared2.conn_streams.lock()).retain(|(id, _)| *id != conn_id);
            shared2.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
        relock(shared.conn_handles.lock()).push(handle);
    }
}

/// Read one connection to EOF, answering every non-empty line exactly
/// once: a queued [`WorkItem`] on success, an immediate typed error
/// line on parse failure or admission rejection.
fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let conn = Arc::new(ConnState {
        stream: write_half,
        out: Mutex::new(Reorder {
            next: 0,
            pending: BTreeMap::new(),
        }),
    });
    let mut reader = BufReader::new(stream);
    let mut bucket = TokenBucket::new(shared.cfg.rate_per_sec, shared.cfg.rate_burst);
    let mut buf = String::new();
    let mut line_no = 0usize; // wire `job` id: counts every input line
    let mut seq = 0u64; // response slot: counts answered lines only
    let mut submitted = 0u64;
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let text = jsonl::strip_line_ending(&buf);
        let line = line_no;
        line_no += 1;
        if text.trim().is_empty() {
            continue;
        }
        relock(shared.admission.lock()).lines += 1;
        let this_seq = seq;
        seq += 1;
        let reject = |err: ServeError, field: fn(&mut AdmissionStats) -> &mut u64| {
            *field(&mut relock(shared.admission.lock())) += 1;
            conn.emit(this_seq, jsonl::parse_error_line(line, &err));
        };
        let job = match jsonl::parse_job(text, line) {
            Ok(job) => job,
            Err(e) => {
                reject(e, |a| &mut a.rejected_parse);
                continue;
            }
        };
        let quota = shared.cfg.max_jobs_per_conn;
        if quota > 0 && submitted >= quota {
            reject(ServeError::QuotaExceeded { limit: quota }, |a| {
                &mut a.rejected_quota
            });
            continue;
        }
        if !bucket.admit() {
            reject(
                ServeError::RateLimited {
                    per_sec: shared.cfg.rate_per_sec,
                },
                |a| &mut a.rejected_rate,
            );
            continue;
        }
        let item = WorkItem {
            job,
            line,
            seq: this_seq,
            conn: Arc::clone(&conn),
        };
        submitted += 1;
        if shared.cfg.shed {
            if let Err((_, e)) = shared.queue.try_push(item) {
                fn shed_slot(a: &mut AdmissionStats) -> &mut u64 {
                    &mut a.shed_queue_full
                }
                fn closed_slot(a: &mut AdmissionStats) -> &mut u64 {
                    &mut a.rejected_closed
                }
                let field = if matches!(e, ServeError::QueueFull { .. }) {
                    shed_slot as fn(&mut AdmissionStats) -> &mut u64
                } else {
                    closed_slot
                };
                reject(e, field);
            }
        } else if let Err(e) = shared.queue.push(item) {
            // Only QueueClosed reaches here: the line raced the drain.
            reject(e, |a| &mut a.rejected_closed);
        }
    }
    // The reader is done; in-flight results still flush through the
    // `Arc<ConnState>` clones held by queued items. The socket closes
    // when the last of those drops.
}

/// Pop work until the queue closes and drains. Each popped job is
/// opportunistically widened into a pack with same-key jobs already
/// queued (never blocking to wait for more), then routed through the
/// batch executor for panic isolation, retry, and degradation parity.
fn worker_loop(shared: &Arc<Shared>) -> ServeStats {
    let mut stats = ServeStats::default();
    while let Some(first) = shared.queue.pop() {
        let mut items = vec![first];
        let job0 = items[0].job;
        let pack_width = ga_engine::global()
            .get(job0.backend)
            .map(|e| e.capabilities().pack_width)
            .unwrap_or(1);
        if pack_width > 1 && job0.validate().is_ok() {
            let key = (job0.backend, job0.pack_key());
            items.extend(shared.queue.take_matching(
                |it| {
                    it.job.backend == key.0
                        && it.job.pack_key() == key.1
                        && it.job.validate().is_ok()
                },
                pack_width as usize - 1,
            ));
        }
        let jobs: Vec<GaJob> = items.iter().map(|it| it.job).collect();
        let unit = if items.len() > 1 {
            Unit::Pack((0..items.len()).collect())
        } else {
            Unit::Solo(0)
        };
        let t = Instant::now();
        let results = exec_unit_with_recovery(&jobs, &unit, &shared.cfg.serve);
        if items.len() > 1 {
            stats.packs += 1;
            stats.packed_lanes += items.len() as u64;
            stats.pack_micros += t.elapsed().as_micros() as u64;
        }
        for r in results {
            // `r.job` indexes the unit-local `jobs` slice; rekey it to
            // the wire-level line number before serializing.
            let item = &items[r.job];
            let rekeyed = JobResult {
                job: item.line,
                ..r
            };
            stats.absorb_result(&rekeyed);
            item.conn.emit(item.seq, jsonl::result_line(&rekeyed));
        }
    }
    stats
}
