//! Job packing for the 64-lane bitsim backend.
//!
//! The packing machinery (draw-schedule formula, lockstep lane-stream
//! extraction, the replaying [`StreamRng`]) lives in the engine layer
//! now — `ga_engine::pack` — because it belongs to the `bitsim64`
//! engine adapter, not to the service. Re-exported here so existing
//! `ga_serve::pack::…` paths keep working.

pub use ga_engine::pack::{ca_lane_streams, draws_per_run, try_ca_lane_streams, StreamRng};
