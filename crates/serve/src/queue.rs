//! A bounded MPMC job queue with blocking backpressure.
//!
//! The serving layer deliberately uses a *bounded* queue: a submitter
//! that outruns the worker pool blocks in [`BoundedQueue::push`] until
//! a worker drains a slot, so memory stays proportional to
//! `capacity + workers` however large the offered batch is. The
//! non-blocking [`BoundedQueue::try_push`] surfaces the same condition
//! as a typed [`ServeError::QueueFull`] for callers that would rather
//! shed load than wait.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::job::ServeError;

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Take the queue lock, recovering from poisoning.
///
/// A worker that panics mid-job poisons every mutex it holds; with
/// `expect("queue lock poisoned")` that one panic used to cascade
/// through every producer and consumer parked on the queue, killing the
/// whole batch. The queue state itself (a `VecDeque` plus a flag) is
/// updated atomically under the lock with no multi-step invariant a
/// panic can tear, so the guard inside the `PoisonError` is always
/// valid to keep using — the panicking job is failed upstream by the
/// worker pool, and everyone else keeps flowing.
pub(crate) fn relock<'a, T>(
    result: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Bounded multi-producer/multi-consumer FIFO (mutex + condvars — the
/// std-only equivalent of a crossbeam channel, matching the workspace's
/// no-external-deps constraint).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a bounded queue needs at least one slot");
        BoundedQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        relock(self.state.lock()).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, **blocking while the queue is full** (backpressure).
    /// Fails only if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), ServeError> {
        let mut st = relock(self.state.lock());
        loop {
            if st.closed {
                return Err(ServeError::QueueClosed);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = relock(self.not_full.wait(st));
        }
    }

    /// Non-blocking enqueue. On failure the item is handed back along
    /// with the typed reason.
    pub fn try_push(&self, item: T) -> Result<(), (T, ServeError)> {
        let mut st = relock(self.state.lock());
        if st.closed {
            return Err((item, ServeError::QueueClosed));
        }
        if st.items.len() >= self.capacity {
            return Err((
                item,
                ServeError::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        st.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while empty. Returns `None` once the queue is
    /// closed *and* drained — the worker-loop termination condition.
    pub fn pop(&self) -> Option<T> {
        let mut st = relock(self.state.lock());
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = relock(self.not_empty.wait(st));
        }
    }

    /// Close the queue: pending items still drain, new pushes fail,
    /// and blocked poppers wake up with `None` once empty.
    pub fn close(&self) {
        relock(self.state.lock()).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Non-blocking bulk dequeue of up to `max` queued items matching
    /// `pred`, in FIFO order. Non-matching items stay queued in place.
    ///
    /// This is the streaming path's pack-gathering primitive: a worker
    /// that popped a bitsim job scans the queue for more lanes with the
    /// same pack key without blocking behind (or reordering) jobs bound
    /// for other backends. Freed slots wake parked pushers.
    pub fn take_matching(&self, mut pred: impl FnMut(&T) -> bool, max: usize) -> Vec<T> {
        let mut st = relock(self.state.lock());
        let mut taken = Vec::new();
        let mut keep = VecDeque::with_capacity(st.items.len());
        while let Some(item) = st.items.pop_front() {
            if taken.len() < max && pred(&item) {
                taken.push(item);
            } else {
                keep.push_back(item);
            }
        }
        st.items = keep;
        if !taken.is_empty() {
            self.not_full.notify_all();
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).expect("open queue accepts");
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_push_reports_full_with_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("slot 1");
        q.try_push(2).expect("slot 2");
        let (item, err) = q.try_push(3).expect_err("third push must fail");
        assert_eq!(item, 3);
        assert_eq!(err, ServeError::QueueFull { capacity: 2 });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_blocks_until_a_worker_drains() {
        // One-slot queue: the second push must park until pop frees the
        // slot — the backpressure contract.
        let q = BoundedQueue::new(1);
        q.push(10).expect("first push fits");
        let second_done = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                q.push(20).expect("unblocks after pop");
                second_done.store(true, Ordering::SeqCst);
            });
            // Give the pusher a moment to park on the full queue.
            thread::sleep(Duration::from_millis(50));
            assert!(
                !second_done.load(Ordering::SeqCst),
                "push returned while the queue was still full"
            );
            assert_eq!(q.pop(), Some(10));
            // Now the parked push completes.
            while !second_done.load(Ordering::SeqCst) {
                thread::yield_now();
            }
            assert_eq!(q.pop(), Some(20));
        });
    }

    #[test]
    fn close_wakes_blocked_poppers_and_rejects_pushes() {
        let q: BoundedQueue<u8> = BoundedQueue::new(4);
        thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().expect("popper exits cleanly"), None);
        });
        assert_eq!(q.push(1), Err(ServeError::QueueClosed));
        let (_, err) = q.try_push(2).expect_err("closed");
        assert_eq!(err, ServeError::QueueClosed);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_cascaded() {
        // Panic while holding the state mutex (what a crashing worker
        // does to any lock it holds) and confirm every queue operation
        // keeps working instead of propagating the poison.
        let q = BoundedQueue::new(4);
        q.push(1).expect("pre-poison push");
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = q.state.lock().expect("not yet poisoned");
            panic!("worker crashed while holding the queue lock");
        }));
        assert!(unwind.is_err());
        assert!(q.state.is_poisoned(), "test must actually poison the lock");
        assert_eq!(q.len(), 1);
        q.push(2).expect("push after poison");
        q.try_push(3).expect("try_push after poison");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        q.close();
        assert_eq!(q.pop(), None, "close still wakes poppers after poison");
    }

    #[test]
    fn take_matching_is_selective_and_order_preserving() {
        let q = BoundedQueue::new(8);
        for i in 0..8 {
            q.push(i).expect("open");
        }
        let evens = q.take_matching(|v| v % 2 == 0, 3);
        assert_eq!(evens, vec![0, 2, 4], "FIFO among matches, capped at max");
        let rest: Vec<i32> = {
            q.close();
            std::iter::from_fn(|| q.pop()).collect()
        };
        assert_eq!(rest, vec![1, 3, 5, 6, 7], "non-taken items keep order");
    }

    #[test]
    fn take_matching_frees_slots_for_parked_pushers() {
        let q = BoundedQueue::new(2);
        q.push(1).expect("slot 1");
        q.push(2).expect("slot 2");
        let pushed = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                q.push(3).expect("unblocks after take_matching");
                pushed.store(true, Ordering::SeqCst);
            });
            thread::sleep(Duration::from_millis(20));
            assert!(!pushed.load(Ordering::SeqCst), "queue still full");
            assert_eq!(q.take_matching(|_| true, 2), vec![1, 2]);
            while !pushed.load(Ordering::SeqCst) {
                thread::yield_now();
            }
        });
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_wakes_every_pusher_parked_on_a_full_queue() {
        // The listener's drain path: producers are parked in `push` on a
        // *full* queue when `close()` lands. Every parked pusher must
        // wake with `QueueClosed`, and the queue must afterwards hold
        // exactly the accepted items — nothing lost, nothing duplicated,
        // no pusher left parked forever (the scope would deadlock).
        let q = BoundedQueue::new(2);
        let accepted = Mutex::new(Vec::new());
        let rejected = Mutex::new(Vec::new());
        let drained = thread::scope(|s| {
            for p in 0..4u32 {
                let (q, accepted, rejected) = (&q, &accepted, &rejected);
                s.spawn(move || {
                    let mut closed_seen = false;
                    for i in 0..100u32 {
                        let item = p * 1000 + i;
                        match q.push(item) {
                            Ok(()) => {
                                assert!(
                                    !closed_seen,
                                    "push succeeded after QueueClosed was observed"
                                );
                                accepted.lock().expect("acc").push(item);
                            }
                            Err(e) => {
                                assert_eq!(e, ServeError::QueueClosed);
                                closed_seen = true;
                                rejected.lock().expect("rej").push(item);
                            }
                        }
                    }
                });
            }
            // One deliberately slow consumer keeps the queue pinned at
            // capacity so pushers spend most of their time parked…
            let drained = s.spawn(|| {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                    thread::sleep(Duration::from_micros(200));
                }
                got
            });
            // …then close lands mid-flight, while pushers are parked.
            thread::sleep(Duration::from_millis(20));
            q.close();
            drained.join().expect("consumer exits")
        });
        let mut acc = accepted.into_inner().expect("acc");
        let rej = rejected.into_inner().expect("rej");
        assert_eq!(
            acc.len() + rej.len(),
            400,
            "every push got exactly one verdict"
        );
        assert!(!acc.is_empty(), "close landed before any push succeeded");
        assert!(!rej.is_empty(), "close landed after every push finished");
        let mut got = drained;
        got.sort_unstable();
        acc.sort_unstable();
        assert_eq!(got, acc, "drained multiset != accepted multiset");
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = BoundedQueue::new(4);
        let total = 200usize;
        let got = Mutex::new(Vec::new());
        thread::scope(|s| {
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..total / 4 {
                            q.push(p * 1000 + i).expect("open");
                        }
                    })
                })
                .collect();
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(v) = q.pop() {
                        got.lock().expect("collector").push(v);
                    }
                });
            }
            for p in producers {
                p.join().expect("producer exits");
            }
            q.close(); // consumers drain the remainder and see None
        });
        let mut all = got.into_inner().expect("collector");
        all.sort_unstable();
        assert_eq!(all.len(), total);
        all.dedup();
        assert_eq!(all.len(), total, "duplicated or lost items");
    }
}
