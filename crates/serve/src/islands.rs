//! Sharded multi-process islands: one `gaserved --island-worker`
//! process per island, a [`Coordinator`] doing ring routing, and a
//! drain-safe checkpoint file — the serve-layer realization of the
//! multi-FPGA island deployments of §II-B, where each board evolves its
//! own population and migrants travel over a physical link.
//!
//! The worker speaks a line-oriented flat-JSON op protocol over one
//! accepted TCP connection (the same hand-rolled [`crate::jsonl`]
//! parser as the job schema — no external deps):
//!
//! ```text
//! → {"op":"init","fn":"BF6","backend":"behavioral","pop":16,"gens":12,
//!    "xover":10,"mut":1,"seed":10593,"islands":3,"shard":1}
//! ← {"ok":true,"seed":43690}
//! → {"op":"epoch","gens":4}            evolve 4 generations
//! ← {"ok":true,"chrom":513,"fitness":2800}
//! → {"op":"inject","chrom":777,"fitness":3000}
//! ← {"ok":true}
//! → {"op":"snapshot"}
//! ← {"ok":true,"snapshot":"4753…"}     EngineSnapshot hex
//! → {"op":"finish"}
//! ← {"ok":true,"chrom":513,"fitness":3000,"evaluations":96}
//! ```
//!
//! `init` may carry `"snapshot":"<hex>"` to restore the member at a
//! checkpointed barrier instead of generating an initial population —
//! that is the resume path, and because an [`EngineSnapshot`] is
//! backend-neutral, a run checkpointed on `behavioral` workers resumes
//! on `bitsim64` workers bit-identically (and vice versa).
//!
//! The [`Coordinator`] replicates [`ga_core::islands::IslandRing`]'s
//! epoch loop *exactly* — evolve all shards, collect **all** bests,
//! then inject best *k* into shard *(k+1) mod n*, then snapshot — so a
//! multi-process [`CheckpointBundle`] is byte-identical to the
//! in-process [`ga_engine::IslandsDriver`] one at the same barrier.
//! Every barrier's bundle is flushed to the checkpoint file via
//! write-to-temp + rename, so a coordinator killed mid-write leaves the
//! previous complete checkpoint intact.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};

use ga_core::islands::{island_seed, IslandConfig, IslandRun};
use ga_core::snapshot::EngineSnapshot;
use ga_core::{GaParams, Individual};
use ga_engine::{CheckpointBundle, RunSpec};

use crate::job::{function_by_name, BackendKind, GaJob, Workload};
use crate::jsonl::{as_int, as_str, escape_string, parse_object, strip_line_ending, JsonValue};

/// Bind `addr`, announce `listening <addr>` on stdout (so `:0` is
/// scriptable, mirroring `gaserved --listen`), accept **one**
/// connection and serve the island-worker op protocol on it until
/// `finish` or EOF.
pub fn serve_island_worker(addr: &str) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?;
    println!("listening {local}");
    let (stream, _) = listener
        .accept()
        .map_err(|e| format!("accept failed: {e}"))?;
    serve_island_connection(stream)
}

/// Serve the worker op protocol on an already-accepted connection.
/// Op-level failures (bad line, op before `init`, snapshot that does
/// not restore) are `{"ok":false,"error":…}` replies — the connection
/// survives them; only transport errors and `finish` end the loop.
pub fn serve_island_connection(stream: TcpStream) -> Result<(), String> {
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut member: Option<Box<dyn ga_core::IslandMember>> = None;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Ok(()); // coordinator went away; nothing to flush
        }
        let text = strip_line_ending(&line);
        if text.trim().is_empty() {
            continue;
        }
        let (reply, done) = match worker_op(text, &mut member) {
            Ok((reply, done)) => (reply, done),
            Err(msg) => (
                format!("{{\"ok\":false,\"error\":\"{}\"}}", escape_string(&msg)),
                false,
            ),
        };
        writer
            .write_all(format!("{reply}\n").as_bytes())
            .and_then(|_| writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        if done {
            return Ok(());
        }
    }
}

/// Execute one op line against the worker's member slot. Returns the
/// reply line and whether the connection is finished.
fn worker_op(
    text: &str,
    member: &mut Option<Box<dyn ga_core::IslandMember>>,
) -> Result<(String, bool), String> {
    let pairs = parse_object(text)?;
    let field = |name: &str| -> Option<&JsonValue> {
        pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    };
    let int = |name: &str, min: u64, max: u64| -> Result<u64, String> {
        let v = field(name).ok_or_else(|| format!("missing key {name:?}"))?;
        as_int(name, v, min, max)
    };
    let op = match field("op") {
        Some(v) => as_str("op", v)?,
        None => return Err("missing key \"op\"".into()),
    };
    match op.as_str() {
        "init" => {
            let fname = as_str("fn", field("fn").ok_or("missing key \"fn\"")?)?;
            let function = function_by_name(&fname)
                .ok_or_else(|| format!("unknown fitness function {fname:?}"))?;
            let bname = as_str(
                "backend",
                field("backend").ok_or("missing key \"backend\"")?,
            )?;
            let backend =
                BackendKind::parse(&bname).ok_or_else(|| format!("unknown backend {bname:?}"))?;
            let islands = int("islands", 1, 1024)? as usize;
            let shard = int("shard", 0, islands as u64 - 1)? as usize;
            let seed = island_seed(int("seed", 0, u16::MAX as u64)? as u16, shard, islands);
            let spec = RunSpec {
                width: crate::job::CHROM_WIDTH,
                workload: Workload::Function(function),
                params: GaParams {
                    pop_size: int("pop", 0, u8::MAX as u64)? as u8,
                    n_gens: int("gens", 1, u32::MAX as u64)? as u32,
                    xover_threshold: int("xover", 0, 255)? as u8,
                    mut_threshold: int("mut", 0, 255)? as u8,
                    seed,
                },
                deadline_ms: None,
            };
            let engine = ga_engine::global()
                .get(backend)
                .ok_or_else(|| format!("backend {bname} is not registered"))?;
            let prepared = engine.prepare(spec).map_err(|e| e.to_string())?;
            let mut m = engine
                .stepper(&prepared)
                .ok_or_else(|| format!("backend {bname} has no stepping handle"))?;
            match field("snapshot") {
                // Resume path: install the checkpointed state instead of
                // drawing an initial population.
                Some(v) => {
                    let hex = as_str("snapshot", v)?;
                    let snap =
                        EngineSnapshot::from_hex(&hex).map_err(|e| format!("snapshot: {e}"))?;
                    m.restore(&snap).map_err(|e| format!("restore: {e}"))?;
                }
                None => m.init_population(),
            }
            *member = Some(m);
            Ok((format!("{{\"ok\":true,\"seed\":{seed}}}"), false))
        }
        "epoch" => {
            let gens = int("gens", 1, u32::MAX as u64)? as u32;
            let m = member.as_mut().ok_or("no member: send \"init\" first")?;
            for _ in 0..gens {
                m.step_generation();
            }
            let b = m.best();
            Ok((
                format!(
                    "{{\"ok\":true,\"chrom\":{},\"fitness\":{}}}",
                    b.chrom, b.fitness
                ),
                false,
            ))
        }
        "inject" => {
            let migrant = Individual {
                chrom: int("chrom", 0, u16::MAX as u64)? as u16,
                fitness: int("fitness", 0, u16::MAX as u64)? as u16,
            };
            let m = member.as_mut().ok_or("no member: send \"init\" first")?;
            m.inject(migrant);
            Ok(("{\"ok\":true}".into(), false))
        }
        "snapshot" => {
            let m = member.as_ref().ok_or("no member: send \"init\" first")?;
            Ok((
                format!("{{\"ok\":true,\"snapshot\":\"{}\"}}", m.snapshot().to_hex()),
                false,
            ))
        }
        "finish" => {
            let m = member.as_ref().ok_or("no member: send \"init\" first")?;
            let b = m.best();
            Ok((
                format!(
                    "{{\"ok\":true,\"chrom\":{},\"fitness\":{},\"evaluations\":{}}}",
                    b.chrom,
                    b.fitness,
                    m.evaluations()
                ),
                true,
            ))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// One coordinator↔worker connection.
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ShardConn {
    fn connect(addr: &str) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(ShardConn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("shard write failed: {e}"))
    }

    /// Read one reply line; an `"ok":false` reply surfaces the worker's
    /// error string, a closed connection surfaces as a transport error
    /// (the campaign's kill-detection signal).
    fn recv(&mut self) -> Result<Vec<(String, JsonValue)>, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("shard read failed: {e}"))?;
        if n == 0 {
            return Err("shard connection closed".into());
        }
        let pairs = parse_object(strip_line_ending(&line))?;
        match pairs.iter().find(|(k, _)| k == "ok") {
            Some((_, JsonValue::Bool(true))) => Ok(pairs),
            _ => {
                let msg = pairs
                    .iter()
                    .find(|(k, _)| k == "error")
                    .and_then(|(_, v)| match v {
                        JsonValue::Str(s) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| "worker refused the op".into());
                Err(format!("worker error: {msg}"))
            }
        }
    }
}

fn reply_int(pairs: &[(String, JsonValue)], key: &str) -> Result<u64, String> {
    let v = pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("worker reply missing {key:?}"))?;
    as_int(key, v, 0, u64::MAX)
}

/// The ring coordinator: owns one [`ShardConn`] per island worker,
/// drives the epoch/migrate/snapshot loop in [`IslandRing`] order, and
/// flushes every barrier's [`CheckpointBundle`] to `checkpoint_path`
/// (write-temp-then-rename, so a mid-write crash never corrupts the
/// last good checkpoint).
///
/// [`IslandRing`]: ga_core::islands::IslandRing
pub struct Coordinator {
    config: IslandConfig,
    shards: Vec<ShardConn>,
    epochs_done: u32,
    checkpoint_path: PathBuf,
    /// Migrant transfers performed so far (one per island per barrier
    /// on rings larger than one).
    pub migrations: u64,
}

impl Coordinator {
    /// Connect to one worker per island and initialize every shard —
    /// fresh populations, or restored members when `resume` carries the
    /// checkpoint to continue from. The job must be an island job
    /// (`job.islands` set, function workload) and `addrs.len()` must
    /// equal the ring size.
    pub fn connect(
        job: &GaJob,
        addrs: &[String],
        checkpoint_path: &Path,
        resume: Option<&CheckpointBundle>,
    ) -> Result<Self, String> {
        let config = job.islands.ok_or("job carries no island schedule")?;
        job.validate().map_err(|e| e.to_string())?;
        let Workload::Function(function) = job.workload else {
            return Err("island workers evolve fitness functions only".into());
        };
        if addrs.len() != config.islands {
            return Err(format!(
                "{} worker addrs for {} islands",
                addrs.len(),
                config.islands
            ));
        }
        let epochs_done = match resume {
            Some(bundle) => {
                if bundle.config != config {
                    return Err(format!(
                        "checkpoint was taken under a different island config \
                         ({:?} vs {:?})",
                        bundle.config, config
                    ));
                }
                if bundle.members.len() != config.islands {
                    return Err(format!(
                        "checkpoint has {} member snapshots for {} islands",
                        bundle.members.len(),
                        config.islands
                    ));
                }
                bundle.epochs_done
            }
            None => 0,
        };
        let mut shards = Vec::with_capacity(config.islands);
        for (k, addr) in addrs.iter().enumerate() {
            let mut conn = ShardConn::connect(addr)?;
            let mut init = format!(
                "{{\"op\":\"init\",\"fn\":\"{}\",\"backend\":\"{}\",\"pop\":{},\"gens\":{},\
                 \"xover\":{},\"mut\":{},\"seed\":{},\"islands\":{},\"shard\":{k}",
                function.name(),
                job.backend.name(),
                job.params.pop_size,
                job.params.n_gens,
                job.params.xover_threshold,
                job.params.mut_threshold,
                job.params.seed,
                config.islands,
            );
            if let Some(bundle) = resume {
                init.push_str(&format!(",\"snapshot\":\"{}\"", bundle.members[k].to_hex()));
            }
            init.push('}');
            conn.send(&init)?;
            conn.recv()?;
            shards.push(conn);
        }
        Ok(Coordinator {
            config,
            shards,
            epochs_done,
            checkpoint_path: checkpoint_path.to_path_buf(),
            migrations: 0,
        })
    }

    /// One epoch barrier: evolve every shard (requests are pipelined —
    /// all sends, then all replies — so shards run concurrently),
    /// collect **all** bests, route best *k* to shard *(k+1) mod n*,
    /// snapshot everyone, flush the bundle to the checkpoint file.
    pub fn step_epoch(&mut self) -> Result<CheckpointBundle, String> {
        let epoch_line = format!("{{\"op\":\"epoch\",\"gens\":{}}}", self.config.epoch);
        for s in &mut self.shards {
            s.send(&epoch_line)?;
        }
        let mut bests = Vec::with_capacity(self.shards.len());
        for s in &mut self.shards {
            let pairs = s.recv()?;
            bests.push(Individual {
                chrom: reply_int(&pairs, "chrom")? as u16,
                fitness: reply_int(&pairs, "fitness")? as u16,
            });
        }
        if self.config.islands > 1 {
            // All bests are already collected — injections cannot leak
            // a migrant into a later shard's outgoing best, exactly like
            // the in-process ring's two-phase migration.
            for (k, b) in bests.iter().enumerate() {
                let dst = (k + 1) % self.config.islands;
                self.shards[dst].send(&format!(
                    "{{\"op\":\"inject\",\"chrom\":{},\"fitness\":{}}}",
                    b.chrom, b.fitness
                ))?;
            }
            for s in &mut self.shards {
                s.recv()?;
            }
            self.migrations += self.config.islands as u64;
        }
        let mut members = Vec::with_capacity(self.shards.len());
        for s in &mut self.shards {
            s.send("{\"op\":\"snapshot\"}")?;
        }
        for s in &mut self.shards {
            let pairs = s.recv()?;
            let hex = pairs
                .iter()
                .find(|(k, _)| k == "snapshot")
                .and_then(|(_, v)| match v {
                    JsonValue::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .ok_or("worker reply missing \"snapshot\"")?;
            members.push(EngineSnapshot::from_hex(hex).map_err(|e| format!("snapshot: {e}"))?);
        }
        self.epochs_done += 1;
        let bundle = CheckpointBundle {
            config: self.config,
            epochs_done: self.epochs_done,
            members,
        };
        write_checkpoint(&self.checkpoint_path, &bundle)?;
        Ok(bundle)
    }

    /// Epoch barriers crossed so far (counting the resumed-from ones).
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// True once every configured epoch has run.
    pub fn done(&self) -> bool {
        self.epochs_done >= self.config.epochs
    }

    /// Finish every shard and fold the ring result — same tie-breaking
    /// as [`IslandRing::finish`] (later islands win fitness ties).
    ///
    /// [`IslandRing::finish`]: ga_core::islands::IslandRing::finish
    pub fn finish(mut self) -> Result<IslandRun, String> {
        for s in &mut self.shards {
            s.send("{\"op\":\"finish\"}")?;
        }
        let mut island_best = Vec::with_capacity(self.shards.len());
        let mut evaluations = 0u64;
        for s in &mut self.shards {
            let pairs = s.recv()?;
            island_best.push(Individual {
                chrom: reply_int(&pairs, "chrom")? as u16,
                fitness: reply_int(&pairs, "fitness")? as u16,
            });
            evaluations += reply_int(&pairs, "evaluations")?;
        }
        let best = island_best
            .iter()
            .copied()
            .max_by_key(|i| i.fitness)
            .ok_or("no shards")?;
        Ok(IslandRun {
            best,
            island_best,
            evaluations,
        })
    }
}

/// Flush a checkpoint durably: write the hex form to `<path>.tmp`,
/// sync, then rename over `path` — a crash mid-flush leaves the
/// previous complete checkpoint readable.
pub fn write_checkpoint(path: &Path, bundle: &CheckpointBundle) -> Result<(), String> {
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name()
            .and_then(|n| n.to_str())
            .ok_or("checkpoint path has no file name")?
    ));
    let mut f = fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    f.write_all(bundle.to_hex().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .and_then(|_| f.sync_all())
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

/// Read a checkpoint file written by [`write_checkpoint`].
pub fn read_checkpoint(path: &Path) -> Result<CheckpointBundle, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    CheckpointBundle::from_hex(text.trim()).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ga_fitness::TestFunction;
    use std::thread::JoinHandle;

    fn spawn_worker() -> (String, JoinHandle<Result<(), String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().map_err(|e| e.to_string())?;
            serve_island_connection(stream)
        });
        (addr, handle)
    }

    fn spawn_ring(n: usize) -> (Vec<String>, Vec<JoinHandle<Result<(), String>>>) {
        (0..n).map(|_| spawn_worker()).unzip()
    }

    fn island_job(backend: BackendKind) -> GaJob {
        GaJob::new(
            TestFunction::Bf6,
            backend,
            GaParams::new(16, 12, 10, 1, 0x2961),
        )
        .with_islands(IslandConfig {
            islands: 3,
            epoch: 4,
            epochs: 3,
        })
    }

    fn ckpt_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ga_islands_{tag}_{}.ckpt", std::process::id()))
    }

    #[test]
    fn multi_process_ring_matches_the_in_process_driver_barrier_for_barrier() {
        let job = island_job(BackendKind::Behavioral);
        let config = job.islands.unwrap();
        let engine = ga_engine::global().get(job.backend).unwrap();
        let composite = ga_engine::IslandsEngine::new(engine, config).expect("steps");
        let mut reference = composite.start(job.spec()).expect("starts");

        let path = ckpt_path("match");
        let (addrs, workers) = spawn_ring(config.islands);
        let mut coord = Coordinator::connect(&job, &addrs, &path, None).expect("connects");
        while !coord.done() {
            let ours = coord.step_epoch().expect("epoch");
            let theirs = reference.step_epoch();
            assert_eq!(
                ours, theirs,
                "barrier {} bundle diverged from the in-process driver",
                ours.epochs_done
            );
            // The durable file holds exactly the latest barrier.
            assert_eq!(read_checkpoint(&path).expect("readable"), ours);
        }
        assert_eq!(coord.migrations, 3 * 3);
        let run = coord.finish().expect("finishes");
        assert_eq!(run, reference.finish());
        for w in workers {
            w.join().expect("worker thread").expect("worker ok");
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn kill_resume_from_the_checkpoint_file_is_bit_identical_across_backends() {
        let job = island_job(BackendKind::Behavioral);
        let config = job.islands.unwrap();
        let engine = ga_engine::global().get(job.backend).unwrap();
        let reference = ga_engine::IslandsEngine::new(engine, config)
            .expect("steps")
            .run(job.spec())
            .expect("runs");

        // Run one epoch, then "crash": drop the coordinator so every
        // worker sees EOF and exits. The checkpoint file survives.
        let path = ckpt_path("resume");
        let (addrs, workers) = spawn_ring(config.islands);
        let mut coord = Coordinator::connect(&job, &addrs, &path, None).expect("connects");
        coord.step_epoch().expect("epoch");
        drop(coord);
        for w in workers {
            w.join().expect("worker thread").expect("EOF is clean");
        }

        // Resume on *bitsim64* workers: snapshots are backend-neutral,
        // so the healed ring must still match the behavioral reference.
        let bundle = read_checkpoint(&path).expect("checkpoint survives the crash");
        assert_eq!(bundle.epochs_done, 1);
        let resumed_job = GaJob {
            backend: BackendKind::BitSim64,
            ..job
        };
        let (addrs, workers) = spawn_ring(config.islands);
        let mut coord =
            Coordinator::connect(&resumed_job, &addrs, &path, Some(&bundle)).expect("reconnects");
        assert_eq!(coord.epochs_done(), 1);
        while !coord.done() {
            coord.step_epoch().expect("epoch");
        }
        assert_eq!(coord.finish().expect("finishes"), reference);
        for w in workers {
            w.join().expect("worker thread").expect("worker ok");
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn worker_replies_typed_errors_and_survives_them() {
        let (addr, worker) = spawn_worker();
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut call = |line: &str| -> String {
            writer.write_all(format!("{line}\n").as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        // Ops before init, unknown ops, and garbage are all ok:false
        // replies — the connection stays up.
        assert!(call("{\"op\":\"epoch\",\"gens\":1}").contains("\"ok\":false"));
        assert!(call("{\"op\":\"warp\"}").contains("unknown op"));
        assert!(call("not json").contains("\"ok\":false"));
        let init = "{\"op\":\"init\",\"fn\":\"BF6\",\"backend\":\"behavioral\",\"pop\":16,\
                    \"gens\":4,\"xover\":10,\"mut\":1,\"seed\":10593,\"islands\":1,\"shard\":0}";
        assert!(call(init).contains("\"ok\":true"));
        assert!(call("{\"op\":\"epoch\",\"gens\":4}").contains("\"fitness\""));
        // A snapshot that does not decode is typed, not fatal.
        assert!(call(
            "{\"op\":\"init\",\"fn\":\"BF6\",\"backend\":\"behavioral\",\"pop\":16,\
                      \"gens\":4,\"xover\":10,\"mut\":1,\"seed\":1,\"islands\":1,\"shard\":0,\
                      \"snapshot\":\"zz\"}"
        )
        .contains("snapshot"));
        assert!(call("{\"op\":\"finish\"}").contains("\"evaluations\""));
        worker.join().expect("thread").expect("clean exit");
    }

    #[test]
    fn checkpoint_files_survive_a_torn_write() {
        let path = ckpt_path("torn");
        let bundle = {
            let job = island_job(BackendKind::Behavioral);
            let engine = ga_engine::global().get(job.backend).unwrap();
            let composite =
                ga_engine::IslandsEngine::new(engine, job.islands.unwrap()).expect("steps");
            let mut d = composite.start(job.spec()).expect("starts");
            d.step_epoch()
        };
        write_checkpoint(&path, &bundle).expect("flushes");
        // A later, torn flush (the crash window: tmp written, rename
        // never happened) leaves the previous checkpoint intact.
        fs::write(path.with_file_name("garbage.tmp"), "deadbeef").unwrap();
        assert_eq!(read_checkpoint(&path).expect("still readable"), bundle);
        let _ = fs::remove_file(&path);
    }
}
