//! The JSONL request/response schema of `gaserved`.
//!
//! One job per input line:
//!
//! ```json
//! {"fn":"F3","backend":"bitsim64","width":16,"pop":32,"gens":32,"xover":10,"mut":1,"seed":1567,"deadline_ms":1000}
//! ```
//!
//! `fn`, `pop`, `gens`, `xover`, `mut`, and `seed` are required;
//! `backend` defaults to `behavioral`, `width` to 16, `deadline_ms` to
//! none. Unknown keys are rejected — a typo'd field must not silently
//! change the experiment.
//!
//! An **island job** adds the triple `islands`/`epoch`/`epochs` (all
//! three or none — a partial set is a typed parse error): the job then
//! runs as a ring-migration island model over the backend's stepping
//! handle, with `gens` required to equal `epoch × epochs` (the
//! registry's typed `invalid_job` admission otherwise). Island jobs
//! evolve a fitness function; combining the triple with the heal keys
//! is a parse error. The result line keeps the standard shape — the
//! reported best/evaluations are the ring-wide aggregates.
//!
//! A VRC healing job replaces `fn` with the pair `heal_target` (the
//! 4-input truth table to restore, 0–65535) and `heal_fault` (the
//! injected fault in [`ga_ehw::Fault::wire_name`] encoding, e.g.
//! `"stuck1@2"` or `"nand@5"`); `fn` and the heal keys are mutually
//! exclusive. A healed result line appends the typed healing summary —
//! `"healed":true,"heal_gens":3,"residual":0` — after the standard
//! fields (the healed configuration itself is `best_chrom`).
//!
//! One result per output line, **in input order**:
//!
//! ```json
//! {"job":0,"backend":"rtl","ok":true,"best_chrom":34106,"best_fitness":3060,"generations":32,"evaluations":1024,"conv_gen":7,"cycles":335872}
//! {"job":1,"backend":"behavioral","ok":false,"error":"deadline_exceeded","detail":"wall-clock deadline expired"}
//! ```
//!
//! Result lines carry **no timing fields** — that keeps a golden
//! `results.jsonl` byte-stable across machines; latency aggregates go
//! to `BENCH_serve.json` instead. The parser is a hand-rolled
//! flat-object reader, matching the workspace's no-external-deps rule
//! (the same reason `ga-bench` hand-rolls its report JSON).

use std::fmt::Write as _;

use ga_core::islands::IslandConfig;
use ga_core::GaParams;

use crate::job::{
    function_by_name, BackendKind, GaJob, JobResult, ServeError, Workload, CHROM_WIDTH,
    SUPPORTED_WIDTHS,
};

/// A flat JSON value (all the schema needs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string literal.
    Str(String),
    /// Any number (integers included).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parse one flat JSON object into `(key, value)` pairs, preserving
/// order. Nested objects/arrays are rejected — the job schema is flat
/// by design.
pub fn parse_object(s: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.at += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {:?}", byte_name(other))),
            }
        }
    }
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err("trailing characters after the object".into());
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.at += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected '{}', got {:?}",
                want as char,
                byte_name(other)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Accumulate raw bytes and validate once at the closing quote:
        // pushing `b as char` would latin-1-mangle multi-byte UTF-8.
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.next() {
                Some(b'"') => {
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into())
                }
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // `char::from_u32` rejects the surrogate range:
                        // the schema has no use for surrogate pairs.
                        let c = char::from_u32(cp)
                            .ok_or_else(|| format!("\\u{cp:04x} is not a scalar value"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unsupported escape {:?}", byte_name(other))),
                },
                Some(b) => out.push(b),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.next().ok_or("unterminated \\u escape")?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit {:?} in \\u escape", b as char))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{' | b'[') => Err("nested objects/arrays are not part of the schema".into()),
            Some(_) => {
                let start = self.at;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.at += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| "non-UTF8 number")?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number {text:?}"))
            }
            None => Err("unexpected end of line".into()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal (expected {word})"))
        }
    }
}

/// Escape `s` as the body of a JSON string literal — the writer dual of
/// the parser's string reader, so serialize→parse round-trips exactly.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn byte_name(b: Option<u8>) -> String {
    match b {
        Some(b) => (b as char).to_string(),
        None => "end of line".into(),
    }
}

/// Strip one trailing line ending (`\n`, `\r\n`, or a bare `\r`) from a
/// raw input line. Both reader paths — the batch file loop and the
/// socket `read_line` loop — must run every line through this before
/// [`parse_job`], so CRLF-sending network clients (and CRLF-checked-out
/// fixture files) get the same parses and the same *empty-line* skips
/// as LF input; a stray `"\r"` line must count as blank, not as a
/// `parse` error that shifts result alignment.
pub fn strip_line_ending(line: &str) -> &str {
    let line = line.strip_suffix('\n').unwrap_or(line);
    line.strip_suffix('\r').unwrap_or(line)
}

/// Parse one request line into a [`GaJob`]. `line` is the 0-based input
/// line number, echoed in [`ServeError::Parse`] diagnostics.
pub fn parse_job(text: &str, line: usize) -> Result<GaJob, ServeError> {
    let perr = |msg: String| ServeError::Parse { line, msg };
    let pairs = parse_object(text).map_err(perr)?;

    // A duplicated key means one of the two values silently loses;
    // reject the line instead of guessing which one was meant.
    for i in 1..pairs.len() {
        if pairs[..i].iter().any(|(k, _)| *k == pairs[i].0) {
            return Err(perr(format!("duplicate key {:?}", pairs[i].0)));
        }
    }

    let mut function = None;
    let mut heal_target = None;
    let mut heal_fault = None;
    let mut backend = BackendKind::Behavioral;
    let mut width = CHROM_WIDTH;
    let mut pop = None;
    let mut gens = None;
    let mut xover = None;
    let mut mutation = None;
    let mut seed = None;
    let mut deadline_ms = None;
    let mut islands = None;
    let mut epoch = None;
    let mut epochs = None;

    for (key, value) in pairs {
        match key.as_str() {
            "fn" => {
                let name = as_str(&key, &value).map_err(perr)?;
                function = Some(
                    function_by_name(&name)
                        .ok_or_else(|| perr(format!("unknown fitness function {name:?}")))?,
                );
            }
            "heal_target" => {
                heal_target = Some(as_int(&key, &value, 0, u16::MAX as u64).map_err(perr)? as u16);
            }
            "heal_fault" => {
                let name = as_str(&key, &value).map_err(perr)?;
                heal_fault = Some(
                    ga_ehw::Fault::parse_wire(&name)
                        .ok_or_else(|| perr(format!("unknown heal fault {name:?}")))?,
                );
            }
            "backend" => {
                let name = as_str(&key, &value).map_err(perr)?;
                backend = BackendKind::parse(&name)
                    .ok_or_else(|| perr(format!("unknown backend {name:?}")))?;
            }
            "width" => {
                let w = as_int(&key, &value, 0, u8::MAX as u64).map_err(perr)? as u8;
                if !SUPPORTED_WIDTHS.contains(&w) {
                    return Err(ServeError::InvalidJob {
                        msg: format!("width {w} is not a supported chromosome width (16 or 32)"),
                    });
                }
                width = w;
            }
            "pop" => pop = Some(as_int(&key, &value, 0, u8::MAX as u64).map_err(perr)? as u8),
            "gens" => gens = Some(as_int(&key, &value, 0, u32::MAX as u64).map_err(perr)? as u32),
            "xover" => xover = Some(as_int(&key, &value, 0, 255).map_err(perr)? as u8),
            "mut" => mutation = Some(as_int(&key, &value, 0, 255).map_err(perr)? as u8),
            "seed" => seed = Some(as_int(&key, &value, 0, u16::MAX as u64).map_err(perr)? as u16),
            "deadline_ms" => match value {
                JsonValue::Null => deadline_ms = None,
                v => deadline_ms = Some(as_int(&key, &v, 0, u64::MAX).map_err(perr)?),
            },
            "islands" => {
                islands = Some(as_int(&key, &value, 1, 1024).map_err(perr)? as usize);
            }
            "epoch" => epoch = Some(as_int(&key, &value, 1, u32::MAX as u64).map_err(perr)? as u32),
            "epochs" => {
                epochs = Some(as_int(&key, &value, 1, u32::MAX as u64).map_err(perr)? as u32);
            }
            other => return Err(perr(format!("unknown key {other:?}"))),
        }
    }

    let req = |name: &str| perr(format!("missing required key \"{name}\""));
    let workload = match (function, heal_target, heal_fault) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            return Err(perr(
                "\"fn\" and \"heal_target\"/\"heal_fault\" are mutually exclusive".into(),
            ))
        }
        (Some(f), None, None) => Workload::Function(f),
        (None, Some(target), Some(fault)) => Workload::VrcHeal { target, fault },
        (None, Some(_), None) => return Err(req("heal_fault")),
        (None, None, Some(_)) => return Err(req("heal_target")),
        (None, None, None) => return Err(req("fn")),
    };
    // The island triple is all-or-none; a partial set means the caller
    // half-specified a schedule, which must not silently run solo.
    let island_config = match (islands, epoch, epochs) {
        (None, None, None) => None,
        (Some(n), Some(e), Some(k)) => {
            if matches!(workload, Workload::VrcHeal { .. }) {
                return Err(perr(
                    "\"islands\" and \"heal_target\"/\"heal_fault\" are mutually exclusive".into(),
                ));
            }
            Some(IslandConfig {
                islands: n,
                epoch: e,
                epochs: k,
            })
        }
        _ => {
            return Err(perr(
                "island jobs need all three of \"islands\", \"epoch\", \"epochs\"".into(),
            ))
        }
    };
    Ok(GaJob {
        width,
        workload,
        backend,
        params: GaParams {
            pop_size: pop.ok_or_else(|| req("pop"))?,
            n_gens: gens.ok_or_else(|| req("gens"))?,
            xover_threshold: xover.ok_or_else(|| req("xover"))?,
            mut_threshold: mutation.ok_or_else(|| req("mut"))?,
            seed: seed.ok_or_else(|| req("seed"))?,
        },
        deadline_ms,
        islands: island_config,
    })
}

pub(crate) fn as_str(key: &str, v: &JsonValue) -> Result<String, String> {
    match v {
        JsonValue::Str(s) => Ok(s.clone()),
        other => Err(format!("key {key:?} must be a string, got {other:?}")),
    }
}

pub(crate) fn as_int(key: &str, v: &JsonValue, min: u64, max: u64) -> Result<u64, String> {
    let JsonValue::Num(n) = v else {
        return Err(format!("key {key:?} must be a number, got {v:?}"));
    };
    if n.fract() != 0.0 || *n < min as f64 || *n > max as f64 {
        return Err(format!(
            "key {key:?} = {n} outside the integer range {min}..={max}"
        ));
    }
    Ok(*n as u64)
}

/// Serialize a [`GaJob`] as one request line (fixture generation and
/// round-trip tests).
pub fn job_line(job: &GaJob) -> String {
    let mut out = String::from("{");
    match job.workload {
        Workload::Function(f) => {
            let _ = write!(out, "\"fn\":\"{}\"", f.name());
        }
        Workload::VrcHeal { target, fault } => {
            let _ = write!(
                out,
                "\"heal_target\":{target},\"heal_fault\":\"{}\"",
                fault.wire_name()
            );
        }
    }
    let _ = write!(
        out,
        ",\"backend\":\"{}\",\"width\":{},\"pop\":{},\"gens\":{},\"xover\":{},\"mut\":{},\"seed\":{}",
        job.backend.name(),
        job.width,
        job.params.pop_size,
        job.params.n_gens,
        job.params.xover_threshold,
        job.params.mut_threshold,
        job.params.seed
    );
    if let Some(ms) = job.deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{ms}");
    }
    if let Some(cfg) = job.islands {
        let _ = write!(
            out,
            ",\"islands\":{},\"epoch\":{},\"epochs\":{}",
            cfg.islands, cfg.epoch, cfg.epochs
        );
    }
    out.push('}');
    out
}

/// Serialize one result line. Fully deterministic: no timing fields.
/// A degraded result additionally carries the requested backend and the
/// typed reason (`degraded_from` / `degraded_error`), so a caller can
/// tell a fallback answer from a native one straight off the wire.
pub fn result_line(r: &JobResult) -> String {
    let mut out = match &r.outcome {
        Ok(o) => {
            let mut out = format!(
                "{{\"job\":{},\"backend\":\"{}\",\"ok\":true,\"best_chrom\":{},\"best_fitness\":{},\"generations\":{},\"evaluations\":{}",
                r.job,
                r.backend.name(),
                o.best_chrom,
                o.best_fitness,
                o.generations,
                o.evaluations
            );
            match o.conv_gen {
                Some(g) => {
                    let _ = write!(out, ",\"conv_gen\":{g}");
                }
                None => out.push_str(",\"conv_gen\":null"),
            }
            if let Some(c) = o.cycles {
                let _ = write!(out, ",\"cycles\":{c}");
            }
            if let Some(h) = &r.heal {
                let _ = write!(out, ",\"healed\":{}", h.healed);
                match h.generations_to_heal {
                    Some(g) => {
                        let _ = write!(out, ",\"heal_gens\":{g}");
                    }
                    None => out.push_str(",\"heal_gens\":null"),
                }
                let _ = write!(out, ",\"residual\":{}", h.residual_error);
            }
            out
        }
        Err(e) => format!(
            "{{\"job\":{},\"backend\":\"{}\",\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"",
            r.job,
            r.backend.name(),
            e.code(),
            escape_string(&e.to_string())
        ),
    };
    if let Some(d) = &r.degraded {
        let _ = write!(
            out,
            ",\"degraded_from\":\"{}\",\"degraded_error\":\"{}\"",
            d.from.name(),
            d.reason.code()
        );
    }
    out.push('}');
    out
}

/// Serialize the result line for an input line that failed to parse
/// (there is no backend to attribute it to).
pub fn parse_error_line(job: usize, err: &ServeError) -> String {
    format!(
        "{{\"job\":{job},\"backend\":\"none\",\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
        err.code(),
        escape_string(&err.to_string())
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutput;
    use ga_fitness::TestFunction;

    #[test]
    fn job_lines_roundtrip() {
        let jobs = [
            GaJob::new(
                TestFunction::Mbf6_2,
                BackendKind::BitSim64,
                GaParams::new(32, 32, 10, 1, 1567),
            ),
            GaJob::new(
                TestFunction::F2,
                BackendKind::RtlInterp,
                GaParams::new(8, 4, 12, 2, 0xB342),
            )
            .with_deadline_ms(250),
        ];
        for job in jobs {
            let line = job_line(&job);
            assert_eq!(parse_job(&line, 0), Ok(job), "line: {line}");
        }
    }

    #[test]
    fn heal_job_lines_roundtrip() {
        let job = GaJob::new_heal(
            0x9B9B,
            ga_ehw::Fault::StuckAt {
                cell: 2,
                value: true,
            },
            BackendKind::BitSim64,
            GaParams::new(16, 12, 10, 1, 0x2961),
        );
        let line = job_line(&job);
        assert_eq!(
            line,
            "{\"heal_target\":39835,\"heal_fault\":\"stuck1@2\",\"backend\":\"bitsim64\",\
             \"width\":16,\"pop\":16,\"gens\":12,\"xover\":10,\"mut\":1,\"seed\":10593}"
        );
        assert_eq!(parse_job(&line, 0), Ok(job), "line: {line}");
    }

    #[test]
    fn island_job_lines_roundtrip() {
        let job = GaJob::new(
            TestFunction::Bf6,
            BackendKind::Behavioral,
            GaParams::new(16, 12, 10, 1, 0x2961),
        )
        .with_islands(IslandConfig {
            islands: 3,
            epoch: 4,
            epochs: 3,
        });
        let line = job_line(&job);
        assert_eq!(
            line,
            "{\"fn\":\"BF6\",\"backend\":\"behavioral\",\"width\":16,\"pop\":16,\"gens\":12,\
             \"xover\":10,\"mut\":1,\"seed\":10593,\"islands\":3,\"epoch\":4,\"epochs\":3}"
        );
        assert_eq!(parse_job(&line, 0), Ok(job), "line: {line}");
    }

    #[test]
    fn island_keys_are_all_or_none_and_exclusive_with_heal() {
        let tail = r#""pop":16,"gens":12,"xover":10,"mut":1,"seed":7"#;
        for (bad, expect) in [
            (
                format!(r#"{{"fn":"F3",{tail},"islands":2,"epoch":6}}"#),
                "all three",
            ),
            (format!(r#"{{"fn":"F3",{tail},"epochs":2}}"#), "all three"),
            (
                format!(r#"{{"fn":"F3",{tail},"islands":2,"epochs":3}}"#),
                "all three",
            ),
            (
                format!(
                    r#"{{"heal_target":1,"heal_fault":"stuck0@0",{tail},"islands":2,"epoch":6,"epochs":2}}"#
                ),
                "mutually exclusive",
            ),
            (
                format!(r#"{{"fn":"F3",{tail},"islands":0,"epoch":6,"epochs":2}}"#),
                "outside the integer range",
            ),
            (
                format!(r#"{{"fn":"F3",{tail},"islands":2,"epoch":0,"epochs":2}}"#),
                "outside the integer range",
            ),
        ] {
            let Err(ServeError::Parse { msg, .. }) = parse_job(&bad, 0) else {
                panic!("accepted: {bad}");
            };
            assert!(msg.contains(expect), "line {bad}: msg {msg:?}");
        }
        // A schedule that disagrees with gens still *parses* — that
        // mismatch is the registry's typed invalid_job admission error,
        // surfaced per job, not a parse failure.
        let mismatch = format!(r#"{{"fn":"F3",{tail},"islands":2,"epoch":5,"epochs":5}}"#);
        let job = parse_job(&mismatch, 0).expect("schedule mismatch parses");
        assert!(matches!(job.validate(), Err(ServeError::InvalidJob { .. })));
    }

    #[test]
    fn heal_keys_are_paired_and_exclusive_with_fn() {
        let tail = r#""pop":16,"gens":4,"xover":10,"mut":1,"seed":7}"#;
        for (bad, expect) in [
            (
                format!(r#"{{"fn":"F3","heal_target":1,"heal_fault":"stuck0@0",{tail}"#),
                "mutually exclusive",
            ),
            (
                format!(r#"{{"fn":"F3","heal_target":1,{tail}"#),
                "mutually exclusive",
            ),
            (
                format!(r#"{{"fn":"F3","heal_fault":"stuck0@0",{tail}"#),
                "mutually exclusive",
            ),
            (
                format!(r#"{{"heal_target":1,{tail}"#),
                "missing required key \"heal_fault\"",
            ),
            (
                format!(r#"{{"heal_fault":"stuck0@0",{tail}"#),
                "missing required key \"heal_target\"",
            ),
            (format!("{{{tail}"), "missing required key \"fn\""),
            (
                format!(r#"{{"heal_target":1,"heal_fault":"stuck2@9",{tail}"#),
                "unknown heal fault",
            ),
            (
                format!(r#"{{"heal_target":65536,"heal_fault":"stuck0@0",{tail}"#),
                "outside the integer range",
            ),
        ] {
            let Err(ServeError::Parse { msg, .. }) = parse_job(&bad, 0) else {
                panic!("accepted: {bad}");
            };
            assert!(msg.contains(expect), "line {bad}: msg {msg:?}");
        }
    }

    #[test]
    fn defaults_and_required_keys() {
        let job = parse_job(
            r#"{"fn":"f3","pop":32,"gens":8,"xover":10,"mut":1,"seed":7}"#,
            0,
        )
        .expect("minimal line parses");
        assert_eq!(job.backend, BackendKind::Behavioral);
        assert_eq!(job.width, CHROM_WIDTH);
        assert_eq!(job.deadline_ms, None);

        let missing = parse_job(r#"{"fn":"F3","pop":32}"#, 3);
        let Err(ServeError::Parse { line, msg }) = missing else {
            panic!("missing keys must be a parse error, got {missing:?}");
        };
        assert_eq!(line, 3);
        assert!(msg.contains("gens"), "msg: {msg}");
    }

    #[test]
    fn unknown_keys_and_bad_values_rejected() {
        for bad in [
            r#"{"fn":"F3","pop":32,"gens":8,"xover":10,"mut":1,"seed":7,"popsize":1}"#,
            r#"{"fn":"F9","pop":32,"gens":8,"xover":10,"mut":1,"seed":7}"#,
            r#"{"fn":"F3","pop":300,"gens":8,"xover":10,"mut":1,"seed":7}"#,
            r#"{"fn":"F3","pop":32,"gens":8,"xover":10,"mut":1,"seed":1.5}"#,
            r#"{"fn":"F3","pop":32,"gens":8,"xover":10,"mut":1,"seed":7} extra"#,
            r#"not json at all"#,
            r#"{"fn":"F3","nested":{"a":1}}"#,
        ] {
            assert!(
                matches!(parse_job(bad, 0), Err(ServeError::Parse { .. })),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn unsupported_widths_rejected_at_parse_time() {
        // Supported widths parse (16 runs on the narrow engines, 32 on
        // the ganged `rtl32` composite; aiming a width at a backend
        // that lacks it is the registry's typed admission error).
        for w in SUPPORTED_WIDTHS {
            let line =
                format!("{{\"fn\":\"F3\",\"width\":{w},\"pop\":32,\"gens\":8,\"xover\":10,\"mut\":1,\"seed\":7}}");
            assert_eq!(parse_job(&line, 0).expect("supported width").width, w);
        }
        // Everything else is an invalid_job error at parse time — the
        // old parser accepted the full 0..=255 range here.
        for w in [0u8, 1, 8, 15, 17, 24, 31, 33, 64, 255] {
            let line =
                format!("{{\"fn\":\"F3\",\"width\":{w},\"pop\":32,\"gens\":8,\"xover\":10,\"mut\":1,\"seed\":7}}");
            let err = parse_job(&line, 5).expect_err("unsupported width");
            assert_eq!(err.code(), "invalid_job", "width {w}: {err}");
            assert!(err.to_string().contains(&format!("width {w}")), "{err}");
        }
        // Out-of-u8 widths are still plain parse errors.
        let huge = r#"{"fn":"F3","width":4096,"pop":32,"gens":8,"xover":10,"mut":1,"seed":7}"#;
        assert!(matches!(parse_job(huge, 0), Err(ServeError::Parse { .. })));
    }

    #[test]
    fn duplicate_keys_are_parse_errors() {
        let dup = r#"{"fn":"F3","pop":32,"gens":8,"xover":10,"mut":1,"seed":7,"seed":9}"#;
        let Err(ServeError::Parse { line, msg }) = parse_job(dup, 11) else {
            panic!("duplicate key must be a parse error");
        };
        assert_eq!(line, 11, "diagnostic stays line-aligned");
        assert!(msg.contains("duplicate key \"seed\""), "msg: {msg}");
    }

    #[test]
    fn strings_keep_multibyte_utf8_and_unicode_escapes() {
        let got = parse_object("{\"k\":\"héllo — ✓\"}").expect("utf-8 string");
        assert_eq!(got[0].1, JsonValue::Str("héllo — ✓".into()));
        let got = parse_object(r#"{"k":"A\u00e9\u2713"}"#).expect("\\u escapes");
        assert_eq!(got[0].1, JsonValue::Str("Aé✓".into()));
        // Surrogate code units are not scalar values.
        assert!(parse_object(r#"{"k":"\ud800"}"#).is_err());
        assert!(parse_object(r#"{"k":"\uZZZZ"}"#).is_err());
    }

    #[test]
    fn escape_string_is_the_parsers_dual() {
        let s = "a\"b\\c\nd\té — ✓\u{1}";
        let line = format!("{{\"k\":\"{}\"}}", escape_string(s));
        let got = parse_object(&line).expect("escaped string parses");
        assert_eq!(got, vec![("k".into(), JsonValue::Str(s.into()))]);
    }

    #[test]
    fn result_lines_are_deterministic_and_timing_free() {
        let ok = JobResult {
            job: 4,
            backend: BackendKind::RtlInterp,
            outcome: Ok(JobOutput {
                best_chrom: 0x1234,
                best_fitness: 3060,
                generations: 32,
                evaluations: 1024,
                conv_gen: Some(7),
                cycles: Some(335_872),
                rng_draws: None,
                trajectory: Vec::new(),
            }),
            micros: 123_456, // must NOT appear in the line
            degraded: None,
            heal: None,
        };
        let line = result_line(&ok);
        assert_eq!(
            line,
            "{\"job\":4,\"backend\":\"rtl\",\"ok\":true,\"best_chrom\":4660,\"best_fitness\":3060,\"generations\":32,\"evaluations\":1024,\"conv_gen\":7,\"cycles\":335872}"
        );
        assert!(!line.contains("123456"));

        let err = JobResult {
            job: 5,
            backend: BackendKind::Behavioral,
            outcome: Err(ServeError::DeadlineExceeded),
            micros: 1,
            degraded: None,
            heal: None,
        };
        assert_eq!(
            result_line(&err),
            "{\"job\":5,\"backend\":\"behavioral\",\"ok\":false,\"error\":\"deadline_exceeded\",\"detail\":\"wall-clock deadline expired\"}"
        );

        // A degraded result surfaces the requested backend + reason.
        let degraded = JobResult {
            degraded: Some(crate::job::Degradation {
                from: BackendKind::BitSim64,
                reason: ServeError::Watchdog { cycles: 4 },
            }),
            ..ok.clone()
        };
        assert_eq!(
            result_line(&degraded),
            "{\"job\":4,\"backend\":\"rtl\",\"ok\":true,\"best_chrom\":4660,\"best_fitness\":3060,\"generations\":32,\"evaluations\":1024,\"conv_gen\":7,\"cycles\":335872,\"degraded_from\":\"bitsim64\",\"degraded_error\":\"watchdog\"}"
        );

        let parse = ServeError::Parse {
            line: 9,
            msg: "missing required key \"fn\"".into(),
        };
        let line = parse_error_line(9, &parse);
        assert!(line.contains("\"backend\":\"none\""));
        assert!(line.contains("\\\"fn\\\""), "quotes escaped: {line}");
    }

    #[test]
    fn heal_result_lines_append_the_typed_summary() {
        let healed = JobResult {
            job: 26,
            backend: BackendKind::BitSim64,
            outcome: Ok(JobOutput {
                best_chrom: 0x0706,
                best_fitness: crate::job::PERFECT_FITNESS,
                generations: 12,
                evaluations: 208,
                conv_gen: Some(3),
                cycles: None,
                rng_draws: None,
                trajectory: Vec::new(),
            }),
            micros: 99,
            degraded: None,
            heal: Some(crate::job::HealReport {
                healed: true,
                generations_to_heal: Some(3),
                residual_error: 0,
            }),
        };
        assert_eq!(
            result_line(&healed),
            "{\"job\":26,\"backend\":\"bitsim64\",\"ok\":true,\"best_chrom\":1798,\
             \"best_fitness\":65520,\"generations\":12,\"evaluations\":208,\"conv_gen\":3,\
             \"healed\":true,\"heal_gens\":3,\"residual\":0}"
        );

        // An unhealed run reports `heal_gens: null` plus the residual.
        let unhealed = JobResult {
            heal: Some(crate::job::HealReport {
                healed: false,
                generations_to_heal: None,
                residual_error: 4095,
            }),
            ..healed.clone()
        };
        let line = result_line(&unhealed);
        assert!(
            line.ends_with(",\"healed\":false,\"heal_gens\":null,\"residual\":4095}"),
            "line: {line}"
        );
    }

    #[test]
    fn line_endings_are_stripped_not_parsed() {
        // The reader contract: exactly one terminator comes off, any
        // flavor, and payload bytes (including interior \r) survive.
        assert_eq!(strip_line_ending("{\"a\":1}\r\n"), "{\"a\":1}");
        assert_eq!(strip_line_ending("{\"a\":1}\n"), "{\"a\":1}");
        assert_eq!(strip_line_ending("{\"a\":1}\r"), "{\"a\":1}");
        assert_eq!(strip_line_ending("{\"a\":1}"), "{\"a\":1}");
        assert_eq!(strip_line_ending("\r\n"), "", "CRLF blank line is blank");
        assert_eq!(strip_line_ending("\n"), "");
        assert_eq!(strip_line_ending(""), "");
        assert_eq!(strip_line_ending("a\rb\n"), "a\rb", "interior \\r kept");
        assert_eq!(strip_line_ending("x\n\n"), "x\n", "one terminator only");
    }

    #[test]
    fn crlf_job_lines_parse_like_lf_ones() {
        let lf = r#"{"fn":"f3","pop":32,"gens":8,"xover":10,"mut":1,"seed":7}"#;
        let crlf = format!("{lf}\r\n");
        assert_eq!(
            parse_job(strip_line_ending(&crlf), 0),
            parse_job(lf, 0),
            "a CRLF client must get the same job as an LF one"
        );
        // And a CRLF "blank" line must strip to empty (skipped by the
        // readers), not reach the parser at all.
        assert!(strip_line_ending("\r\n").is_empty());
    }

    #[test]
    fn parse_object_handles_whitespace_and_empty() {
        assert_eq!(parse_object("{}"), Ok(vec![]));
        let got = parse_object(" { \"a\" : 1 , \"b\" : \"x\" } ").expect("spaced object");
        assert_eq!(
            got,
            vec![
                ("a".into(), JsonValue::Num(1.0)),
                ("b".into(), JsonValue::Str("x".into()))
            ]
        );
        assert!(parse_object("{\"a\":1,}").is_err(), "trailing comma");
    }
}
