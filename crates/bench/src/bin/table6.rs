//! Regenerate Table VI: post-place-and-route statistics of the GA core
//! on the xc2vp30 — logic utilization, clock, and block-memory
//! utilization for the GA memory and the lookup fitness module.
//!
//! Run with `cargo run --release -p ga-bench --bin table6`.

use ga_fitness::rom::{bram16_count, bram_utilization_pct};
use ga_synth::elaborate_ga_core;

fn main() {
    let (_netlist, report) = elaborate_ga_core();

    // Block-memory geometry (identical to the paper's):
    // GA memory: 256 × 32; fitness lookup: 2^16 × 16.
    let ga_mem_brams = bram16_count(256, 32);
    let fitness_brams = bram16_count(1 << 16, 16);

    println!("Table VI — post-place-and-route statistics (xc2vp30-7ff896)");
    println!(
        "{:<48} {:>12} {:>10}",
        "design attribute", "this repo", "paper"
    );
    println!("{}", "-".repeat(72));
    println!(
        "{:<48} {:>11}% {:>9}%",
        "Logic utilization (% slices used)", report.slice_pct, 13
    );
    println!(
        "{:<48} {:>9} MHz {:>7} MHz",
        "Clock (achievable fmax; paper ran at 50 MHz)",
        report.timing.fmax_mhz.round() as u32,
        50
    );
    println!(
        "{:<48} {:>11}% {:>9}%",
        "Block memory utilization (GA memory)",
        bram_utilization_pct(ga_mem_brams),
        1
    );
    println!(
        "{:<48} {:>11}% {:>9}%",
        "Block memory utilization (fitness lookup module)",
        bram_utilization_pct(fitness_brams),
        48
    );
    println!();
    println!(
        "detail: {} gates → {} LUT4 + {} MUXCY + {} FF → {} slices",
        report.gates, report.map.lut4, report.map.carry_mux, report.map.ff, report.slices
    );
    println!(
        "        critical path {:.2} ns ({} LUT levels)",
        report.timing.critical_ns, report.timing.levels
    );
    println!(
        "        GA memory {} BRAM, fitness ROM {} BRAM of 136",
        ga_mem_brams, fitness_brams
    );
}
