//! Regenerate Figs. 13–16: best and average fitness per generation,
//! captured from the cycle-accurate hardware run (the paper logged
//! these with Chipscope Pro cores).
//!
//! Captions:
//! * Fig. 13 — mBF6_2, seed 061F, XR 10, pop 64
//! * Fig. 14 — mBF6_2, seed A0A0, XR 10, pop 64
//! * Fig. 15 — mBF7_2, seed AAAA, XR 12, pop 64
//! * Fig. 16 — mShubert2D, seed AAAA, XR 10, pop 64
//!
//! CSV rows: `figure,generation,best,avg`.
//!
//! Run with `cargo run --release -p ga-bench --bin fig13_16 > fig13_16.csv`.

use ga_bench::{run_hw, table7_params};
use ga_fitness::TestFunction;

fn main() {
    println!("figure,generation,best,avg");
    let figures = [
        (13u8, TestFunction::Mbf6_2, 0x061Fu16, 10u8),
        (14, TestFunction::Mbf6_2, 0xA0A0, 10),
        (15, TestFunction::Mbf7_2, 0xAAAA, 12),
        (16, TestFunction::MShubert2D, 0xAAAA, 10),
    ];
    for (fig, f, seed, xr) in figures {
        let params = table7_params(seed, 64, xr);
        let run = run_hw(f, &params);
        let mut best_at_10 = 0u16;
        for s in &run.trajectory {
            let avg = s.fit_sum as f64 / params.pop_size as f64;
            println!("{fig},{},{},{avg:.1}", s.gen, s.best_fitness);
            if s.gen == 10 {
                best_at_10 = s.best_fitness;
            }
        }
        eprintln!(
            "Fig.{fig} ({}, seed {seed:04X}, XR {xr}): final best {}, best@gen10 {} — the paper finds its best within ~10 generations",
            f.name(),
            run.best_fitness,
            best_at_10
        );
    }
}
