//! §II-C support: RNG quality statistics for the generators a hardware
//! GA might use — the paper's cellular automaton, the LFSR used by
//! prior work, and a deliberately poor CA (pure rule 90), measured with
//! the §II-C criteria: period, uniformity, serial correlation, bit
//! balance.
//!
//! The three batteries run through the shared parallel sweep runner
//! (each is independent) and the binary emits `BENCH_rngquality.json`.
//!
//! Run with `cargo run --release -p ga-bench --bin rngquality`.

use carng::stats::{quality_report, QualityReport};
use carng::{CaRng, Lfsr16};
use ga_bench::{default_threads, run_sweep, BenchReport, Stopwatch};

/// Which generator a sweep item measures (the factories have distinct
/// types, so dispatch happens inside the worker).
#[derive(Clone, Copy)]
enum Generator {
    Ca,
    Lfsr,
    PoorCa,
}

fn measure(g: Generator) -> QualityReport {
    match g {
        Generator::Ca => quality_report(|| CaRng::new(0x2961)),
        Generator::Lfsr => quality_report(|| Lfsr16::new(0x2961)),
        Generator::PoorCa => quality_report(|| CaRng::with_rules(0x2961, 0x0000)),
    }
}

fn main() {
    let threads = default_threads();
    let sw = Stopwatch::start();
    let jobs = [Generator::Ca, Generator::Lfsr, Generator::PoorCa];
    let reports = run_sweep(&jobs, threads, |_, &g| measure(g));
    let wall = sw.seconds();

    println!("§II-C — PRNG quality (period / chi² over 64 buckets / lag-1 corr / worst bit bias)");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10}",
        "generator", "period", "chi2", "corr", "bias"
    );
    println!("{}", "-".repeat(70));
    let names = [
        "CA rule 90/150 (0x055F)",
        "Galois LFSR (0xB400)",
        "poor CA (pure rule 90)",
    ];
    for (name, r) in names.iter().zip(&reports) {
        println!(
            "{:<28} {:>8} {:>10.1} {:>10.3} {:>10.4}",
            name,
            r.period
                .map(|p| p.to_string())
                .unwrap_or_else(|| ">cap".into()),
            r.chi_square_64,
            r.serial_corr,
            r.worst_bit_bias
        );
    }
    println!();
    println!("The maximal-length generators traverse all 65535 nonzero states; the");
    println!("pure-rule-90 CA collapses onto a short cycle — the 'poor PRNG' of the");
    println!("Meysenburg/Foster and Cantú-Paz studies the paper discusses.");

    BenchReport::new("rngquality", wall, 1, threads as u64)
        .metric("generators", reports.len() as f64)
        .metric("period_ca", reports[0].period.map_or(-1.0, f64::from))
        .metric("period_lfsr", reports[1].period.map_or(-1.0, f64::from))
        .metric("period_poor_ca", reports[2].period.map_or(-1.0, f64::from))
        .metric("chi2_ca", reports[0].chi_square_64)
        .emit_or_warn();
}
