//! §II-C support: RNG quality statistics for the generators a hardware
//! GA might use — the paper's cellular automaton, the LFSR used by
//! prior work, and a deliberately poor CA (pure rule 90), measured with
//! the §II-C criteria: period, uniformity, serial correlation, bit
//! balance.
//!
//! Run with `cargo run --release -p ga-bench --bin rngquality`.

use carng::stats::quality_report;
use carng::{CaRng, Lfsr16};

fn main() {
    println!("§II-C — PRNG quality (period / chi² over 64 buckets / lag-1 corr / worst bit bias)");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10}",
        "generator", "period", "chi2", "corr", "bias"
    );
    println!("{}", "-".repeat(70));
    let rows: [(&str, carng::stats::QualityReport); 3] = [
        (
            "CA rule 90/150 (0x055F)",
            quality_report(|| CaRng::new(0x2961)),
        ),
        (
            "Galois LFSR (0xB400)",
            quality_report(|| Lfsr16::new(0x2961)),
        ),
        (
            "poor CA (pure rule 90)",
            quality_report(|| CaRng::with_rules(0x2961, 0x0000)),
        ),
    ];
    for (name, r) in rows {
        println!(
            "{:<28} {:>8} {:>10.1} {:>10.3} {:>10.4}",
            name,
            r.period
                .map(|p| p.to_string())
                .unwrap_or_else(|| ">cap".into()),
            r.chi_square_64,
            r.serial_corr,
            r.worst_bit_bias
        );
    }
    println!();
    println!("The maximal-length generators traverse all 65535 nonzero states; the");
    println!("pure-rule-90 CA collapses onto a short cycle — the 'poor PRNG' of the");
    println!("Meysenburg/Foster and Cantú-Paz studies the paper discusses.");
}
