//! Regenerate Figs. 8–12: the RT-level convergence scatter plots.
//!
//! Each figure plots every *distinct* fitness value present in each
//! generation's population ("the plots show only one of multiple
//! members with the same fitness"). The five figures correspond to
//! Table V runs 3, 4, 5, 6 and 10. CSV rows: `figure,generation,fitness`.
//!
//! Run with `cargo run --release -p ga-bench --bin fig8_12 > fig8_12.csv`.

use carng::CaRng;
use ga_bench::{table5_params, TABLE5_RUNS};
use ga_core::GaEngine;

fn main() {
    println!("figure,generation,fitness");
    // (figure number, Table V run number) per the captions.
    let figures = [(8u8, 3u8), (9, 4), (10, 5), (11, 6), (12, 10)];
    for (fig, run_no) in figures {
        let row = TABLE5_RUNS
            .iter()
            .find(|r| r.run == run_no)
            .expect("run number exists");
        let params = table5_params(row);
        let f = row.function;
        // The behavioral engine exposes the full population per
        // generation (proven bit-identical to the hardware by the
        // differential tests).
        let mut engine = GaEngine::new(params, CaRng::new(params.seed), move |c| f.eval_u16(c));
        engine.init_population();
        emit(fig, 0, engine.population());
        for gen in 1..=32u32 {
            engine.step_generation();
            emit(fig, gen, engine.population());
        }
    }
    eprintln!("Figs. 8–12 scatter series written.");
}

fn emit(fig: u8, gen: u32, pop: &[ga_core::Individual]) {
    let mut fits: Vec<u16> = pop.iter().map(|i| i.fitness).collect();
    fits.sort_unstable();
    fits.dedup();
    for f in fits {
        println!("{fig},{gen},{f}");
    }
}
