//! Regenerate the §IV-C runtime comparison: hardware GA (cycle-accurate
//! 50 MHz system) versus the software GA on the embedded PowerPC
//! (instrumented operation counts × the PPC405 cost model), averaged
//! over six seeds like the paper's six runs.
//!
//! Paper: software 37.615 ms, speedup ≈ 5.16× (⇒ hardware ≈ 7.29 ms).
//!
//! Emits `BENCH_speedup.json` (`GA_BENCH_QUICK` averages over 2 seeds
//! instead of 6 for smoke runs).
//!
//! Run with `cargo run --release -p ga-bench --bin speedup`.

use ga_bench::{quick, BenchReport, Stopwatch};
use swga::{speedup_experiment, PpcCostModel};

fn main() {
    let sw = Stopwatch::start();
    let n_seeds = if quick() { 2 } else { 6 };
    println!("§IV-C — hardware vs software runtime (mBF6_2, pop 32, XR 0.625, MR 0.0625, 32 gens)");
    println!();
    let report = speedup_experiment(PpcCostModel::default(), n_seeds);
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "seed", "hw cycles", "hw ms", "sw ms"
    );
    println!("{}", "-".repeat(44));
    for s in &report.samples {
        println!(
            "{:>8} {:>12} {:>10.3} {:>10.3}",
            format!("{:04X}", s.seed),
            s.hw_cycles,
            s.hw_seconds * 1e3,
            s.sw_seconds * 1e3
        );
    }
    println!("{}", "-".repeat(44));
    println!(
        "mean: hw {:.3} ms, sw {:.3} ms → speedup {:.2}×",
        report.hw_seconds * 1e3,
        report.sw_seconds * 1e3,
        report.speedup
    );
    println!("paper: hw 7.290 ms, sw 37.615 ms → speedup 5.16×");
    println!();

    // Sensitivity: the optimistic cached-PPC variant. Its wall-clock
    // "speedup" drops below 1 — not because the engine does less work
    // per cycle, but because the comparison pits a 50 MHz fabric clock
    // against a 300 MHz processor clock. The clock-normalized
    // (cycle-for-cycle) ratio factors that 6× handicap out.
    let cached = speedup_experiment(PpcCostModel::cached(), n_seeds);
    println!(
        "sensitivity (caches enabled on the PPC405): sw {:.3} ms → speedup {:.2}×",
        cached.sw_seconds * 1e3,
        cached.speedup
    );
    println!(
        "clock-normalized (equal clocks): uncached {:.2}×, cached {:.2}× —",
        report.speedup_equal_clock, cached.speedup_equal_clock
    );
    println!("the cached wall-clock loss is entirely the 300 MHz / 50 MHz clock gap.");
    println!();
    println!("Our scheduling is tighter than the authors' HLS output on both sides,");
    println!("so absolute times are smaller; the ratio — hardware wins by ~5× with");
    println!("the documented uncached-PPC405 configuration — reproduces the paper.");

    BenchReport::new("speedup", sw.seconds(), 1, 1)
        .metric("seeds", n_seeds as f64)
        .metric("hw_ms", report.hw_seconds * 1e3)
        .metric("sw_ms", report.sw_seconds * 1e3)
        .metric("speedup_uncached", report.speedup)
        .metric("speedup_cached", cached.speedup)
        .metric("speedup_uncached_equal_clock", report.speedup_equal_clock)
        .metric("speedup_cached_equal_clock", cached.speedup_equal_clock)
        .emit_or_warn();
}
