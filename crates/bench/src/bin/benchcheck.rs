//! CI validator for `BENCH_<name>.json` reports.
//!
//! Usage:
//!
//! ```text
//! benchcheck <file.json> [KEY>=MIN ...]
//! ```
//!
//! Checks that the file parses, carries the required schema keys
//! (`name`, `wall_seconds`, `lanes`, `threads`), and that every
//! `KEY>=MIN` constraint holds against the report's numbers (top-level
//! fields or metrics — keys are unique across a report). Exits nonzero
//! with a diagnostic on the first violation, so a perf regression below
//! a floor fails the build the same way a lint error does.

use ga_bench::report::{json_extract_number, json_extract_string};
use std::process::ExitCode;

fn check(path: &str, constraints: &[String]) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read ({e})"))?;

    let name = json_extract_string(&json, "name")
        .ok_or_else(|| format!("{path}: missing required key \"name\""))?;
    if name.is_empty() {
        return Err(format!("{path}: empty \"name\""));
    }
    for key in ["wall_seconds", "lanes", "threads"] {
        let v = json_extract_number(&json, key)
            .ok_or_else(|| format!("{path}: missing required numeric key \"{key}\""))?;
        if v < 0.0 {
            return Err(format!("{path}: {key} = {v} is negative"));
        }
    }

    for c in constraints {
        let (key, min) = c
            .split_once(">=")
            .ok_or_else(|| format!("bad constraint {c:?} (expected KEY>=MIN)"))?;
        let min: f64 = min
            .trim()
            .parse()
            .map_err(|_| format!("bad constraint {c:?}: {min:?} is not a number"))?;
        let got = json_extract_number(&json, key.trim())
            .ok_or_else(|| format!("{path}: constraint key \"{key}\" not in report"))?;
        if got < min {
            return Err(format!(
                "{path}: {key} = {got:.3e} below required floor {min:.3e}"
            ));
        }
        println!("benchcheck: {name}: {key} = {got:.3e} >= {min:.3e} ok");
    }
    println!("benchcheck: {path} ok (name = {name})");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((path, constraints)) = args.split_first() else {
        eprintln!("usage: benchcheck <file.json> [KEY>=MIN ...]");
        return ExitCode::FAILURE;
    };
    match check(path, constraints) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("benchcheck: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}
