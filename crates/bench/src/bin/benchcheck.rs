//! CI validator for `BENCH_<name>.json` reports.
//!
//! Usage:
//!
//! ```text
//! benchcheck <file.json> [--require-backend-throughput] [KEY>=MIN ...] [KEY<=MAX ...]
//! ```
//!
//! Checks that the file parses, carries the required schema keys
//! (`name`, `wall_seconds`, `lanes`, `threads`), and that every
//! `KEY>=MIN` / `KEY<=MAX` constraint holds against the report's
//! numbers (top-level fields or metrics — keys are unique across a
//! report). Pairing a floor with a ceiling pins a metric exactly
//! (`unclassified>=0 unclassified<=0`). With
//! `--require-backend-throughput` the report must additionally carry
//! the full per-backend throughput/latency block (`<name>_jobs`,
//! `<name>_avg_us`, and the `<name>_p50_us`/`_p95_us`/`_p99_us`/
//! `_max_us` histogram metrics) for **every** engine in the registry —
//! so registering a sixth backend without serving it fails CI, and so
//! does a serving-layer report that drops its tail-latency columns. Exits nonzero with a diagnostic
//! on the first violation, so a perf regression below a floor fails the
//! build the same way a lint error does.

use ga_bench::report::{json_extract_number, json_extract_string};
use std::process::ExitCode;

fn check(path: &str, constraints: &[String], require_backends: bool) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read ({e})"))?;

    let name = json_extract_string(&json, "name")
        .ok_or_else(|| format!("{path}: missing required key \"name\""))?;
    if name.is_empty() {
        return Err(format!("{path}: empty \"name\""));
    }
    for key in ["wall_seconds", "lanes", "threads"] {
        let v = json_extract_number(&json, key)
            .ok_or_else(|| format!("{path}: missing required numeric key \"{key}\""))?;
        if v < 0.0 {
            return Err(format!("{path}: {key} = {v} is negative"));
        }
    }

    if require_backends {
        for kind in ga_engine::global().kinds() {
            for suffix in ["jobs", "avg_us", "p50_us", "p95_us", "p99_us", "max_us"] {
                let key = format!("{}_{suffix}", kind.name());
                let v = json_extract_number(&json, &key).ok_or_else(|| {
                    format!(
                        "{path}: registered backend {} has no \"{key}\" metric",
                        kind.name()
                    )
                })?;
                if v < 0.0 {
                    return Err(format!("{path}: {key} = {v} is negative"));
                }
            }
            println!(
                "benchcheck: {name}: backend {} throughput present ok",
                kind.name()
            );
        }
    }

    for c in constraints {
        let (key, op, bound) = if let Some((key, max)) = c.split_once("<=") {
            (key, "<=", max)
        } else if let Some((key, min)) = c.split_once(">=") {
            (key, ">=", min)
        } else {
            return Err(format!(
                "bad constraint {c:?} (expected KEY>=MIN or KEY<=MAX)"
            ));
        };
        let bound: f64 = bound
            .trim()
            .parse()
            .map_err(|_| format!("bad constraint {c:?}: {bound:?} is not a number"))?;
        let got = json_extract_number(&json, key.trim())
            .ok_or_else(|| format!("{path}: constraint key \"{key}\" not in report"))?;
        let violated = match op {
            "<=" => got > bound,
            _ => got < bound,
        };
        if violated {
            let kind = if op == "<=" { "ceiling" } else { "floor" };
            return Err(format!(
                "{path}: {key} = {got:.3e} violates required {kind} {op} {bound:.3e}"
            ));
        }
        println!("benchcheck: {name}: {key} = {got:.3e} {op} {bound:.3e} ok");
    }
    println!("benchcheck: {path} ok (name = {name})");
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let n_before = args.len();
    args.retain(|a| a != "--require-backend-throughput");
    let require_backends = args.len() != n_before;
    let Some((path, constraints)) = args.split_first() else {
        eprintln!("usage: benchcheck <file.json> [--require-backend-throughput] [KEY>=MIN ...]");
        return ExitCode::FAILURE;
    };
    match check(path, constraints, require_backends) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("benchcheck: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}
