//! §II-C — does PRNG quality affect GA performance?
//!
//! The paper surveys the dispute: Meysenburg & Foster found "little or
//! no improvement" from good PRNGs; Cantú-Paz found the quality of the
//! *initial population* matters most; and "poor RNGs can sometimes
//! outperform good RNGs for particular seeds", which is why the core
//! makes the seed programmable. We rerun the study on this
//! implementation: the same GA across 64 seeds, driven by
//!
//! * the hardware CA (maximal period, lag-1 corr ≈ 0.38),
//! * the maximal LFSR,
//! * a deliberately poor CA (pure rule 90: period 30),
//! * a modern software generator (ChaCha via `rand`, the "good PRNG").
//!
//! The per-seed runs go through the shared parallel sweep runner and
//! the binary emits `BENCH_rng_effect.json` (`GA_BENCH_QUICK` shrinks
//! the sweep to 8 seeds for smoke runs).
//!
//! Run with `cargo run --release -p ga-bench --bin rng_effect`.

use carng::{CaRng, Lfsr16, Rng16};
use ga_bench::{default_threads, quick, run_sweep, BenchReport, Stopwatch};
use ga_core::{GaEngine, GaParams};
use ga_fitness::TestFunction;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Adapter: a modern software PRNG behind the hardware-style trait.
struct SoftRng {
    inner: StdRng,
    out: u16,
}

impl SoftRng {
    fn new(seed: u16) -> Self {
        let mut s = SoftRng {
            inner: StdRng::seed_from_u64(seed as u64),
            out: 0,
        };
        s.out = seed; // same first-draw-is-the-seed convention
        s
    }
}

impl Rng16 for SoftRng {
    fn output(&self) -> u16 {
        self.out
    }
    fn step(&mut self) {
        self.out = (self.inner.next_u32() & 0xFFFF) as u16;
    }
    fn reseed(&mut self, seed: u16) {
        *self = SoftRng::new(seed);
    }
}

/// Mean and standard deviation of best fitness across seeds.
fn stats(results: &[u16]) -> (f64, f64) {
    let n = results.len() as f64;
    let mean = results.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = results
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    (mean, var.sqrt())
}

fn sweep(
    f: TestFunction,
    n_seeds: u16,
    threads: usize,
    mk: impl Fn(u16) -> Box<dyn Rng16> + Sync,
) -> (f64, f64, u16) {
    let seeds: Vec<u16> = (0..n_seeds).map(|k| 0x1000 + k * 977).collect();
    let results = run_sweep(&seeds, threads, |_, &seed| {
        let params = GaParams::new(32, 32, 10, 1, seed);
        // The factory runs inside the worker: `Box<dyn Rng16>` need not
        // be Send, only the (stateless) factory must be Sync.
        let mut rng = mk(seed);
        rng.reseed(seed);
        // Generic-over-dyn engine: drive through a small adapter.
        struct DynRng(Box<dyn Rng16>);
        impl Rng16 for DynRng {
            fn output(&self) -> u16 {
                self.0.output()
            }
            fn step(&mut self) {
                self.0.step()
            }
            fn reseed(&mut self, s: u16) {
                self.0.reseed(s)
            }
        }
        GaEngine::new(params, DynRng(rng), move |c| f.eval_u16(c))
            .run()
            .best
            .fitness
    });
    let (mean, sd) = stats(&results);
    (mean, sd, *results.iter().max().unwrap())
}

fn main() {
    let threads = default_threads();
    let n_seeds: u16 = if quick() { 8 } else { 64 };
    let sw = Stopwatch::start();
    println!("§II-C — GA performance vs PRNG quality");
    println!("(BF6, pop 32, 32 gens, XR 10, MR 1; {n_seeds} seeds per generator)\n");
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "generator", "mean best", "stddev", "max"
    );
    println!("{}", "-".repeat(56));
    let rows: Vec<(&str, (f64, f64, u16))> = vec![
        (
            "CA 90/150 (hardware)",
            sweep(TestFunction::Bf6, n_seeds, threads, |s| {
                Box::new(CaRng::new(s))
            }),
        ),
        (
            "Galois LFSR",
            sweep(TestFunction::Bf6, n_seeds, threads, |s| {
                Box::new(Lfsr16::new(s))
            }),
        ),
        (
            "poor CA (rule 90)",
            sweep(TestFunction::Bf6, n_seeds, threads, |s| {
                Box::new(CaRng::with_rules(s, 0))
            }),
        ),
        (
            "ChaCha (rand::StdRng)",
            sweep(TestFunction::Bf6, n_seeds, threads, |s| {
                Box::new(SoftRng::new(s))
            }),
        ),
    ];
    for (name, (mean, sd, max)) in &rows {
        println!("{:<26} {:>10.1} {:>8.1} {:>8}", name, mean, sd, max);
    }
    println!();
    println!("Expected shape (and the paper's reading of Cantú-Paz): the maximal");
    println!("hardware generators track the software-quality PRNG closely, while");
    println!("the short-period generator measurably degrades the mean — its period");
    println!("of 30 can't even fill a random initial population of 32.");

    let wall = sw.seconds();
    BenchReport::new("rng_effect", wall, 1, threads as u64)
        .metric("seeds_per_generator", n_seeds as f64)
        .metric("ga_runs", 4.0 * n_seeds as f64)
        .metric("ga_runs_per_sec", 4.0 * n_seeds as f64 / wall)
        .metric("mean_best_ca", rows[0].1 .0)
        .metric("mean_best_lfsr", rows[1].1 .0)
        .metric("mean_best_poor_ca", rows[2].1 .0)
        .metric("mean_best_soft", rows[3].1 .0)
        .emit_or_warn();
}
