//! Demonstrate §III-D: the 32-bit GA built from two 16-bit cores.
//!
//! Prints the probability-composition table (the paper's
//! `xovProb32 = p_M + p_L − p_M·p_L` algebra with realizable 4-bit
//! thresholds) and runs the dual-core engine on a 32-bit optimization.
//!
//! Run with `cargo run --release -p ga-bench --bin scaling32`.

use carng::CaRng;
use ga_core::scaling::{compose_prob, split_prob, threshold_for_prob, GaEngine32};
use ga_core::GaParams;

/// A 32-bit two-variable test function in the style of the paper's F3:
/// maximize both 16-bit halves (optimum 65535 at 0xFFFFFFFF).
fn f3_32(c: u32) -> u16 {
    let msb = c >> 16;
    let lsb = c & 0xFFFF;
    ((msb + lsb) / 2) as u16
}

fn main() {
    println!("§III-D — probability composition for the dual-core 32-bit GA");
    println!(
        "{:>12} {:>12} {:>12} {:>14}",
        "target p32", "per-half p", "threshold", "realized p32"
    );
    println!("{}", "-".repeat(54));
    for target in [0.25, 0.5, 0.625, 0.75, 0.875] {
        let p = split_prob(target);
        let t = threshold_for_prob(p);
        let realized = compose_prob(t as f64 / 16.0, t as f64 / 16.0);
        println!("{target:>12.3} {p:>12.3} {t:>12} {realized:>14.3}");
    }
    println!();

    // Run the dual-core engine with per-half thresholds realizing the
    // paper's favorite overall crossover rate of 0.625.
    let per_half = threshold_for_prob(split_prob(0.625));
    let params = GaParams::new(64, 64, per_half, 1, 0x2961);
    let run = GaEngine32::new(params, CaRng::new(0x2961), CaRng::new(0x061F), f3_32)
        .with_split_thresholds(per_half, per_half, 1, 1)
        .run();
    println!("32-bit run (pop 64, 64 gens, per-half xover threshold {per_half}):");
    println!(
        "  best chromosome {:#010X}, fitness {} / 65535 ({:.2}% of optimum)",
        run.best.chrom,
        run.best.fitness,
        100.0 * run.best.fitness as f64 / 65535.0
    );
    println!("  evaluations: {}", run.evaluations);
    let final_avg = run.history.last().unwrap().fit_sum as f64 / params.pop_size as f64;
    println!("  final-generation average fitness: {final_avg:.0}");
}
