//! Demonstrate §III-D: the 32-bit GA built from two 16-bit cores.
//!
//! Prints the probability-composition table (the paper's
//! `xovProb32 = p_M + p_L − p_M·p_L` algebra with realizable 4-bit
//! thresholds) and runs the ganged dual-core system — dispatched
//! through the engine registry's `rtl32` backend — on the split 32-bit
//! F3 optimization, across the six Table VII seeds via the shared
//! parallel sweep runner, emitting `BENCH_scaling32.json`.
//! `GA_BENCH_GENS` overrides the generation count for smoke runs.
//!
//! Run with `cargo run --release -p ga-bench --bin scaling32`.

use carng::seeds::TABLE7_SEEDS;
use ga_bench::{
    default_threads, gens_override, run_on, run_sweep, BackendKind, BenchReport, Stopwatch,
};
use ga_core::scaling::{compose_prob, split_prob, threshold_for_prob};
use ga_core::GaParams;
use ga_fitness::TestFunction;

/// The split 32-bit workload: the `rtl32` backend's shared `Fem32`
/// scores each 16-bit half with F3 and averages, so the optimum is
/// F3's own global maximum (reached when both halves are optimal).
const FUNCTION: TestFunction = TestFunction::F3;

fn main() {
    let threads = default_threads();
    let sw = Stopwatch::start();
    println!("§III-D — probability composition for the dual-core 32-bit GA");
    println!(
        "{:>12} {:>12} {:>12} {:>14}",
        "target p32", "per-half p", "threshold", "realized p32"
    );
    println!("{}", "-".repeat(54));
    for target in [0.25, 0.5, 0.625, 0.75, 0.875] {
        let p = split_prob(target);
        let t = threshold_for_prob(p);
        let realized = compose_prob(t as f64 / 16.0, t as f64 / 16.0);
        println!("{target:>12.3} {p:>12.3} {t:>12} {realized:>14.3}");
    }
    println!();

    // Run the ganged dual-core system across the Table VII seed set
    // with per-half thresholds realizing the paper's favorite overall
    // crossover rate of 0.625 (the second core's RNG is hardware-seeded
    // with the complemented seed, mirroring the two independent
    // modules). Each cell is one registry dispatch to `rtl32`.
    let per_half = threshold_for_prob(split_prob(0.625));
    let n_gens = gens_override().unwrap_or(64);
    let optimum = FUNCTION.global_max();
    let pop = 64u8;
    let runs = run_sweep(&TABLE7_SEEDS, threads, |_, &seed| {
        let params = GaParams::new(pop, n_gens, per_half, 1, seed);
        run_on(BackendKind::Rtl32, FUNCTION, &params)
    });
    let wall = sw.seconds();

    println!(
        "32-bit {} runs (pop {pop}, {n_gens} gens, per-half xover threshold {per_half}, optimum {optimum}):",
        FUNCTION.name()
    );
    println!(
        "{:>8} {:>12} {:>9} {:>8} {:>12} {:>10}",
        "seed", "best chrom", "fitness", "of opt", "evaluations", "final avg"
    );
    println!("{}", "-".repeat(64));
    let mut evals: u64 = 0;
    for (&seed, run) in TABLE7_SEEDS.iter().zip(&runs) {
        evals += run.evaluations;
        let final_avg = run
            .trajectory
            .last()
            .map(|s| s.fit_sum as f64 / pop as f64)
            .unwrap_or(0.0);
        println!(
            "{:>8} {:>#12.8X} {:>9} {:>7.2}% {:>12} {:>10.0}",
            format!("{seed:04X}"),
            run.best_chrom,
            run.best_fitness,
            100.0 * run.best_fitness as f64 / optimum as f64,
            run.evaluations,
            final_avg
        );
    }
    let best = runs.iter().map(|r| r.best_fitness).max().unwrap();
    let mean = runs.iter().map(|r| r.best_fitness as f64).sum::<f64>() / runs.len() as f64;
    println!("{}", "-".repeat(64));
    println!(
        "best {best} / {optimum} across {} seeds, mean best {mean:.0}",
        runs.len()
    );

    BenchReport::new("scaling32", wall, 1, threads as u64)
        .metric("seeds", runs.len() as f64)
        .metric("evaluations", evals as f64)
        .metric("evaluations_per_sec", evals as f64 / wall)
        .metric("best_fitness", best as f64)
        .metric("mean_best_fitness", mean)
        .emit_or_warn();
}
