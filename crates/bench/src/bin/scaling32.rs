//! Demonstrate §III-D: the 32-bit GA built from two 16-bit cores.
//!
//! Prints the probability-composition table (the paper's
//! `xovProb32 = p_M + p_L − p_M·p_L` algebra with realizable 4-bit
//! thresholds) and runs the dual-core engine on a 32-bit optimization —
//! across the six Table VII seeds via the shared parallel sweep runner,
//! emitting `BENCH_scaling32.json`. `GA_BENCH_GENS` overrides the
//! generation count for smoke runs.
//!
//! Run with `cargo run --release -p ga-bench --bin scaling32`.

use carng::seeds::TABLE7_SEEDS;
use carng::CaRng;
use ga_bench::{default_threads, gens_override, run_sweep, BenchReport, Stopwatch};
use ga_core::scaling::{compose_prob, split_prob, threshold_for_prob, GaEngine32};
use ga_core::GaParams;

/// A 32-bit two-variable test function in the style of the paper's F3:
/// maximize both 16-bit halves (optimum 65535 at 0xFFFFFFFF).
fn f3_32(c: u32) -> u16 {
    let msb = c >> 16;
    let lsb = c & 0xFFFF;
    ((msb + lsb) / 2) as u16
}

fn main() {
    let threads = default_threads();
    let sw = Stopwatch::start();
    println!("§III-D — probability composition for the dual-core 32-bit GA");
    println!(
        "{:>12} {:>12} {:>12} {:>14}",
        "target p32", "per-half p", "threshold", "realized p32"
    );
    println!("{}", "-".repeat(54));
    for target in [0.25, 0.5, 0.625, 0.75, 0.875] {
        let p = split_prob(target);
        let t = threshold_for_prob(p);
        let realized = compose_prob(t as f64 / 16.0, t as f64 / 16.0);
        println!("{target:>12.3} {p:>12.3} {t:>12} {realized:>14.3}");
    }
    println!();

    // Run the dual-core engine across the Table VII seed set with
    // per-half thresholds realizing the paper's favorite overall
    // crossover rate of 0.625 (the second RNG is reseeded per run with
    // the complemented seed, mirroring the two independent modules).
    let per_half = threshold_for_prob(split_prob(0.625));
    let n_gens = gens_override().unwrap_or(64);
    let runs = run_sweep(&TABLE7_SEEDS, threads, |_, &seed| {
        let params = GaParams::new(64, n_gens, per_half, 1, seed);
        (
            params,
            GaEngine32::new(params, CaRng::new(seed), CaRng::new(!seed), f3_32)
                .with_split_thresholds(per_half, per_half, 1, 1)
                .run(),
        )
    });
    let wall = sw.seconds();

    println!("32-bit runs (pop 64, {n_gens} gens, per-half xover threshold {per_half}):");
    println!(
        "{:>8} {:>12} {:>9} {:>8} {:>12} {:>10}",
        "seed", "best chrom", "fitness", "of opt", "evaluations", "final avg"
    );
    println!("{}", "-".repeat(64));
    let mut evals: u64 = 0;
    for (&seed, (params, run)) in TABLE7_SEEDS.iter().zip(&runs) {
        evals += run.evaluations;
        let final_avg = run.history.last().unwrap().fit_sum as f64 / params.pop_size as f64;
        println!(
            "{:>8} {:>#12.8X} {:>9} {:>7.2}% {:>12} {:>10.0}",
            format!("{seed:04X}"),
            run.best.chrom,
            run.best.fitness,
            100.0 * run.best.fitness as f64 / 65535.0,
            run.evaluations,
            final_avg
        );
    }
    let best = runs.iter().map(|(_, r)| r.best.fitness).max().unwrap();
    let mean = runs.iter().map(|(_, r)| r.best.fitness as f64).sum::<f64>() / runs.len() as f64;
    println!("{}", "-".repeat(64));
    println!(
        "best {best} / 65535 across {} seeds, mean best {mean:.0}",
        runs.len()
    );

    BenchReport::new("scaling32", wall, 1, threads as u64)
        .metric("seeds", runs.len() as f64)
        .metric("evaluations", evals as f64)
        .metric("evaluations_per_sec", evals as f64 / wall)
        .metric("best_fitness", best as f64)
        .metric("mean_best_fitness", mean)
        .emit_or_warn();
}
