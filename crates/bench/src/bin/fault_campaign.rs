//! `fault_campaign` — scan-chain + netlist SEU campaigns, emitting
//! `BENCH_fault.json`.
//!
//! Two deterministic sweeps (see EXPERIMENTS.md "Fault-injection
//! campaigns" for how to read the output):
//!
//! * **RTL scan campaign** — every scan-chain bit position of the
//!   cycle-accurate core × {flip, stuck-0, stuck-1}, each injected at a
//!   per-case cycle sampled from the in-tree `rand` shim, run to
//!   `GA_done` under a watchdog and graded against the fault-free
//!   golden run (masked / detected / corrupted / hung).
//! * **Netlist campaign** — every flip-flop of the compiled CA-RNG
//!   netlist × the same three polarities × sampled injection cycles,
//!   grading the extracted RNG stream against the behavioral reference
//!   and checking word-level lane isolation (a fault in lane 0 must
//!   never leak into the witness lane).
//!
//! The campaign invariant `masked + detected + corrupted + hung ==
//! injected` is emitted as the `unclassified` / `class_sum_gap` metrics
//! and pinned to zero by `benchcheck` in CI. `GA_BENCH_QUICK` shrinks
//! the grid (position stride 8, one cycle sample per netlist site) for
//! the smoke run; the committed report comes from the full grid.

use ga_bench::{
    classify_hw, default_threads, golden_hw_run, quick, run_scan_injection, run_sweep, BenchReport,
    ClassCounts, ScanInjection, Stopwatch,
};
use ga_core::{GaCoreHw, GaParams};
use ga_fitness::TestFunction;
use ga_synth::bitsim::CompiledNetlist;
use ga_synth::gadesign::elaborate_ca_rng;
use ga_synth::{NetFault, NetFaultKind};
use hwsim::BitFault;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Campaign workload: F3, a small-but-real GA (8 individuals, 4
/// generations) so the full 408-position × 3-polarity sweep stays
/// fast while still exercising selection, crossover, mutation and
/// elitism around every injection.
const FUNCTION: TestFunction = TestFunction::F3;
const POP: u8 = 8;
const GENS: u32 = 4;
const SEED: u16 = 0x2961;

/// Base seed for the per-case injection-cycle sampling (the only
/// random choice in the campaign; everything else is a full grid).
const CYCLE_SEED: u64 = 0xFA01_7CA3;

/// Stuck-at hold duration for the netlist campaign, in edges.
const STUCK_CYCLES: u64 = 4;

/// Draws extracted per netlist injection (matches the serve layer's
/// per-lane stream depth order of magnitude, cheap enough for a grid).
const NET_DRAWS: usize = 64;

fn main() {
    let sw = Stopwatch::start();
    let threads = default_threads();
    let params = GaParams::new(POP, GENS, 10, 1, SEED);
    let golden = golden_hw_run(FUNCTION, &params);
    let golden_cycles = golden.cycles.expect("the rtl backend reports cycles");

    // --- RTL scan campaign -------------------------------------------------
    let stride = if quick() { 8 } else { 1 };
    let positions: Vec<usize> = (0..GaCoreHw::SCAN_LENGTH).step_by(stride).collect();
    // Injection window: after the run is warmed up, before it can
    // finish — so every planned injection lands.
    let lo = 50u64.min(golden_cycles / 4);
    let hi = (golden_cycles * 3 / 4).max(lo + 1);
    let plan: Vec<ScanInjection> = positions
        .iter()
        .flat_map(|&position| BitFault::ALL.map(|kind| (position, kind)))
        .enumerate()
        .map(|(i, (position, kind))| ScanInjection {
            position,
            kind,
            at_cycle: lo
                + StdRng::seed_from_u64(CYCLE_SEED.wrapping_add(i as u64)).next_u64() % (hi - lo),
        })
        .collect();
    // Watchdog: 4× golden plus the scan-shift overhead — hung means
    // "well past any plausible recovery", not "slightly slow".
    let watchdog = golden_cycles * 4 + 2 * GaCoreHw::SCAN_LENGTH as u64 + 64;
    let outcomes = run_sweep(&plan, threads, |_, inj| {
        let outcome = run_scan_injection(FUNCTION, &params, watchdog, *inj);
        // An Err run also landed its injection: the window ends at 3/4
        // of the golden cycle count, so a fault-free prefix cannot trip
        // the 4x-golden watchdog before the injection point.
        let landed = matches!(outcome, Ok((_, true)) | Err(_));
        (classify_hw(&golden, &outcome), landed)
    });

    let mut scan = ClassCounts::default();
    let mut by_kind = [ClassCounts::default(); 3];
    let mut landed = 0u64;
    for (inj, &(class, did_land)) in plan.iter().zip(&outcomes) {
        scan.add(class);
        by_kind[BitFault::ALL.iter().position(|k| *k == inj.kind).unwrap()].add(class);
        landed += u64::from(did_land);
    }

    println!("## Scan-chain SEU campaign");
    println!(
        "workload: {FUNCTION:?} pop={POP} gens={GENS} seed={SEED:04X} \
         (golden: {} cycles, best fitness {})",
        golden_cycles, golden.best_fitness
    );
    println!(
        "grid: {} positions (stride {stride}) x {} polarities = {} injections, watchdog {watchdog} cycles",
        positions.len(),
        BitFault::ALL.len(),
        plan.len()
    );
    println!(
        "{:>8} | {:>7} {:>9} {:>10} {:>6}",
        "polarity", "masked", "detected", "corrupted", "hung"
    );
    println!("{}", "-".repeat(48));
    for (kind, counts) in BitFault::ALL.iter().zip(&by_kind) {
        println!(
            "{:>8} | {:>7} {:>9} {:>10} {:>6}",
            kind.name(),
            counts.masked,
            counts.detected,
            counts.corrupted,
            counts.hung
        );
    }
    println!(
        "{:>8} | {:>7} {:>9} {:>10} {:>6}   ({landed}/{} landed)",
        "total",
        scan.masked,
        scan.detected,
        scan.corrupted,
        scan.hung,
        plan.len()
    );

    // --- Netlist (CA-RNG) campaign -----------------------------------------
    let cn = CompiledNetlist::compile(&elaborate_ca_rng()).expect("CA-RNG netlist compiles");
    let n_sites = cn.sim().compiled().regs().len();
    let cycle_samples = if quick() { 1 } else { 4 };
    let kinds = [
        NetFaultKind::Transient,
        NetFaultKind::Stuck0 {
            cycles: STUCK_CYCLES,
        },
        NetFaultKind::Stuck1 {
            cycles: STUCK_CYCLES,
        },
    ];
    let net_plan: Vec<NetFault> = (0..n_sites)
        .flat_map(|site| kinds.map(|kind| (site, kind)))
        .flat_map(|(site, kind)| (0..cycle_samples).map(move |s| (site, kind, s)))
        .enumerate()
        .map(|(i, (site, kind, _))| NetFault {
            site,
            lane: 0,
            at_cycle: StdRng::seed_from_u64(CYCLE_SEED.wrapping_add(0x5EED + i as u64)).next_u64()
                % (NET_DRAWS as u64 - 1),
            kind,
        })
        .collect();
    let net_outcomes = run_sweep(&net_plan, threads, |_, fault| {
        ga_bench::fault::run_net_injection(&cn, SEED, NET_DRAWS, *fault)
    });

    let mut net = ClassCounts::default();
    let mut lane_leaks = 0u64;
    for o in &net_outcomes {
        net.add(o.class);
        lane_leaks += u64::from(o.lane_leak);
    }
    println!("\n## Netlist (CA-RNG) campaign");
    println!(
        "grid: {n_sites} flip-flops x {} polarities x {cycle_samples} cycles = {} injections, {NET_DRAWS} draws each",
        kinds.len(),
        net_plan.len()
    );
    println!(
        "masked {}  corrupted {}  lane leaks {lane_leaks}",
        net.masked, net.corrupted
    );

    // --- Report ------------------------------------------------------------
    let mut total = scan;
    total.merge(net);
    let injected = (plan.len() + net_plan.len()) as u64;
    let unclassified = injected as i64 - total.total() as i64;
    println!(
        "\ncampaign: {injected} injections, {} classified, {unclassified} unclassified",
        total.total()
    );

    BenchReport::new("fault", sw.seconds(), 1, threads as u64)
        .metric("injected", injected as f64)
        .metric("masked", total.masked as f64)
        .metric("detected", total.detected as f64)
        .metric("corrupted", total.corrupted as f64)
        .metric("hung", total.hung as f64)
        .metric("unclassified", unclassified as f64)
        .metric("class_sum_gap", unclassified.unsigned_abs() as f64)
        .metric("scan_injected", plan.len() as f64)
        .metric("scan_landed", landed as f64)
        .metric("net_injected", net_plan.len() as f64)
        .metric("net_lane_leaks", lane_leaks as f64)
        .metric(
            "masked_fraction",
            if injected == 0 {
                0.0
            } else {
                total.masked as f64 / injected as f64
            },
        )
        .emit_or_warn();

    if unclassified != 0 || lane_leaks != 0 {
        eprintln!(
            "campaign invariant violated (unclassified={unclassified}, lane_leaks={lane_leaks})"
        );
        std::process::exit(1);
    }
}
