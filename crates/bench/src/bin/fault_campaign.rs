//! `fault_campaign` — scan-chain + netlist SEU campaigns, emitting
//! `BENCH_fault.json`.
//!
//! Two deterministic sweeps (see EXPERIMENTS.md "Fault-injection
//! campaigns" for how to read the output):
//!
//! * **RTL scan campaign** — every scan-chain bit position of the
//!   cycle-accurate core × {flip, stuck-0, stuck-1}, each injected at a
//!   per-case cycle sampled from the in-tree `rand` shim, run to
//!   `GA_done` under a watchdog and graded against the fault-free
//!   golden run (masked / detected / corrupted / hung).
//! * **Netlist campaign** — every flip-flop of the compiled CA-RNG
//!   netlist × the same three polarities × sampled injection cycles,
//!   grading the extracted RNG stream against the behavioral reference
//!   and checking word-level lane isolation (a fault in lane 0 must
//!   never leak into the witness lane).
//!
//! The campaign invariant `masked + detected + corrupted + hung ==
//! injected` is emitted as the `unclassified` / `class_sum_gap` metrics
//! and pinned to zero by `benchcheck` in CI. `GA_BENCH_QUICK` shrinks
//! the grid (position stride 8, one cycle sample per netlist site) for
//! the smoke run; the committed report comes from the full grid.
//!
//! `--xcheck` cross-validates the dynamic campaign against galint's
//! *static* fault-observability report: it reruns the full grid, joins
//! every injection with the 424-site static verdict, and fails if any
//! statically-unobservable site was dynamically detected, corrupted or
//! hung — that would mean the static analysis claimed a provably-masked
//! site that demonstrably is not (an unsound verdict). It also checks
//! the rerun's aggregate counts against the committed
//! `BENCH_fault.json` (override the path with `GA_BENCH_FAULT_REF`), so
//! the soundness claim provably covers the committed campaign.

use ga_bench::{
    classify_hw, default_threads, golden_hw_run, json_extract_number, quick, run_scan_injection,
    run_sweep, BenchReport, ClassCounts, ScanInjection, Stopwatch,
};
use ga_core::{GaCoreHw, GaParams};
use ga_fitness::TestFunction;
use ga_synth::bitsim::CompiledNetlist;
use ga_synth::gadesign::elaborate_ca_rng;
use ga_synth::{NetFault, NetFaultKind};
use hwsim::{BitFault, FaultClass};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Campaign workload: F3, a small-but-real GA (8 individuals, 4
/// generations) so the full 408-position × 3-polarity sweep stays
/// fast while still exercising selection, crossover, mutation and
/// elitism around every injection.
const FUNCTION: TestFunction = TestFunction::F3;
const POP: u8 = 8;
const GENS: u32 = 4;
const SEED: u16 = 0x2961;

/// Base seed for the per-case injection-cycle sampling (the only
/// random choice in the campaign; everything else is a full grid).
const CYCLE_SEED: u64 = 0xFA01_7CA3;

/// Stuck-at hold duration for the netlist campaign, in edges.
const STUCK_CYCLES: u64 = 4;

/// Draws extracted per netlist injection (matches the serve layer's
/// per-lane stream depth order of magnitude, cheap enough for a grid).
const NET_DRAWS: usize = 64;

fn main() {
    let mut xcheck = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--xcheck" => xcheck = true,
            _ => {
                eprintln!("usage: fault_campaign [--xcheck]");
                std::process::exit(2);
            }
        }
    }
    // The cross-check must cover the committed full-grid campaign; a
    // strided rerun could not match its aggregates.
    let quick_run = quick() && !xcheck;
    if quick() && xcheck {
        eprintln!("fault_campaign: --xcheck ignores GA_BENCH_QUICK (full grid required)");
    }

    let sw = Stopwatch::start();
    let threads = default_threads();
    let params = GaParams::new(POP, GENS, 10, 1, SEED);
    let golden = golden_hw_run(FUNCTION, &params);
    let golden_cycles = golden.cycles.expect("the rtl backend reports cycles");

    // --- RTL scan campaign -------------------------------------------------
    let stride = if quick_run { 8 } else { 1 };
    let positions: Vec<usize> = (0..GaCoreHw::SCAN_LENGTH).step_by(stride).collect();
    // Injection window: after the run is warmed up, before it can
    // finish — so every planned injection lands.
    let lo = 50u64.min(golden_cycles / 4);
    let hi = (golden_cycles * 3 / 4).max(lo + 1);
    let plan: Vec<ScanInjection> = positions
        .iter()
        .flat_map(|&position| BitFault::ALL.map(|kind| (position, kind)))
        .enumerate()
        .map(|(i, (position, kind))| ScanInjection {
            position,
            kind,
            at_cycle: lo
                + StdRng::seed_from_u64(CYCLE_SEED.wrapping_add(i as u64)).next_u64() % (hi - lo),
        })
        .collect();
    // Watchdog: 4× golden plus the scan-shift overhead — hung means
    // "well past any plausible recovery", not "slightly slow".
    let watchdog = golden_cycles * 4 + 2 * GaCoreHw::SCAN_LENGTH as u64 + 64;
    let outcomes = run_sweep(&plan, threads, |_, inj| {
        let outcome = run_scan_injection(FUNCTION, &params, watchdog, *inj);
        // An Err run also landed its injection: the window ends at 3/4
        // of the golden cycle count, so a fault-free prefix cannot trip
        // the 4x-golden watchdog before the injection point.
        let landed = matches!(outcome, Ok((_, true)) | Err(_));
        (classify_hw(&golden, &outcome), landed)
    });

    let mut scan = ClassCounts::default();
    let mut by_kind = [ClassCounts::default(); 3];
    let mut landed = 0u64;
    for (inj, &(class, did_land)) in plan.iter().zip(&outcomes) {
        scan.add(class);
        by_kind[BitFault::ALL.iter().position(|k| *k == inj.kind).unwrap()].add(class);
        landed += u64::from(did_land);
    }

    println!("## Scan-chain SEU campaign");
    println!(
        "workload: {FUNCTION:?} pop={POP} gens={GENS} seed={SEED:04X} \
         (golden: {} cycles, best fitness {})",
        golden_cycles, golden.best_fitness
    );
    println!(
        "grid: {} positions (stride {stride}) x {} polarities = {} injections, watchdog {watchdog} cycles",
        positions.len(),
        BitFault::ALL.len(),
        plan.len()
    );
    println!(
        "{:>8} | {:>7} {:>9} {:>10} {:>6}",
        "polarity", "masked", "detected", "corrupted", "hung"
    );
    println!("{}", "-".repeat(48));
    for (kind, counts) in BitFault::ALL.iter().zip(&by_kind) {
        println!(
            "{:>8} | {:>7} {:>9} {:>10} {:>6}",
            kind.name(),
            counts.masked,
            counts.detected,
            counts.corrupted,
            counts.hung
        );
    }
    println!(
        "{:>8} | {:>7} {:>9} {:>10} {:>6}   ({landed}/{} landed)",
        "total",
        scan.masked,
        scan.detected,
        scan.corrupted,
        scan.hung,
        plan.len()
    );

    // --- Netlist (CA-RNG) campaign -----------------------------------------
    let cn = CompiledNetlist::compile(&elaborate_ca_rng()).expect("CA-RNG netlist compiles");
    let n_sites = cn.sim().compiled().regs().len();
    let cycle_samples = if quick_run { 1 } else { 4 };
    let kinds = [
        NetFaultKind::Transient,
        NetFaultKind::Stuck0 {
            cycles: STUCK_CYCLES,
        },
        NetFaultKind::Stuck1 {
            cycles: STUCK_CYCLES,
        },
    ];
    let net_plan: Vec<NetFault> = (0..n_sites)
        .flat_map(|site| kinds.map(|kind| (site, kind)))
        .flat_map(|(site, kind)| (0..cycle_samples).map(move |s| (site, kind, s)))
        .enumerate()
        .map(|(i, (site, kind, _))| NetFault {
            site,
            lane: 0,
            at_cycle: StdRng::seed_from_u64(CYCLE_SEED.wrapping_add(0x5EED + i as u64)).next_u64()
                % (NET_DRAWS as u64 - 1),
            kind,
        })
        .collect();
    let net_outcomes = run_sweep(&net_plan, threads, |_, fault| {
        ga_bench::fault::run_net_injection(&cn, SEED, NET_DRAWS, *fault)
    });

    let mut net = ClassCounts::default();
    let mut lane_leaks = 0u64;
    for o in &net_outcomes {
        net.add(o.class);
        lane_leaks += u64::from(o.lane_leak);
    }
    println!("\n## Netlist (CA-RNG) campaign");
    println!(
        "grid: {n_sites} flip-flops x {} polarities x {cycle_samples} cycles = {} injections, {NET_DRAWS} draws each",
        kinds.len(),
        net_plan.len()
    );
    println!(
        "masked {}  corrupted {}  lane leaks {lane_leaks}",
        net.masked, net.corrupted
    );

    // --- Static cross-check ------------------------------------------------
    let mut unsound = 0u64;
    let mut static_masked = 0u64;
    let mut static_unobservable_sites = 0u64;
    let mut ref_mismatch = false;
    if xcheck {
        let report = galint::observability_report().expect("shipping designs elaborate");
        static_unobservable_sites = report.unobservable() as u64;
        println!("\n## Static cross-check (galint observability x dynamic campaign)");
        println!(
            "static report: {} sites, {} statically unobservable",
            report.sites.len(),
            report.unobservable()
        );

        // Join each injection with its site's static verdict. An
        // injection into a statically-unobservable site must be masked:
        // anything else is an unsound "provably cannot reach an output"
        // claim.
        let scan_join = plan
            .iter()
            .zip(&outcomes)
            .map(|(inj, &(class, _))| (report.scan_site(inj.position), class, inj.position));
        let net_join = net_plan
            .iter()
            .zip(&net_outcomes)
            .map(|(f, o)| (report.net_site(f.site), o.class, f.site));
        for (verdict, class, index) in scan_join.chain(net_join) {
            let verdict = verdict.expect("every campaign site has a static verdict");
            if verdict.observable {
                continue;
            }
            if class == FaultClass::Masked {
                static_masked += 1;
            } else {
                unsound += 1;
                eprintln!(
                    "UNSOUND: {} ({} site {index}) is statically unobservable \
                     but was dynamically {class:?}",
                    verdict.field,
                    verdict.domain.as_str()
                );
            }
        }
        println!(
            "join: {static_masked} statically-masked injections confirmed masked, \
             {unsound} unsound verdict(s)"
        );

        // Tie the rerun to the committed campaign: identical aggregate
        // class counts prove the soundness claim covers the checked-in
        // BENCH_fault.json, not just this process's rerun.
        let ref_path =
            std::env::var("GA_BENCH_FAULT_REF").unwrap_or_else(|_| "BENCH_fault.json".to_string());
        match std::fs::read_to_string(&ref_path) {
            Ok(reference) => {
                let expected = [
                    ("injected", (plan.len() + net_plan.len()) as f64),
                    ("masked", (scan.masked + net.masked) as f64),
                    ("detected", (scan.detected + net.detected) as f64),
                    ("corrupted", (scan.corrupted + net.corrupted) as f64),
                    ("hung", (scan.hung + net.hung) as f64),
                ];
                for (key, got) in expected {
                    let committed = json_extract_number(&reference, key);
                    if committed != Some(got) {
                        eprintln!(
                            "xcheck: {ref_path} disagrees on '{key}': committed \
                             {committed:?}, rerun {got}"
                        );
                        ref_mismatch = true;
                    }
                }
                if !ref_mismatch {
                    println!("aggregates match the committed {ref_path}");
                }
            }
            Err(e) => eprintln!(
                "xcheck: cannot read reference {ref_path} ({e}); skipping the \
                 committed-aggregate comparison"
            ),
        }
    }

    // --- Report ------------------------------------------------------------
    let mut total = scan;
    total.merge(net);
    let injected = (plan.len() + net_plan.len()) as u64;
    let unclassified = injected as i64 - total.total() as i64;
    println!(
        "\ncampaign: {injected} injections, {} classified, {unclassified} unclassified",
        total.total()
    );

    let mut report = BenchReport::new("fault", sw.seconds(), 1, threads as u64);
    if xcheck {
        report = report
            .metric("xcheck_unsound_sites", unsound as f64)
            .metric(
                "static_unobservable_sites",
                static_unobservable_sites as f64,
            )
            .metric("static_masked_injections", static_masked as f64);
    }
    report
        .metric("injected", injected as f64)
        .metric("masked", total.masked as f64)
        .metric("detected", total.detected as f64)
        .metric("corrupted", total.corrupted as f64)
        .metric("hung", total.hung as f64)
        .metric("unclassified", unclassified as f64)
        .metric("class_sum_gap", unclassified.unsigned_abs() as f64)
        .metric("scan_injected", plan.len() as f64)
        .metric("scan_landed", landed as f64)
        .metric("net_injected", net_plan.len() as f64)
        .metric("net_lane_leaks", lane_leaks as f64)
        .metric(
            "masked_fraction",
            if injected == 0 {
                0.0
            } else {
                total.masked as f64 / injected as f64
            },
        )
        .emit_or_warn();

    if unclassified != 0 || lane_leaks != 0 {
        eprintln!(
            "campaign invariant violated (unclassified={unclassified}, lane_leaks={lane_leaks})"
        );
        std::process::exit(1);
    }
    if unsound != 0 || ref_mismatch {
        eprintln!(
            "static cross-check failed (unsound={unsound}, reference mismatch={ref_mismatch})"
        );
        std::process::exit(1);
    }
}
