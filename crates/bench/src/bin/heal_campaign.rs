//! `heal_campaign` — VRC self-healing sweep through the engine
//! registry, emitting `BENCH_ehw.json`.
//!
//! For every shipped healing target (`ga_ehw::SHIPPED_TARGETS`) ×
//! every single-cell fault (`ga_ehw::Fault::all_single_cell`, 8 cells ×
//! {stuck-0, stuck-1, 4 wrong-function} = 48 faults), the campaign:
//!
//! 1. asks the exhaustive oracle (`ga_ehw::healable`) whether *any*
//!    configuration reproduces the target under that fault — the
//!    ground truth the GA is graded against;
//! 2. dispatches a `Workload::VrcHeal` run through the engine registry
//!    (round-robin over every registered 16-bit backend, so the heal
//!    path of each engine is exercised), retrying with fresh seeds up
//!    to the attempt budget;
//! 3. records healed / generations-to-heal / residual error.
//!
//! Invariants pinned by `benchcheck` in CI: the GA never "heals" an
//! oracle-unhealable case (`ghost_heals == 0`), and the heal rate over
//! oracle-healable cases clears a floor. The report also folds in the
//! headline metrics of `BENCH_testgen.json` (path override:
//! `GA_BENCH_TESTGEN_REF`) so `BENCH_ehw.json` is the one-stop summary
//! of the closed fault loop: evolved test coverage on one side,
//! evolved repair on the other.
//!
//! `GA_BENCH_QUICK` sweeps the first target only (48 cases).

use ga_bench::{json_extract_number, quick, run_workload_on, BenchReport, Stopwatch};
use ga_core::GaParams;
use ga_ehw::{healable, Fault, Vrc, PERFECT_FITNESS, SHIPPED_TARGETS};
use ga_engine::Workload;

/// Healing GA shape: big enough to heal every oracle-healable shipped
/// case within the attempt budget, small enough to keep the 144-case
/// sweep interactive.
const POP: u8 = 32;
const GENS: u32 = 64;
/// Fresh-seed retries per case before declaring a miss.
const ATTEMPTS: u16 = 16;
const BASE_SEED: u16 = 0x2961;

fn main() {
    let sw = Stopwatch::start();
    let targets: &[(&str, u16)] = if quick() {
        &SHIPPED_TARGETS[..1]
    } else {
        &SHIPPED_TARGETS[..]
    };
    let faults = Fault::all_single_cell();
    let kinds = ga_engine::global().supporting_width(16);

    println!("## VRC healing campaign (GA repair vs the exhaustive oracle)");
    println!(
        "grid: {} targets x {} faults, pop {POP} gens {GENS}, <= {ATTEMPTS} attempts, \
         backends: {}",
        targets.len(),
        faults.len(),
        kinds
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut cases = 0u64;
    let mut oracle_healable = 0u64;
    let mut healed = 0u64;
    let mut ghost_heals = 0u64;
    let mut gens_sum = 0u64;
    let mut attempts_used = 0u64;
    let mut residual_sum = 0u64;

    for (t, &(name, config)) in targets.iter().enumerate() {
        let target = Vrc::new(config).truth_table();
        let mut t_healed = 0u64;
        let mut t_healable = 0u64;
        let mut unhealable_names: Vec<String> = Vec::new();
        for (f, &fault) in faults.iter().enumerate() {
            cases += 1;
            let oracle = healable(target, fault);
            oracle_healable += u64::from(oracle);
            t_healable += u64::from(oracle);

            let workload = Workload::VrcHeal { target, fault };
            let kind = kinds[(t * faults.len() + f) % kinds.len()];
            let mut case_healed = false;
            let mut best_residual = u64::from(PERFECT_FITNESS);
            for attempt in 0..ATTEMPTS {
                let seed = BASE_SEED
                    .wrapping_add((t as u16) << 11)
                    .wrapping_add((f as u16).wrapping_mul(131))
                    .wrapping_add(attempt.wrapping_mul(7919));
                let params = GaParams::new(POP, GENS, 10, 1, seed);
                let outcome = run_workload_on(kind, workload, &params);
                attempts_used += 1;
                best_residual =
                    best_residual.min(u64::from(PERFECT_FITNESS - outcome.best_fitness));
                if outcome.best_fitness == PERFECT_FITNESS {
                    let heal_gen = outcome
                        .trajectory
                        .iter()
                        .find(|p| p.best_fitness == PERFECT_FITNESS)
                        .map(|p| u64::from(p.gen))
                        .expect("a perfect run has a perfect trajectory point");
                    gens_sum += heal_gen;
                    case_healed = true;
                    break;
                }
            }
            healed += u64::from(case_healed);
            t_healed += u64::from(case_healed);
            ghost_heals += u64::from(case_healed && !oracle);
            residual_sum += best_residual;
            if !oracle {
                unhealable_names.push(fault.wire_name());
            }
        }
        println!(
            "{name} (tt {target:#06x}): {t_healed}/{t_healable} oracle-healable cases healed; \
             unhealable: [{}]",
            unhealable_names.join(", ")
        );
    }

    let heal_rate = if oracle_healable == 0 {
        0.0
    } else {
        healed as f64 / oracle_healable as f64
    };
    let mean_gens = if healed == 0 {
        0.0
    } else {
        gens_sum as f64 / healed as f64
    };
    println!(
        "\ncampaign: {cases} cases, {oracle_healable} oracle-healable, {healed} healed \
         ({:.1}% heal rate, mean {mean_gens:.2} gens to heal, {ghost_heals} ghost heals)",
        100.0 * heal_rate
    );

    // --- Fold in the testgen headline --------------------------------------
    let ref_path =
        std::env::var("GA_BENCH_TESTGEN_REF").unwrap_or_else(|_| "BENCH_testgen.json".to_string());
    let mut testgen = Vec::new();
    match std::fs::read_to_string(&ref_path) {
        Ok(json) => {
            for key in [
                "coverage",
                "coverage_pct",
                "margin_vs_baseline",
                "unsound_detections",
            ] {
                match json_extract_number(&json, key) {
                    Some(v) => testgen.push((format!("testgen_{key}"), v)),
                    None => eprintln!("testgen reference {ref_path} lacks '{key}'"),
                }
            }
            println!("folded testgen headline from {ref_path}");
        }
        Err(e) => eprintln!("testgen reference {ref_path} not readable ({e}); skipping"),
    }

    let mut report = BenchReport::new("ehw", sw.seconds(), 1, 1)
        .metric("cases", cases as f64)
        .metric("oracle_healable", oracle_healable as f64)
        .metric("healed", healed as f64)
        .metric("heal_rate", heal_rate)
        .metric("mean_gens_to_heal", mean_gens)
        .metric("ghost_heals", ghost_heals as f64)
        .metric("attempts", attempts_used as f64)
        .metric("mean_residual", residual_sum as f64 / cases as f64);
    for (k, v) in testgen {
        report = report.metric(k, v);
    }
    report.emit_or_warn();

    if ghost_heals != 0 {
        eprintln!("heal campaign failed: {ghost_heals} ghost heal(s) contradict the oracle");
        std::process::exit(1);
    }
}
