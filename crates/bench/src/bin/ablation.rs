//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Elitism** — the core copies the best individual into every new
//!    population (the basis of its convergence guarantee, Rudolph
//!    \[17\]). Measured: mean best fitness with/without, across seeds.
//! 2. **Field extraction** — one shared draw per operator vs the naive
//!    consecutive-draw design (see `ga_core::ops::xover_fields`).
//! 3. **FEM implementation** — block-ROM lookup vs iterative CORDIC:
//!    same results by construction, very different cycle counts (the
//!    paper: lookup "resulted in better operational speed than a
//!    combinational implementation").
//!
//! Run with `cargo run --release -p ga-bench --bin ablation`.

use carng::seeds::TABLE7_SEEDS;
use carng::CaRng;
use ga_core::behavioral::FieldMode;
use ga_core::{GaEngine, GaParams, GaSystem};
use ga_fitness::{CordicFem, FemBank, FemSlot, LookupFem, TestFunction};

fn mean_best(f: TestFunction, elitism: bool, mode: FieldMode) -> f64 {
    let mut sum = 0.0;
    for &seed in &TABLE7_SEEDS {
        let params = GaParams::new(32, 64, 10, 1, seed);
        let run = GaEngine::new(params, CaRng::new(seed), move |c| f.eval_u16(c))
            .with_elitism(elitism)
            .with_field_mode(mode)
            .run();
        sum += run.best.fitness as f64;
    }
    sum / TABLE7_SEEDS.len() as f64
}

fn main() {
    println!("Ablation 1 — elitism (mean best fitness over 6 seeds, pop 32, 64 gens)");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "function", "elitist", "non-elitist", "delta"
    );
    println!("{}", "-".repeat(48));
    for f in [
        TestFunction::Bf6,
        TestFunction::Mbf6_2,
        TestFunction::Mbf7_2,
    ] {
        let with = mean_best(f, true, FieldMode::SharedDraw);
        let without = mean_best(f, false, FieldMode::SharedDraw);
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>+7.1}%",
            f.name(),
            with,
            without,
            100.0 * (with - without) / without
        );
    }

    println!("\nAblation 2 — operator field extraction (mean best, same setup)");
    println!(
        "{:<12} {:>12} {:>14} {:>8}",
        "function", "shared draw", "consecutive", "delta"
    );
    println!("{}", "-".repeat(50));
    for f in [TestFunction::F3, TestFunction::F2, TestFunction::Mbf6_2] {
        let shared = mean_best(f, true, FieldMode::SharedDraw);
        let naive = mean_best(f, true, FieldMode::ConsecutiveDraws);
        println!(
            "{:<12} {:>12.0} {:>14.0} {:>+7.1}%",
            f.name(),
            shared,
            naive,
            100.0 * (shared - naive) / naive
        );
    }
    println!("(With consecutive draws the conditional mutation point collapses to");
    println!(" two positions under the CA's local update — F3 visibly stalls.)");

    println!("\nAblation 3 — FEM implementation (cycles, pop 32, 32 gens, mBF6_2)");
    let params = GaParams::new(32, 32, 10, 1, 0x2961);
    let mut lookup_sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(TestFunction::Mbf6_2),
    )]));
    let lookup = lookup_sys.program_and_run(&params, 1_000_000_000).unwrap();
    let mut cordic_sys = GaSystem::new(FemBank::new(vec![FemSlot::Cordic(CordicFem::new(
        TestFunction::Mbf6_2,
    ))]));
    let cordic = cordic_sys.program_and_run(&params, 1_000_000_000).unwrap();
    println!(
        "  lookup ROM : {:>9} cycles ({:.3} ms)   best {}",
        lookup.cycles,
        lookup.seconds * 1e3,
        lookup.best.fitness
    );
    println!(
        "  CORDIC     : {:>9} cycles ({:.3} ms)   best {}",
        cordic.cycles,
        cordic.seconds * 1e3,
        cordic.best.fitness
    );
    println!(
        "  lookup is {:.2}× faster; fitness values agree within CORDIC's ±1 LSB",
        cordic.cycles as f64 / lookup.cycles as f64
    );
    println!("  (the paper made the same trade: ROM lookup at 48% BRAM for speed)");
}
