//! §II-D — the intrinsic-EHW implementation classes compared.
//!
//! Lambert et al.'s taxonomy (quoted by the paper): *complete* (GA and
//! fabric on one chip, intra-chip wires), *multichip* (inter-chip
//! wires), *multiboard* (inter-board wires); "the performance of this
//! system is worse ... as the communication delays are due to
//! inter-chip wires", but multichip/multiboard remain useful "where
//! the fitness evaluation time dominates the communication time".
//!
//! We measure exactly that: the same healing run with the VRC fabric
//! wired at 0 / 4 / 40 cycles of one-way interconnect delay, for both
//! a fast fitness function (the VRC's 16-pattern sweep) and a slow one
//! (a 10× longer evaluation), reproducing the crossover the paper
//! argues for.
//!
//! Run with `cargo run --release -p ga-bench --bin ehw_classes`.

use ga_core::{GaParams, GaSystem};
use ga_ehw::{Vrc, VrcFem};
use ga_fitness::fem::{Fem, FemIn, FemOut};
use ga_fitness::{FemBank, FemSlot, LatencyFem};
use hwsim::{Clocked, Reg};

/// A deliberately slow FEM: same answer as the inner VRC sweep, but the
/// evaluation takes `factor`× longer (e.g. an analog fabric that needs
/// settling time per measurement — the paper's SRAA world).
struct SlowFem {
    inner: VrcFem,
    factor: u32,
    stall: Reg<u32>,
    latched: Reg<bool>,
}

impl SlowFem {
    fn new(inner: VrcFem, factor: u32) -> Self {
        SlowFem {
            inner,
            factor,
            stall: Reg::default(),
            latched: Reg::default(),
        }
    }
}

impl Clocked for SlowFem {
    fn reset(&mut self) {
        self.inner.reset();
        self.stall.reset_to(0);
        self.latched.reset_to(false);
    }
    fn commit(&mut self) {
        self.inner.commit();
        self.stall.commit();
        self.latched.commit();
    }
}

impl Fem for SlowFem {
    fn eval(&mut self, i: FemIn) {
        // Delay the announcement of the inner result by (factor−1)×17
        // extra cycles per evaluation.
        self.inner.eval(i);
        let far = self.inner.out();
        if far.fit_valid && !self.latched.get() {
            let extra = (self.factor - 1) * 17;
            if self.stall.get() >= extra {
                self.latched.set(true);
            } else {
                self.stall.set(self.stall.get() + 1);
            }
        }
        if !i.fit_request {
            self.latched.set(false);
            self.stall.set(0);
        }
    }
    fn out(&self) -> FemOut {
        let far = self.inner.out();
        FemOut {
            fit_value: far.fit_value,
            fit_valid: far.fit_valid && self.latched.get(),
        }
    }
}

fn run_class(delay: u32, slow_factor: u32) -> u64 {
    let target = Vrc::new(0x1B26).truth_table();
    let fem: Box<dyn Fem> = if slow_factor <= 1 {
        Box::new(LatencyFem::new(VrcFem::new(target, None), delay))
    } else {
        Box::new(LatencyFem::new(
            SlowFem::new(VrcFem::new(target, None), slow_factor),
            delay,
        ))
    };
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::External])).with_external_fem(fem);
    let params = GaParams::new(32, 16, 10, 1, 0x2961);
    sys.program_and_run(&params, 2_000_000_000).unwrap().cycles
}

fn main() {
    println!("§II-D — intrinsic EHW classes: total cycles for the same healing run");
    println!("(pop 32, 16 generations, VRC fitness fabric)\n");
    println!(
        "{:<12} {:>8} | {:>14} {:>14} {:>9}",
        "class", "delay", "fast fitness", "slow fitness", "ratio"
    );
    println!("{}", "-".repeat(64));
    let mut base_fast = 0u64;
    let mut base_slow = 0u64;
    for (class, delay) in [("complete", 0u32), ("multichip", 4), ("multiboard", 40)] {
        let fast = run_class(delay, 1);
        let slow = run_class(delay, 10);
        if delay == 0 {
            base_fast = fast;
            base_slow = slow;
        }
        println!(
            "{:<12} {:>8} | {:>14} {:>14} | fast +{:>4.1}%  slow +{:>4.1}%",
            class,
            delay,
            fast,
            slow,
            100.0 * (fast as f64 / base_fast as f64 - 1.0),
            100.0 * (slow as f64 / base_slow as f64 - 1.0),
        );
    }
    println!();
    println!("The paper's point reproduces: interconnect distance costs real cycles,");
    println!("but when fitness evaluation dominates (slow column), even the");
    println!("multiboard penalty becomes a small relative overhead — which is why");
    println!("the hybrid Fig. 5 topology with external fitness modules is viable.");
}
