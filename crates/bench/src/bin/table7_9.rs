//! Regenerate Tables VII, VIII and IX: best fitness found by the
//! cycle-accurate hardware system for mBF6_2, mBF7_2 and mShubert2D
//! under the 24-cell grid (six seeds × two population sizes × two
//! crossover thresholds; 64 generations; mutation 1/16).
//!
//! The grid goes through the shared parallel sweep runner cell-by-cell
//! (finer-grained than the old one-thread-per-seed-row split, and with
//! deterministic input-ordered collection), and the binary emits
//! `BENCH_table7_9.json`. `GA_BENCH_GENS` overrides the generation
//! count for smoke runs.
//!
//! Run with `cargo run --release -p ga-bench --bin table7_9`.

use carng::seeds::TABLE7_SEEDS;
use ga_bench::{
    default_threads, gens_override, grid3, render_grid, run_hw, run_sweep, table7_params,
    BenchReport, Stopwatch, TABLE7_POPS, TABLE7_XRS,
};
use ga_fitness::TestFunction;

/// One cell per (seed, pop, xr) in `grid3` row-major order — which is
/// exactly the paper's layout: seed rows, then the p32/x10, p32/x12,
/// p64/x10, p64/x12 columns.
fn grid_for(f: TestFunction, threads: usize, sim_cycles: &mut u64) -> Vec<Vec<u16>> {
    let cells = grid3(&TABLE7_SEEDS, &TABLE7_POPS, &TABLE7_XRS);
    let runs = run_sweep(&cells, threads, |_, &(seed, pop, xr)| {
        let mut params = table7_params(seed, pop, xr);
        if let Some(g) = gens_override() {
            params.n_gens = g;
        }
        run_hw(f, &params)
    });
    *sim_cycles += runs.iter().filter_map(|r| r.cycles).sum::<u64>();
    runs.chunks(TABLE7_POPS.len() * TABLE7_XRS.len())
        .map(|row| row.iter().map(|r| r.best_fitness).collect())
        .collect()
}

fn main() {
    let threads = default_threads();
    let sw = Stopwatch::start();
    let mut sim_cycles: u64 = 0;
    for (f, table, paper_best, paper_optimum) in [
        (TestFunction::Mbf6_2, "Table VII", 8135u16, 8183u16),
        (TestFunction::Mbf7_2, "Table VIII", 61_496, 63_904),
        (TestFunction::MShubert2D, "Table IX", 65_535, 65_535),
    ] {
        let optimum = f.global_max();
        let cells = grid_for(f, threads, &mut sim_cycles);
        println!(
            "{}",
            render_grid(
                &format!(
                    "{table} — best fitness for {} (64 gens, mut 1/16)",
                    f.name()
                ),
                &TABLE7_SEEDS,
                &cells,
                optimum
            )
        );
        let best = cells.iter().flatten().copied().max().unwrap();
        let gap = 100.0 * (optimum as f64 - best as f64) / optimum as f64;
        println!(
            "best found {best} (optimum {optimum}, gap {gap:.2}%) — paper: best {paper_best} of optimum {paper_optimum}\n"
        );
    }
    println!("The paper's headline claim — every hardware result within 3.7% of the");
    println!("global optimum, with the optimum itself found for several settings —");
    println!("is checked automatically in tests/paper_claims.rs.");

    let wall = sw.seconds();
    let n_cells = 3 * TABLE7_SEEDS.len() * TABLE7_POPS.len() * TABLE7_XRS.len();
    BenchReport::new("table7_9", wall, 1, threads as u64)
        .metric("grid_cells", n_cells as f64)
        .metric("sim_cycles", sim_cycles as f64)
        .metric("sim_cycles_per_sec", sim_cycles as f64 / wall)
        .emit_or_warn();
}
