//! Regenerate Tables VII, VIII and IX: best fitness found by the
//! cycle-accurate hardware system for mBF6_2, mBF7_2 and mShubert2D
//! under the 24-cell grid (six seeds × two population sizes × two
//! crossover thresholds; 64 generations; mutation 1/16).
//!
//! Run with `cargo run --release -p ga-bench --bin table7_9`.

use carng::seeds::TABLE7_SEEDS;
use ga_bench::{render_grid, run_hw, table7_params, TABLE7_POPS, TABLE7_XRS};
use ga_fitness::TestFunction;
use std::thread;

fn grid_for(f: TestFunction) -> Vec<Vec<u16>> {
    // One worker per seed row (the sweep is embarrassingly parallel —
    // each cell is an independent simulated FPGA run).
    thread::scope(|s| {
        let handles: Vec<_> = TABLE7_SEEDS
            .iter()
            .map(|&seed| {
                s.spawn(move || {
                    // Paper column order: p32/x10, p32/x12, p64/x10, p64/x12.
                    let mut row = Vec::with_capacity(4);
                    for &pop in &TABLE7_POPS {
                        for &xr in &TABLE7_XRS {
                            let params = table7_params(seed, pop, xr);
                            row.push(run_hw(f, &params).best.fitness);
                        }
                    }
                    row
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("table row worker panicked"))
            .collect()
    })
}

fn main() {
    for (f, table, paper_best, paper_optimum) in [
        (TestFunction::Mbf6_2, "Table VII", 8135u16, 8183u16),
        (TestFunction::Mbf7_2, "Table VIII", 61_496, 63_904),
        (TestFunction::MShubert2D, "Table IX", 65_535, 65_535),
    ] {
        let optimum = f.global_max();
        let cells = grid_for(f);
        println!(
            "{}",
            render_grid(
                &format!(
                    "{table} — best fitness for {} (64 gens, mut 1/16)",
                    f.name()
                ),
                &TABLE7_SEEDS,
                &cells,
                optimum
            )
        );
        let best = cells.iter().flatten().copied().max().unwrap();
        let gap = 100.0 * (optimum as f64 - best as f64) / optimum as f64;
        println!(
            "best found {best} (optimum {optimum}, gap {gap:.2}%) — paper: best {paper_best} of optimum {paper_optimum}\n"
        );
    }
    println!("The paper's headline claim — every hardware result within 3.7% of the");
    println!("global optimum, with the optimum itself found for several settings —");
    println!("is checked automatically in tests/paper_claims.rs.");
}
