//! Island-model scaling study — the §II-B "parallel implementations"
//! axis (Multi-GAP; Jelodar et al.; Nedjah & Mourelle) realized with
//! multiple unmodified engines on disjoint jump-ahead RNG streams.
//!
//! Two questions, answered over the six paper seeds on BF6:
//!
//! 1. quality at equal wall-clock (each island runs the full schedule
//!    in parallel — the multi-FPGA deployment);
//! 2. quality at equal total evaluation budget (islands split the
//!    generations — the fair algorithmic comparison).
//!
//! Run with `cargo run --release -p ga-bench --bin islands`.

use carng::seeds::TABLE7_SEEDS;
use ga_core::islands::{run_islands, IslandConfig};
use ga_core::GaParams;
use ga_fitness::rom::FitnessRom;
use ga_fitness::TestFunction;

fn main() {
    let rom = FitnessRom::tabulate(TestFunction::Bf6);
    let optimum = TestFunction::Bf6.global_max();

    println!("Island-model GA on BF6 (pop 32 per island, optimum {optimum})\n");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "configuration", "mean best", "evals/run", "hits"
    );
    println!("{}", "-".repeat(64));

    let configs: [(&str, IslandConfig); 4] = [
        (
            "1 island × 32 gens",
            IslandConfig {
                islands: 1,
                epoch: 32,
                epochs: 1,
            },
        ),
        (
            "4 islands × 32 gens",
            IslandConfig {
                islands: 4,
                epoch: 8,
                epochs: 4,
            },
        ),
        (
            "8 islands × 32 gens",
            IslandConfig {
                islands: 8,
                epoch: 8,
                epochs: 4,
            },
        ),
        (
            "4 islands × 8 gens (equal budget)",
            IslandConfig {
                islands: 4,
                epoch: 2,
                epochs: 4,
            },
        ),
    ];
    for (name, cfg) in configs {
        let mut sum = 0.0;
        let mut hits = 0u32;
        let mut evals = 0u64;
        for &seed in &TABLE7_SEEDS {
            let params = GaParams::new(32, 32, 10, 1, seed);
            let run = run_islands(params, cfg, |c| rom.lookup(c));
            sum += run.best.fitness as f64;
            evals = run.evaluations;
            if run.best.fitness >= optimum - 4 {
                hits += 1;
            }
        }
        println!(
            "{:<28} {:>10.0} {:>12} {:>7}/6",
            name,
            sum / TABLE7_SEEDS.len() as f64,
            evals,
            hits
        );
    }
    println!();
    println!("Reading: at equal wall-clock (rows 2–3) the islands search more of the");
    println!("space and find near-optima for more seeds; at equal evaluation budget");
    println!("(row 4) the model roughly matches the single population — migration");
    println!("buys diversity, not free evaluations, exactly as the parallel-GA");
    println!("literature the paper cites reports.");
}
