//! Island-model scaling study — the §II-B "parallel implementations"
//! axis (Multi-GAP; Jelodar et al.; Nedjah & Mourelle) realized with
//! multiple unmodified engines on disjoint jump-ahead RNG streams.
//!
//! The ring is driven through the engine layer's [`IslandsEngine`]
//! composite, so any registered backend with a stepping handle can
//! serve as the island population engine: the default is `behavioral`;
//! set `GA_BENCH_BACKEND=bitsim64` to run the same ring over
//! netlist-extracted lane streams (proven bit-identical by the engine
//! crate's cross-backend island test).
//!
//! Two questions, answered over the six paper seeds on BF6:
//!
//! 1. quality at equal wall-clock (each island runs the full schedule
//!    in parallel — the multi-FPGA deployment);
//! 2. quality at equal total evaluation budget (islands split the
//!    generations — the fair algorithmic comparison).
//!
//! Run with `cargo run --release -p ga-bench --bin islands`.

use carng::seeds::TABLE7_SEEDS;
use ga_bench::{bench_backend, BackendKind};
use ga_core::islands::IslandConfig;
use ga_core::GaParams;
use ga_engine::{IslandsEngine, RunSpec};
use ga_fitness::TestFunction;

fn main() {
    let optimum = TestFunction::Bf6.global_max();
    let kind = bench_backend(BackendKind::Behavioral);
    let engine = ga_engine::global()
        .get(kind)
        .unwrap_or_else(|| panic!("backend {} is not registered", kind.name()));

    println!(
        "Island-model GA on BF6 over the `{}` engine (pop 32 per island, optimum {optimum})\n",
        kind.name()
    );
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "configuration", "mean best", "evals/run", "hits"
    );
    println!("{}", "-".repeat(64));

    let configs: [(&str, IslandConfig); 4] = [
        (
            "1 island × 32 gens",
            IslandConfig {
                islands: 1,
                epoch: 32,
                epochs: 1,
            },
        ),
        (
            "4 islands × 32 gens",
            IslandConfig {
                islands: 4,
                epoch: 8,
                epochs: 4,
            },
        ),
        (
            "8 islands × 32 gens",
            IslandConfig {
                islands: 8,
                epoch: 8,
                epochs: 4,
            },
        ),
        (
            "4 islands × 8 gens (equal budget)",
            IslandConfig {
                islands: 4,
                epoch: 2,
                epochs: 4,
            },
        ),
    ];
    for (name, cfg) in configs {
        let ring = IslandsEngine::new(engine, cfg).expect("backend exposes a stepping handle");
        let mut sum = 0.0;
        let mut hits = 0u32;
        let mut evals = 0u64;
        for &seed in &TABLE7_SEEDS {
            // The spec's generation budget must equal the schedule —
            // the engine layer rejects a disagreement instead of
            // silently superseding n_gens.
            let spec = RunSpec {
                width: 16,
                workload: ga_engine::Workload::Function(TestFunction::Bf6),
                params: GaParams::new(32, cfg.epoch * cfg.epochs, 10, 1, seed),
                deadline_ms: None,
            };
            let run = ring.run(spec).expect("island ring runs");
            sum += run.best.fitness as f64;
            evals = run.evaluations;
            if run.best.fitness >= optimum - 4 {
                hits += 1;
            }
        }
        println!(
            "{:<28} {:>10.0} {:>12} {:>7}/6",
            name,
            sum / TABLE7_SEEDS.len() as f64,
            evals,
            hits
        );
    }
    println!();
    println!("Reading: at equal wall-clock (rows 2–3) the islands search more of the");
    println!("space and find near-optima for more seeds; at equal evaluation budget");
    println!("(row 4) the model roughly matches the single population — migration");
    println!("buys diversity, not free evaluations, exactly as the parallel-GA");
    println!("literature the paper cites reports.");
}
