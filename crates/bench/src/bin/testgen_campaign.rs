//! `testgen_campaign` — GA-evolved fault-coverage test generation,
//! emitting `BENCH_testgen.json` and the committed detector fixture.
//!
//! Closes the loop on the fault campaign: instead of grading a fixed
//! workload, the repository's own GA evolves *probe sets* — (seed,
//! injection-window, polarity) test stimuli — whose fitness is the
//! number of the 424 fault sites they detect (see
//! `ga_bench::testgen`). Each greedy round maximizes newly-detected
//! sites; the chosen detectors are compared against a size-matched
//! random probe baseline (the acceptance bar: the evolved set must
//! strictly beat it) and cross-checked against galint's static
//! observability report (a detection at a statically-unobservable site
//! would be an unsound static claim; pinned to zero in CI).
//!
//! `GA_BENCH_QUICK` strides the scan grid by 8 and shrinks the GA for
//! the smoke run. The full grid regenerates — deterministically — the
//! committed `tests/fixtures/testgen_detectors.json`: run with
//! `GA_TESTGEN_WRITE=1` to (re)write it, without to verify the evolved
//! set still matches the committed one bit-for-bit (path override:
//! `GA_TESTGEN_FIXTURE`).

use ga_bench::{
    default_threads, evolve_detectors, quick, random_baseline, BenchReport, Stopwatch, TestgenCtx,
    SCAN_SITES, TOTAL_SITES,
};

fn main() {
    let sw = Stopwatch::start();
    let threads = default_threads();
    let quick_run = quick();
    let (stride, rounds, pop, gens) = if quick_run {
        (8, 3, 6, 2)
    } else {
        (1, 6, 8, 4)
    };

    let mut ctx = TestgenCtx::new(stride, threads);
    let sites = ctx.site_indices();
    println!("## GA-evolved fault-coverage test generation");
    println!(
        "universe: {} sites ({} scan stride {stride} + 16 net), GA rounds {rounds} pop {pop} gens {gens}",
        sites.len(),
        sites.len() - 16
    );

    // --- Greedy evolution --------------------------------------------------
    let (detectors, covered) = evolve_detectors(&mut ctx, rounds, pop, gens);
    println!(
        "\n{:>6} {:>8} {:>7} {:>6}",
        "probe", "polarity", "window", "gain"
    );
    println!("{}", "-".repeat(32));
    for d in &detectors {
        println!(
            "{:#06x} {:>8} {:>7} {:>6}",
            d.probe.0,
            match d.probe.0 >> 14 {
                1 => "stuck0",
                2 => "stuck1",
                _ => "flip",
            },
            d.probe.window(),
            d.gained
        );
    }
    let coverage = covered.count();
    let coverage_pct = 100.0 * coverage as f64 / sites.len() as f64;
    println!(
        "evolved: {} probes detect {coverage}/{} sites ({coverage_pct:.1}%)",
        detectors.len(),
        sites.len()
    );

    // --- Random baseline ---------------------------------------------------
    let (_, base_covered) = random_baseline(&mut ctx, detectors.len());
    let baseline = base_covered.count();
    let margin = coverage as i64 - baseline as i64;
    println!(
        "baseline: {} random probes detect {baseline} sites (evolved margin {margin:+})",
        detectors.len()
    );

    // --- Static cross-check ------------------------------------------------
    let report = galint::observability_report().expect("shipping designs elaborate");
    let mut unsound = 0u64;
    let mut static_unobservable = 0u64;
    for &site in &sites {
        let verdict = if site < SCAN_SITES {
            report.scan_site(site)
        } else {
            report.net_site(site - SCAN_SITES)
        }
        .expect("every swept site has a static verdict");
        if verdict.observable {
            continue;
        }
        static_unobservable += 1;
        if covered.get(site) || base_covered.get(site) {
            unsound += 1;
            eprintln!(
                "UNSOUND: {} ({} site) is statically unobservable but a probe detected it",
                verdict.field,
                verdict.domain.as_str()
            );
        }
    }
    println!(
        "static cross-check: {static_unobservable} unobservable sites in the grid, \
         {unsound} unsound detection(s)"
    );

    // --- Committed fixture -------------------------------------------------
    let fixture_path = std::env::var("GA_TESTGEN_FIXTURE")
        .unwrap_or_else(|_| "tests/fixtures/testgen_detectors.json".to_string());
    let mut fixture_mismatch = false;
    if !quick_run {
        let words: Vec<String> = detectors.iter().map(|d| d.probe.0.to_string()).collect();
        let maps: Vec<String> = detectors.iter().map(|d| d.map.to_hex()).collect();
        let rendered = format!(
            "{{\n  \"name\": \"testgen_detectors\",\n  \"workload\": \"F3 pop=8 gens=4\",\n  \
             \"sites\": {TOTAL_SITES},\n  \"probes\": {},\n  \"coverage\": {coverage},\n  \
             \"baseline_coverage\": {baseline},\n  \"probe_words\": \"{}\",\n  \
             \"probe_maps\": \"{}\"\n}}\n",
            detectors.len(),
            words.join(","),
            maps.join(",")
        );
        if std::env::var("GA_TESTGEN_WRITE").is_ok_and(|v| !v.is_empty() && v != "0") {
            std::fs::write(&fixture_path, &rendered).expect("fixture path writable");
            println!("fixture written: {fixture_path}");
        } else {
            match std::fs::read_to_string(&fixture_path) {
                Ok(committed) if committed == rendered => {
                    println!("fixture matches the committed {fixture_path}");
                }
                Ok(_) => {
                    eprintln!(
                        "fixture MISMATCH: evolved set differs from {fixture_path} \
                         (regenerate with GA_TESTGEN_WRITE=1)"
                    );
                    fixture_mismatch = true;
                }
                Err(e) => eprintln!("fixture {fixture_path} not readable ({e}); skipping"),
            }
        }
    }

    // --- Report ------------------------------------------------------------
    BenchReport::new("testgen", sw.seconds(), 1, threads as u64)
        .metric("sites", sites.len() as f64)
        .metric("probes", detectors.len() as f64)
        .metric("coverage", coverage as f64)
        .metric("coverage_pct", coverage_pct)
        .metric("baseline_coverage", baseline as f64)
        .metric("margin_vs_baseline", margin as f64)
        .metric("unsound_detections", unsound as f64)
        .metric("static_unobservable_sites", static_unobservable as f64)
        .metric("distinct_probes", ctx.distinct_probes() as f64)
        .metric("injection_sims", ctx.sims as f64)
        .metric("fixture_mismatch", u64::from(fixture_mismatch) as f64)
        .emit_or_warn();

    if unsound != 0 || fixture_mismatch {
        eprintln!(
            "testgen campaign failed (unsound={unsound}, fixture_mismatch={fixture_mismatch})"
        );
        std::process::exit(1);
    }
}
