//! Regenerate Table V: RT-level simulation results for BF6, F2 and F3
//! under the paper's ten parameter settings (best fitness found and the
//! convergence generation — the generation where the average fitness
//! changes by less than 5%).
//!
//! The ten runs go through the shared parallel sweep runner (each is an
//! independent simulated FPGA run) and the binary emits
//! `BENCH_table5.json` with the wall time and simulated-cycle
//! throughput. `GA_BENCH_GENS` overrides the generation count (the CI
//! smoke run uses a short one).
//!
//! Run with `cargo run --release -p ga-bench --bin table5`.

use ga_bench::{
    default_threads, gens_override, run_hw, run_sweep, table5_params, BenchReport, Stopwatch,
    TABLE5_RUNS,
};

fn main() {
    let threads = default_threads();
    let sw = Stopwatch::start();
    let results = run_sweep(&TABLE5_RUNS, threads, |_, row| {
        let mut params = table5_params(row);
        if let Some(g) = gens_override() {
            params.n_gens = g;
        }
        run_hw(row.function, &params)
    });
    let wall = sw.seconds();

    println!("Table V — RT-level results (this implementation vs paper)");
    println!(
        "{:>3} {:>10} {:>6} {:>4} {:>6} | {:>11} {:>12} | {:>10}",
        "run", "function", "seed", "pop", "xover", "best fitness", "convergence", "paper best"
    );
    // The paper's printed best-fitness column for runs 1–10.
    let paper_best = [
        4047u16, 4271, 4271, 4146, 4047, 3060, 2096, 3060, 3060, 3060,
    ];
    println!("{}", "-".repeat(84));
    let mut sim_cycles: u64 = 0;
    for ((row, paper), run) in TABLE5_RUNS.iter().zip(paper_best).zip(&results) {
        sim_cycles += run.cycles.unwrap_or(0);
        let conv = run
            .conv_gen
            .map(|g| g.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>3} {:>10} {:>6} {:>4} {:>6} | {:>11} {:>12} | {:>10}",
            row.run,
            row.function.name(),
            row.seed,
            row.pop,
            row.xover,
            run.best_fitness,
            conv,
            paper
        );
    }
    println!();
    println!("notes: identical GA architecture, but the CA rule vector and seed-to-");
    println!("stream mapping differ from the authors' unpublished RNG, so per-row");
    println!("values differ while the qualitative shape (optimum found only under");
    println!("some settings; seed choice decisive) reproduces. See EXPERIMENTS.md.");

    BenchReport::new("table5", wall, 1, threads as u64)
        .metric("runs", results.len() as f64)
        .metric("sim_cycles", sim_cycles as f64)
        .metric("sim_cycles_per_sec", sim_cycles as f64 / wall)
        .emit_or_warn();
}
