//! Regenerate Table V: RT-level simulation results for BF6, F2 and F3
//! under the paper's ten parameter settings (best fitness found and the
//! convergence generation — the generation where the average fitness
//! changes by less than 5%).
//!
//! Run with `cargo run --release -p ga-bench --bin table5`.

use ga_bench::{run_hw, table5_params, TABLE5_RUNS};

fn main() {
    println!("Table V — RT-level results (this implementation vs paper)");
    println!(
        "{:>3} {:>10} {:>6} {:>4} {:>6} | {:>11} {:>12} | {:>10}",
        "run", "function", "seed", "pop", "xover", "best fitness", "convergence", "paper best"
    );
    // The paper's printed best-fitness column for runs 1–10.
    let paper_best = [
        4047u16, 4271, 4271, 4146, 4047, 3060, 2096, 3060, 3060, 3060,
    ];
    println!("{}", "-".repeat(84));
    for (row, paper) in TABLE5_RUNS.iter().zip(paper_best) {
        let params = table5_params(row);
        let run = run_hw(row.function, &params);
        let ga = run.as_ga_run();
        let conv = ga
            .convergence_generation()
            .map(|g| g.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>3} {:>10} {:>6} {:>4} {:>6} | {:>11} {:>12} | {:>10}",
            row.run,
            row.function.name(),
            row.seed,
            row.pop,
            row.xover,
            run.best.fitness,
            conv,
            paper
        );
    }
    println!();
    println!("notes: identical GA architecture, but the CA rule vector and seed-to-");
    println!("stream mapping differ from the authors' unpublished RNG, so per-row");
    println!("values differ while the qualitative shape (optimum found only under");
    println!("some settings; seed choice decisive) reproduces. See EXPERIMENTS.md.");
}
