//! Where do the cycles go? The hardware per-phase profile next to the
//! software per-class instruction breakdown — the analysis behind the
//! §IV-C speedup: the hardware wins because selection scanning and the
//! fitness handshake are a few cycles each, while the software pays
//! instruction-fetch and bus latency on every step.
//!
//! Run with `cargo run --release -p ga-bench --bin profile`.

use ga_bench::{hw_system, table5_params, Table5Row};
use ga_fitness::TestFunction;
use swga::{CountingGa, PpcCostModel};

fn main() {
    // The §IV-C workload: mBF6_2, pop 32, 32 gens.
    let row = Table5Row {
        run: 0,
        function: TestFunction::Mbf6_2,
        seed: 0x2961,
        pop: 32,
        xover: 10,
    };
    let params = table5_params(&row);

    // --- hardware ----------------------------------------------------
    let mut sys = hw_system(row.function);
    let run = sys.program_and_run(&params, 1_000_000_000).unwrap();
    let p = sys.modules().core.profile();
    println!("== hardware cycle profile (pop 32, 32 gens, mBF6_2) ==");
    println!("total run cycles : {}", run.cycles);
    let total = p.total() as f64;
    let pct = |v: u64| 100.0 * v as f64 / total;
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "selection",
        p.selection,
        pct(p.selection)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "fitness handshake",
        p.fitness_wait,
        pct(p.fitness_wait)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "store/update",
        p.store,
        pct(p.store)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "breeding",
        p.breeding,
        pct(p.breeding)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "initial pop",
        p.init_pop,
        pct(p.init_pop)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "init handshake",
        p.init_params,
        pct(p.init_params)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "control",
        p.control,
        pct(p.control)
    );

    // --- software ------------------------------------------------------
    let sw = CountingGa::new(params, |c| row.function.eval_u16(c)).run();
    let model = PpcCostModel::default();
    println!("\n== software instruction profile (same workload) ==");
    println!("total ops        : {}", sw.ops.total_ops());
    println!("modeled cycles   : {:.0}", model.cycles(&sw.ops));
    println!(
        "{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}",
        "alu",
        sw.ops.alu,
        "loads",
        sw.ops.load,
        "stores",
        sw.ops.store,
        "branches",
        sw.ops.branch,
        "multiplies",
        sw.ops.mul,
        "bus reads (fitness)",
        sw.ops.bus_read
    );
    let fetch = sw.ops.total_ops() as f64 * model.ifetch;
    println!(
        "instruction fetch dominates: {:.0} of {:.0} modeled cycles ({:.0}%)",
        fetch,
        model.cycles(&sw.ops),
        100.0 * fetch / model.cycles(&sw.ops)
    );
    println!("\nReading: in hardware the selection scan is the biggest consumer —");
    println!("the O(pop) cumulative-sum walk per parent — with the fitness");
    println!("handshake second; in software the same walk turns into loads +");
    println!("branches that each pay the uncached instruction-fetch tax.");
}
