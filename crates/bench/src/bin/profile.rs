//! Where do the cycles go? The hardware per-phase profile next to the
//! software per-class instruction breakdown — the analysis behind the
//! §IV-C speedup: the hardware wins because selection scanning and the
//! fitness handshake are a few cycles each, while the software pays
//! instruction-fetch and bus latency on every step.
//!
//! Also measures the netlist-simulation engines themselves on the
//! elaborated CA-RNG netlist: the HashMap interpreter
//! (`Netlist::step_seq`) against the compiled engine
//! (`CompiledNetlist`/`BitSimW`), scalar and 64/128/256-lane
//! bit-sliced — and emits `BENCH_profile.json` carrying
//! `bitsim64_gates_per_sec`, `bitsim256_gates_per_sec`, and the
//! `bitsim256_speedup_vs_64` ratio the CI smoke floors check.
//! `GA_BENCH_QUICK` shrinks the measured cycle counts.
//!
//! Run with `cargo run --release -p ga-bench --bin profile`.

use std::collections::HashMap;
use std::time::Instant;

use ga_bench::{hw_system, quick, table5_params, BenchReport, Stopwatch, Table5Row};
use ga_fitness::TestFunction;
use ga_synth::bitsim::CompiledNetlist;
use ga_synth::gadesign::elaborate_ca_rng;
use ga_synth::netlist::{u64_to_bus, NetId};
use swga::{CountingGa, PpcCostModel};

/// Gate-evaluations per second of the simulation paths over the CA-RNG
/// netlist, free-running in consume mode. "Gates" counts the logic ops
/// the compiled engine executes per pass (`ops_per_pass`) for every
/// path, so the paths are compared on identical work; a `W`-word pass
/// is credited with `64·W` lanes of it.
struct SimThroughput {
    ops_per_pass: usize,
    interp_gps: f64,
    compiled_scalar_gps: f64,
    bitsim64_gps: f64,
    bitsim128_gps: f64,
    bitsim256_gps: f64,
}

/// Free-run the `W`-word simulator for `cycles` consume steps and
/// return gate-evaluations per second, crediting all `64·W` lanes.
/// Warm-up steps plus best-of-three trials keep the number stable
/// enough for the CI ratio floor (`bitsim256_speedup_vs_64`) under
/// container timing noise.
fn wide_gps<const W: usize>(
    cn: &CompiledNetlist,
    seed_bus: &[NetId],
    ctl_bus: &[NetId],
    cycles: u64,
) -> f64 {
    let mut sim = cn.sim_wide::<W>();
    sim.set_bus_all(seed_bus, 0x2961);
    sim.set_bus_all(ctl_bus, 0b01);
    sim.step();
    sim.set_bus_all(ctl_bus, 0b10);
    for _ in 0..cycles / 10 {
        sim.step(); // warm-up
    }
    let mut best_secs = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..cycles {
            sim.step();
        }
        best_secs = best_secs.min(t.elapsed().as_secs_f64());
    }
    std::hint::black_box(sim.net_words(cn.output_bus("rn").expect("rn bus")[0]));
    cn.ops_per_pass() as f64 * cycles as f64 * (64 * W) as f64 / best_secs
}

fn sim_throughput() -> SimThroughput {
    let nl = elaborate_ca_rng();
    let cn = CompiledNetlist::compile(&nl).expect("CA RNG netlist compiles");
    let ops = cn.ops_per_pass();
    let seed_bus = nl.input_bus("seed").expect("seed bus").to_vec();
    let ctl_bus = nl.input_bus("ctl").expect("ctl bus").to_vec();

    let (interp_cycles, compiled_cycles) = if quick() {
        (200u64, 5_000u64)
    } else {
        (2_000, 50_000)
    };

    // Interpreter: per-cycle HashMap in, HashMap out.
    let mut inputs = HashMap::new();
    u64_to_bus(&seed_bus, 0x2961, &mut inputs);
    inputs.insert(ctl_bus[0], true);
    inputs.insert(ctl_bus[1], false);
    let mut regs: HashMap<_, _> = nl.regs.iter().map(|r| (r.q, false)).collect();
    regs = nl.step_seq(&inputs, &regs); // load the seed
    inputs.insert(ctl_bus[0], false);
    inputs.insert(ctl_bus[1], true);
    let t = Instant::now();
    for _ in 0..interp_cycles {
        regs = nl.step_seq(&inputs, &regs);
    }
    let interp_secs = t.elapsed().as_secs_f64();

    // Compiled: dense word state, one bitwise op per gate word per
    // pass. The 1-word run is both measurements — scalar credits one
    // lane of the word, bit-sliced credits all 64 (identical code) —
    // and the 2/4-word runs go through the same harness so the
    // `bitsim256_speedup_vs_64` ratio compares like with like.
    let bitsim64_gps = wide_gps::<1>(&cn, &seed_bus, &ctl_bus, compiled_cycles);

    let gates =
        |cycles: u64, secs: f64, lanes: u64| ops as f64 * cycles as f64 * lanes as f64 / secs;
    SimThroughput {
        ops_per_pass: ops,
        interp_gps: gates(interp_cycles, interp_secs, 1),
        compiled_scalar_gps: bitsim64_gps / 64.0,
        bitsim64_gps,
        bitsim128_gps: wide_gps::<2>(&cn, &seed_bus, &ctl_bus, compiled_cycles),
        bitsim256_gps: wide_gps::<4>(&cn, &seed_bus, &ctl_bus, compiled_cycles),
    }
}

fn main() {
    let sw = Stopwatch::start();
    // The §IV-C workload: mBF6_2, pop 32, 32 gens.
    let row = Table5Row {
        run: 0,
        function: TestFunction::Mbf6_2,
        seed: 0x2961,
        pop: 32,
        xover: 10,
    };
    let params = table5_params(&row);

    // --- hardware ----------------------------------------------------
    let mut sys = hw_system(row.function);
    let run = sys.program_and_run(&params, 1_000_000_000).unwrap();
    let p = sys.modules().core.profile();
    println!("== hardware cycle profile (pop 32, 32 gens, mBF6_2) ==");
    println!("total run cycles : {}", run.cycles);
    let total = p.total() as f64;
    let pct = |v: u64| 100.0 * v as f64 / total;
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "selection",
        p.selection,
        pct(p.selection)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "fitness handshake",
        p.fitness_wait,
        pct(p.fitness_wait)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "store/update",
        p.store,
        pct(p.store)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "breeding",
        p.breeding,
        pct(p.breeding)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "initial pop",
        p.init_pop,
        pct(p.init_pop)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "init handshake",
        p.init_params,
        pct(p.init_params)
    );
    println!(
        "{:<18} {:>9} {:>6.1}%",
        "control",
        p.control,
        pct(p.control)
    );

    // --- software ------------------------------------------------------
    let sw_run = CountingGa::new(params, |c| row.function.eval_u16(c)).run();
    let model = PpcCostModel::default();
    println!("\n== software instruction profile (same workload) ==");
    println!("total ops        : {}", sw_run.ops.total_ops());
    println!("modeled cycles   : {:.0}", model.cycles(&sw_run.ops));
    println!(
        "{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}\n{:<18} {:>9}",
        "alu",
        sw_run.ops.alu,
        "loads",
        sw_run.ops.load,
        "stores",
        sw_run.ops.store,
        "branches",
        sw_run.ops.branch,
        "multiplies",
        sw_run.ops.mul,
        "bus reads (fitness)",
        sw_run.ops.bus_read
    );
    let fetch = sw_run.ops.total_ops() as f64 * model.ifetch;
    println!(
        "instruction fetch dominates: {:.0} of {:.0} modeled cycles ({:.0}%)",
        fetch,
        model.cycles(&sw_run.ops),
        100.0 * fetch / model.cycles(&sw_run.ops)
    );
    println!("\nReading: in hardware the selection scan is the biggest consumer —");
    println!("the O(pop) cumulative-sum walk per parent — with the fitness");
    println!("handshake second; in software the same walk turns into loads +");
    println!("branches that each pay the uncached instruction-fetch tax.");

    // --- netlist-simulation engines ------------------------------------
    let st = sim_throughput();
    println!(
        "\n== netlist simulation throughput (CA-RNG netlist, {} logic ops/pass) ==",
        st.ops_per_pass
    );
    println!("{:<26} {:>14}  {:>9}", "engine", "gate-evals/s", "speedup");
    println!("{}", "-".repeat(52));
    println!(
        "{:<26} {:>14.3e}  {:>8.1}x",
        "interpreter (HashMap)", st.interp_gps, 1.0
    );
    println!(
        "{:<26} {:>14.3e}  {:>8.1}x",
        "compiled scalar",
        st.compiled_scalar_gps,
        st.compiled_scalar_gps / st.interp_gps
    );
    println!(
        "{:<26} {:>14.3e}  {:>8.1}x",
        "compiled 64-lane",
        st.bitsim64_gps,
        st.bitsim64_gps / st.interp_gps
    );
    println!(
        "{:<26} {:>14.3e}  {:>8.1}x",
        "compiled 128-lane",
        st.bitsim128_gps,
        st.bitsim128_gps / st.interp_gps
    );
    println!(
        "{:<26} {:>14.3e}  {:>8.1}x",
        "compiled 256-lane",
        st.bitsim256_gps,
        st.bitsim256_gps / st.interp_gps
    );

    BenchReport::new("profile", sw.seconds(), 256, 1)
        .metric("hw_run_cycles", run.cycles as f64)
        .metric("sw_modeled_cycles", model.cycles(&sw_run.ops))
        .metric("netlist_ops_per_pass", st.ops_per_pass as f64)
        .metric("interp_gates_per_sec", st.interp_gps)
        .metric("compiled_scalar_gates_per_sec", st.compiled_scalar_gps)
        .metric("bitsim64_gates_per_sec", st.bitsim64_gps)
        .metric("bitsim128_gates_per_sec", st.bitsim128_gps)
        .metric("bitsim256_gates_per_sec", st.bitsim256_gps)
        .metric(
            "bitsim64_speedup_vs_interp",
            st.bitsim64_gps / st.interp_gps,
        )
        .metric(
            "bitsim256_speedup_vs_64",
            st.bitsim256_gps / st.bitsim64_gps,
        )
        .emit_or_warn();
}
