//! Regenerate Fig. 7: the (zoomed-in) plot of the modified Binary F6
//! test function over x ∈ 0..300, as CSV on stdout.
//!
//! Run with `cargo run --release -p ga-bench --bin fig7 > fig7.csv`.

use ga_fitness::functions::bf6;

fn main() {
    println!("x,BF6(x)");
    for x in 0..=300u16 {
        println!("{x},{:.6}", bf6(x));
    }
    eprintln!("Fig. 7 series written (301 points, y ≈ 3200 ± 0.03 in this window).");
}
