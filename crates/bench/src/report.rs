//! Machine-readable benchmark reports (`BENCH_<name>.json`).
//!
//! Every experiment binary emits one of these next to its human-readable
//! table so performance can be tracked as a trajectory across commits:
//! wall time, lane and thread counts, and a flat bag of named metrics
//! (simulated cycles, gate-evaluations per second, speedups, …). The
//! writer and the reader are both dependency-free: the format is a
//! single flat-enough JSON object that the hand-rolled extractors in
//! this module (used by the `benchcheck` CI gate) can parse.
//!
//! Environment knobs honoured by the binaries:
//!
//! * `GA_BENCH_OUT` — directory to write `BENCH_<name>.json` into
//!   (default: current directory).
//! * `GA_BENCH_GENS` — override the generation count of GA workloads.
//! * `GA_BENCH_QUICK` — non-empty ⇒ shrink workloads for a CI smoke run.

use std::io;
use std::path::PathBuf;
use std::time::Instant;

/// One benchmark report, serialized as
/// `{"name":…,"wall_seconds":…,"lanes":…,"threads":…,"metrics":{…}}`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    wall_seconds: f64,
    lanes: u64,
    threads: u64,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// A report for benchmark `name`: `wall_seconds` of wall-clock time,
    /// `lanes` simulation lanes (1 unless bit-sliced), `threads` worker
    /// threads.
    pub fn new(name: impl Into<String>, wall_seconds: f64, lanes: u64, threads: u64) -> Self {
        BenchReport {
            name: name.into(),
            wall_seconds,
            lanes,
            threads,
            metrics: Vec::new(),
        }
    }

    /// Attach a named metric (builder-style).
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// The report name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Render as JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"name\": {},\n  \"wall_seconds\": {},\n  \"lanes\": {},\n  \"threads\": {},\n  \"metrics\": {{",
            json_string(&self.name),
            json_number(self.wall_seconds),
            self.lanes,
            self.threads
        );
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {}", json_string(k), json_number(*v));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Write `BENCH_<name>.json` into `$GA_BENCH_OUT` (or the current
    /// directory) and return the path.
    pub fn emit(&self) -> io::Result<PathBuf> {
        let dir = std::env::var_os("GA_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// `emit()` with the standard side-channel message on stderr; any
    /// I/O failure is reported but non-fatal (the human-readable table
    /// already went to stdout).
    pub fn emit_or_warn(&self) {
        match self.emit() {
            Ok(path) => eprintln!("bench report: {}", path.display()),
            Err(e) => eprintln!("bench report NOT written ({e})"),
        }
    }
}

/// JSON string literal (the names used here are plain identifiers, but
/// escape the two structurally dangerous characters anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats as-is, non-finite clamped to 0 (JSON has
/// no NaN/Inf) — a report should never contain one, but a divide-by-
/// zero on a degenerate quick run must not produce unparseable output.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// Extract the number following `"key":` anywhere in `json`. Metric
/// keys are unique across a report, so a flat scan is sufficient —
/// this is the reader `benchcheck` validates reports with.
pub fn json_extract_number(json: &str, key: &str) -> Option<f64> {
    let rest = after_key(json, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the string following `"key":`.
pub fn json_extract_string(json: &str, key: &str) -> Option<String> {
    let rest = after_key(json, key)?;
    let rest = rest.strip_prefix('"')?;
    // Report names never contain escapes; a raw quote ends the value.
    Some(rest[..rest.find('"')?].to_string())
}

/// Slice of `json` immediately after `"key":` with whitespace skipped.
fn after_key<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

/// Stopwatch for a whole benchmark binary: `let sw = Stopwatch::start();
/// … ; report(sw.seconds())`.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// `GA_BENCH_GENS` as a generation-count override, when set and valid.
pub fn gens_override() -> Option<u32> {
    std::env::var("GA_BENCH_GENS").ok()?.trim().parse().ok()
}

/// True when `GA_BENCH_QUICK` asks for the shrunken CI-smoke workloads
/// (any non-empty value except `0`).
pub fn quick() -> bool {
    std::env::var("GA_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_the_extractors() {
        let r = BenchReport::new("table5", 1.25, 1, 4)
            .metric("sim_cycles", 123456.0)
            .metric("gates_per_sec", 5.5e8);
        let j = r.to_json();
        assert_eq!(json_extract_string(&j, "name").as_deref(), Some("table5"));
        assert_eq!(json_extract_number(&j, "wall_seconds"), Some(1.25));
        assert_eq!(json_extract_number(&j, "lanes"), Some(1.0));
        assert_eq!(json_extract_number(&j, "threads"), Some(4.0));
        assert_eq!(json_extract_number(&j, "sim_cycles"), Some(123456.0));
        assert_eq!(json_extract_number(&j, "gates_per_sec"), Some(5.5e8));
        assert_eq!(json_extract_number(&j, "missing"), None);
    }

    #[test]
    fn empty_metrics_object_is_valid() {
        let j = BenchReport::new("x", 0.0, 64, 1).to_json();
        assert!(j.contains("\"metrics\": {}"));
        assert_eq!(json_extract_number(&j, "lanes"), Some(64.0));
    }

    #[test]
    fn non_finite_metrics_stay_parseable() {
        let j = BenchReport::new("x", 0.0, 1, 1)
            .metric("bad", f64::NAN)
            .to_json();
        assert_eq!(json_extract_number(&j, "bad"), Some(0.0));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
