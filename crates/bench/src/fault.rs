//! Fault-injection campaign machinery (scan-chain SEU sweeps).
//!
//! The paper equips the core with a full scan chain for manufacturing
//! test (§III-C.2); this module reuses that chain the way a modern
//! dependability study would: as the injection port of a single-event-
//! upset campaign. Two models are swept:
//!
//! * **RTL scan campaign** — [`run_scan_injection`] freezes the
//!   cycle-accurate [`GaSystem`] mid-run, corrupts one chain bit
//!   through the real shift protocol, resumes, and
//!   [`classify_hw`] grades the outcome against the fault-free golden
//!   run (the same observables the cross-engine conformance suite
//!   diffs: final best, per-generation statistics, RNG draw count).
//! * **Netlist campaign** — [`run_net_injection`] drives the compiled
//!   CA-RNG netlist with [`ga_synth::FaultInjector`] corrupting one
//!   flip-flop word post-edge, grading the extracted stream against the
//!   `carng::CaRng` reference and checking the *other* lanes stayed
//!   clean (word-level lane isolation).
//!
//! Everything here is deterministic: same plan, same classes, byte-for-
//! byte — the campaign binary seeds its cycle sampling from the in-tree
//! `rand` shim.

use carng::{CaRng, Rng16};
use ga_core::{GaParams, HwRun};
use ga_engine::{trajectory16, RunOutcome};
use ga_fitness::TestFunction;
use ga_synth::bitsim::CompiledNetlist;
use ga_synth::{FaultInjector, NetFault};
use hwsim::{BitFault, FaultClass, ScanBitOp, SimError};

use crate::{hw_system, run_on, BackendKind};

/// One planned scan-chain injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanInjection {
    /// Scan-chain bit position (0..[`ga_core::GaCoreHw::SCAN_LENGTH`]).
    pub position: usize,
    /// Fault polarity.
    pub kind: BitFault,
    /// Injection cycle, counted from `start_GA`.
    pub at_cycle: u64,
}

/// Outcome-class tally for a campaign (or a shard of one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// No observable difference from golden.
    pub masked: u64,
    /// Observable divergence, correct final answer.
    pub detected: u64,
    /// Wrong final answer (silent data corruption).
    pub corrupted: u64,
    /// Watchdog fired before `GA_done`.
    pub hung: u64,
}

impl ClassCounts {
    /// Count one classified outcome.
    pub fn add(&mut self, class: FaultClass) {
        match class {
            FaultClass::Masked => self.masked += 1,
            FaultClass::Detected => self.detected += 1,
            FaultClass::Corrupted => self.corrupted += 1,
            FaultClass::Hung => self.hung += 1,
        }
    }

    /// Fold another tally in.
    pub fn merge(&mut self, other: ClassCounts) {
        self.masked += other.masked;
        self.detected += other.detected;
        self.corrupted += other.corrupted;
        self.hung += other.hung;
    }

    /// Total classified outcomes — the campaign invariant is
    /// `total() == injections` (every injection classified, exactly
    /// once; `benchcheck` pins the gap to zero).
    pub fn total(&self) -> u64 {
        self.masked + self.detected + self.corrupted + self.hung
    }
}

/// The fault-free golden run every faulted run is graded against —
/// captured through the engine registry (the cycle-accurate `rtl`
/// backend), so the reference carries the registry's canonical
/// observables: final best, per-generation trajectory, RNG draw count.
pub fn golden_hw_run(f: TestFunction, params: &GaParams) -> RunOutcome {
    run_on(BackendKind::RtlInterp, f, params)
}

/// Grade one faulted RTL run against its golden reference.
///
/// Precedence: hung (didn't finish) > corrupted (wrong final best) >
/// detected (correct answer, diverged trajectory or draw count) >
/// masked. Cycle counts are deliberately *not* compared — the scan
/// shift itself costs `2 × SCAN_LENGTH + 1` cycles, so every injected
/// run is longer than golden.
pub fn classify_hw(golden: &RunOutcome, outcome: &Result<(HwRun, bool), SimError>) -> FaultClass {
    match outcome {
        Err(_) => FaultClass::Hung,
        Ok((run, _)) => {
            if (run.best.chrom as u32, run.best.fitness) != (golden.best_chrom, golden.best_fitness)
            {
                FaultClass::Corrupted
            } else if trajectory16(&run.history) != golden.trajectory
                || Some(run.rng_draws) != golden.rng_draws
            {
                FaultClass::Detected
            } else {
                FaultClass::Masked
            }
        }
    }
}

/// Execute one scan-chain injection from a fresh system: program,
/// start, inject at `inj.at_cycle` through the scan chain, run to
/// `GA_done` or the watchdog.
pub fn run_scan_injection(
    f: TestFunction,
    params: &GaParams,
    watchdog_cycles: u64,
    inj: ScanInjection,
) -> Result<(HwRun, bool), SimError> {
    let mut sys = hw_system(f);
    sys.program(params);
    sys.run_with_faults(
        watchdog_cycles,
        inj.at_cycle,
        &[ScanBitOp {
            position: inj.position,
            kind: inj.kind,
        }],
    )
}

/// Outcome of one netlist injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetOutcome {
    /// Masked (stream untouched) or corrupted (stream diverged). The
    /// RNG stream *is* the module's output, so there is no separate
    /// detected class, and a pure combinational module cannot hang.
    pub class: FaultClass,
    /// True when a lane **other** than the faulted one diverged — a
    /// word-level isolation violation. Must never happen; the campaign
    /// pins this count to zero.
    pub lane_leak: bool,
}

/// Inject `fault` (which must target lane 0) into the compiled CA-RNG
/// netlist while extracting `draws` draws, with an identically-seeded
/// clean copy of the simulation on lane 1. Returns the grade of the
/// faulted stream plus the lane-isolation check.
pub fn run_net_injection(
    cn: &CompiledNetlist,
    seed: u16,
    draws: usize,
    fault: NetFault,
) -> NetOutcome {
    assert_eq!(
        fault.lane, 0,
        "the campaign faults lane 0, lane 1 is the witness"
    );
    let seed_bus = cn.input_bus("seed").expect("seed bus").to_vec();
    let ctl_bus = cn.input_bus("ctl").expect("ctl bus").to_vec();
    let rn_bus = cn.output_bus("rn").expect("rn bus").to_vec();

    let mut sim = cn.sim();
    let mut inj = FaultInjector::new(vec![fault]);
    let s = if seed == 0 { 1 } else { seed };
    sim.set_bus_lane(&seed_bus, 0, s as u64);
    sim.set_bus_lane(&seed_bus, 1, s as u64);
    sim.set_bus_all(&ctl_bus, 0b01); // seed_load
    sim.step();
    inj.after_step(&mut sim);
    sim.set_bus_all(&ctl_bus, 0b10); // consume

    let mut faulted = Vec::with_capacity(draws);
    let mut witness = Vec::with_capacity(draws);
    for _ in 0..draws {
        faulted.push(sim.bus_lane(&rn_bus, 0) as u16);
        witness.push(sim.bus_lane(&rn_bus, 1) as u16);
        sim.step();
        inj.after_step(&mut sim);
    }

    let mut reference = CaRng::new(seed);
    let golden: Vec<u16> = (0..draws).map(|_| reference.next_u16()).collect();
    NetOutcome {
        class: if faulted == golden {
            FaultClass::Masked
        } else {
            FaultClass::Corrupted
        },
        lane_leak: witness != golden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_core::behavioral::{GenStats, Individual};
    use ga_synth::gadesign::elaborate_ca_rng;
    use ga_synth::NetFaultKind;

    fn fake_run(fitness: u16, draws: u64) -> HwRun {
        HwRun {
            best: Individual { chrom: 1, fitness },
            cycles: 100,
            seconds: 0.0,
            history: vec![GenStats {
                gen: 0,
                best: Individual { chrom: 1, fitness },
                fit_sum: fitness as u32,
                pop_size: 8,
            }],
            rng_draws: draws,
        }
    }

    /// The registry-shaped view of a fault-free [`fake_run`].
    fn as_golden(run: &HwRun) -> RunOutcome {
        RunOutcome {
            best_chrom: run.best.chrom as u32,
            best_fitness: run.best.fitness,
            generations: 0,
            evaluations: 0,
            conv_gen: None,
            cycles: Some(run.cycles),
            rng_draws: Some(run.rng_draws),
            trajectory: trajectory16(&run.history),
        }
    }

    #[test]
    fn classification_precedence_matches_the_contract() {
        let golden = as_golden(&fake_run(100, 50));
        // Hung beats everything.
        assert_eq!(
            classify_hw(&golden, &Err(SimError::Timeout { cycles: 1 })),
            FaultClass::Hung
        );
        // Wrong answer → corrupted, even with identical trajectory.
        let mut wrong = fake_run(100, 50);
        wrong.best.fitness = 99;
        assert_eq!(
            classify_hw(&golden, &Ok((wrong, true))),
            FaultClass::Corrupted
        );
        // Right answer, diverged draws → detected.
        assert_eq!(
            classify_hw(&golden, &Ok((fake_run(100, 51), true))),
            FaultClass::Detected
        );
        // Longer cycles alone (the scan-shift cost) stay masked.
        let mut longer = fake_run(100, 50);
        longer.cycles += 817;
        assert_eq!(
            classify_hw(&golden, &Ok((longer, true))),
            FaultClass::Masked
        );
    }

    #[test]
    fn class_counts_sum_and_merge() {
        let mut a = ClassCounts::default();
        for c in FaultClass::ALL {
            a.add(c);
        }
        assert_eq!(a.total(), 4);
        let mut b = a;
        b.merge(a);
        assert_eq!(b.total(), 8);
        assert_eq!(b.hung, 2);
    }

    #[test]
    fn empty_scan_injection_is_masked() {
        let params = GaParams::new(8, 2, 10, 1, 0x2961);
        let golden = golden_hw_run(TestFunction::F3, &params);
        let mut sys = hw_system(TestFunction::F3);
        sys.program(&params);
        let outcome = sys.run_with_faults(2_000_000, 300, &[]);
        assert_eq!(classify_hw(&golden, &outcome), FaultClass::Masked);
    }

    #[test]
    fn net_transient_corrupts_only_its_lane() {
        let cn = CompiledNetlist::compile(&elaborate_ca_rng()).expect("CA-RNG compiles");
        let hit = run_net_injection(
            &cn,
            0x2961,
            32,
            NetFault {
                site: 0,
                lane: 0,
                at_cycle: 2,
                kind: NetFaultKind::Transient,
            },
        );
        assert_eq!(
            hit.class,
            FaultClass::Corrupted,
            "mid-stream SEU is visible"
        );
        assert!(!hit.lane_leak, "witness lane must stay clean");
        // A fault scheduled after the last extracted draw never shows.
        let late = run_net_injection(
            &cn,
            0x2961,
            32,
            NetFault {
                site: 0,
                lane: 0,
                at_cycle: 1000,
                kind: NetFaultKind::Transient,
            },
        );
        assert_eq!(late.class, FaultClass::Masked);
        assert!(!late.lane_leak);
    }
}
