//! Parallel sweep runner for the experiment binaries.
//!
//! Every table/figure workload in this crate is a grid of independent
//! simulated runs (seed × population × crossover-rate cells — each one
//! a self-contained FPGA simulation). This module gives them one shared
//! work-distribution primitive instead of per-binary ad-hoc threading:
//! a scoped thread pool pulling indices off an atomic counter, with the
//! results **always returned in input order** regardless of thread
//! count or completion order — so a sweep's output is byte-identical
//! whether it ran on one core or sixteen.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Worker-thread count for sweeps: the machine's available parallelism
/// (1 when it cannot be queried).
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every item of `items` on up to `threads` scoped worker
/// threads and collect the results **in input order**.
///
/// `f` receives `(index, &item)` and must be a pure function of them —
/// the scheduler makes no ordering promises about *execution*, only
/// about the returned `Vec` (result `i` always corresponds to
/// `items[i]`). With `threads <= 1` (or a single item) the sweep runs
/// inline on the caller's thread, which is also the reference semantics
/// the parallel path is property-tested against.
pub fn run_sweep<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }

    // Work claim: each worker pulls the next unclaimed index; finished
    // (index, result) pairs accumulate thread-locally and merge under
    // the mutex once per worker, so the lock is cold.
    let next = AtomicUsize::new(0);
    let merged: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                merged
                    .lock()
                    .expect("sweep worker panicked while holding the collector")
                    .append(&mut local);
            });
        }
    });

    let mut got = merged
        .into_inner()
        .expect("sweep worker panicked while holding the collector");
    got.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(got.len(), items.len());
    got.into_iter().map(|(_, v)| v).collect()
}

/// Split `n_items` work items into contiguous chunks of at most
/// `lanes` items — the job-packing shape of a 64-lane bit-sliced
/// simulation. Every item lands in exactly one chunk, in input order,
/// and only the final chunk may be short (its *actual* length is the
/// number of active lanes; idle tail lanes must not contribute to
/// results or metrics).
pub fn lane_chunks(n_items: usize, lanes: usize) -> Vec<std::ops::Range<usize>> {
    assert!(lanes >= 1, "a chunk must hold at least one lane");
    (0..n_items)
        .step_by(lanes)
        .map(|start| start..(start + lanes).min(n_items))
        .collect()
}

/// The cross product `a × b × c` in row-major order (`a` slowest,
/// `c` fastest) — the cell order the paper's grid tables print in
/// (seed rows; `p32/x10, p32/x12, p64/x10, p64/x12` columns).
pub fn grid3<A: Copy, B: Copy, C: Copy>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for &x in a {
        for &y in b {
            for &z in c {
                out.push((x, y, z));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sweep_is_empty() {
        let out: Vec<u32> = run_sweep(&[], 4, |_, item: &u32| *item);
        assert!(out.is_empty());
    }

    #[test]
    fn grid3_is_row_major() {
        let g = grid3(&[1, 2], &[10, 20], &[100, 200]);
        assert_eq!(g.len(), 8);
        assert_eq!(g[0], (1, 10, 100));
        assert_eq!(g[1], (1, 10, 200));
        assert_eq!(g[2], (1, 20, 100));
        assert_eq!(g[4], (2, 10, 100));
        assert_eq!(g[7], (2, 20, 200));
    }

    #[test]
    fn results_are_input_ordered_with_many_threads() {
        // More threads than items, uneven per-item work.
        let items: Vec<u64> = (0..37).collect();
        let out = run_sweep(&items, 16, |i, &x| {
            // Busy-work proportional to a hash of the index so
            // completion order scrambles.
            let mut acc = x;
            for _ in 0..((i * 7919) % 999) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i as u64, x, acc)
        });
        for (i, &(idx, x, _)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(x, items[i]);
        }
    }

    #[test]
    fn lane_chunks_cover_everything_in_order() {
        for (n, lanes) in [
            (0usize, 64usize),
            (1, 64),
            (64, 64),
            (65, 64),
            (200, 64),
            (7, 3),
        ] {
            let chunks = lane_chunks(n, lanes);
            let mut covered = Vec::new();
            for c in &chunks {
                assert!(c.len() <= lanes, "chunk {c:?} wider than {lanes} lanes");
                assert!(!c.is_empty(), "empty chunk for n={n}");
                covered.extend(c.clone());
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} lanes={lanes}");
            // Only the last chunk may be short.
            for c in chunks.iter().rev().skip(1) {
                assert_eq!(c.len(), lanes);
            }
        }
    }

    #[test]
    fn lane_chunks_tail_is_the_remainder() {
        // 200 jobs at 64 lanes: 64 + 64 + 64 + 8 — the regression shape
        // for the padding-skew fix (the 8-lane tail must be honored as
        // 8 jobs, not silently padded to 64).
        let chunks = lane_chunks(200, 64);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3], 192..200);
        assert_eq!(chunks[3].len(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The parallel sweep's output is byte-identical to the
        /// sequential reference for any item set and thread count.
        #[test]
        fn parallel_matches_sequential(
            items in prop::collection::vec(any::<u16>(), 0..48),
            threads in 1usize..6,
        ) {
            let f = |i: usize, x: &u16| format!("{i}:{:04X}:{}", x, x.wrapping_mul(31));
            let sequential: Vec<String> =
                items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
            let swept = run_sweep(&items, threads, f);
            prop_assert_eq!(sequential, swept);
        }
    }
}
