//! GA-evolved fault-coverage test generation.
//!
//! The fault campaign ([`crate::fault`]) grades a *fixed* workload
//! against every injectable site. This module closes the loop: it uses
//! the repository's own GA (the behavioral engine the paper's core
//! implements) to **evolve the test stimuli themselves** — compact
//! probe sets whose fitness is the number of fault sites they detect
//! across the full 424-site universe (408 scan-chain bits of the
//! cycle-accurate core + 16 flip-flops of the compiled CA-RNG netlist).
//!
//! A *probe* is one u16 chromosome describing a complete injection
//! experiment (see [`Probe`] for the field encoding): which GA workload
//! seed to run, when in the run to inject, and with which polarity. A
//! probe **detects** a site when injecting that site under the probe's
//! conditions produces an observable divergence from the probe's own
//! fault-free golden run:
//!
//! * scan sites — any non-`Masked` grade from [`classify_hw`]
//!   (`Detected`, `Corrupted` or `Hung` all surface at an output);
//! * netlist sites — a `Corrupted` RNG stream ([`run_net_injection`]
//!   has no separate detected class: the stream *is* the output).
//!
//! Detector sets are built greedily: each round runs a small GA over
//! probe space where fitness = number of **newly** detected sites
//! (classic greedy set cover with a GA as the inner maximizer), and
//! stops when a round gains nothing. Per-probe detection bitmaps are
//! memoized, so the GA's re-evaluations of recurring chromosomes are
//! free and the total simulation count stays proportional to the number
//! of *distinct* probes explored.
//!
//! The evolved set is cross-checked against galint's static
//! observability report: a detection at a statically-unobservable site
//! would be an unsound "provably cannot reach an output" claim, so the
//! campaign (and the committed-fixture test) pin that count to zero.

use std::collections::HashMap;

use carng::CaRng;
use ga_core::behavioral::GaEngine;
use ga_core::{GaCoreHw, GaParams};
use ga_engine::RunOutcome;
use ga_fitness::TestFunction;
use ga_synth::bitsim::CompiledNetlist;
use ga_synth::gadesign::elaborate_ca_rng;
use ga_synth::{NetFault, NetFaultKind};
use hwsim::{BitFault, FaultClass};

use crate::{classify_hw, golden_hw_run, run_net_injection, run_scan_injection, run_sweep};

/// Scan-chain sites (bit positions of the cycle-accurate core).
pub const SCAN_SITES: usize = GaCoreHw::SCAN_LENGTH;
/// Netlist sites (flip-flops of the compiled CA-RNG).
pub const NET_SITES: usize = 16;
/// The full fault universe: scan positions `0..408`, then netlist
/// sites `408..424`.
pub const TOTAL_SITES: usize = SCAN_SITES + NET_SITES;

/// Probe workload function — the same small-but-real GA the fault
/// campaign uses, so detections compose with its grading machinery.
pub const PROBE_FUNCTION: TestFunction = TestFunction::F3;
/// Probe workload population.
pub const PROBE_POP: u8 = 8;
/// Probe workload generations.
pub const PROBE_GENS: u32 = 4;
/// Stuck-at hold duration for netlist injections, in edges.
pub const STUCK_CYCLES: u64 = 4;
/// Draws extracted per netlist injection.
pub const NET_DRAWS: usize = 64;

/// One evolved test stimulus, encoded as a u16 GA chromosome:
///
/// ```text
/// 15 14 | 13 12 11 | 10 .. 0
/// polar |  window  |  seed
/// ```
///
/// * bits 15–14 — fault polarity selector: 0 or 3 → bit-flip /
///   transient, 1 → stuck-0, 2 → stuck-1 (the two flip encodings are
///   folded together by [`Probe::canonical`]);
/// * bits 13–11 — injection window 0..8, mapped linearly into the
///   probe run's landable injection span (scan) or draw stream (net);
/// * bits 10–0 — workload seed, offset into `0x0800..=0x0FFF` so the
///   CA-RNG never sees the degenerate all-zero seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Probe(pub u16);

impl Probe {
    /// Scan-domain polarity (bits 15–14).
    pub fn scan_kind(self) -> BitFault {
        match self.0 >> 14 {
            1 => BitFault::Force0,
            2 => BitFault::Force1,
            _ => BitFault::Flip,
        }
    }

    /// Netlist-domain polarity — the same selector, mapped onto the
    /// netlist fault model.
    pub fn net_kind(self) -> NetFaultKind {
        match self.0 >> 14 {
            1 => NetFaultKind::Stuck0 {
                cycles: STUCK_CYCLES,
            },
            2 => NetFaultKind::Stuck1 {
                cycles: STUCK_CYCLES,
            },
            _ => NetFaultKind::Transient,
        }
    }

    /// Injection window index (bits 13–11), `0..8`.
    pub fn window(self) -> u64 {
        u64::from((self.0 >> 11) & 0b111)
    }

    /// Workload seed (bits 10–0, offset into the nonzero band).
    pub fn seed(self) -> u16 {
        0x0800 | (self.0 & 0x07FF)
    }

    /// Canonical re-encoding: folds the two flip selectors (0 and 3)
    /// together so aliased chromosomes share one memo entry.
    pub fn canonical(self) -> u16 {
        let sel = match self.0 >> 14 {
            1 => 1u16,
            2 => 2,
            _ => 0,
        };
        (sel << 14) | (self.0 & 0x3FFF)
    }
}

/// Detection bitmap over the 424-site universe (bit `i` = site `i`
/// detected; scan positions first, then netlist sites at `408 + k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteBitmap(pub [u64; 7]);

impl SiteBitmap {
    /// Set site `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < TOTAL_SITES, "site {i} out of range");
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Is site `i` set?
    pub fn get(&self, i: usize) -> bool {
        assert!(i < TOTAL_SITES, "site {i} out of range");
        self.0[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of detected sites.
    pub fn count(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Union in-place.
    pub fn or(&mut self, other: SiteBitmap) {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a |= b;
        }
    }

    /// Sites set here but not in `covered` — the greedy gain mask.
    pub fn and_not(&self, covered: SiteBitmap) -> SiteBitmap {
        let mut out = *self;
        for (a, b) in out.0.iter_mut().zip(covered.0) {
            *a &= !b;
        }
        out
    }

    /// Fixed-width hex encoding (7 × 16 hex digits, word 0 = sites
    /// 0–63 first) — the committed-fixture wire format.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|w| format!("{w:016x}")).collect()
    }

    /// Parse [`SiteBitmap::to_hex`] output.
    pub fn from_hex(s: &str) -> Option<SiteBitmap> {
        if s.len() != 112 || !s.is_ascii() {
            return None;
        }
        let mut out = SiteBitmap::default();
        for (i, chunk) in s.as_bytes().chunks(16).enumerate() {
            let text = std::str::from_utf8(chunk).ok()?;
            out.0[i] = u64::from_str_radix(text, 16).ok()?;
        }
        Some(out)
    }
}

/// Cached per-seed golden run plus the derived injection geometry.
struct GoldenCtx {
    golden: RunOutcome,
    watchdog: u64,
    lo: u64,
    hi: u64,
}

/// Shared evaluation context: compiled netlist, per-seed golden cache,
/// and the per-probe detection-bitmap memo that makes GA re-evaluation
/// of recurring chromosomes free.
pub struct TestgenCtx {
    cn: CompiledNetlist,
    scan_positions: Vec<usize>,
    threads: usize,
    goldens: HashMap<u16, GoldenCtx>,
    memo: HashMap<u16, SiteBitmap>,
    /// Individual injection simulations executed (memo misses only).
    pub sims: u64,
}

impl TestgenCtx {
    /// Build a context sweeping every `stride`-th scan position (1 =
    /// the full grid) plus all 16 netlist sites, with `threads` sweep
    /// workers.
    pub fn new(stride: usize, threads: usize) -> TestgenCtx {
        TestgenCtx {
            cn: CompiledNetlist::compile(&elaborate_ca_rng()).expect("CA-RNG netlist compiles"),
            scan_positions: (0..SCAN_SITES).step_by(stride.max(1)).collect(),
            threads,
            goldens: HashMap::new(),
            memo: HashMap::new(),
            sims: 0,
        }
    }

    /// The swept site indices (strided scan positions, then all
    /// netlist sites as `408 + k`).
    pub fn site_indices(&self) -> Vec<usize> {
        let mut out = self.scan_positions.clone();
        out.extend((0..NET_SITES).map(|k| SCAN_SITES + k));
        out
    }

    /// Number of distinct probes actually simulated.
    pub fn distinct_probes(&self) -> usize {
        self.memo.len()
    }

    fn golden_for(&mut self, seed: u16) -> &GoldenCtx {
        self.goldens.entry(seed).or_insert_with(|| {
            let params = GaParams::new(PROBE_POP, PROBE_GENS, 10, 1, seed);
            let golden = golden_hw_run(PROBE_FUNCTION, &params);
            let cycles = golden.cycles.expect("the rtl backend reports cycles");
            // Same geometry as the fault campaign: inject after warmup,
            // before the run can finish, watch well past recovery.
            let lo = 50u64.min(cycles / 4);
            let hi = (cycles * 3 / 4).max(lo + 1);
            let watchdog = cycles * 4 + 2 * SCAN_SITES as u64 + 64;
            GoldenCtx {
                golden,
                watchdog,
                lo,
                hi,
            }
        })
    }

    /// The probe's detection bitmap over the swept sites (memoized by
    /// canonical probe encoding).
    pub fn detect_map(&mut self, probe: Probe) -> SiteBitmap {
        let key = probe.canonical();
        if let Some(&map) = self.memo.get(&key) {
            return map;
        }
        let seed = probe.seed();
        let params = GaParams::new(PROBE_POP, PROBE_GENS, 10, 1, seed);
        self.golden_for(seed);
        let g = &self.goldens[&seed];
        let at_cycle = g.lo + (g.hi - g.lo) * probe.window() / 8;
        let net_cycle = probe.window() * (NET_DRAWS as u64 / 8);
        let (golden, watchdog) = (&g.golden, g.watchdog);

        let sites = self.site_indices();
        let cn = &self.cn;
        let hits = run_sweep(&sites, self.threads, |_, &site| {
            if site < SCAN_SITES {
                let outcome = run_scan_injection(
                    PROBE_FUNCTION,
                    &params,
                    watchdog,
                    crate::ScanInjection {
                        position: site,
                        kind: probe.scan_kind(),
                        at_cycle,
                    },
                );
                classify_hw(golden, &outcome) != FaultClass::Masked
            } else {
                let o = run_net_injection(
                    cn,
                    seed,
                    NET_DRAWS,
                    NetFault {
                        site: site - SCAN_SITES,
                        lane: 0,
                        at_cycle: net_cycle,
                        kind: probe.net_kind(),
                    },
                );
                o.class == FaultClass::Corrupted
            }
        });

        let mut map = SiteBitmap::default();
        for (&site, &hit) in sites.iter().zip(&hits) {
            if hit {
                map.set(site);
            }
        }
        self.sims += sites.len() as u64;
        self.memo.insert(key, map);
        map
    }
}

/// One detector chosen by the greedy evolution.
#[derive(Debug, Clone, Copy)]
pub struct Detector {
    /// The probe chromosome.
    pub probe: Probe,
    /// Sites this probe detects (over the swept grid).
    pub map: SiteBitmap,
    /// Newly covered sites at the round it was chosen.
    pub gained: u32,
}

/// Greedy set-cover evolution: each round runs a small GA over probe
/// space (fitness = newly detected sites given everything already
/// covered), keeps the round's best probe, and stops early when a
/// round gains nothing. Fully deterministic: round seeds derive from
/// the campaign seed, and every evaluation is a pure function of the
/// probe.
pub fn evolve_detectors(
    ctx: &mut TestgenCtx,
    rounds: usize,
    pop: u8,
    gens: u32,
) -> (Vec<Detector>, SiteBitmap) {
    let mut covered = SiteBitmap::default();
    let mut chosen = Vec::new();
    for round in 0..rounds {
        let round_seed = 0x2961u16.rotate_left(round as u32 * 3) ^ round as u16;
        let params = GaParams::new(pop, gens, 10, 1, round_seed);
        let run = GaEngine::new(params, CaRng::new(round_seed), |word| {
            let gain = ctx.detect_map(Probe(word)).and_not(covered).count();
            u16::try_from(gain).expect("gain fits: the universe is 424 sites")
        })
        .run();
        let probe = Probe(run.best.chrom);
        let map = ctx.detect_map(probe);
        let gained = map.and_not(covered).count();
        if gained == 0 {
            break;
        }
        covered.or(map);
        chosen.push(Detector { probe, map, gained });
    }
    (chosen, covered)
}

/// Size-matched random baseline: `n` probes drawn from a fixed-seed
/// CA-RNG stream, graded with the same memoized evaluator. The
/// acceptance bar is that the evolved set strictly beats this.
pub fn random_baseline(ctx: &mut TestgenCtx, n: usize) -> (Vec<Probe>, SiteBitmap) {
    use carng::Rng16;
    let mut rng = CaRng::new(0xBA5E);
    let probes: Vec<Probe> = (0..n).map(|_| Probe(rng.next_u16())).collect();
    let mut covered = SiteBitmap::default();
    for &p in &probes {
        covered.or(ctx.detect_map(p));
    }
    (probes, covered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_decode_covers_the_contract() {
        // Selector 0 and 3 are both flips; 1/2 are the stuck pair.
        assert_eq!(Probe(0x0000).scan_kind(), BitFault::Flip);
        assert_eq!(Probe(0xC000).scan_kind(), BitFault::Flip);
        assert_eq!(Probe(0x4000).scan_kind(), BitFault::Force0);
        assert_eq!(Probe(0x8000).scan_kind(), BitFault::Force1);
        assert!(matches!(Probe(0x0000).net_kind(), NetFaultKind::Transient));
        assert!(matches!(
            Probe(0x4000).net_kind(),
            NetFaultKind::Stuck0 {
                cycles: STUCK_CYCLES
            }
        ));
        assert!(matches!(
            Probe(0x8000).net_kind(),
            NetFaultKind::Stuck1 {
                cycles: STUCK_CYCLES
            }
        ));
        for word in [0u16, 0xFFFF, 0x1234, 0x8001, 0x47FF] {
            let p = Probe(word);
            assert!(p.window() < 8);
            assert!((0x0800..=0x0FFF).contains(&p.seed()), "seed nonzero band");
            // Canonicalization folds flip aliases and nothing else.
            let c = Probe(p.canonical());
            assert_eq!(c.scan_kind(), p.scan_kind());
            assert_eq!(c.window(), p.window());
            assert_eq!(c.seed(), p.seed());
        }
        assert_eq!(Probe(0xC123).canonical(), 0x0123);
        assert_eq!(Probe(0x8123).canonical(), 0x8123);
    }

    #[test]
    fn bitmap_set_count_hex_roundtrip() {
        let mut m = SiteBitmap::default();
        for i in [0, 63, 64, 407, 408, TOTAL_SITES - 1] {
            m.set(i);
            assert!(m.get(i));
        }
        assert_eq!(m.count(), 6);
        let hex = m.to_hex();
        assert_eq!(hex.len(), 112);
        assert_eq!(SiteBitmap::from_hex(&hex), Some(m));
        assert_eq!(SiteBitmap::from_hex("zz"), None);
        assert_eq!(SiteBitmap::from_hex(&"g".repeat(112)), None);

        let mut covered = SiteBitmap::default();
        covered.set(0);
        covered.set(64);
        let gain = m.and_not(covered);
        assert_eq!(gain.count(), 4);
        assert!(!gain.get(0) && gain.get(63));
        let mut u = covered;
        u.or(m);
        assert_eq!(u.count(), 6);
    }

    #[test]
    fn net_detection_semantics_match_the_campaign() {
        // One cheap netlist-only check: a mid-stream transient on site
        // 0 corrupts the extracted stream, so the probe detects it;
        // the memo returns the identical bitmap on re-query without
        // re-simulating.
        let mut ctx = TestgenCtx::new(SCAN_SITES, 1); // 1 scan site + 16 net
        let probe = Probe(0x0123); // flip/transient, window 0
        let map = ctx.detect_map(probe);
        let sims = ctx.sims;
        assert_eq!(sims, 17, "1 strided scan position + 16 net sites");
        assert!(
            map.get(SCAN_SITES),
            "transient on CA-RNG site 0 must corrupt the stream"
        );
        assert_eq!(ctx.detect_map(probe), map, "memo hit");
        assert_eq!(ctx.detect_map(Probe(0xC123)), map, "flip alias memo hit");
        assert_eq!(ctx.sims, sims, "no new simulations after the memo");
    }
}
