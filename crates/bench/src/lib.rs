//! # ga-bench — experiment harness shared by the table/figure binaries
//!
//! One binary per table and figure of the paper's evaluation section
//! (see DESIGN.md §4 for the index):
//!
//! | binary      | regenerates |
//! |-------------|-------------|
//! | `table5`    | Table V — RT-level results for BF6/F2/F3 |
//! | `table6`    | Table VI — post-PAR statistics |
//! | `table7_9`  | Tables VII–IX — hardware best-fitness grids |
//! | `fig7`      | Fig. 7 — BF6 function plot (CSV) |
//! | `fig8_12`   | Figs. 8–12 — RT-level convergence scatter (CSV) |
//! | `fig13_16`  | Figs. 13–16 — hardware best/avg convergence (CSV) |
//! | `speedup`   | §IV-C — hardware vs software runtime |
//! | `scaling32` | §III-D — the 32-bit dual-core composition |
//! | `rngquality`| §II-C — RNG quality statistics |
//!
//! This library holds the run matrices and harness helpers so the
//! binaries stay declarative and the tests can assert the matrices
//! match the paper.

#![forbid(unsafe_code)]

pub mod fault;
pub mod report;
pub mod sweep;
pub mod testgen;

pub use fault::{
    classify_hw, golden_hw_run, run_net_injection, run_scan_injection, ClassCounts, NetOutcome,
    ScanInjection,
};
pub use report::{
    gens_override, json_extract_number, json_extract_string, quick, BenchReport, Stopwatch,
};
pub use sweep::{default_threads, grid3, lane_chunks, run_sweep};
pub use testgen::{
    evolve_detectors, random_baseline, Detector, Probe, SiteBitmap, TestgenCtx, NET_SITES,
    SCAN_SITES, TOTAL_SITES,
};

use ga_core::{GaParams, GaSystem};
use ga_fitness::{FemBank, FemSlot, LookupFem, TestFunction};

pub use ga_engine::{BackendKind, RunOutcome};

/// One Table V row: run number, function, RNG seed, population size,
/// crossover threshold (all runs: 32 generations, mutation threshold 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table5Row {
    /// Paper run number (1–10).
    pub run: u8,
    /// Test function.
    pub function: TestFunction,
    /// RNG seed (decimal in the paper).
    pub seed: u16,
    /// Population size.
    pub pop: u8,
    /// Crossover threshold.
    pub xover: u8,
}

/// The ten experimental runs of Table V, as printed.
pub const TABLE5_RUNS: [Table5Row; 10] = [
    Table5Row {
        run: 1,
        function: TestFunction::Bf6,
        seed: 45890,
        pop: 32,
        xover: 10,
    },
    Table5Row {
        run: 2,
        function: TestFunction::Bf6,
        seed: 45890,
        pop: 64,
        xover: 10,
    },
    Table5Row {
        run: 3,
        function: TestFunction::Bf6,
        seed: 10593,
        pop: 32,
        xover: 10,
    },
    Table5Row {
        run: 4,
        function: TestFunction::Bf6,
        seed: 1567,
        pop: 32,
        xover: 10,
    },
    Table5Row {
        run: 5,
        function: TestFunction::Bf6,
        seed: 1567,
        pop: 32,
        xover: 12,
    },
    Table5Row {
        run: 6,
        function: TestFunction::F2,
        seed: 45890,
        pop: 32,
        xover: 10,
    },
    Table5Row {
        run: 7,
        function: TestFunction::F2,
        seed: 45890,
        pop: 64,
        xover: 10,
    },
    Table5Row {
        run: 8,
        function: TestFunction::F2,
        seed: 10593,
        pop: 64,
        xover: 10,
    },
    Table5Row {
        run: 9,
        function: TestFunction::F2,
        seed: 10593,
        pop: 32,
        xover: 12,
    },
    Table5Row {
        run: 10,
        function: TestFunction::F3,
        seed: 1567,
        pop: 32,
        xover: 10,
    },
];

/// Population sizes of the Tables VII–IX hardware grid.
pub const TABLE7_POPS: [u8; 2] = [32, 64];
/// Crossover thresholds of the hardware grid (XR = 10, 12).
pub const TABLE7_XRS: [u8; 2] = [10, 12];

/// Build the single-slot hardware system for a paper function.
pub fn hw_system(f: TestFunction) -> GaSystem {
    GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(f),
    )]))
}

/// Run `f`/`params` on any registered backend through the engine
/// registry, at the backend's native chromosome width. Panics on
/// rejection or failure — the bench matrices are all known-admissible,
/// and the default [`ga_engine::Limits`] watchdog (~40 s of simulated
/// 50 MHz time) is generous.
pub fn run_on(kind: BackendKind, f: TestFunction, params: &GaParams) -> RunOutcome {
    run_workload_on(kind, ga_engine::Workload::Function(f), params)
}

/// [`run_on`] generalized to any engine-layer workload (the heal
/// campaign drives [`ga_engine::Workload::VrcHeal`] through here).
pub fn run_workload_on(
    kind: BackendKind,
    workload: ga_engine::Workload,
    params: &GaParams,
) -> RunOutcome {
    let engine = ga_engine::global()
        .get(kind)
        .unwrap_or_else(|| panic!("backend {} is not registered", kind.name()));
    let spec = ga_engine::RunSpec {
        width: engine.capabilities().widths[0],
        workload,
        params: *params,
        deadline_ms: None,
    };
    let prepared = engine.prepare(spec).expect("bench spec admitted");
    engine
        .run(&prepared, &ga_engine::Limits::default())
        .expect("bench run completed")
}

/// Backend selection for the sweep binaries: `GA_BENCH_BACKEND=<name>`
/// reroutes a sweep onto any registered engine; otherwise the binary's
/// default backend is used.
pub fn bench_backend(default: BackendKind) -> BackendKind {
    match std::env::var("GA_BENCH_BACKEND") {
        Ok(name) => BackendKind::parse(&name)
            .unwrap_or_else(|| panic!("GA_BENCH_BACKEND={name}: unknown backend")),
        Err(_) => default,
    }
}

/// The sweep binaries' default drive path: the cycle-accurate RTL
/// interpreter via the registry (overridable with `GA_BENCH_BACKEND`).
pub fn run_hw(f: TestFunction, params: &GaParams) -> RunOutcome {
    run_on(bench_backend(BackendKind::RtlInterp), f, params)
}

/// Table V parameters for a row.
pub fn table5_params(row: &Table5Row) -> GaParams {
    GaParams::new(row.pop, 32, row.xover, 1, row.seed)
}

/// Tables VII–IX parameters for a grid cell.
pub fn table7_params(seed: u16, pop: u8, xover: u8) -> GaParams {
    GaParams::new(pop, 64, xover, 1, seed)
}

/// Render the Tables VII–IX grid: rows = seeds, columns = (pop, xr)
/// cells in the paper's order p32/x10, p32/x12, p64/x10, p64/x12.
pub fn render_grid(title: &str, seeds: &[u16], cells: &[Vec<u16>], maxima: u16) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(
        out,
        "{:>10} | {:>8} {:>8} | {:>8} {:>8}",
        "seed", "p32/x10", "p32/x12", "p64/x10", "p64/x12"
    );
    let _ = writeln!(out, "{}", "-".repeat(52));
    for (i, &seed) in seeds.iter().enumerate() {
        let row = &cells[i];
        let mark = |v: u16| {
            if v == maxima {
                format!("{v}*")
            } else {
                format!("{v}")
            }
        };
        let _ = writeln!(
            out,
            "{:>10} | {:>8} {:>8} | {:>8} {:>8}",
            format!("{seed:04X}"),
            mark(row[0]),
            mark(row[1]),
            mark(row[2]),
            mark(row[3])
        );
    }
    let _ = writeln!(out, "(* = globally optimal fitness {maxima})");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matrix_matches_paper() {
        assert_eq!(TABLE5_RUNS.len(), 10);
        // Rows 1–5 are BF6, 6–9 F2, 10 F3.
        assert!(TABLE5_RUNS[..5]
            .iter()
            .all(|r| r.function == TestFunction::Bf6));
        assert!(TABLE5_RUNS[5..9]
            .iter()
            .all(|r| r.function == TestFunction::F2));
        assert_eq!(TABLE5_RUNS[9].function, TestFunction::F3);
        // Run #3 is run #1 with only the seed changed (the paper's
        // seed-sensitivity argument).
        assert_eq!(TABLE5_RUNS[0].pop, TABLE5_RUNS[2].pop);
        assert_eq!(TABLE5_RUNS[0].xover, TABLE5_RUNS[2].xover);
        assert_ne!(TABLE5_RUNS[0].seed, TABLE5_RUNS[2].seed);
    }

    #[test]
    fn grid_renderer_marks_optima() {
        let s = render_grid("t", &[0x2961], &[vec![10, 20, 30, 65535]], 65535);
        assert!(s.contains("65535*"));
        assert!(s.contains("2961"));
    }

    #[test]
    fn hw_harness_smoke() {
        let params = GaParams::new(8, 2, 10, 1, 0x2961);
        let run = run_hw(TestFunction::F3, &params);
        assert_eq!(run.trajectory.len(), 3);
        assert!(run.cycles.is_some(), "the RTL path reports cycles");
    }

    #[test]
    fn registry_harness_drives_every_backend() {
        // `run_on` must admit the bench workloads on every registered
        // engine at its native width.
        let params = GaParams::new(8, 2, 10, 1, 0x2961);
        for kind in ga_engine::global().kinds() {
            let run = run_on(kind, TestFunction::F3, &params);
            assert_eq!(run.generations, 2, "{}", kind.name());
            assert!(run.best_fitness > 0, "{}", kind.name());
        }
    }
}
