//! Consistency + soundness checks for the committed evolved-detector
//! fixture (`tests/fixtures/testgen_detectors.json`).
//!
//! The fixture is regenerated deterministically by `testgen_campaign`
//! (full grid); this test validates the *committed* copy without
//! re-running any injection: the per-probe detection bitmaps must be
//! well-formed, their union must re-count to the claimed coverage, the
//! evolved set must strictly beat its recorded random baseline, and —
//! the static/dynamic cross-check contract — no probe may claim a
//! detection at a site galint proves statically unobservable.

use ga_bench::{
    json_extract_number, json_extract_string, Probe, SiteBitmap, SCAN_SITES, TOTAL_SITES,
};
use std::path::Path;

fn fixture() -> String {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/testgen_detectors.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed fixture {} unreadable: {e}", path.display()))
}

fn num(json: &str, key: &str) -> f64 {
    json_extract_number(json, key).unwrap_or_else(|| panic!("missing '{key}'"))
}

fn parse_probes(json: &str) -> (Vec<Probe>, Vec<SiteBitmap>) {
    let words = json_extract_string(json, "probe_words").expect("probe_words present");
    let maps = json_extract_string(json, "probe_maps").expect("probe_maps present");
    let probes: Vec<Probe> = words
        .split(',')
        .map(|w| Probe(w.parse().expect("probe word is a u16")))
        .collect();
    let bitmaps: Vec<SiteBitmap> = maps
        .split(',')
        .map(|m| SiteBitmap::from_hex(m).expect("112-hex-digit bitmap"))
        .collect();
    (probes, bitmaps)
}

#[test]
fn fixture_is_self_consistent() {
    let json = fixture();
    assert_eq!(num(&json, "sites") as usize, TOTAL_SITES);
    let (probes, maps) = parse_probes(&json);
    assert_eq!(probes.len(), num(&json, "probes") as usize);
    assert_eq!(maps.len(), probes.len(), "one bitmap per probe");
    assert!(!probes.is_empty(), "the evolved set is non-empty");

    // Decoded fields stay inside the probe contract.
    for p in &probes {
        assert!(p.window() < 8);
        assert!((0x0800..=0x0FFF).contains(&p.seed()));
    }

    // The union re-counts to the claimed coverage, every probe
    // contributes at least one detection, and no bitmap claims a site
    // outside the universe.
    let mut union = SiteBitmap::default();
    for m in &maps {
        assert!(m.count() > 0, "a chosen detector detects something");
        assert_eq!(
            m.0[6] >> (TOTAL_SITES - 6 * 64),
            0,
            "bitmap claims a site beyond the 424-site universe"
        );
        union.or(*m);
    }
    let coverage = num(&json, "coverage") as u32;
    assert_eq!(union.count(), coverage, "union != claimed coverage");

    // The acceptance bar: strictly better than the size-matched random
    // baseline recorded alongside it.
    let baseline = num(&json, "baseline_coverage") as u32;
    assert!(
        coverage > baseline,
        "evolved set ({coverage}) must strictly beat the random baseline ({baseline})"
    );
}

/// The static/dynamic cross-check contract: galint's 424-site
/// observability report and the evolved detectors must agree — zero
/// claimed detections on statically-unobservable sites.
#[test]
fn fixture_detections_are_statically_sound() {
    let json = fixture();
    let (_, maps) = parse_probes(&json);
    let mut union = SiteBitmap::default();
    for m in &maps {
        union.or(*m);
    }

    let report = galint::observability_report().expect("shipping designs elaborate");
    let mut unobservable = 0;
    for site in 0..TOTAL_SITES {
        let verdict = if site < SCAN_SITES {
            report.scan_site(site)
        } else {
            report.net_site(site - SCAN_SITES)
        }
        .expect("every site has a static verdict");
        if verdict.observable {
            continue;
        }
        unobservable += 1;
        assert!(
            !union.get(site),
            "UNSOUND: {} is statically unobservable but the committed fixture claims a detection",
            verdict.field
        );
    }
    assert_eq!(unobservable, 16, "the static report pins 16 seed sites");
}
