//! Regression pins for the committed fault-campaign artifacts.
//!
//! The full 1416-injection campaign is deterministic, so its outcome
//! classes are facts about the codebase, not measurements: any change
//! to the RTL interpreter, the scan protocol, the CA-RNG netlist or
//! the grading rules shows up here as a diff of the committed
//! `BENCH_fault.json`. The test re-derives the invariants from the
//! committed report instead of re-running the sweep, so it stays fast
//! enough for the default `cargo test`.

use ga_bench::{json_extract_number, ClassCounts};
use hwsim::FaultClass;
use std::path::Path;

fn committed(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed artifact {} unreadable: {e}", path.display()))
}

fn metric(json: &str, key: &str) -> f64 {
    json_extract_number(json, key).unwrap_or_else(|| panic!("missing metric '{key}'"))
}

/// `ClassCounts` arithmetic: `add` routes each class to exactly one
/// bucket, `merge` is element-wise addition, and `total` is the sum —
/// the invariant the campaign's `unclassified == 0` gate stands on.
#[test]
fn class_counts_add_merge_total_are_consistent() {
    let mut a = ClassCounts::default();
    for (n, class) in [
        (3, FaultClass::Masked),
        (5, FaultClass::Detected),
        (7, FaultClass::Corrupted),
        (11, FaultClass::Hung),
    ] {
        for _ in 0..n {
            a.add(class);
        }
    }
    assert_eq!((a.masked, a.detected, a.corrupted, a.hung), (3, 5, 7, 11));
    assert_eq!(a.total(), 26);

    let mut b = a;
    b.merge(a);
    assert_eq!((b.masked, b.detected, b.corrupted, b.hung), (6, 10, 14, 22));
    assert_eq!(b.total(), 2 * a.total());
    let empty = ClassCounts::default();
    assert_eq!(empty.total(), 0);
    b.merge(empty);
    assert_eq!(b.total(), 52, "merging the identity changes nothing");
}

/// The committed `BENCH_fault.json` carries the pinned full-grid
/// aggregate: 1416 injections classified 882/112/286/136 with zero
/// unclassified, zero lane leaks, and a sound static cross-check.
#[test]
fn committed_fault_campaign_aggregate_is_pinned() {
    let json = committed("BENCH_fault.json");
    let expect = [
        ("injected", 1416.0),
        ("masked", 882.0),
        ("detected", 112.0),
        ("corrupted", 286.0),
        ("hung", 136.0),
        ("unclassified", 0.0),
        ("class_sum_gap", 0.0),
        ("scan_injected", 1224.0),
        ("scan_landed", 1224.0),
        ("net_injected", 192.0),
        ("net_lane_leaks", 0.0),
        ("xcheck_unsound_sites", 0.0),
        ("static_unobservable_sites", 16.0),
    ];
    for (key, want) in expect {
        assert_eq!(metric(&json, key), want, "metric '{key}' drifted");
    }
    // The classes must re-sum to the injection count through the same
    // arithmetic the campaign uses.
    let counts = ClassCounts {
        masked: metric(&json, "masked") as u64,
        detected: metric(&json, "detected") as u64,
        corrupted: metric(&json, "corrupted") as u64,
        hung: metric(&json, "hung") as u64,
    };
    assert_eq!(counts.total(), metric(&json, "injected") as u64);
}

/// The committed `BENCH_ehw.json` (heal campaign) carries the closed
/// loop: every oracle-healable shipped case healed, zero ghost heals,
/// and the folded testgen headline with zero unsound detections.
#[test]
fn committed_heal_campaign_summary_is_pinned() {
    let json = committed("BENCH_ehw.json");
    assert_eq!(metric(&json, "cases"), 144.0);
    assert_eq!(metric(&json, "oracle_healable"), 82.0);
    assert_eq!(metric(&json, "healed"), 82.0);
    assert_eq!(metric(&json, "heal_rate"), 1.0);
    assert_eq!(metric(&json, "ghost_heals"), 0.0);
    assert!(metric(&json, "mean_gens_to_heal") > 0.0);
    assert_eq!(metric(&json, "testgen_unsound_detections"), 0.0);
    assert!(
        metric(&json, "testgen_margin_vs_baseline") >= 1.0,
        "the evolved detector set must strictly beat the random baseline"
    );
}
