//! Criterion micro/macro benchmarks for the reproduction.
//!
//! These quantify the simulation infrastructure itself (they are *not*
//! the paper's experiments — those are the `table*`/`fig*`/`speedup`
//! binaries): engine throughput per generation, RNG kernels, FEM
//! handshake latency in simulated cycles per wall-second, the
//! cycle-accurate system, and the synthesis flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use carng::{CaRng, Lfsr16, Rng16};
use ga_core::{GaEngine, GaParams, GaSystem};
use ga_fitness::fem::{Fem, FemIn};
use ga_fitness::rom::FitnessRom;
use ga_fitness::{CordicFem, FemBank, FemSlot, LookupFem, TestFunction};
use hwsim::Clocked;
use swga::{CountingGa, PpcCostModel};

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("ca_1000_draws", |b| {
        let mut rng = CaRng::new(0x2961);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u16() as u32);
            }
            black_box(acc)
        })
    });
    g.bench_function("lfsr_1000_draws", |b| {
        let mut rng = Lfsr16::new(0x2961);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u16() as u32);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("behavioral_engine");
    for pop in [32u8, 64, 128] {
        g.bench_with_input(BenchmarkId::new("one_generation", pop), &pop, |b, &pop| {
            let rom = FitnessRom::tabulate(TestFunction::Mbf6_2);
            let params = GaParams::new(pop, 1, 10, 1, 0x2961);
            b.iter(|| {
                let mut e = GaEngine::new(params, CaRng::new(params.seed), |c| rom.lookup(c));
                e.init_population();
                black_box(e.step_generation())
            })
        });
    }
    g.finish();
}

fn bench_hw_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_accurate_system");
    g.sample_size(20);
    g.bench_function("pop32_gen8_mbf6_2", |b| {
        let params = GaParams::new(32, 8, 10, 1, 0x2961);
        b.iter(|| {
            let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
                LookupFem::for_function(TestFunction::Mbf6_2),
            )]));
            black_box(sys.program_and_run(&params, 100_000_000).unwrap().cycles)
        })
    });
    g.finish();
}

fn bench_fems(c: &mut Criterion) {
    let mut g = c.benchmark_group("fem_transaction");
    fn transact(fem: &mut impl Fem, cand: u16) -> u16 {
        loop {
            fem.eval(FemIn {
                fit_request: true,
                candidate: cand,
            });
            fem.commit();
            if fem.out().fit_valid {
                break;
            }
        }
        let v = fem.out().fit_value;
        loop {
            fem.eval(FemIn::default());
            fem.commit();
            if !fem.out().fit_valid {
                return v;
            }
        }
    }
    g.bench_function("lookup", |b| {
        let mut fem = LookupFem::for_function(TestFunction::Mbf6_2);
        fem.reset();
        b.iter(|| black_box(transact(&mut fem, 0x1234)))
    });
    g.bench_function("cordic", |b| {
        let mut fem = CordicFem::new(TestFunction::Mbf6_2);
        fem.reset();
        b.iter(|| black_box(transact(&mut fem, 0x1234)))
    });
    g.finish();
}

/// The simulation-engine comparison behind this PR's acceptance
/// criterion: the compiled engine must beat the HashMap interpreter's
/// `step_seq` loop by ≥20× on the elaborated CA-RNG netlist — and the
/// bit-sliced modes multiply that by the lane count again (every bench
/// runs the same 64-cycle free-running workload; `bitsim_64lane`
/// completes 64 independent streams in that time, the widened
/// `bitsim_128lane`/`bitsim_256lane` rows 128 and 256).
fn bench_netlist_sim(c: &mut Criterion) {
    use ga_synth::bitsim::CompiledNetlist;
    use ga_synth::gadesign::elaborate_ca_rng;
    use ga_synth::netlist::u64_to_bus;
    use std::collections::HashMap;

    let nl = elaborate_ca_rng();
    let cn = CompiledNetlist::compile(&nl).expect("CA RNG netlist compiles");
    let seed_bus = nl.input_bus("seed").unwrap().to_vec();
    let ctl_bus = nl.input_bus("ctl").unwrap().to_vec();
    const CYCLES: usize = 64;

    let mut g = c.benchmark_group("netlist_sim");
    g.bench_function("interpreter_step_seq_64_cycles", |b| {
        let mut inputs = HashMap::new();
        u64_to_bus(&seed_bus, 0x2961, &mut inputs);
        inputs.insert(ctl_bus[0], false);
        inputs.insert(ctl_bus[1], true);
        let regs0: HashMap<_, _> = nl.regs.iter().map(|r| (r.q, false)).collect();
        b.iter(|| {
            let mut regs = regs0.clone();
            for _ in 0..CYCLES {
                regs = nl.step_seq(&inputs, &regs);
            }
            black_box(regs)
        })
    });
    g.bench_function("compiled_dropin_step_seq_64_cycles", |b| {
        // Same HashMap-in/HashMap-out contract as the interpreter, but
        // over the compiled op list (compile cost excluded — it is paid
        // once per netlist, not per run).
        let mut inputs = HashMap::new();
        u64_to_bus(&seed_bus, 0x2961, &mut inputs);
        inputs.insert(ctl_bus[0], false);
        inputs.insert(ctl_bus[1], true);
        let regs0: HashMap<_, _> = nl.regs.iter().map(|r| (r.q, false)).collect();
        b.iter(|| {
            let mut regs = regs0.clone();
            for _ in 0..CYCLES {
                regs = cn.step_seq(&inputs, &regs);
            }
            black_box(regs)
        })
    });
    g.bench_function("bitsim_64lane_64_cycles", |b| {
        b.iter(|| {
            let mut sim = cn.sim();
            sim.set_bus_all(&seed_bus, 0x2961);
            sim.set_bus_all(&ctl_bus, 0b01);
            sim.step();
            sim.set_bus_all(&ctl_bus, 0b10);
            for _ in 0..CYCLES {
                sim.step();
            }
            black_box(sim.bus_lane(cn.output_bus("rn").unwrap(), 0))
        })
    });
    // The widened simulator: the same 64-cycle free run at 2 and 4
    // words per net — 128 and 256 independent streams per pass. The
    // per-pass cost should grow far slower than the lane count (one
    // vectorizable array op per gate word), which is the whole case
    // for the wide backends.
    fn wide_run<const W: usize>(
        cn: &ga_synth::bitsim::CompiledNetlist,
        seed_bus: &[ga_synth::netlist::NetId],
        ctl_bus: &[ga_synth::netlist::NetId],
        cycles: usize,
    ) -> [u64; W] {
        let mut sim = cn.sim_wide::<W>();
        sim.set_bus_all(seed_bus, 0x2961);
        sim.set_bus_all(ctl_bus, 0b01);
        sim.step();
        sim.set_bus_all(ctl_bus, 0b10);
        for _ in 0..cycles {
            sim.step();
        }
        sim.net_words(cn.output_bus("rn").unwrap()[0])
    }
    g.bench_function("bitsim_128lane_64_cycles", |b| {
        b.iter(|| black_box(wide_run::<2>(&cn, &seed_bus, &ctl_bus, CYCLES)))
    });
    g.bench_function("bitsim_256lane_64_cycles", |b| {
        b.iter(|| black_box(wide_run::<4>(&cn, &seed_bus, &ctl_bus, CYCLES)))
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_flow");
    g.sample_size(10);
    g.bench_function("elaborate_map_time_ga_core", |b| {
        b.iter(|| black_box(ga_synth::elaborate_ga_core().1))
    });
    g.finish();
}

fn bench_software_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("software_cost_model");
    g.bench_function("counting_ga_pop32_gen32", |b| {
        let rom = FitnessRom::tabulate(TestFunction::Mbf6_2);
        let params = GaParams::new(32, 32, 10, 1, 0x2961);
        let model = PpcCostModel::default();
        b.iter(|| {
            let run = CountingGa::new(params, |c| rom.lookup(c)).run();
            black_box(model.seconds(&run.ops))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_engine,
    bench_hw_system,
    bench_fems,
    bench_netlist_sim,
    bench_synthesis,
    bench_software_model
);
criterion_main!(benches);
