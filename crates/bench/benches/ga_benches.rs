//! Criterion micro/macro benchmarks for the reproduction.
//!
//! These quantify the simulation infrastructure itself (they are *not*
//! the paper's experiments — those are the `table*`/`fig*`/`speedup`
//! binaries): engine throughput per generation, RNG kernels, FEM
//! handshake latency in simulated cycles per wall-second, the
//! cycle-accurate system, and the synthesis flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use carng::{CaRng, Lfsr16, Rng16};
use ga_core::{GaEngine, GaParams, GaSystem};
use ga_fitness::fem::{Fem, FemIn};
use ga_fitness::rom::FitnessRom;
use ga_fitness::{CordicFem, FemBank, FemSlot, LookupFem, TestFunction};
use hwsim::Clocked;
use swga::{CountingGa, PpcCostModel};

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("ca_1000_draws", |b| {
        let mut rng = CaRng::new(0x2961);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u16() as u32);
            }
            black_box(acc)
        })
    });
    g.bench_function("lfsr_1000_draws", |b| {
        let mut rng = Lfsr16::new(0x2961);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u16() as u32);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("behavioral_engine");
    for pop in [32u8, 64, 128] {
        g.bench_with_input(BenchmarkId::new("one_generation", pop), &pop, |b, &pop| {
            let rom = FitnessRom::tabulate(TestFunction::Mbf6_2);
            let params = GaParams::new(pop, 1, 10, 1, 0x2961);
            b.iter(|| {
                let mut e = GaEngine::new(params, CaRng::new(params.seed), |c| rom.lookup(c));
                e.init_population();
                black_box(e.step_generation())
            })
        });
    }
    g.finish();
}

fn bench_hw_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_accurate_system");
    g.sample_size(20);
    g.bench_function("pop32_gen8_mbf6_2", |b| {
        let params = GaParams::new(32, 8, 10, 1, 0x2961);
        b.iter(|| {
            let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
                LookupFem::for_function(TestFunction::Mbf6_2),
            )]));
            black_box(sys.program_and_run(&params, 100_000_000).unwrap().cycles)
        })
    });
    g.finish();
}

fn bench_fems(c: &mut Criterion) {
    let mut g = c.benchmark_group("fem_transaction");
    fn transact(fem: &mut impl Fem, cand: u16) -> u16 {
        loop {
            fem.eval(FemIn {
                fit_request: true,
                candidate: cand,
            });
            fem.commit();
            if fem.out().fit_valid {
                break;
            }
        }
        let v = fem.out().fit_value;
        loop {
            fem.eval(FemIn::default());
            fem.commit();
            if !fem.out().fit_valid {
                return v;
            }
        }
    }
    g.bench_function("lookup", |b| {
        let mut fem = LookupFem::for_function(TestFunction::Mbf6_2);
        fem.reset();
        b.iter(|| black_box(transact(&mut fem, 0x1234)))
    });
    g.bench_function("cordic", |b| {
        let mut fem = CordicFem::new(TestFunction::Mbf6_2);
        fem.reset();
        b.iter(|| black_box(transact(&mut fem, 0x1234)))
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_flow");
    g.sample_size(10);
    g.bench_function("elaborate_map_time_ga_core", |b| {
        b.iter(|| black_box(ga_synth::elaborate_ga_core().1))
    });
    g.finish();
}

fn bench_software_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("software_cost_model");
    g.bench_function("counting_ga_pop32_gen32", |b| {
        let rom = FitnessRom::tabulate(TestFunction::Mbf6_2);
        let params = GaParams::new(32, 32, 10, 1, 0x2961);
        let model = PpcCostModel::default();
        b.iter(|| {
            let run = CountingGa::new(params, |c| rom.lookup(c)).run();
            black_box(model.seconds(&run.ops))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_engine,
    bench_hw_system,
    bench_fems,
    bench_synthesis,
    bench_software_model
);
criterion_main!(benches);
