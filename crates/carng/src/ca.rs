//! The hybrid rule-90/150 cellular-automaton PRNG.
//!
//! One-dimensional binary CA over 16 cells with **null boundary**
//! conditions (virtual zero cells beyond each end). Each cell applies
//! either elementary rule 90 (`next = left XOR right`) or rule 150
//! (`next = left XOR self XOR right`), chosen per-cell by a fixed rule
//! vector. Hortensius et al. showed that suitable hybrid vectors give a
//! state-transition graph that is a single cycle through all 2^n − 1
//! nonzero states — the same guarantee as a maximal LFSR but with far
//! less cross-correlation between neighboring bit streams, which is why
//! CA PRNGs are popular in hardware GAs (Scott et al., Shackleford et
//! al., and the paper all use one).
//!
//! Because the update of every cell depends only on the 3-neighborhood,
//! the whole step is three shifts and two XORs on a `u16` — precisely
//! the one-LUT-per-cell structure the FPGA implementation has.

use crate::{Rng16, SnapshotRng};

/// Rule vector found by exhaustive search over all 2^16 hybrid vectors:
/// bit *i* = 1 means cell *i* applies rule 150, otherwise rule 90. This
/// vector has eight rule-150 cells and gives the maximal period
/// 2^16 − 1 = 65535 (asserted by `tests::maximal_period`).
pub const MAXIMAL_RULE_VECTOR: u16 = 0x055F;

/// The 16-cell hybrid rule-90/150 CA PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaRng {
    state: u16,
    rules: u16,
}

impl CaRng {
    /// Construct with the maximal-length rule vector. A zero seed is the
    /// CA's only fixed point and would jam the generator, so it is
    /// remapped to `0x0001` — the same guard the paper's RNG module
    /// needs, since the seed register is user-programmable.
    pub fn new(seed: u16) -> Self {
        Self::with_rules(seed, MAXIMAL_RULE_VECTOR)
    }

    /// Construct with an explicit rule vector (for RNG-quality
    /// experiments with deliberately poor generators, cf. §II-C).
    pub fn with_rules(seed: u16, rules: u16) -> Self {
        CaRng {
            state: if seed == 0 { 1 } else { seed },
            rules,
        }
    }

    /// One synchronous CA step.
    #[inline(always)]
    pub fn step_state(state: u16, rules: u16) -> u16 {
        // cell i: left neighbor = bit i+1, right neighbor = bit i-1,
        // null boundary = zeros shifted in at both ends.
        ((state >> 1) ^ (state << 1)) ^ (state & rules)
    }

    /// The rule vector in use.
    pub fn rules(&self) -> u16 {
        self.rules
    }
}

impl Rng16 for CaRng {
    #[inline(always)]
    fn output(&self) -> u16 {
        self.state
    }

    #[inline(always)]
    fn step(&mut self) {
        self.state = Self::step_state(self.state, self.rules);
    }

    fn reseed(&mut self, seed: u16) {
        self.state = if seed == 0 { 1 } else { seed };
    }

    fn fill_u16s(&mut self, out: &mut [u16]) {
        // Keep the state in a register for the whole batch instead of
        // loading/storing `self.state` once per draw.
        let mut s = self.state;
        let rules = self.rules;
        for slot in out {
            *slot = s;
            s = Self::step_state(s, rules);
        }
        self.state = s;
    }
}

impl SnapshotRng for CaRng {
    fn load(&mut self, _consumed: u64, next: u16) -> Result<(), &'static str> {
        // The state register IS the next output; the draw count is not
        // needed to reposition a free-running CA. Zero is the CA's fixed
        // point and can never appear in a maximal-cycle stream, so a
        // zero `next` marks a corrupted snapshot rather than a position.
        if next == 0 {
            return Err("CA snapshot has the unreachable all-zero state");
        }
        self.state = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_draw_is_the_seed() {
        let mut rng = CaRng::new(0xB342);
        assert_eq!(rng.next_u16(), 0xB342);
        assert_ne!(rng.next_u16(), 0xB342);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = CaRng::new(0);
        assert_eq!(rng.next_u16(), 1);
        assert_ne!(
            rng.output(),
            0,
            "CA must never enter the all-zero fixed point"
        );
        rng.reseed(0);
        assert_eq!(rng.output(), 1);
    }

    #[test]
    fn maximal_period() {
        // The chosen rule vector must cycle through all 65535 nonzero
        // states before returning to the seed.
        let seed = 1u16;
        let mut s = CaRng::step_state(seed, MAXIMAL_RULE_VECTOR);
        let mut n: u32 = 1;
        while s != seed {
            s = CaRng::step_state(s, MAXIMAL_RULE_VECTOR);
            n += 1;
            assert!(n <= 65535, "period exceeds the state space — impossible");
        }
        assert_eq!(n, 65535);
    }

    #[test]
    fn visits_every_nonzero_state() {
        let mut seen = vec![false; 1 << 16];
        let mut rng = CaRng::new(0x2961);
        for _ in 0..65535 {
            let v = rng.next_u16();
            assert!(!seen[v as usize], "state {v:#06x} repeated early");
            seen[v as usize] = true;
        }
        assert!(!seen[0], "all-zero state must be unreachable");
        assert_eq!(seen.iter().filter(|&&b| b).count(), 65535);
    }

    #[test]
    fn zero_state_is_fixed_point() {
        assert_eq!(CaRng::step_state(0, MAXIMAL_RULE_VECTOR), 0);
    }

    #[test]
    fn step_is_linear_over_gf2() {
        // next(a ^ b) == next(a) ^ next(b) — the CA update is linear,
        // which is what makes the maximal-period argument an LFSR-style
        // primitive-polynomial property.
        let r = MAXIMAL_RULE_VECTOR;
        for a in [0x0001u16, 0x8000, 0x1234, 0xFFFF, 0x0F0F] {
            for b in [0x0002u16, 0x4000, 0xABCD, 0x00FF] {
                assert_eq!(
                    CaRng::step_state(a ^ b, r),
                    CaRng::step_state(a, r) ^ CaRng::step_state(b, r)
                );
            }
        }
    }

    #[test]
    fn rule_90_only_vector_behaves_as_documented() {
        // With rules == 0 every cell is rule 90: next = left ^ right.
        let s = 0b0000_0000_0001_0000u16;
        let next = CaRng::step_state(s, 0);
        assert_eq!(next, 0b0000_0000_0010_1000);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = CaRng::new(0x2961);
        let mut b = CaRng::new(0x061F);
        let stream_a: Vec<u16> = (0..32).map(|_| a.next_u16()).collect();
        let stream_b: Vec<u16> = (0..32).map(|_| b.next_u16()).collect();
        assert_ne!(stream_a, stream_b);
    }

    #[test]
    fn fill_u16s_matches_repeated_next() {
        let mut batched = CaRng::new(0x2961);
        let mut stepped = CaRng::new(0x2961);
        let mut buf = [0u16; 97]; // non-power-of-two to catch edge bugs
        batched.fill_u16s(&mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, stepped.next_u16(), "diverged at draw {i}");
        }
        // The batch must leave the generator where the loop left it.
        assert_eq!(batched.next_u16(), stepped.next_u16());
        // Empty batch is a no-op.
        batched.fill_u16s(&mut []);
        assert_eq!(batched.output(), stepped.output());
    }

    #[test]
    fn reseed_restarts_the_stream() {
        let mut rng = CaRng::new(0xAAAA);
        let first: Vec<u16> = (0..8).map(|_| rng.next_u16()).collect();
        rng.reseed(0xAAAA);
        let second: Vec<u16> = (0..8).map(|_| rng.next_u16()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn snapshot_save_load_resumes_the_stream() {
        let mut rng = CaRng::new(0x2961);
        for _ in 0..7 {
            rng.next_u16();
        }
        let next = rng.save();
        let tail: Vec<u16> = (0..8).map(|_| rng.next_u16()).collect();
        // Restore into a generator seeded with something unrelated.
        let mut fresh = CaRng::new(0xFFFF);
        fresh.load(7, next).unwrap();
        let resumed: Vec<u16> = (0..8).map(|_| fresh.next_u16()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn zero_snapshot_is_rejected() {
        let mut rng = CaRng::new(1);
        assert!(rng.load(0, 0).is_err());
        assert_eq!(rng.output(), 1, "failed load must not disturb state");
    }
}
