//! RNG quality statistics.
//!
//! §II-C of the paper surveys the literature on PRNG quality and GA
//! performance (Meysenburg & Foster found little effect; Cantú-Paz found
//! initial-population quality matters) and notes that "a high-quality
//! RNG is generally characterized by a long period, uniformly
//! distributed random numbers, \[and\] absence of correlations between
//! consecutive numbers". This module measures exactly those three
//! properties, plus per-bit balance, so the repository can reproduce the
//! CA-vs-LFSR-vs-poor-generator comparison that motivates the
//! programmable-seed feature.

use crate::Rng16;

/// Measure the period of a generator from its current state, capped at
/// `cap` steps. Returns `None` if the state did not recur within the
/// cap (period > cap).
pub fn period(rng: &mut impl Rng16, cap: u32) -> Option<u32> {
    let start = rng.output();
    for n in 1..=cap {
        rng.step();
        if rng.output() == start {
            return Some(n);
        }
    }
    None
}

/// Chi-square statistic for uniformity of `n` draws over `buckets`
/// equal-width buckets of the 16-bit range. For a uniform source the
/// expected value is ≈ `buckets − 1`; gross non-uniformity inflates it
/// by orders of magnitude.
pub fn chi_square_uniformity(rng: &mut impl Rng16, n: u32, buckets: usize) -> f64 {
    assert!(
        buckets >= 2 && (1usize << 16).is_multiple_of(buckets),
        "buckets must divide 65536"
    );
    let mut counts = vec![0u32; buckets];
    let width = (1usize << 16) / buckets;
    for _ in 0..n {
        counts[rng.next_u16() as usize / width] += 1;
    }
    let expected = n as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Lag-1 serial correlation coefficient of `n` consecutive draws.
/// Near zero for an uncorrelated source; |r| close to 1 indicates the
/// next value is nearly a linear function of the current one.
pub fn serial_correlation(rng: &mut impl Rng16, n: u32) -> f64 {
    assert!(n >= 3);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_u16() as f64).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..xs.len() {
        let d = xs[i] - mean;
        den += d * d;
        if i + 1 < xs.len() {
            num += d * (xs[i + 1] - mean);
        }
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Fraction of ones in each of the 16 bit positions over `n` draws.
/// A balanced generator gives ≈ 0.5 everywhere.
pub fn bit_balance(rng: &mut impl Rng16, n: u32) -> [f64; 16] {
    let mut ones = [0u32; 16];
    for _ in 0..n {
        let v = rng.next_u16();
        for (b, count) in ones.iter_mut().enumerate() {
            *count += u32::from((v >> b) & 1);
        }
    }
    let mut out = [0.0; 16];
    for b in 0..16 {
        out[b] = ones[b] as f64 / n as f64;
    }
    out
}

/// A compact quality report for one generator.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Measured period (None = did not recur within the cap).
    pub period: Option<u32>,
    /// Chi-square over 64 buckets of 65 535 draws.
    pub chi_square_64: f64,
    /// Lag-1 serial correlation over 4 096 draws.
    pub serial_corr: f64,
    /// Worst deviation of any bit position from 0.5 over 8 192 draws.
    pub worst_bit_bias: f64,
}

/// Run the standard battery against a generator factory (the factory is
/// called once per statistic so each starts from the same seed).
pub fn quality_report<R: Rng16>(mut mk: impl FnMut() -> R) -> QualityReport {
    let period = period(&mut mk(), 1 << 17);
    let chi_square_64 = chi_square_uniformity(&mut mk(), 65_535, 64);
    let serial_corr = serial_correlation(&mut mk(), 4_096);
    let balance = bit_balance(&mut mk(), 8_192);
    let worst_bit_bias = balance.iter().map(|p| (p - 0.5).abs()).fold(0.0, f64::max);
    QualityReport {
        period,
        chi_square_64,
        serial_corr,
        worst_bit_bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CaRng, Lfsr16};

    #[test]
    fn ca_rng_quality() {
        let r = quality_report(|| CaRng::new(0x2961));
        assert_eq!(r.period, Some(65535));
        // Full-period traversal of 65535 states over 64 buckets is almost
        // perfectly uniform.
        assert!(r.chi_square_64 < 120.0, "chi2 = {}", r.chi_square_64);
        // A 16-cell hybrid CA has measurable lag-1 correlation (~0.38
        // for this rule vector) because each output bit depends only on
        // a 3-bit neighborhood of the previous state. This is exactly
        // the "resource-constrained hardware PRNG" compromise §II-C
        // discusses; we assert it stays below the level where the GA's
        // threshold comparisons would visibly skew.
        assert!(r.serial_corr.abs() < 0.6, "corr = {}", r.serial_corr);
        assert!(r.worst_bit_bias < 0.05, "bias = {}", r.worst_bit_bias);
    }

    #[test]
    fn lfsr_quality() {
        let r = quality_report(|| Lfsr16::new(0x2961));
        assert_eq!(r.period, Some(65535));
        assert!(r.chi_square_64 < 120.0);
    }

    #[test]
    fn poor_rule_vector_is_detectably_worse() {
        // Rule vector 0 (pure rule 90) has short cycles and heavy
        // structure — the "poor PRNG" of the §II-C studies.
        let poor = quality_report(|| CaRng::with_rules(0x2961, 0x0000));
        let good = quality_report(|| CaRng::new(0x2961));
        assert!(poor.period.unwrap_or(u32::MAX) < 65535);
        assert!(poor.period.unwrap_or(u32::MAX) < good.period.unwrap());
    }

    #[test]
    fn chi_square_detects_constant_source() {
        struct Stuck;
        impl Rng16 for Stuck {
            fn output(&self) -> u16 {
                42
            }
            fn step(&mut self) {}
            fn reseed(&mut self, _: u16) {}
        }
        let chi = chi_square_uniformity(&mut Stuck, 6400, 64);
        // Everything lands in one bucket: chi2 = n*(buckets-1).
        assert!(chi > 6400.0 * 60.0);
    }

    #[test]
    fn serial_correlation_of_counter_is_high() {
        struct Counter(u16);
        impl Rng16 for Counter {
            fn output(&self) -> u16 {
                self.0
            }
            fn step(&mut self) {
                self.0 = self.0.wrapping_add(1);
            }
            fn reseed(&mut self, s: u16) {
                self.0 = s;
            }
        }
        let corr = serial_correlation(&mut Counter(0), 1000);
        assert!(
            corr > 0.99,
            "monotone counter must be almost perfectly correlated"
        );
    }

    #[test]
    #[should_panic]
    fn buckets_must_divide_range() {
        let _ = chi_square_uniformity(&mut CaRng::new(1), 100, 3);
    }
}
