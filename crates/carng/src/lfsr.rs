//! Galois LFSR — the "linear shift register" (LSHR) PRNG alternative.
//!
//! Tommiska & Vuori's GA used a linear shift register PRNG (Table I row
//! 2). We provide one both as a comparison point for the RNG-quality
//! experiments of §II-C and as a second generator the GA engine can be
//! parameterized with, demonstrating the paper's claim that "the
//! operation of the GA core is independent of the RNG implementation".

use crate::{Rng16, SnapshotRng};

/// Feedback mask for the primitive polynomial
/// x^16 + x^14 + x^13 + x^11 + 1 — the standard maximal 16-bit Galois
/// LFSR tap set (period 2^16 − 1).
pub const MAXIMAL_TAPS: u16 = 0xB400;

/// 16-bit Galois LFSR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
    taps: u16,
}

impl Lfsr16 {
    /// Construct with the maximal tap set; a zero seed (the LFSR's
    /// fixed point) is remapped to `0x0001`.
    pub fn new(seed: u16) -> Self {
        Self::with_taps(seed, MAXIMAL_TAPS)
    }

    /// Construct with explicit taps (deliberately poor generators for
    /// quality experiments).
    pub fn with_taps(seed: u16, taps: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 1 } else { seed },
            taps,
        }
    }

    /// One shift step.
    #[inline(always)]
    pub fn step_state(state: u16, taps: u16) -> u16 {
        let lsb = state & 1;
        let shifted = state >> 1;
        if lsb == 1 {
            shifted ^ taps
        } else {
            shifted
        }
    }
}

impl Rng16 for Lfsr16 {
    #[inline(always)]
    fn output(&self) -> u16 {
        self.state
    }

    #[inline(always)]
    fn step(&mut self) {
        self.state = Self::step_state(self.state, self.taps);
    }

    fn reseed(&mut self, seed: u16) {
        self.state = if seed == 0 { 1 } else { seed };
    }

    fn fill_u16s(&mut self, out: &mut [u16]) {
        let mut s = self.state;
        let taps = self.taps;
        for slot in out {
            *slot = s;
            s = Self::step_state(s, taps);
        }
        self.state = s;
    }
}

impl SnapshotRng for Lfsr16 {
    fn load(&mut self, _consumed: u64, next: u16) -> Result<(), &'static str> {
        // Same contract as the CA: the register is the next output and
        // zero is the unreachable fixed point.
        if next == 0 {
            return Err("LFSR snapshot has the unreachable all-zero state");
        }
        self.state = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_period() {
        let seed = 1u16;
        let mut s = Lfsr16::step_state(seed, MAXIMAL_TAPS);
        let mut n: u32 = 1;
        while s != seed {
            s = Lfsr16::step_state(s, MAXIMAL_TAPS);
            n += 1;
            assert!(n <= 65535);
        }
        assert_eq!(n, 65535);
    }

    #[test]
    fn zero_seed_remapped() {
        let mut l = Lfsr16::new(0);
        assert_eq!(l.next_u16(), 1);
    }

    #[test]
    fn zero_state_is_fixed_point() {
        assert_eq!(Lfsr16::step_state(0, MAXIMAL_TAPS), 0);
    }

    #[test]
    fn stream_differs_from_ca_rng() {
        use crate::CaRng;
        let mut l = Lfsr16::new(0x2961);
        let mut c = CaRng::new(0x2961);
        let ls: Vec<u16> = (0..16).map(|_| l.next_u16()).collect();
        let cs: Vec<u16> = (0..16).map(|_| c.next_u16()).collect();
        assert_eq!(ls[0], cs[0], "both start at the seed");
        assert_ne!(ls[1..], cs[1..]);
    }

    #[test]
    fn fill_u16s_matches_repeated_next() {
        let mut batched = Lfsr16::new(0xB342);
        let mut stepped = Lfsr16::new(0xB342);
        let mut buf = [0u16; 65];
        batched.fill_u16s(&mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, stepped.next_u16(), "diverged at draw {i}");
        }
        assert_eq!(batched.next_u16(), stepped.next_u16());
    }

    #[test]
    fn first_draw_is_seed() {
        let mut l = Lfsr16::new(0xFFFF);
        assert_eq!(l.next_u16(), 0xFFFF);
    }

    #[test]
    fn snapshot_save_load_resumes_the_stream() {
        let mut l = Lfsr16::new(0xB342);
        for _ in 0..5 {
            l.next_u16();
        }
        let next = l.save();
        let tail: Vec<u16> = (0..8).map(|_| l.next_u16()).collect();
        let mut fresh = Lfsr16::new(0x0001);
        fresh.load(5, next).unwrap();
        let resumed: Vec<u16> = (0..8).map(|_| fresh.next_u16()).collect();
        assert_eq!(tail, resumed);
        assert!(fresh.load(0, 0).is_err());
    }
}
