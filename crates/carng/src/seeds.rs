//! Seed values used throughout the paper, and the core's preset seeds.
//!
//! §III-B.7: "The initial seed of the RNG module can either be provided
//! by the user or selected from one of three different preset initial
//! seeds." The paper never prints the three built-in values, but its
//! RT-level experiments (Table V) use the decimal seeds 45890, 10593 and
//! 1567 — which are exactly the hex seeds B342, 2961 and 061F of the
//! hardware experiments (Tables VII–IX). We adopt those three as the
//! built-in presets, which keeps every experiment in the paper
//! reproducible from the preset ROM alone.

/// The three built-in preset seeds (selected by `preset` ≠ 0 when no
/// user seed has been programmed).
pub const PRESET_SEEDS: [u16; 3] = [0xB342, 0x2961, 0x061F];

/// Table V seeds, as printed (decimal).
pub const TABLE5_SEEDS: [u16; 3] = [45890, 10593, 1567];

/// Tables VII–IX seeds, as printed (hexadecimal).
pub const TABLE7_SEEDS: [u16; 6] = [0x2961, 0x061F, 0xB342, 0xAAAA, 0xA0A0, 0xFFFF];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_and_preset_seeds_coincide() {
        // 45890 == 0xB342, 10593 == 0x2961, 1567 == 0x061F — the paper's
        // RT-level and hardware experiments share three seeds.
        assert_eq!(TABLE5_SEEDS[0], 0xB342);
        assert_eq!(TABLE5_SEEDS[1], 0x2961);
        assert_eq!(TABLE5_SEEDS[2], 0x061F);
        for s in PRESET_SEEDS {
            assert!(TABLE5_SEEDS.contains(&s));
            assert!(TABLE7_SEEDS.contains(&s));
        }
    }

    #[test]
    fn no_zero_seeds() {
        assert!(PRESET_SEEDS.iter().all(|&s| s != 0));
        assert!(TABLE7_SEEDS.iter().all(|&s| s != 0));
    }
}
