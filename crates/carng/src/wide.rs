//! Generic-width hybrid CA and GF(2) jump-ahead.
//!
//! §III-D scales chromosomes by ganging cores, each with its own RNG;
//! a wider CA is the other natural axis (Scott et al. used wider CA
//! PRNGs for wider members). [`CaRngW`] generalizes the 16-cell
//! generator to any width up to 64, and — because the hybrid rule
//! 90/150 update is linear over GF(2) — provides O(width³ · log n)
//! jump-ahead via matrix exponentiation: the tool for placing multiple
//! cores' RNGs at guaranteed-disjoint stream offsets (a stronger
//! decorrelation than the complemented-seed convention).

/// A width-`N` hybrid rule-90/150 CA PRNG (`N ≤ 64`), null boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaRngW<const N: usize> {
    state: u64,
    rules: u64,
}

/// The GF(2) transition matrix of a width-`N` hybrid CA, stored as `N`
/// row bitmasks (row i = mask of state bits that feed next-state bit i).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix<const N: usize> {
    rows: [u64; N],
}

impl<const N: usize> Gf2Matrix<N> {
    fn mask() -> u64 {
        if N == 64 {
            u64::MAX
        } else {
            (1u64 << N) - 1
        }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut rows = [0u64; N];
        for (i, r) in rows.iter_mut().enumerate() {
            *r = 1 << i;
        }
        Gf2Matrix { rows }
    }

    /// The one-step transition matrix for a rule vector.
    pub fn step_matrix(rules: u64) -> Self {
        let mut rows = [0u64; N];
        for (i, row) in rows.iter_mut().enumerate() {
            let mut m = 0u64;
            if i + 1 < N {
                m |= 1 << (i + 1); // left neighbor
            }
            if i > 0 {
                m |= 1 << (i - 1); // right neighbor
            }
            if (rules >> i) & 1 == 1 {
                m |= 1 << i; // rule 150 self-term
            }
            *row = m;
        }
        Gf2Matrix { rows }
    }

    /// Matrix–vector product over GF(2).
    pub fn apply(&self, v: u64) -> u64 {
        let mut out = 0u64;
        for (i, &row) in self.rows.iter().enumerate() {
            out |= (((row & v).count_ones() as u64) & 1) << i;
        }
        out & Self::mask()
    }

    /// Matrix–matrix product over GF(2).
    pub fn mul(&self, other: &Self) -> Self {
        // (self · other): column j of the product is self · (column j
        // of other). Work with columns by transposing on the fly.
        let mut rows = [0u64; N];
        for (i, &arow) in self.rows.iter().enumerate() {
            let mut acc = 0u64;
            for k in 0..N {
                if (arow >> k) & 1 == 1 {
                    acc ^= other.rows[k];
                }
            }
            rows[i] = acc;
        }
        Gf2Matrix { rows }
    }

    /// Matrix power by square-and-multiply.
    pub fn pow(&self, mut n: u64) -> Self {
        let mut result = Self::identity();
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                result = base.mul(&result);
            }
            base = base.mul(&base.clone());
            n >>= 1;
        }
        result
    }
}

impl<const N: usize> CaRngW<N> {
    /// Construct; the all-zero fixed point is remapped to 1.
    pub fn new(seed: u64, rules: u64) -> Self {
        assert!(N >= 2 && N <= 64, "width must be 2..=64");
        let mask = Gf2Matrix::<N>::mask();
        let s = seed & mask;
        CaRngW {
            state: if s == 0 { 1 } else { s },
            rules: rules & mask,
        }
    }

    /// Current output.
    pub fn output(&self) -> u64 {
        self.state
    }

    /// One CA step.
    pub fn step(&mut self) {
        let mask = Gf2Matrix::<N>::mask();
        self.state = (((self.state >> 1) ^ (self.state << 1)) ^ (self.state & self.rules)) & mask;
    }

    /// Sample-then-advance (the hardware read-and-consume idiom shared
    /// with [`crate::Rng16::next_u16`]; intentionally named like it).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let v = self.state;
        self.step();
        v
    }

    /// Jump the stream forward by `steps` in O(N³ log steps) — without
    /// generating the intermediate values.
    pub fn jump(&mut self, steps: u64) {
        let m = Gf2Matrix::<N>::step_matrix(self.rules).pow(steps);
        self.state = m.apply(self.state);
    }

    /// Measure the period from the current state (capped).
    pub fn period(&self, cap: u64) -> Option<u64> {
        let mut probe = self.clone();
        let start = probe.state;
        for n in 1..=cap {
            probe.step();
            if probe.state == start {
                return Some(n);
            }
        }
        None
    }

    /// Search for a maximal-length rule vector of this width (period
    /// 2^N − 1), scanning from `from`. Exhaustive for small widths.
    pub fn find_maximal_rules(from: u64) -> Option<u64> {
        assert!(
            N <= 20,
            "exhaustive search is only sensible for small widths"
        );
        let mask = Gf2Matrix::<N>::mask();
        let target = mask; // 2^N − 1
        for rules in from..=mask {
            let rng = CaRngW::<N>::new(1, rules);
            if rng.period(target) == Some(target) {
                return Some(rules);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{CaRng, MAXIMAL_RULE_VECTOR};
    use crate::Rng16;

    #[test]
    fn width16_matches_the_production_generator() {
        let mut wide = CaRngW::<16>::new(0x2961, MAXIMAL_RULE_VECTOR as u64);
        let mut reference = CaRng::new(0x2961);
        for _ in 0..200 {
            assert_eq!(wide.next() as u16, reference.next_u16());
        }
    }

    #[test]
    fn jump_equals_stepping() {
        for steps in [0u64, 1, 2, 63, 1000, 65_535, 123_456] {
            let mut jumper = CaRngW::<16>::new(0xB342, MAXIMAL_RULE_VECTOR as u64);
            let mut stepper = jumper.clone();
            jumper.jump(steps);
            for _ in 0..steps {
                stepper.step();
            }
            assert_eq!(jumper.output(), stepper.output(), "steps = {steps}");
        }
    }

    #[test]
    fn jump_is_additive() {
        let mut a = CaRngW::<16>::new(0x061F, MAXIMAL_RULE_VECTOR as u64);
        let mut b = a.clone();
        a.jump(1000);
        a.jump(234);
        b.jump(1234);
        assert_eq!(a.output(), b.output());
    }

    #[test]
    fn matrix_identity_and_associativity() {
        let m = Gf2Matrix::<16>::step_matrix(MAXIMAL_RULE_VECTOR as u64);
        let i = Gf2Matrix::<16>::identity();
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
        // (m²)·m == m·(m²)
        let m2 = m.mul(&m);
        assert_eq!(m2.mul(&m), m.mul(&m2));
    }

    #[test]
    fn pow_zero_is_identity() {
        let m = Gf2Matrix::<16>::step_matrix(MAXIMAL_RULE_VECTOR as u64);
        assert_eq!(m.pow(0), Gf2Matrix::<16>::identity());
        assert_eq!(m.pow(1), m);
    }

    #[test]
    fn full_period_jump_is_identity_on_the_stream() {
        let mut rng = CaRngW::<16>::new(0xAAAA, MAXIMAL_RULE_VECTOR as u64);
        let before = rng.output();
        rng.jump(65_535);
        assert_eq!(rng.output(), before, "period-length jump returns to start");
    }

    #[test]
    fn disjoint_streams_for_dual_core() {
        // The §III-D use case: two cores draw from the same cycle at
        // offset 2^15 — guaranteed non-overlapping for < 2^15 draws.
        let mut core1 = CaRngW::<16>::new(0x2961, MAXIMAL_RULE_VECTOR as u64);
        let mut core2 = core1.clone();
        core2.jump(1 << 15);
        let s1: Vec<u64> = (0..64).map(|_| core1.next()).collect();
        let s2: Vec<u64> = (0..64).map(|_| core2.next()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn smaller_width_maximal_rules_exist() {
        // Known result: maximal hybrid 90/150 vectors exist for width 8.
        let rules = CaRngW::<8>::find_maximal_rules(0).expect("none found");
        let rng = CaRngW::<8>::new(1, rules);
        assert_eq!(rng.period(255), Some(255));
    }

    #[test]
    fn width_boundaries() {
        // Width 2 with rule vector 01 is maximal (period 3); vector 11
        // falls into the zero fixed point.
        let w2 = CaRngW::<2>::new(1, 0b01);
        assert_eq!(w2.period(4), Some(3));
        let w2bad = CaRngW::<2>::new(1, 0b11);
        assert_eq!(
            w2bad.period(8),
            None,
            "absorbing zero state has no cycle back"
        );
        let mut w64 = CaRngW::<64>::new(0xDEAD_BEEF_CAFE_F00D, 0x055F_055F_055F_055F);
        let a = w64.next();
        let b = w64.next();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn width_one_rejected() {
        let _ = CaRngW::<1>::new(1, 1);
    }
}
