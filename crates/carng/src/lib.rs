//! # carng — hardware-style pseudo-random number generators
//!
//! The paper's GA IP core consumes random numbers from a 16-bit
//! **cellular-automaton (CA) PRNG**, "similar to the implementation in
//! \[Scott et al. 1995\]" — a one-dimensional hybrid rule-90/150 CA with
//! null boundaries, the construction introduced by Hortensius et al. for
//! built-in self-test hardware. Table I of the paper classifies prior
//! work by RNG ("CA/fixed", "LSHR/fixed"); the proposed core is the only
//! one with a *programmable* seed (plus three built-in presets).
//!
//! This crate provides:
//!
//! * [`CaRng`] — the 16-cell hybrid rule-90/150 CA with a rule vector
//!   found by exhaustive search to have the maximal period of
//!   2^16 − 1 (every nonzero state lies on one cycle);
//! * [`Lfsr16`] — a Galois LFSR, the "LSHR" alternative used by
//!   Tommiska & Vuori, for the RNG-quality comparisons of §II-C;
//! * [`seeds`] — the paper's experimental seeds (Tables V and VII–IX)
//!   and the core's three built-in preset seeds;
//! * [`stats`] — period measurement, chi-square uniformity, serial
//!   correlation and bit-balance statistics, used to reproduce the
//!   §II-C discussion about RNG quality and GA performance.
//!
//! The generators are deliberately dependency-free with no allocation in
//! the hot path, because they are *inside* the hardware model: each
//! `next_u16` corresponds to reading the RNG module's output register
//! and pulsing its consume/enable input.

#![forbid(unsafe_code)]

pub mod ca;
pub mod lfsr;
pub mod seeds;
pub mod stats;
pub mod wide;

pub use ca::CaRng;
pub use lfsr::Lfsr16;
pub use wide::CaRngW;

/// A 16-bit hardware-style PRNG: an output register plus an advance
/// (consume) operation.
///
/// `next_u16` returns the **current** output register and then steps the
/// generator — exactly what the GA core does in hardware: it samples the
/// `rn` input port and pulses the RNG's enable line. Consequently the
/// first value drawn after seeding is the seed itself; this is
/// observable in the generated initial population and is asserted by
/// tests so the behavioral and cycle-accurate models can never drift.
pub trait Rng16 {
    /// Current output register (does not advance).
    fn output(&self) -> u16;

    /// Advance one step (the enable pulse).
    fn step(&mut self);

    /// Reload the seed register.
    fn reseed(&mut self, seed: u16);

    /// Sample-then-advance.
    fn next_u16(&mut self) -> u16 {
        let v = self.output();
        self.step();
        v
    }

    /// Batch draw: fill `out` with consecutive samples, exactly as if
    /// by repeated [`Rng16::next_u16`] calls. The default is the naive
    /// loop; concrete generators override it with a register-resident
    /// loop (no per-draw `self` round trip), which is what the 64-lane
    /// netlist-simulation stimulus builder and the sweep harness call.
    fn fill_u16s(&mut self, out: &mut [u16]) {
        for slot in out {
            *slot = self.next_u16();
        }
    }

    /// Draw a 4-bit field from the "predefined position" the paper's
    /// core uses for threshold comparisons (crossover/mutation
    /// decisions): the low nibble of a fresh 16-bit draw.
    fn next_nibble(&mut self) -> u8 {
        (self.next_u16() & 0xF) as u8
    }
}

/// A [`Rng16`] whose stream position can be captured and restored — the
/// contract the engine checkpoint/resume machinery builds on.
///
/// A snapshot is the pair *(consumed, next)*: how many draws the engine
/// has taken so far and the value the **next** `next_u16` call will
/// return. That pair is backend-neutral: for register generators
/// ([`CaRng`], [`Lfsr16`]) the next output *is* the state, so `load`
/// simply reinstalls it (ignoring `consumed`); for the engine crate's
/// pre-extracted lane streams, `consumed` is the stream cursor and
/// `next` is a cross-check against the stored stream. Restoring a
/// behavioral snapshot into a stream-backed stepper (or vice versa)
/// therefore works, which is what makes cross-backend resume possible.
pub trait SnapshotRng: Rng16 {
    /// The value the next `next_u16` call will return.
    fn save(&self) -> u16 {
        self.output()
    }

    /// Reposition the generator so the next draw returns `next` after
    /// `consumed` draws have already been taken. Returns a typed error
    /// (never panics) when the pair is not a reachable position for
    /// this generator.
    fn load(&mut self, consumed: u64, next: u16) -> Result<(), &'static str>;
}
