//! The diagnostics engine: severities, source elements, and reporters.
//!
//! Every rule violation is a [`Diagnostic`] anchored to the design
//! [`Element`] it concerns (a gate, a register, an FSM state, …), so a
//! report is actionable without re-running the analysis. Reports render
//! either as human text (one line per finding, compiler style) or as
//! machine-readable JSON for CI.

use std::fmt;

/// How bad a finding is. `Error` fails the build (the CLI exits
/// nonzero); `Warn` is suspicious but shippable; `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note (e.g. an intentionally unconnected input).
    Info,
    /// Suspicious construct that deserves review.
    Warn,
    /// Design-rule violation; the netlist should not ship.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// The design element a diagnostic points at — the lint analog of a
/// source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element {
    /// The whole design (cross-cutting findings).
    Design,
    /// A gate, by index (= its output net id).
    Gate(usize),
    /// A scan register, by scan-chain position.
    Register(usize),
    /// A named primary input bus.
    InputBus(String),
    /// A named primary output bus.
    OutputBus(String),
    /// An FSM state (one-hot index + human name).
    State {
        /// State index.
        index: usize,
        /// Human-readable name (falls back to `S<idx>`).
        name: String,
    },
    /// An FSM transition, by declaration index.
    Transition(usize),
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Design => f.write_str("design"),
            Element::Gate(i) => write!(f, "gate {i}"),
            Element::Register(i) => write!(f, "register {i}"),
            Element::InputBus(name) => write!(f, "input '{name}'"),
            Element::OutputBus(name) => write!(f, "output '{name}'"),
            Element::State { index, name } => write!(f, "state {index} ({name})"),
            Element::Transition(i) => write!(f, "transition {i}"),
        }
    }
}

/// One finding from one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that produced this finding.
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Anchor element.
    pub element: Element,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.element, self.message
        )
    }
}

/// All findings for one design.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Name of the linted design.
    pub design: String,
    /// Findings in rule-registry order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report for a named design.
    pub fn new(design: impl Into<String>) -> Self {
        Report {
            design: design.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Add a finding.
    pub fn push(
        &mut self,
        rule: &'static str,
        severity: Severity,
        element: Element,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            element,
            message: message.into(),
        });
    }

    /// Count at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warnings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// True if anything at `Error` severity was found.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Findings produced by a specific rule.
    pub fn by_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Compiler-style text rendering, one finding per line, summary
    /// header first.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "galint: {} — {} error(s), {} warning(s), {} info\n",
            self.design,
            self.error_count(),
            self.warn_count(),
            self.count(Severity::Info)
        );
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON rendering (hand-rolled: the workspace is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"design\":\"{}\",", json_escape(&self.design)));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},",
            self.error_count(),
            self.warn_count(),
            self.count(Severity::Info)
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"element\":\"{}\",\"message\":\"{}\"}}",
                json_escape(d.rule),
                d.severity,
                json_escape(&d.element.to_string()),
                json_escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_text() {
        let mut r = Report::new("demo");
        r.push("comb-loop", Severity::Error, Element::Gate(3), "loop");
        r.push("floating-net", Severity::Warn, Element::Gate(4), "floats");
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(r.has_errors());
        let text = r.to_text();
        assert!(text.contains("error[comb-loop] gate 3: loop"));
        assert!(text.contains("1 error(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report::new("demo\"x");
        r.push(
            "width-mismatch",
            Severity::Error,
            Element::InputBus("a\\b".into()),
            "line1\nline2",
        );
        let j = r.to_json();
        assert!(j.contains("\"design\":\"demo\\\"x\""));
        assert!(j.contains("\\\\b"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.starts_with('{') && j.ends_with('}'));
        // Balanced quotes: an even number of unescaped '"'.
        let unescaped = j.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }
}
