//! The design-under-lint: a netlist plus optional controller spec and
//! implementation (area/timing) figures.
//!
//! The two shipping configurations — the full GA core and the
//! standalone CA RNG — have ready-made constructors that run the
//! elaboration through its fallible entry points, so a broken
//! elaboration is itself reported rather than panicking the linter.

use ga_synth::fsm::FsmSpec;
use ga_synth::gadesign::{ga_controller_spec, try_elaborate_ca_rng, try_elaborate_ga_core};
use ga_synth::netlist::NetId;
use ga_synth::{Netlist, SynthError, Tern};

/// Implementation figures extracted from a `GaCoreReport` (or supplied
/// by hand for fixtures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaStats {
    /// Occupied slices.
    pub slices: u32,
    /// Device slice utilization, percent.
    pub slice_pct: u32,
    /// Achieved clock from static timing, MHz.
    pub fmax_mhz: f64,
}

/// The budget the `area-budget` rule checks against — anchored to the
/// paper's Table VI figures for the xc2vp30 (13% slice utilization,
/// 50 MHz clock), with slack for model variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBudget {
    /// Maximum acceptable slice utilization percent.
    pub max_slice_pct: u32,
    /// Minimum acceptable clock, MHz.
    pub min_fmax_mhz: f64,
    /// Maximum acceptable gate count for the whole netlist.
    pub max_gates: usize,
}

impl AreaBudget {
    /// Table VI band: 13% reported, allow up to 18% (the repro model's
    /// accepted tolerance); the paper's 50 MHz clock is a hard floor;
    /// the gate ceiling bounds the netlist well under what 13% of a
    /// 13,696-slice device could hold.
    pub fn table_vi() -> Self {
        AreaBudget {
            max_slice_pct: 18,
            min_fmax_mhz: 50.0,
            max_gates: 30_000,
        }
    }
}

impl Default for AreaBudget {
    fn default() -> Self {
        AreaBudget::table_vi()
    }
}

/// How the design's registers come up at power-on — the seed of the
/// ternary dataflow analyses ([`crate::dataflow`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RegInit {
    /// No register has a defined power-on value: the part is programmed
    /// through the scan chain before use, so every analysis must hold
    /// for *any* initial state. This is the contract of both shipping
    /// designs (the elaborated reset nets tie to 0, but the simulation
    /// harnesses scan real state in before running).
    #[default]
    AllUnknown,
    /// Registers reset to 0 except the listed scan positions, which are
    /// uninitialized (`X`). Used by fixtures and by designs with a true
    /// hardware reset.
    ResetExcept(Vec<usize>),
}

impl RegInit {
    /// Expand to the per-register lattice the fixpoint consumes.
    pub fn lattice(&self, ff_count: usize) -> Vec<Tern> {
        match self {
            RegInit::AllUnknown => vec![Tern::X; ff_count],
            RegInit::ResetExcept(uninit) => {
                let mut l = vec![Tern::Zero; ff_count];
                for &r in uninit {
                    if r < ff_count {
                        l[r] = Tern::X;
                    }
                }
                l
            }
        }
    }

    /// Scan positions declared uninitialized under a reset regime
    /// (empty for [`RegInit::AllUnknown`], where *every* register is —
    /// by contract, not by accident).
    pub fn declared_uninit(&self) -> &[usize] {
        match self {
            RegInit::AllUnknown => &[],
            RegInit::ResetExcept(uninit) => uninit,
        }
    }
}

/// Shared graph analyses over the netlist, computed **once** at model
/// construction and reused by every rule that needs them (`comb-loop`,
/// `floating-net`, …). These are the same analyses
/// [`Netlist::validate`] runs — computing them per-rule would redo a
/// full fanout build plus Tarjan/Kahn pass each time on a ~10k-gate
/// core.
#[derive(Debug, Clone)]
pub struct NetAnalyses {
    /// Per-net fanout lists over combinational edges.
    pub fanout: Vec<Vec<NetId>>,
    /// Kahn topological order (`None` when the gate graph has a cycle).
    pub topo: Option<Vec<NetId>>,
    /// Nontrivial strongly connected components (combinational loops).
    pub sccs: Vec<Vec<NetId>>,
}

impl NetAnalyses {
    fn compute(nl: &Netlist) -> Self {
        NetAnalyses {
            fanout: nl.fanout(),
            topo: nl.topo_order(),
            sccs: nl.comb_sccs(),
        }
    }
}

/// Everything the rules look at for one design.
#[derive(Debug, Clone)]
pub struct DesignModel {
    /// Design name (used in reports).
    pub name: String,
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Controller spec, when the design has one.
    pub fsm: Option<FsmSpec>,
    /// Implementation figures, when available.
    pub area: Option<AreaStats>,
    /// Budget for the `area-budget` rule.
    pub budget: AreaBudget,
    /// Register power-on contract (drives the ternary dataflow rules).
    pub reg_init: RegInit,
    /// Cached graph analyses (`None` when the netlist has dangling net
    /// references — the graph passes would index out of bounds, and the
    /// `width-mismatch` rule reports those separately). Private so it
    /// cannot drift from the netlist it was computed for.
    analyses: Option<NetAnalyses>,
}

impl DesignModel {
    /// Model from a bare netlist (fixtures, sub-blocks).
    pub fn new(name: impl Into<String>, netlist: Netlist) -> Self {
        let analyses =
            crate::rules::nets_in_range(&netlist).then(|| NetAnalyses::compute(&netlist));
        DesignModel {
            name: name.into(),
            netlist,
            fsm: None,
            area: None,
            budget: AreaBudget::default(),
            reg_init: RegInit::ResetExcept(vec![]),
            analyses,
        }
    }

    /// The cached graph analyses, when the netlist was well-formed
    /// enough to compute them.
    pub fn analyses(&self) -> Option<&NetAnalyses> {
        self.analyses.as_ref()
    }

    /// Attach a controller spec.
    pub fn with_fsm(mut self, fsm: FsmSpec) -> Self {
        self.fsm = Some(fsm);
        self
    }

    /// Attach implementation figures.
    pub fn with_area(mut self, area: AreaStats) -> Self {
        self.area = Some(area);
        self
    }

    /// Override the area budget.
    pub fn with_budget(mut self, budget: AreaBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Declare a reset-to-0 regime with the listed scan positions
    /// uninitialized (the `x-prop` rule tracks whether their `X` can
    /// reach an output).
    pub fn with_uninit_regs(mut self, uninit: Vec<usize>) -> Self {
        self.reg_init = RegInit::ResetExcept(uninit);
        self
    }

    /// Declare the scan-programmed contract: no register has a defined
    /// power-on value.
    pub fn with_scan_programmed_init(mut self) -> Self {
        self.reg_init = RegInit::AllUnknown;
        self
    }

    /// The full GA core: optimized netlist + the 23-state controller
    /// spec + the Table VI report figures.
    pub fn ga_core() -> Result<Self, SynthError> {
        let (netlist, report) = try_elaborate_ga_core()?;
        Ok(DesignModel::new("ga_core", netlist)
            .with_fsm(ga_controller_spec())
            .with_area(AreaStats {
                slices: report.slices,
                slice_pct: report.slice_pct,
                fmax_mhz: report.timing.fmax_mhz,
            })
            .with_scan_programmed_init())
    }

    /// The standalone CA RNG module (netlist only — it has no FSM).
    /// Scan-programmed like the core: its seed is loaded, not reset.
    pub fn ca_rng() -> Result<Self, SynthError> {
        Ok(DesignModel::new("ca_rng", try_elaborate_ca_rng()?).with_scan_programmed_init())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ga_core_model_is_complete() {
        let m = DesignModel::ga_core().expect("elaboration");
        assert!(m.fsm.is_some());
        let area = m.area.expect("area stats");
        assert!(area.slices > 0);
        assert!(area.fmax_mhz > 0.0);
    }

    #[test]
    fn analyses_are_cached_for_well_formed_netlists() {
        let m = DesignModel::ca_rng().expect("elaboration");
        let a = m.analyses().expect("well-formed netlist has analyses");
        assert_eq!(a.fanout.len(), m.netlist.gate_count());
        assert!(a.topo.is_some(), "acyclic netlist has a topo order");
        assert!(a.sccs.is_empty(), "no combinational loops");
    }

    #[test]
    fn analyses_skipped_for_dangling_nets() {
        use ga_synth::netlist::{Gate, GateKind};
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![99], // dangling reference
        });
        let m = DesignModel::new("broken", nl);
        assert!(m.analyses().is_none());
    }

    #[test]
    fn reg_init_lattice_expansion() {
        assert_eq!(RegInit::AllUnknown.lattice(3), vec![Tern::X; 3]);
        let l = RegInit::ResetExcept(vec![1]).lattice(3);
        assert_eq!(l, vec![Tern::Zero, Tern::X, Tern::Zero]);
        let m = DesignModel::ga_core().expect("elaboration");
        assert_eq!(m.reg_init, RegInit::AllUnknown, "scan-programmed contract");
    }

    #[test]
    fn ca_rng_model_has_no_fsm() {
        let m = DesignModel::ca_rng().expect("elaboration");
        assert!(m.fsm.is_none());
        assert!(m.netlist.ff_count() == 16);
    }
}
