//! Structural fault observability: forward taint with
//! controllability-aware cone pruning.

use ga_synth::{CompiledNetlist, CompiledOp, OpKind, Tern};

/// The forward fanout cone of one fault site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeReport {
    /// True when the cone reaches at least one primary-output net.
    pub observable: bool,
    /// Number of tainted nets at the fixpoint (the cone, including the
    /// site's own Q net).
    pub cone_size: usize,
    /// Number of flip-flops whose state the fault can reach.
    pub tainted_regs: usize,
    /// Name of the first output bus the cone reaches, when observable.
    pub first_output: Option<String>,
}

/// Taint transfer through one gate, pruned by the constant lattice.
///
/// A tainted input propagates unless the gate's *other* input is both
/// untainted (it follows the fault-free dynamics, so the reachable-value
/// lattice applies to it in the faulted run too) and lattice-constant at
/// the gate's controlling value — then the output is pinned in both runs
/// and the fault cannot pass:
///
/// * AND/NAND: blocked by an untainted constant-0 side input;
/// * OR/NOR:   blocked by an untainted constant-1 side input;
/// * mux:      the high (low) leg is blocked by an untainted constant-0
///   (constant-1) select; a tainted *select* is blocked when both data
///   legs are untainted and agree on a constant;
/// * BUF/INV/XOR: never blocked (any input flip flips the output).
fn op_taint(op: &CompiledOp, taint: &[bool], consts: &[Tern]) -> bool {
    let ta = taint[op.a as usize];
    let tb = taint[op.b as usize];
    match op.kind {
        OpKind::Buf | OpKind::Inv => ta,
        OpKind::Xor => ta || tb,
        OpKind::And | OpKind::Nand => {
            let a_pins = !ta && consts[op.a as usize] == Tern::Zero;
            let b_pins = !tb && consts[op.b as usize] == Tern::Zero;
            (ta && !b_pins) || (tb && !a_pins)
        }
        OpKind::Or | OpKind::Nor => {
            let a_pins = !ta && consts[op.a as usize] == Tern::One;
            let b_pins = !tb && consts[op.b as usize] == Tern::One;
            (ta && !b_pins) || (tb && !a_pins)
        }
        OpKind::Mux => {
            // a = select, b = high leg, c = low leg.
            let tc = taint[op.c as usize];
            let sel = consts[op.a as usize];
            let hi_blocked = !ta && sel == Tern::Zero;
            let lo_blocked = !ta && sel == Tern::One;
            let legs_pinned = !tb
                && !tc
                && consts[op.b as usize].is_const()
                && consts[op.b as usize] == consts[op.c as usize];
            (tb && !hi_blocked) || (tc && !lo_blocked) || (ta && !legs_pinned)
        }
    }
}

/// Compute the forward fault cone of scan site `site` (a register
/// index): taint fixpoint over combinational fanout plus sequential
/// D→Q edges. `consts` is the reachable-value lattice from
/// [`super::ternary_fixpoint`] — pass an all-`X` vector to disable
/// pruning (pure structural cone).
pub fn fault_cone(cn: &CompiledNetlist, consts: &[Tern], site: usize) -> ConeReport {
    assert!(site < cn.ff_count(), "site {site} out of range");
    assert_eq!(consts.len(), cn.n_nets());
    let mut taint = vec![false; cn.n_nets()];
    taint[cn.regs()[site].q as usize] = true;
    loop {
        // One topological pass closes the combinational fanout for the
        // current register taints.
        for op in cn.ops() {
            if !taint[op.out as usize] && op_taint(op, &taint, consts) {
                taint[op.out as usize] = true;
            }
        }
        // Sequential edges: a tainted D taints the Q next cycle. Each
        // outer round taints at least one new flip-flop or terminates.
        let mut new_reg = false;
        for r in cn.regs() {
            if taint[r.d as usize] && !taint[r.q as usize] {
                taint[r.q as usize] = true;
                new_reg = true;
            }
        }
        if !new_reg {
            break;
        }
    }

    let mut first_output = None;
    'outer: for (name, bus) in cn.outputs() {
        for &n in bus {
            if taint[n as usize] {
                first_output = Some(name.clone());
                break 'outer;
            }
        }
    }
    ConeReport {
        observable: first_output.is_some(),
        cone_size: taint.iter().filter(|&&t| t).count(),
        tainted_regs: cn.regs().iter().filter(|r| taint[r.q as usize]).count(),
        first_output,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ga_synth::netlist::{Gate, GateKind, Netlist, RegCell};

    fn gate(kind: GateKind, inputs: Vec<u32>) -> Gate {
        Gate { kind, inputs }
    }

    /// q0 gated to the output by an AND whose other leg is register q1;
    /// q1 holds its reset value forever (D = Q).
    fn gated() -> Netlist {
        let mut nl = Netlist::default();
        nl.gates.push(gate(GateKind::RegQ, vec![])); // 0 = q0
        nl.gates.push(gate(GateKind::RegQ, vec![])); // 1 = q1 (frozen)
        nl.gates.push(gate(GateKind::Input, vec![])); // 2 = d0 source
        nl.gates.push(gate(GateKind::And2, vec![0, 1])); // 3 = y
        nl.regs.push(RegCell { d: 2, q: 0 });
        nl.regs.push(RegCell { d: 1, q: 1 });
        nl.inputs.push(("in".into(), vec![2]));
        nl.outputs.push(("y".into(), vec![3]));
        nl
    }

    #[test]
    fn constant_zero_gate_leg_prunes_the_cone() {
        let cn = CompiledNetlist::compile(&gated()).unwrap();
        // Reset-0: q1 is provably stuck at 0, so q0's cone is pruned at
        // the AND and never reaches y.
        let fix = super::super::ternary_fixpoint(&cn, &[Tern::X, Tern::Zero]);
        assert_eq!(fix.nets[1], Tern::Zero);
        let cone = fault_cone(&cn, &fix.nets, 0);
        assert!(!cone.observable, "{cone:?}");
        assert_eq!(cone.cone_size, 1, "only the site itself");
    }

    #[test]
    fn unknown_gate_leg_keeps_the_cone_open() {
        let cn = CompiledNetlist::compile(&gated()).unwrap();
        // Scan-programmed init: q1 may be 1, the AND passes the fault.
        let fix = super::super::ternary_fixpoint(&cn, &[Tern::X, Tern::X]);
        let cone = fault_cone(&cn, &fix.nets, 0);
        assert!(cone.observable);
        assert_eq!(cone.first_output.as_deref(), Some("y"));
        assert!(cone.cone_size >= 2);
    }

    #[test]
    fn faulted_gating_register_is_itself_observable() {
        let cn = CompiledNetlist::compile(&gated()).unwrap();
        // A fault *on q1* breaks the very constant that pruned q0's
        // cone — q1 is tainted, so no pruning applies on its own path.
        let fix = super::super::ternary_fixpoint(&cn, &[Tern::X, Tern::Zero]);
        let cone = fault_cone(&cn, &fix.nets, 1);
        assert!(cone.observable, "{cone:?}");
    }

    #[test]
    fn taint_crosses_register_boundaries() {
        // in → [q0] → inv → [q1] → y: two sequential stages.
        let mut nl = Netlist::default();
        nl.gates.push(gate(GateKind::RegQ, vec![])); // 0 = q0
        nl.gates.push(gate(GateKind::RegQ, vec![])); // 1 = q1
        nl.gates.push(gate(GateKind::Input, vec![])); // 2
        nl.gates.push(gate(GateKind::Inv, vec![0])); // 3
        nl.regs.push(RegCell { d: 2, q: 0 });
        nl.regs.push(RegCell { d: 3, q: 1 });
        nl.inputs.push(("in".into(), vec![2]));
        nl.outputs.push(("y".into(), vec![1]));
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let consts = vec![Tern::X; cn.n_nets()];
        let cone = fault_cone(&cn, &consts, 0);
        assert!(cone.observable);
        assert_eq!(cone.tainted_regs, 2);
    }

    #[test]
    fn hold_only_register_is_unobservable() {
        // A register whose Q feeds only its own hold mux — the seed
        // shape: d = mux(load, input, q); q drives nothing else.
        let mut nl = Netlist::default();
        nl.gates.push(gate(GateKind::RegQ, vec![])); // 0 = q
        nl.gates.push(gate(GateKind::Input, vec![])); // 1 = load
        nl.gates.push(gate(GateKind::Input, vec![])); // 2 = value
        nl.gates.push(gate(GateKind::CarryMux, vec![1, 2, 0])); // 3 = d
        nl.gates.push(gate(GateKind::Input, vec![])); // 4 = other
        nl.regs.push(RegCell { d: 3, q: 0 });
        nl.inputs.push(("load".into(), vec![1]));
        nl.inputs.push(("value".into(), vec![2]));
        nl.inputs.push(("other".into(), vec![4]));
        nl.outputs.push(("y".into(), vec![4]));
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let consts = vec![Tern::X; cn.n_nets()];
        let cone = fault_cone(&cn, &consts, 0);
        assert!(!cone.observable, "{cone:?}");
        // Cone: q, the mux output (its own D), nothing more.
        assert_eq!(cone.cone_size, 2);
    }
}
