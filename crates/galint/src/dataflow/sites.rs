//! The 424-site observability report: every fault-injection site of the
//! dynamic campaign (`fault_campaign`) mapped to a static verdict.
//!
//! The campaign injects into two domains:
//!
//! * **scan** — the 408 scan-chain positions of the cycle-accurate
//!   `GaCoreHw` (one per architectural register bit). Each position is
//!   mapped onto the gate-level register with the same architectural
//!   meaning through `GaCoreHw::SCAN_FIELDS` (bit position → field) and
//!   `GA_CORE_REG_LAYOUT` (field → register index). The four hardware
//!   accumulators are 32-bit while the gate-level ones are 24-bit; the
//!   32 unmapped high bits get a conservative *observable* verdict.
//! * **net** — the 16 flip-flops of the standalone CA-RNG netlist,
//!   analyzed directly on that netlist.
//!
//! Both designs are scan-programmed, so the constant lattice is seeded
//! all-`X` (no reset assumption) — every *unobservable* verdict here is
//! purely structural and therefore holds for any programmed state.

use ga_core::GaCoreHw;
use ga_synth::gadesign::{ga_core_reg_field, try_elaborate_ca_rng, try_elaborate_ga_core};
use ga_synth::{CompiledNetlist, SynthError, Tern};

use super::fixpoint::ternary_fixpoint;
use super::observe::{fault_cone, ConeReport};

/// Which injection campaign a site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteDomain {
    /// Scan-chain position on the cycle-accurate core (0..408).
    Scan,
    /// Flip-flop of the CA-RNG netlist (0..16).
    Net,
}

impl SiteDomain {
    /// Stable lower-case name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SiteDomain::Scan => "scan",
            SiteDomain::Net => "net",
        }
    }
}

/// Static verdict for one fault site.
#[derive(Debug, Clone)]
pub struct SiteVerdict {
    /// Injection domain.
    pub domain: SiteDomain,
    /// Site index within the domain (scan position / netlist site id).
    pub index: usize,
    /// Architectural name, e.g. `seed[3]` or `ca_rng[7]`.
    pub field: String,
    /// Gate-level register index the site maps to, when one exists.
    pub reg: Option<usize>,
    /// Can a fault here reach any primary output?
    pub observable: bool,
    /// Tainted-net count of the fault cone (0 for unmapped sites).
    pub cone_size: usize,
    /// Human-readable justification.
    pub reason: String,
}

/// The full static observability report over all 424 campaign sites.
#[derive(Debug, Clone)]
pub struct ObservabilityReport {
    /// Per-site verdicts: the 408 scan positions in chain order, then
    /// the 16 CA-RNG sites.
    pub sites: Vec<SiteVerdict>,
    /// Sequential iterations of the GA-core ternary fixpoint.
    pub ga_core_iterations: usize,
}

impl ObservabilityReport {
    /// Number of sites claimed statically unobservable.
    pub fn unobservable(&self) -> usize {
        self.sites.iter().filter(|s| !s.observable).count()
    }

    /// Verdict for a scan-chain position.
    pub fn scan_site(&self, position: usize) -> Option<&SiteVerdict> {
        self.sites
            .iter()
            .find(|s| s.domain == SiteDomain::Scan && s.index == position)
    }

    /// Verdict for a CA-RNG netlist site.
    pub fn net_site(&self, site: usize) -> Option<&SiteVerdict> {
        self.sites
            .iter()
            .find(|s| s.domain == SiteDomain::Net && s.index == site)
    }

    /// Hand-rolled JSON rendering (the workspace is dependency-free by
    /// design): a summary header plus one object per site.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"sites\":{},\"observable\":{},\"unobservable\":{},",
            self.sites.len(),
            self.sites.len() - self.unobservable(),
            self.unobservable()
        ));
        out.push_str(&format!(
            "\"ga_core_iterations\":{},\"entries\":[",
            self.ga_core_iterations
        ));
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"domain\":\"{}\",\"index\":{},\"field\":\"{}\",\"observable\":{},\
                 \"cone_size\":{},\"reason\":\"{}\"}}",
                s.domain.as_str(),
                s.index,
                s.field,
                s.observable,
                s.cone_size,
                crate::diag::json_escape(&s.reason)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn verdict_from_cone(cone: &ConeReport, field: &str, reg: usize) -> (bool, usize, String) {
    if let Some(output) = &cone.first_output {
        (
            true,
            cone.cone_size,
            format!(
                "{field} (register {reg}) fans out to output '{output}' \
                 through a {}-net cone",
                cone.cone_size
            ),
        )
    } else {
        (
            false,
            cone.cone_size,
            format!(
                "{field} (register {reg}) has no structural path to any \
                 primary output: its {}-net cone is self-contained",
                cone.cone_size
            ),
        )
    }
}

/// Build the full 424-site report: elaborate both shipping designs,
/// run the ternary fixpoint (all-`X` register init — both are
/// scan-programmed), and compute one fault cone per mapped register.
pub fn observability_report() -> Result<ObservabilityReport, SynthError> {
    let (ga_nl, _) = try_elaborate_ga_core()?;
    let ga = CompiledNetlist::compile(&ga_nl)?;
    let ga_fix = ternary_fixpoint(&ga, &vec![Tern::X; ga.ff_count()]);

    // Memoize cones per gate-level register (multi-bit fields share
    // nothing, but repeated report builds reuse the same indices).
    let mut cones: Vec<Option<ConeReport>> = vec![None; ga.ff_count()];
    let mut cone_for = |reg: usize| -> ConeReport {
        if cones[reg].is_none() {
            cones[reg] = Some(fault_cone(&ga, &ga_fix.nets, reg));
        }
        cones[reg].clone().expect("just computed")
    };

    let mut sites = Vec::with_capacity(GaCoreHw::SCAN_LENGTH + 16);
    let mut position = 0usize;
    for &(field, width) in GaCoreHw::SCAN_FIELDS {
        let mapped = ga_core_reg_field(field);
        for bit in 0..width {
            let field_bit = format!("{field}[{bit}]");
            let verdict = match mapped {
                Some((start, gate_width)) if bit < gate_width => {
                    let reg = start + bit;
                    let cone = cone_for(reg);
                    let (observable, cone_size, reason) = verdict_from_cone(&cone, &field_bit, reg);
                    SiteVerdict {
                        domain: SiteDomain::Scan,
                        index: position,
                        field: field_bit,
                        reg: Some(reg),
                        observable,
                        cone_size,
                        reason,
                    }
                }
                _ => SiteVerdict {
                    domain: SiteDomain::Scan,
                    index: position,
                    field: field_bit.clone(),
                    reg: None,
                    observable: true,
                    cone_size: 0,
                    reason: format!(
                        "{field_bit} has no gate-level counterpart (the \
                         hardware accumulator is 32-bit, the gate-level one \
                         24-bit); conservatively assumed observable"
                    ),
                },
            };
            sites.push(verdict);
            position += 1;
        }
    }
    debug_assert_eq!(position, GaCoreHw::SCAN_LENGTH);

    let rng_nl = try_elaborate_ca_rng()?;
    let rng = CompiledNetlist::compile(&rng_nl)?;
    let rng_fix = ternary_fixpoint(&rng, &vec![Tern::X; rng.ff_count()]);
    for reg in 0..rng.ff_count() {
        let field = format!("ca_rng[{reg}]");
        let cone = fault_cone(&rng, &rng_fix.nets, reg);
        let (observable, cone_size, reason) = verdict_from_cone(&cone, &field, reg);
        sites.push(SiteVerdict {
            domain: SiteDomain::Net,
            index: reg,
            field,
            reg: Some(reg),
            observable,
            cone_size,
            reason,
        });
    }

    Ok(ObservabilityReport {
        sites,
        ga_core_iterations: ga_fix.iterations,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn report_covers_all_424_sites() {
        let report = observability_report().unwrap();
        assert_eq!(report.sites.len(), 424);
        assert_eq!(
            report
                .sites
                .iter()
                .filter(|s| s.domain == SiteDomain::Scan)
                .count(),
            GaCoreHw::SCAN_LENGTH
        );
        assert_eq!(report.net_site(15).unwrap().field, "ca_rng[15]");
    }

    #[test]
    fn seed_is_the_unobservable_population() {
        // The gate-level seed register's Q feeds only its own hold mux
        // (the RNG seeds from the value bus directly), so exactly the
        // 16 seed bits are statically masked; everything else reaches
        // an output.
        let report = observability_report().unwrap();
        let masked: Vec<&SiteVerdict> = report.sites.iter().filter(|s| !s.observable).collect();
        assert_eq!(masked.len(), 16, "{:#?}", masked);
        for (bit, s) in masked.iter().enumerate() {
            assert_eq!(s.domain, SiteDomain::Scan);
            assert_eq!(s.field, format!("seed[{bit}]"));
            assert_eq!(s.index, bit, "seed heads the scan chain");
        }
    }

    #[test]
    fn every_ca_rng_site_is_observable() {
        let report = observability_report().unwrap();
        for site in 0..16 {
            let v = report.net_site(site).unwrap();
            assert!(v.observable, "{v:?}");
            assert!(v.cone_size >= 1);
        }
    }

    #[test]
    fn unmapped_accumulator_bits_are_conservative() {
        let report = observability_report().unwrap();
        let unmapped: Vec<&SiteVerdict> = report.sites.iter().filter(|s| s.reg.is_none()).collect();
        assert_eq!(unmapped.len(), 32, "4 accumulators × 8 high bits");
        assert!(unmapped.iter().all(|s| s.observable && s.cone_size == 0));
        assert!(unmapped.iter().all(|s| s.field.starts_with("fit_sum[")
            || s.field.starts_with("new_sum[")
            || s.field.starts_with("threshold[")
            || s.field.starts_with("cum[")));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = observability_report().unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"sites\":424"));
        assert!(json.contains("\"unobservable\":16"));
        assert!(json.contains("\"field\":\"seed[0]\""));
    }
}
