//! The ternary least-fixpoint over the sequential loop.

use ga_synth::{CompiledNetlist, Tern};

/// Result of the sequential ternary fixpoint: an over-approximation of
/// every value each net can take in any reachable state (under free
/// primary inputs).
#[derive(Debug, Clone)]
pub struct TernFixpoint {
    /// Per-net reachable value, indexed by net id. `Zero`/`One` means
    /// the net is provably stuck at that value.
    pub nets: Vec<Tern>,
    /// Per-register reachable Q value, indexed by scan position.
    pub reg_q: Vec<Tern>,
    /// Sequential iterations until convergence.
    pub iterations: usize,
}

/// Run the abstract sequential loop to its least fixpoint.
///
/// `reg_init` is the register-initialization lattice (length =
/// `ff_count`): a reset value per register, or `X` for registers with
/// no defined power-on value (scan-programmed state). Primary inputs
/// are free (`X`) on every cycle. Each iteration evaluates one
/// abstract clock cycle and joins the next-state values into the
/// register lattice; since every register can rise at most once
/// (constant → `X`) and a non-final iteration raises at least one, the
/// loop converges within `ff_count + 1` iterations.
pub fn ternary_fixpoint(cn: &CompiledNetlist, reg_init: &[Tern]) -> TernFixpoint {
    assert_eq!(
        reg_init.len(),
        cn.ff_count(),
        "reg_init must cover every flip-flop"
    );
    let mut reg_q: Vec<Tern> = reg_init.to_vec();
    let eval = |reg_q: &[Tern]| -> Vec<Tern> {
        let mut state = cn.tern_state();
        for (_, bus) in cn.inputs() {
            for &n in bus {
                state[n as usize] = Tern::X;
            }
        }
        for (r, &v) in cn.regs().iter().zip(reg_q) {
            state[r.q as usize] = v;
        }
        cn.eval_comb_tern(&mut state);
        state
    };

    let cap = cn.ff_count() + 2;
    let mut iterations = 0;
    loop {
        iterations += 1;
        let state = eval(&reg_q);
        let mut changed = false;
        for (i, r) in cn.regs().iter().enumerate() {
            let next = reg_q[i].join(state[r.d as usize]);
            if next != reg_q[i] {
                reg_q[i] = next;
                changed = true;
            }
        }
        if !changed || iterations >= cap {
            break;
        }
    }
    // One more pass so `nets` is consistent with the final register
    // lattice (also covers the defensive-cap exit).
    let nets = eval(&reg_q);
    TernFixpoint {
        nets,
        reg_q,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ga_synth::netlist::{Gate, GateKind, Netlist, RegCell};

    /// q0 toggles; q1 is frozen at reset (D = own Q); y = q1 & q0.
    fn netlist() -> Netlist {
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        }); // 0 = q0
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        }); // 1 = q1
        nl.gates.push(Gate {
            kind: GateKind::Inv,
            inputs: vec![0],
        }); // 2 = d0
        nl.gates.push(Gate {
            kind: GateKind::And2,
            inputs: vec![1, 0],
        }); // 3 = y
        nl.regs.push(RegCell { d: 2, q: 0 });
        nl.regs.push(RegCell { d: 1, q: 1 });
        nl.outputs.push(("y".into(), vec![3]));
        nl
    }

    #[test]
    fn frozen_register_keeps_its_reset_constant() {
        let cn = CompiledNetlist::compile(&netlist()).unwrap();
        let fix = ternary_fixpoint(&cn, &[Tern::Zero, Tern::Zero]);
        assert_eq!(fix.reg_q[0], Tern::X, "the toggler reaches both values");
        assert_eq!(fix.reg_q[1], Tern::Zero, "the frozen register stays 0");
        assert_eq!(fix.nets[3], Tern::Zero, "y = 0 & X is stuck at 0");
    }

    #[test]
    fn unknown_init_washes_out_the_constant() {
        let cn = CompiledNetlist::compile(&netlist()).unwrap();
        let fix = ternary_fixpoint(&cn, &[Tern::X, Tern::X]);
        assert_eq!(fix.reg_q[1], Tern::X);
        assert_eq!(fix.nets[3], Tern::X);
        // All-X init is already a fixpoint: one iteration.
        assert_eq!(fix.iterations, 1);
    }

    #[test]
    fn converges_within_the_stated_bound() {
        let cn = CompiledNetlist::compile(&netlist()).unwrap();
        let fix = ternary_fixpoint(&cn, &[Tern::Zero, Tern::Zero]);
        assert!(fix.iterations <= cn.ff_count() + 1, "{}", fix.iterations);
    }
}
