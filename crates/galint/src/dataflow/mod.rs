//! Static dataflow analyses over the compiled netlist.
//!
//! Three passes build on each other:
//!
//! 1. [`ternary_fixpoint`] — a 0/1/X abstract interpretation of the
//!    sequential loop: starting from a register-initialization lattice
//!    (reset values, or all-`X` for scan-programmed parts) with primary
//!    inputs free (`X`), it joins the register state across clock edges
//!    to a least fixpoint. The result over-approximates every reachable
//!    per-net value: a net reported `Zero`/`One` is provably stuck.
//! 2. [`fault_cone`] — a structural observability pass: forward taint
//!    from one flip-flop through combinational fanout and sequential
//!    D→Q edges to the primary outputs, with controllability-aware
//!    pruning from the constant lattice (taint through an AND is
//!    blocked by an untainted constant-0 side input, through an OR by a
//!    constant-1, through a mux leg by a constant select pointing the
//!    other way). A site whose cone reaches no output provably cannot
//!    change any observable behavior — "statically masked".
//! 3. [`observability_report`] — the joined verdict for every one of
//!    the fault-campaign's 424 sites: the 408 cycle-accurate scan-chain
//!    positions (mapped onto gate-level registers through
//!    `GaCoreHw::SCAN_FIELDS` × `GA_CORE_REG_LAYOUT`) plus the 16
//!    CA-RNG netlist flip-flops. `fault_campaign --xcheck` joins this
//!    with the dynamic campaign and fails if any statically-masked site
//!    was dynamically detected or corrupted.
//!
//! Soundness: the ternary gate ops cover their Boolean counterparts
//! (see `ga_synth::tern`), and the taint pruning only fires when the
//! blocking side input is both untainted (so it follows the fault-free
//! dynamics) and lattice-constant (so its value is known in every
//! reachable state). Claiming *observable* is always safe; claiming
//! *unobservable* is what the cross-check and the soundness proptest
//! guard.

mod fixpoint;
mod observe;
mod sites;

pub use fixpoint::{ternary_fixpoint, TernFixpoint};
pub use observe::{fault_cone, ConeReport};
pub use sites::{observability_report, ObservabilityReport, SiteDomain, SiteVerdict};
