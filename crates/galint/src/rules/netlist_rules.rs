//! Rules over the gate-level netlist: structure, drivers, loops,
//! floating logic, scan chain, and register sanity.

use std::collections::{HashMap, HashSet};

use ga_synth::netlist::NetId;
use ga_synth::GateKind;

use super::{nets_in_range, Rule};
use crate::diag::{Element, Report, Severity};
use crate::model::DesignModel;

/// Pin-level structure: every gate has the pin count its kind demands,
/// and every net reference (gate inputs, register pins, I/O buses)
/// resolves to an existing net. The gate-level analog of a bus
/// width-mismatch check — a missing or extra pin is exactly how a
/// mis-sized bus shows up after elaboration flattens it.
pub struct WidthMismatch;

impl Rule for WidthMismatch {
    fn name(&self) -> &'static str {
        "width-mismatch"
    }
    fn description(&self) -> &'static str {
        "gate pin counts match their kind; all net references resolve"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let nl = &model.netlist;
        let n = nl.gates.len();
        for (i, g) in nl.gates.iter().enumerate() {
            if g.inputs.len() != g.kind.arity() {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Gate(i),
                    format!(
                        "{:?} has {} input pin(s), its kind requires {}",
                        g.kind,
                        g.inputs.len(),
                        g.kind.arity()
                    ),
                );
            }
            for &inp in &g.inputs {
                if inp as usize >= n {
                    out.push(
                        self.name(),
                        Severity::Error,
                        Element::Gate(i),
                        format!("references nonexistent net {inp} (netlist has {n} nets)"),
                    );
                }
            }
        }
        for (ri, r) in nl.regs.iter().enumerate() {
            if r.d as usize >= n || r.q as usize >= n {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Register(ri),
                    format!("D/Q pins ({}, {}) reference nonexistent nets", r.d, r.q),
                );
            }
        }
        let buses = nl
            .inputs
            .iter()
            .map(|(name, bus)| (Element::InputBus(name.clone()), bus))
            .chain(
                nl.outputs
                    .iter()
                    .map(|(name, bus)| (Element::OutputBus(name.clone()), bus)),
            );
        for (element, bus) in buses {
            for &b in bus {
                if b as usize >= n {
                    out.push(
                        self.name(),
                        Severity::Error,
                        element.clone(),
                        format!("bus bit references nonexistent net {b}"),
                    );
                }
            }
        }
    }
}

/// Multiple-driver detection. In this IR each gate defines exactly one
/// net, so a contention fault appears as a register claiming a net some
/// other element already drives: two registers sharing a Q net, or a Q
/// pin pointing at a combinational gate (the gate and the flip-flop
/// would both drive it in silicon).
pub struct MultiDriver;

impl Rule for MultiDriver {
    fn name(&self) -> &'static str {
        "multi-driver"
    }
    fn description(&self) -> &'static str {
        "no net is driven by more than one sequential or combinational element"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let nl = &model.netlist;
        if !nets_in_range(nl) {
            return; // width-mismatch already reported the dangling refs
        }
        let mut owner: HashMap<NetId, usize> = HashMap::new();
        for (ri, r) in nl.regs.iter().enumerate() {
            if let Some(&prev) = owner.get(&r.q) {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Register(ri),
                    format!("Q net {} is already driven by register {prev}", r.q),
                );
            } else {
                owner.insert(r.q, ri);
            }
            let kind = nl.gates[r.q as usize].kind;
            if kind != GateKind::RegQ {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Register(ri),
                    format!(
                        "Q net {} is defined by a {kind:?} gate — the register and the gate \
                         would both drive it",
                        r.q
                    ),
                );
            }
        }
    }
}

/// Scan-chain completeness: the paper's testability requirement ("all
/// registers used in the GA are connected on a scan chain"). Every
/// `RegQ` gate must be owned by exactly one chain position, and every
/// chain position must point at a real `RegQ`.
pub struct ScanChain;

impl Rule for ScanChain {
    fn name(&self) -> &'static str {
        "scan-chain"
    }
    fn description(&self) -> &'static str {
        "every flip-flop sits on the scan chain exactly once"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let nl = &model.netlist;
        if !nets_in_range(nl) {
            return;
        }
        let on_chain: HashSet<NetId> = nl.regs.iter().map(|r| r.q).collect();
        for (i, g) in nl.gates.iter().enumerate() {
            if g.kind == GateKind::RegQ && !on_chain.contains(&(i as NetId)) {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Gate(i),
                    "flip-flop output (RegQ) is not on the scan chain — untestable state bit",
                );
            }
        }
        let ff_gates = nl.count_kind(GateKind::RegQ);
        if nl.regs.len() > ff_gates {
            out.push(
                self.name(),
                Severity::Error,
                Element::Design,
                format!(
                    "scan chain has {} positions but the netlist only has {} flip-flops",
                    nl.regs.len(),
                    ff_gates
                ),
            );
        }
    }
}

/// Fault-injection reachability: the site list the fault-injection
/// engine exposes ([`ga_synth::FaultInjector::sites`] — one Q net per
/// scan position) must be a bijection onto the design's sequential
/// elements. A flip-flop outside the list is state a campaign silently
/// cannot reach; an aliased or non-register site corrupts the wrong
/// thing. The structural checks run on any netlist; when the design
/// compiles, the list is additionally fetched through the injector's
/// own API so a drift between `ga-synth`'s mapping and the scan chain
/// shows up here rather than in a campaign's numbers.
pub struct ScanSiteCoverage;

impl Rule for ScanSiteCoverage {
    fn name(&self) -> &'static str {
        "scan-site-coverage"
    }
    fn description(&self) -> &'static str {
        "the fault injector's site list covers every flip-flop exactly once"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let nl = &model.netlist;
        if !nets_in_range(nl) {
            return; // width-mismatch already reported the dangling refs
        }
        // The injector defines site s as scan position s's Q net.
        let sites: Vec<NetId> = nl.regs.iter().map(|r| r.q).collect();
        let mut owner: HashMap<NetId, usize> = HashMap::new();
        for (pos, &q) in sites.iter().enumerate() {
            if nl.gates[q as usize].kind != GateKind::RegQ {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Register(pos),
                    format!("fault site {pos} targets net {q}, which is not a flip-flop output"),
                );
            }
            if let Some(&first) = owner.get(&q) {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Register(pos),
                    format!("fault site {pos} aliases site {first}: both corrupt net {q}"),
                );
            } else {
                owner.insert(q, pos);
            }
        }
        for (i, g) in nl.gates.iter().enumerate() {
            if g.kind == GateKind::RegQ && !owner.contains_key(&(i as NetId)) {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Gate(i),
                    "flip-flop is not an injectable fault site — state unreachable by a \
                     scan-chain campaign",
                );
            }
        }
        // Cross-check against the injector's actual API on a compiled
        // design (compile failures are other rules' findings).
        if let Ok(cn) = ga_synth::bitsim::CompiledNetlist::compile(nl) {
            if ga_synth::FaultInjector::sites(&cn.sim()) != sites {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Design,
                    "FaultInjector::sites diverges from the netlist's scan-chain order",
                );
            }
        }
    }
}

/// Combinational-loop detection via strongly connected components over
/// the gate graph (register boundaries cut the edges, so a loop through
/// a flip-flop is fine; a loop purely through gates is not).
pub struct CombLoop;

impl Rule for CombLoop {
    fn name(&self) -> &'static str {
        "comb-loop"
    }
    fn description(&self) -> &'static str {
        "the combinational gate graph is acyclic"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        // The SCCs come from the model's cached analyses (shared with
        // `Netlist::validate`); absent analyses mean dangling net
        // references, which width-mismatch reports.
        let Some(analyses) = model.analyses() else {
            return;
        };
        for scc in &analyses.sccs {
            let shown: Vec<String> = scc.iter().take(8).map(|g| g.to_string()).collect();
            let suffix = if scc.len() > 8 { ", …" } else { "" };
            out.push(
                self.name(),
                Severity::Error,
                Element::Gate(scc[0] as usize),
                format!(
                    "combinational loop through {} gate(s): [{}{suffix}]",
                    scc.len(),
                    shown.join(", ")
                ),
            );
        }
    }
}

/// Floating-net detection: logic whose output drives nothing (warning —
/// it synthesizes to dead area), flip-flops no register cell owns
/// (error — an undriven sequential element), dangling constants and
/// unconnected input bits (advisory).
pub struct FloatingNet;

impl Rule for FloatingNet {
    fn name(&self) -> &'static str {
        "floating-net"
    }
    fn description(&self) -> &'static str {
        "every net drives something; no orphan flip-flops"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let nl = &model.netlist;
        let Some(analyses) = model.analyses() else {
            return;
        };
        // Gate-input consumption comes from the cached fanout lists;
        // register D pins and primary outputs are the two edge kinds
        // fanout does not cover.
        let mut used: HashSet<NetId> = nl.regs.iter().map(|r| r.d).collect();
        for (_, bus) in &nl.outputs {
            used.extend(bus.iter().copied());
        }
        let owned: HashSet<NetId> = nl.regs.iter().map(|r| r.q).collect();

        let mut dead_consts = 0usize;
        for (i, g) in nl.gates.iter().enumerate() {
            let floats = analyses.fanout[i].is_empty() && !used.contains(&(i as NetId));
            match g.kind {
                GateKind::RegQ if !owned.contains(&(i as NetId)) => {
                    out.push(
                        self.name(),
                        Severity::Error,
                        Element::Gate(i),
                        "orphan RegQ: flip-flop output with no register cell driving it",
                    );
                }
                GateKind::Const0 | GateKind::Const1 if floats => dead_consts += 1,
                GateKind::Input => {} // aggregated per bus below
                k if floats && k.arity() > 0 => {
                    out.push(
                        self.name(),
                        Severity::Warn,
                        Element::Gate(i),
                        format!("{k:?} output floats: drives no gate, register, or output"),
                    );
                }
                _ => {}
            }
        }
        if dead_consts > 0 {
            out.push(
                self.name(),
                Severity::Info,
                Element::Design,
                format!("{dead_consts} constant gate(s) drive nothing (harmless dead area)"),
            );
        }
        for (name, bus) in &nl.inputs {
            let unconnected = bus.iter().filter(|b| !used.contains(b)).count();
            if unconnected > 0 {
                out.push(
                    self.name(),
                    Severity::Info,
                    Element::InputBus(name.clone()),
                    format!("{unconnected} of {} bit(s) unconnected", bus.len()),
                );
            }
        }
    }
}

/// Register-enable sanity: a flip-flop whose D is tied to its own Q can
/// never change after reset, and one fed by a constant is a very
/// expensive wire — both almost always mean a missing or mis-wired
/// enable mux.
pub struct RegEnableSanity;

impl Rule for RegEnableSanity {
    fn name(&self) -> &'static str {
        "reg-enable"
    }
    fn description(&self) -> &'static str {
        "no register is frozen (D = own Q) or constant (D = 0/1)"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let nl = &model.netlist;
        if !nets_in_range(nl) {
            return;
        }
        for (ri, r) in nl.regs.iter().enumerate() {
            if r.d == r.q {
                out.push(
                    self.name(),
                    Severity::Warn,
                    Element::Register(ri),
                    "D is tied to its own Q — the register can never change after reset",
                );
                continue;
            }
            let kind = nl.gates[r.d as usize].kind;
            if matches!(kind, GateKind::Const0 | GateKind::Const1) {
                out.push(
                    self.name(),
                    Severity::Warn,
                    Element::Register(ri),
                    format!("D is a {kind:?} — the register holds a constant"),
                );
            }
        }
    }
}
