//! The rule registry.
//!
//! A [`Rule`] inspects a [`DesignModel`] and appends findings to a
//! [`Report`]. Rules are independent and order-insensitive; the
//! registry order only fixes the report layout. Rules must never panic
//! on malformed input — malformed *is* the interesting case — so each
//! rule guards its own preconditions (e.g. graph analyses only run when
//! every net reference is in range, which the `width-mismatch` rule
//! reports separately).

mod area_rules;
mod dataflow_rules;
mod fsm_rules;
mod netlist_rules;

pub use area_rules::AreaBudgetRule;
pub use dataflow_rules::{ConstNet, UnobservableFaultSite, XProp};
pub use fsm_rules::{FsmDeadState, FsmUnsatGuard, HandshakeLiveness};
pub use netlist_rules::{
    CombLoop, FloatingNet, MultiDriver, RegEnableSanity, ScanChain, ScanSiteCoverage, WidthMismatch,
};

use crate::diag::Report;
use crate::model::DesignModel;
use ga_synth::Netlist;

/// One static design rule.
pub trait Rule {
    /// Stable rule identifier (kebab-case; used in diagnostics and CI).
    fn name(&self) -> &'static str;
    /// One-line description of what the rule checks.
    fn description(&self) -> &'static str;
    /// Inspect the model, appending findings to `out`.
    fn check(&self, model: &DesignModel, out: &mut Report);
}

/// All rules, in report order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(WidthMismatch),
        Box::new(MultiDriver),
        Box::new(ScanChain),
        Box::new(ScanSiteCoverage),
        Box::new(CombLoop),
        Box::new(FloatingNet),
        Box::new(RegEnableSanity),
        Box::new(FsmDeadState),
        Box::new(FsmUnsatGuard),
        Box::new(HandshakeLiveness),
        Box::new(AreaBudgetRule),
        Box::new(ConstNet),
        Box::new(XProp),
        Box::new(UnobservableFaultSite),
    ]
}

/// Run every registered rule over a model.
pub fn run_all(model: &DesignModel) -> Report {
    let mut report = Report::new(model.name.clone());
    for rule in registry() {
        rule.check(model, &mut report);
    }
    report
}

/// True when every gate input and register pin references an existing
/// net — the precondition for the graph analyses. The `width-mismatch`
/// rule reports violations; other rules use this to bail out safely.
pub(crate) fn nets_in_range(nl: &Netlist) -> bool {
    let n = nl.gates.len();
    nl.gates
        .iter()
        .all(|g| g.inputs.iter().all(|&i| (i as usize) < n))
        && nl
            .regs
            .iter()
            .all(|r| (r.d as usize) < n && (r.q as usize) < n)
}
