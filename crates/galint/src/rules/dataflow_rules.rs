//! Rules built on the ternary dataflow analyses ([`crate::dataflow`]):
//! constant (dead) logic, X reaching the output boundary, and scan
//! sites whose faults provably cannot be observed.

use ga_synth::{CompiledNetlist, Tern};

use super::{nets_in_range, Rule};
use crate::dataflow::{fault_cone, ternary_fixpoint, TernFixpoint};
use crate::diag::{Element, Report, Severity};
use crate::model::{DesignModel, RegInit};

/// Compile the model's netlist and run the sequential ternary fixpoint
/// under the model's register-init contract. `None` when the netlist is
/// malformed — the `width-mismatch` rule reports that separately, and
/// dataflow rules must stay silent rather than panic.
fn compiled_fixpoint(model: &DesignModel) -> Option<(CompiledNetlist, TernFixpoint)> {
    if !nets_in_range(&model.netlist) {
        return None;
    }
    let cn = CompiledNetlist::compile(&model.netlist).ok()?;
    let init = model.reg_init.lattice(cn.ff_count());
    let fix = ternary_fixpoint(&cn, &init);
    Some((cn, fix))
}

/// Combinational logic whose output is provably stuck at 0 or 1 in
/// every reachable state (under the model's power-on contract, with
/// free primary inputs). Stuck logic is dead area: it either survived
/// elaboration unoptimized or guards a path that can never change.
pub struct ConstNet;

impl Rule for ConstNet {
    fn name(&self) -> &'static str {
        "const-net"
    }
    fn description(&self) -> &'static str {
        "no combinational output is stuck at a constant in every reachable state"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let Some((cn, fix)) = compiled_fixpoint(model) else {
            return;
        };
        for op in cn.ops() {
            if let Some(v) = fix.nets[op.out as usize].as_bool() {
                out.push(
                    self.name(),
                    Severity::Warn,
                    Element::Gate(op.out as usize),
                    format!(
                        "{:?} output is stuck at {} in every reachable state (dead logic)",
                        op.kind, v as u8
                    ),
                );
            }
        }
    }
}

/// Registers declared uninitialized under a reset regime whose unknown
/// (`X`) power-on value can still be observed at a primary output — the
/// classic X-propagation hazard: readout depends on a value nobody set.
/// Silent for scan-programmed models ([`RegInit::AllUnknown`]), where
/// *every* register is uninitialized by contract and the programming
/// sequence is what defines the state.
pub struct XProp;

impl Rule for XProp {
    fn name(&self) -> &'static str {
        "x-prop"
    }
    fn description(&self) -> &'static str {
        "no declared-uninitialized register leaks X to a primary output"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let RegInit::ResetExcept(uninit) = &model.reg_init else {
            return;
        };
        if uninit.is_empty() {
            return;
        }
        let Some((cn, fix)) = compiled_fixpoint(model) else {
            return;
        };
        for &reg in uninit {
            if reg >= cn.ff_count() || fix.reg_q[reg] != Tern::X {
                continue;
            }
            let cone = fault_cone(&cn, &fix.nets, reg);
            if let Some(output) = cone.first_output {
                out.push(
                    self.name(),
                    Severity::Warn,
                    Element::Register(reg),
                    format!(
                        "uninitialized register's X reaches output '{output}' \
                         ({} nets downstream see an undefined power-on value)",
                        cone.cone_size
                    ),
                );
            }
        }
    }
}

/// Scan sites (flip-flops) with no structural path to any primary
/// output: a fault injected there provably cannot change observable
/// behavior — "statically masked". Useful state should be readable;
/// state that is write-only is either wasted area or (as with the GA
/// core's seed shadow register) an intentional hold-only design that
/// the fault campaign's cross-check relies on knowing about.
pub struct UnobservableFaultSite;

impl Rule for UnobservableFaultSite {
    fn name(&self) -> &'static str {
        "unobservable-fault-site"
    }
    fn description(&self) -> &'static str {
        "every scan site has a structural path to a primary output"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let Some((cn, fix)) = compiled_fixpoint(model) else {
            return;
        };
        for site in 0..cn.ff_count() {
            let cone = fault_cone(&cn, &fix.nets, site);
            if !cone.observable {
                out.push(
                    self.name(),
                    Severity::Warn,
                    Element::Register(site),
                    format!(
                        "no structural path to any primary output: faults \
                         here are statically masked ({}-net cone, {} \
                         register(s))",
                        cone.cone_size, cone.tainted_regs
                    ),
                );
            }
        }
    }
}
