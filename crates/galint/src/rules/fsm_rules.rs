//! Rules over the controller specification: reachability, guard
//! satisfiability/shadowing, and handshake liveness. All three no-op on
//! designs without an FSM (e.g. the standalone CA RNG).

use std::collections::HashSet;

use ga_synth::fsm::{FsmSpec, Guard};

use super::Rule;
use crate::diag::{Element, Report, Severity};
use crate::model::DesignModel;

fn state_element(spec: &FsmSpec, idx: usize) -> Element {
    Element::State {
        index: idx,
        name: spec.state_name(idx),
    }
}

/// Guard literal set with contradictions detectable: returns `None` if
/// the guard requires some condition to be both true and false.
fn literal_set(g: &Guard) -> Option<HashSet<(usize, bool)>> {
    let mut set = HashSet::new();
    for &(idx, val) in &g.0 {
        if set.contains(&(idx, !val)) {
            return None;
        }
        set.insert((idx, val));
    }
    Some(set)
}

/// Unreachable and trap states. Reachability is a BFS from state 0 (the
/// reset state, by the one-hot synthesis convention); a state with no
/// outgoing transition can never be left — with the hold-if-no-match
/// semantics that is a hang, not a final state.
pub struct FsmDeadState;

impl Rule for FsmDeadState {
    fn name(&self) -> &'static str {
        "fsm-dead-state"
    }
    fn description(&self) -> &'static str {
        "every state is reachable from reset and has a way out"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let Some(spec) = &model.fsm else { return };
        let n = spec.n_states;
        let mut bad_index = false;
        for (ti, t) in spec.transitions.iter().enumerate() {
            if t.from >= n || t.to >= n {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Transition(ti),
                    format!("references state {} outside 0..{n}", t.from.max(t.to)),
                );
                bad_index = true;
            }
        }
        if bad_index || n == 0 {
            return;
        }
        let mut reachable = vec![false; n];
        reachable[0] = true;
        let mut work = vec![0usize];
        while let Some(s) = work.pop() {
            for t in spec.transitions.iter().filter(|t| t.from == s) {
                if !reachable[t.to] {
                    reachable[t.to] = true;
                    work.push(t.to);
                }
            }
        }
        for (s, &r) in reachable.iter().enumerate() {
            if !r {
                out.push(
                    self.name(),
                    Severity::Error,
                    state_element(spec, s),
                    "unreachable from the reset state — dead controller logic",
                );
            }
            if !spec.transitions.iter().any(|t| t.from == s) {
                out.push(
                    self.name(),
                    Severity::Error,
                    state_element(spec, s),
                    "trap state: no outgoing transitions (holds forever once entered)",
                );
            }
        }
    }
}

/// Guard quality: condition indices in range, no self-contradictory
/// guards (unsatisfiable → the transition can never fire), and no
/// transition fully shadowed by an earlier one from the same state
/// (priority semantics make it unreachable).
pub struct FsmUnsatGuard;

impl Rule for FsmUnsatGuard {
    fn name(&self) -> &'static str {
        "fsm-unsat-guard"
    }
    fn description(&self) -> &'static str {
        "every transition guard is satisfiable and not priority-shadowed"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let Some(spec) = &model.fsm else { return };
        let literals: Vec<Option<HashSet<(usize, bool)>>> = spec
            .transitions
            .iter()
            .map(|t| literal_set(&t.guard))
            .collect();
        for (ti, t) in spec.transitions.iter().enumerate() {
            for &(idx, _) in &t.guard.0 {
                if idx >= spec.n_conds {
                    out.push(
                        self.name(),
                        Severity::Error,
                        Element::Transition(ti),
                        format!(
                            "guard tests condition {idx}, but the spec only has {} condition(s)",
                            spec.n_conds
                        ),
                    );
                }
            }
            let Some(lits) = &literals[ti] else {
                out.push(
                    self.name(),
                    Severity::Error,
                    Element::Transition(ti),
                    "guard is unsatisfiable (requires a condition both true and false)",
                );
                continue;
            };
            // Shadowing: an earlier same-source transition whose literal
            // set is a subset of ours fires whenever we would.
            for (tj, e) in spec.transitions.iter().enumerate().take(ti) {
                if e.from != t.from {
                    continue;
                }
                let Some(earlier) = &literals[tj] else {
                    continue;
                };
                if earlier.is_subset(lits) {
                    out.push(
                        self.name(),
                        Severity::Warn,
                        Element::Transition(ti),
                        format!(
                            "never fires: transition {tj} from {} matches first \
                             under priority order",
                            spec.state_name(t.from)
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// Handshake liveness: the controller's wait states (`FitWait`,
/// `SelMulWait`, …) park the core on an external handshake; each must
/// have at least one satisfiable exit transition or the core deadlocks
/// waiting on a signal it can never accept.
pub struct HandshakeLiveness;

impl Rule for HandshakeLiveness {
    fn name(&self) -> &'static str {
        "handshake-liveness"
    }
    fn description(&self) -> &'static str {
        "every *Wait state has a satisfiable exit transition"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let Some(spec) = &model.fsm else { return };
        let literals: Vec<Option<HashSet<(usize, bool)>>> = spec
            .transitions
            .iter()
            .map(|t| literal_set(&t.guard))
            .collect();
        // A transition can actually fire only if its guard is
        // non-contradictory, tests only real condition inputs, and no
        // earlier same-state transition matches whenever it would
        // (priority order). FsmUnsatGuard reports those defects
        // individually; here they must also disqualify the exit, or a
        // deadlocked wait state slips through on a phantom transition.
        let fireable = |ti: usize| -> bool {
            let t = &spec.transitions[ti];
            let Some(lits) = &literals[ti] else {
                return false;
            };
            if t.guard.0.iter().any(|&(idx, _)| idx >= spec.n_conds) {
                return false;
            }
            !spec.transitions[..ti].iter().enumerate().any(|(tj, e)| {
                e.from == t.from
                    && literals[tj]
                        .as_ref()
                        .is_some_and(|earlier| earlier.is_subset(lits))
            })
        };
        for s in 0..spec.n_states {
            let name = spec.state_name(s);
            if !name.ends_with("Wait") {
                continue;
            }
            let has_exit = (0..spec.transitions.len()).any(|ti| {
                spec.transitions[ti].from == s && spec.transitions[ti].to != s && fireable(ti)
            });
            if !has_exit {
                out.push(
                    self.name(),
                    Severity::Error,
                    state_element(spec, s),
                    "wait state has no satisfiable exit — the handshake can deadlock",
                );
            }
        }
    }
}
