//! The area/timing budget rule, anchored to the paper's Table VI
//! figures (13% slice utilization and a 50 MHz clock on the xc2vp30).

use super::Rule;
use crate::diag::{Element, Report, Severity};
use crate::model::DesignModel;

/// Gate-count and implementation-figure budget. The gate ceiling always
/// applies; the slice/fmax checks run only when the model carries
/// implementation figures (the full GA core does, fixtures may not).
pub struct AreaBudgetRule;

impl Rule for AreaBudgetRule {
    fn name(&self) -> &'static str {
        "area-budget"
    }
    fn description(&self) -> &'static str {
        "netlist stays inside the Table VI area/timing budget"
    }
    fn check(&self, model: &DesignModel, out: &mut Report) {
        let budget = &model.budget;
        let gates = model.netlist.gate_count();
        if gates > budget.max_gates {
            out.push(
                self.name(),
                Severity::Error,
                Element::Design,
                format!("{gates} gates exceed the budget of {}", budget.max_gates),
            );
        } else {
            out.push(
                self.name(),
                Severity::Info,
                Element::Design,
                format!("{gates} gates within the budget of {}", budget.max_gates),
            );
        }
        let Some(area) = &model.area else { return };
        if area.slice_pct > budget.max_slice_pct {
            out.push(
                self.name(),
                Severity::Error,
                Element::Design,
                format!(
                    "slice utilization {}% ({} slices) exceeds the Table VI band (≤{}%)",
                    area.slice_pct, area.slices, budget.max_slice_pct
                ),
            );
        } else {
            out.push(
                self.name(),
                Severity::Info,
                Element::Design,
                format!(
                    "slice utilization {}% ({} slices) inside the Table VI band \
                     (paper: 13%, budget ≤{}%)",
                    area.slice_pct, area.slices, budget.max_slice_pct
                ),
            );
        }
        if area.fmax_mhz < budget.min_fmax_mhz {
            out.push(
                self.name(),
                Severity::Error,
                Element::Design,
                format!(
                    "fmax {:.1} MHz misses the paper's {:.0} MHz clock",
                    area.fmax_mhz, budget.min_fmax_mhz
                ),
            );
        } else {
            out.push(
                self.name(),
                Severity::Info,
                Element::Design,
                format!(
                    "fmax {:.1} MHz meets the paper's {:.0} MHz clock",
                    area.fmax_mhz, budget.min_fmax_mhz
                ),
            );
        }
    }
}
