//! galint — static design-rule checking for the GA IP core.
//!
//! The paper ships the engine as a *soft IP*: a gate-level netlist the
//! integrator must trust sight-unseen. `galint` is the trust-building
//! step — a rule-based static analyzer over the synthesized
//! [`ga_synth::Netlist`] and the controller [`ga_synth::fsm::FsmSpec`]
//! that checks the properties a silicon design review would:
//! combinational loops, driver conflicts, floating nets, scan-chain
//! completeness, controller reachability and handshake liveness, and
//! the Table VI area/timing budget.
//!
//! * [`model::DesignModel`] bundles what the rules look at;
//! * [`dataflow`] holds the ternary (0/1/X) abstract interpreter and
//!   the fault-observability passes the dataflow rules build on;
//! * [`rules::registry`] lists every [`rules::Rule`];
//! * [`diag::Report`] carries the findings, renderable as text or JSON;
//! * the `galint` binary runs the registry over both shipping
//!   elaborations and exits nonzero on errors (the CI gate).

#![forbid(unsafe_code)]

pub mod dataflow;
pub mod diag;
pub mod model;
pub mod rules;

pub use dataflow::{
    fault_cone, observability_report, ternary_fixpoint, ConeReport, ObservabilityReport,
    SiteDomain, SiteVerdict, TernFixpoint,
};
pub use diag::{Diagnostic, Element, Report, Severity};
pub use model::{AreaBudget, AreaStats, DesignModel, RegInit};
pub use rules::{registry, run_all, Rule};
