//! The `galint` CLI: run every design rule over the shipping
//! elaborations (GA core + CA RNG) and exit nonzero on errors — the CI
//! gate for the soft-IP deliverable.
//!
//! Usage: `galint [--format text|json] [--list-rules] [--observability]`
//!
//! `--observability` skips the rule registry and instead prints the
//! 424-site static fault-observability report as JSON — the artifact
//! `fault_campaign --xcheck` joins against the dynamic campaign.

use std::process::ExitCode;

use galint::{observability_report, registry, run_all, DesignModel};

enum Format {
    Text,
    Json,
}

fn usage() -> ! {
    eprintln!("usage: galint [--format text|json] [--list-rules] [--observability]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => usage(),
            },
            "--list-rules" => {
                for rule in registry() {
                    println!("{:<20} {}", rule.name(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            "--observability" => match observability_report() {
                Ok(report) => {
                    println!("{}", report.to_json());
                    eprintln!(
                        "galint: {} sites, {} statically unobservable",
                        report.sites.len(),
                        report.unobservable()
                    );
                    return ExitCode::SUCCESS;
                }
                Err(e) => {
                    eprintln!("galint: elaboration failed: {e}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let models = [DesignModel::ga_core(), DesignModel::ca_rng()];
    let mut reports = Vec::new();
    for model in models {
        match model {
            Ok(m) => reports.push(run_all(&m)),
            Err(e) => {
                eprintln!("galint: elaboration failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;
    match format {
        Format::Text => {
            for r in &reports {
                print!("{}", r.to_text());
                failed |= r.has_errors();
            }
        }
        Format::Json => {
            let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
            println!("[{}]", body.join(","));
            failed = reports.iter().any(|r| r.has_errors());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
