//! Golden fixtures: one deliberately broken design per rule, asserting
//! the exact diagnostic fires — plus the clean-design checks on the
//! shipping elaborations (the CI acceptance contract).

#![allow(clippy::unwrap_used)]

use ga_synth::fsm::{FsmSpec, Guard, Transition};
use ga_synth::netlist::{Gate, Netlist, RegCell};
use ga_synth::GateKind;
use galint::{run_all, AreaBudget, DesignModel, Element, Severity};

fn gate(kind: GateKind, inputs: Vec<u32>) -> Gate {
    Gate { kind, inputs }
}

/// An empty FSM shell for rule fixtures.
fn fsm(n_states: usize, n_conds: usize, transitions: Vec<Transition>) -> FsmSpec {
    FsmSpec {
        n_states,
        n_conds,
        transitions,
        state_names: Vec::new(),
    }
}

fn t(from: usize, guard: Guard, to: usize) -> Transition {
    Transition { from, guard, to }
}

/// Findings of one rule at one severity.
fn findings(model: &DesignModel, rule: &str, sev: Severity) -> Vec<String> {
    run_all(model)
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == rule && d.severity == sev)
        .map(|d| format!("{}: {}", d.element, d.message))
        .collect()
}

// ---------------------------------------------------------------- netlist

#[test]
fn comb_loop_is_an_error() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Buf, vec![1]));
    nl.gates.push(gate(GateKind::Buf, vec![0]));
    let found = findings(
        &DesignModel::new("fixture", nl),
        "comb-loop",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        found[0].contains("combinational loop through 2 gate(s)"),
        "{found:?}"
    );
    assert!(found[0].starts_with("gate 0"), "{found:?}");
}

#[test]
fn self_feeding_gate_is_a_comb_loop() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.gates.push(gate(GateKind::And2, vec![0, 1])); // feeds itself
    let found = findings(
        &DesignModel::new("fixture", nl),
        "comb-loop",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
}

#[test]
fn duplicate_reg_q_is_multi_driver() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![]));
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.regs.push(RegCell { d: 1, q: 0 });
    nl.regs.push(RegCell { d: 1, q: 0 }); // second driver of net 0
    let found = findings(
        &DesignModel::new("fixture", nl),
        "multi-driver",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        found[0].contains("already driven by register 0"),
        "{found:?}"
    );
}

#[test]
fn register_on_combinational_net_is_multi_driver() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.gates.push(gate(GateKind::Inv, vec![0]));
    nl.regs.push(RegCell { d: 0, q: 1 }); // q points at the Inv's net
    let found = findings(
        &DesignModel::new("fixture", nl),
        "multi-driver",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("Inv"), "{found:?}");
}

#[test]
fn orphan_regq_is_a_floating_net_error() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![])); // no RegCell owns it
    let found = findings(
        &DesignModel::new("fixture", nl),
        "floating-net",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("orphan RegQ"), "{found:?}");
}

#[test]
fn unused_logic_is_a_floating_net_warning() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.gates.push(gate(GateKind::Xor2, vec![0, 1])); // drives nothing
    nl.inputs.push(("a".into(), vec![0]));
    nl.inputs.push(("b".into(), vec![1]));
    let model = DesignModel::new("fixture", nl);
    let warns = findings(&model, "floating-net", Severity::Warn);
    assert_eq!(warns.len(), 1, "{warns:?}");
    assert!(warns[0].starts_with("gate 2"), "{warns:?}");
    assert!(warns[0].contains("Xor2 output floats"), "{warns:?}");
}

#[test]
fn bad_arity_is_a_width_mismatch() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.gates.push(gate(GateKind::And2, vec![0])); // one pin short
    let found = findings(
        &DesignModel::new("fixture", nl),
        "width-mismatch",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        found[0].contains("has 1 input pin(s), its kind requires 2"),
        "{found:?}"
    );
}

#[test]
fn dangling_net_reference_is_a_width_mismatch() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Inv, vec![7])); // net 7 doesn't exist
    let found = findings(
        &DesignModel::new("fixture", nl),
        "width-mismatch",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("nonexistent net 7"), "{found:?}");
}

#[test]
fn dangling_output_bus_bit_is_anchored_to_the_output() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.inputs.push(("a".into(), vec![0]));
    nl.outputs.push(("best".into(), vec![9])); // net 9 doesn't exist
    let found = findings(
        &DesignModel::new("fixture", nl),
        "width-mismatch",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("output 'best'"), "{found:?}");
    assert!(found[0].contains("nonexistent net 9"), "{found:?}");
}

#[test]
fn off_chain_flip_flop_breaks_scan_completeness() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![])); // on chain
    nl.gates.push(gate(GateKind::RegQ, vec![])); // NOT on chain
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.regs.push(RegCell { d: 2, q: 0 });
    let found = findings(
        &DesignModel::new("fixture", nl),
        "scan-chain",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("gate 1"), "{found:?}");
    assert!(found[0].contains("not on the scan chain"), "{found:?}");
}

#[test]
fn off_chain_flip_flop_is_not_an_injectable_site() {
    // Same shape as the scan-chain fixture: the fault injector's site
    // list (one site per chain position) cannot reach gate 1's state.
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![]));
    nl.gates.push(gate(GateKind::RegQ, vec![])); // unreachable
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.regs.push(RegCell { d: 2, q: 0 });
    let found = findings(
        &DesignModel::new("fixture", nl),
        "scan-site-coverage",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("gate 1"), "{found:?}");
    assert!(
        found[0].contains("not an injectable fault site"),
        "{found:?}"
    );
}

#[test]
fn aliased_fault_sites_are_an_error() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![]));
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.regs.push(RegCell { d: 1, q: 0 });
    nl.regs.push(RegCell { d: 1, q: 0 }); // site 1 corrupts site 0's FF
    let found = findings(
        &DesignModel::new("fixture", nl),
        "scan-site-coverage",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("register 1"), "{found:?}");
    assert!(found[0].contains("aliases site 0"), "{found:?}");
}

#[test]
fn fault_site_on_combinational_net_is_an_error() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::Input, vec![]));
    nl.gates.push(gate(GateKind::Inv, vec![0]));
    nl.regs.push(RegCell { d: 0, q: 1 }); // site 0 would corrupt an Inv
    let found = findings(
        &DesignModel::new("fixture", nl),
        "scan-site-coverage",
        Severity::Error,
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("not a flip-flop output"), "{found:?}");
}

#[test]
fn frozen_and_constant_registers_are_flagged() {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![]));
    nl.gates.push(gate(GateKind::RegQ, vec![]));
    nl.gates.push(gate(GateKind::Const1, vec![]));
    nl.regs.push(RegCell { d: 0, q: 0 }); // frozen: D = own Q
    nl.regs.push(RegCell { d: 2, q: 1 }); // constant D
    let found = findings(
        &DesignModel::new("fixture", nl),
        "reg-enable",
        Severity::Warn,
    );
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found[0].contains("never change"), "{found:?}");
    assert!(found[1].contains("holds a constant"), "{found:?}");
}

// ------------------------------------------------------------------- fsm

#[test]
fn unreachable_and_trap_states_are_errors() {
    // 0 → 1; 2 unreachable; 1 is a trap (no way out).
    let spec = fsm(
        3,
        1,
        vec![t(0, Guard::always(), 1), t(2, Guard::always(), 0)],
    );
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let found = findings(&model, "fsm-dead-state", Severity::Error);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found
        .iter()
        .any(|f| f.starts_with("state 2") && f.contains("unreachable")));
    assert!(found
        .iter()
        .any(|f| f.starts_with("state 1") && f.contains("trap state")));
}

#[test]
fn contradictory_guard_is_unsatisfiable() {
    let spec = fsm(
        2,
        1,
        vec![
            t(0, Guard(vec![(0, true), (0, false)]), 1),
            t(0, Guard::always(), 1),
        ],
    );
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let found = findings(&model, "fsm-unsat-guard", Severity::Error);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("transition 0"), "{found:?}");
    assert!(found[0].contains("unsatisfiable"), "{found:?}");
}

#[test]
fn out_of_range_condition_is_an_error() {
    let spec = fsm(
        2,
        1,
        vec![t(0, Guard::when(5, true), 1), t(1, Guard::always(), 0)],
    );
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let found = findings(&model, "fsm-unsat-guard", Severity::Error);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("condition 5"), "{found:?}");
}

#[test]
fn priority_shadowed_transition_is_a_warning() {
    // The unconditional transition 0 shadows transition 1 forever.
    let spec = fsm(
        3,
        1,
        vec![
            t(0, Guard::always(), 1),
            t(0, Guard::when(0, true), 2),
            t(1, Guard::always(), 0),
            t(2, Guard::always(), 0),
        ],
    );
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let found = findings(&model, "fsm-unsat-guard", Severity::Warn);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("transition 1"), "{found:?}");
    assert!(found[0].contains("never fires"), "{found:?}");
}

#[test]
fn wait_state_without_exit_fails_handshake_liveness() {
    let spec = FsmSpec {
        n_states: 2,
        n_conds: 1,
        transitions: vec![t(0, Guard::always(), 1)], // FitWait has no exit
        state_names: vec!["Start".into(), "FitWait".into()],
    };
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let found = findings(&model, "handshake-liveness", Severity::Error);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("state 1 (FitWait)"), "{found:?}");
    assert!(found[0].contains("deadlock"), "{found:?}");
}

#[test]
fn wait_state_whose_exit_tests_a_phantom_condition_is_dead() {
    // The only exit guards on condition 7, which doesn't exist — the
    // transition can never fire, so the wait state still deadlocks.
    let spec = FsmSpec {
        n_states: 2,
        n_conds: 1,
        transitions: vec![t(0, Guard::always(), 1), t(1, Guard::when(7, true), 0)],
        state_names: vec!["Start".into(), "FitWait".into()],
    };
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let found = findings(&model, "handshake-liveness", Severity::Error);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("state 1 (FitWait)"), "{found:?}");
}

#[test]
fn wait_state_whose_exit_is_priority_shadowed_is_dead() {
    // An unconditional self-loop is declared before the exit; under
    // priority order the exit never fires.
    let spec = FsmSpec {
        n_states: 2,
        n_conds: 1,
        transitions: vec![
            t(0, Guard::always(), 1),
            t(1, Guard::always(), 1), // self-loop wins every cycle
            t(1, Guard::when(0, true), 0),
        ],
        state_names: vec!["Start".into(), "FitWait".into()],
    };
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let found = findings(&model, "handshake-liveness", Severity::Error);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("deadlock"), "{found:?}");
}

#[test]
fn wait_state_with_guarded_exit_is_live() {
    let spec = FsmSpec {
        n_states: 2,
        n_conds: 1,
        transitions: vec![t(0, Guard::always(), 1), t(1, Guard::when(0, true), 0)],
        state_names: vec!["Start".into(), "FitWait".into()],
    };
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    assert!(findings(&model, "handshake-liveness", Severity::Error).is_empty());
}

// ------------------------------------------------------------------ area

#[test]
fn gate_budget_overflow_is_an_error() {
    let mut nl = Netlist::default();
    for _ in 0..4 {
        nl.gates.push(gate(GateKind::Input, vec![]));
    }
    let model = DesignModel::new("fixture", nl).with_budget(AreaBudget {
        max_slice_pct: 18,
        min_fmax_mhz: 50.0,
        max_gates: 3,
    });
    let found = findings(&model, "area-budget", Severity::Error);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        found[0].contains("4 gates exceed the budget of 3"),
        "{found:?}"
    );
}

#[test]
fn slow_or_oversubscribed_implementation_is_an_error() {
    let model = DesignModel::new("fixture", Netlist::default()).with_area(galint::AreaStats {
        slices: 5000,
        slice_pct: 37,
        fmax_mhz: 41.0,
    });
    let found = findings(&model, "area-budget", Severity::Error);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found[0].contains("37%"), "{found:?}");
    assert!(found[1].contains("41.0 MHz"), "{found:?}");
}

// -------------------------------------------------------------- dataflow

/// q0 toggles, q1 is frozen at its reset value (D = own Q), and the
/// output AND is gated by q1 — so `y` is provably stuck at 0 under a
/// reset-to-0 regime.
fn frozen_gate_netlist() -> Netlist {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![])); // 0 = q0
    nl.gates.push(gate(GateKind::RegQ, vec![])); // 1 = q1 (frozen)
    nl.gates.push(gate(GateKind::Inv, vec![0])); // 2 = d0
    nl.gates.push(gate(GateKind::And2, vec![1, 0])); // 3 = y
    nl.regs.push(RegCell { d: 2, q: 0 });
    nl.regs.push(RegCell { d: 1, q: 1 });
    nl.outputs.push(("y".into(), vec![3]));
    nl
}

/// The seed shape: q feeds only its own hold mux, the output comes from
/// elsewhere.
fn hold_only_netlist() -> Netlist {
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![])); // 0 = q
    nl.gates.push(gate(GateKind::Input, vec![])); // 1 = load
    nl.gates.push(gate(GateKind::Input, vec![])); // 2 = value
    nl.gates.push(gate(GateKind::CarryMux, vec![1, 2, 0])); // 3 = d
    nl.gates.push(gate(GateKind::Input, vec![])); // 4 = other
    nl.regs.push(RegCell { d: 3, q: 0 });
    nl.inputs.push(("load".into(), vec![1]));
    nl.inputs.push(("value".into(), vec![2]));
    nl.inputs.push(("other".into(), vec![4]));
    nl.outputs.push(("y".into(), vec![4]));
    nl
}

#[test]
fn stuck_logic_is_a_const_net_warning() {
    let model = DesignModel::new("fixture", frozen_gate_netlist());
    let found = findings(&model, "const-net", Severity::Warn);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("gate 3"), "{found:?}");
    assert!(found[0].contains("stuck at 0"), "{found:?}");
}

#[test]
fn scan_programmed_init_washes_out_const_net() {
    // Same netlist, but with no reset assumption q1 may power up 1 —
    // nothing is provably stuck.
    let model = DesignModel::new("fixture", frozen_gate_netlist()).with_scan_programmed_init();
    let found = findings(&model, "const-net", Severity::Warn);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn uninitialized_register_leaking_x_is_an_x_prop_warning() {
    // An uninitialized self-holding register driving the output: its X
    // survives forever and is observable.
    let mut nl = Netlist::default();
    nl.gates.push(gate(GateKind::RegQ, vec![])); // 0 = q
    nl.regs.push(RegCell { d: 0, q: 0 });
    nl.outputs.push(("y".into(), vec![0]));
    let model = DesignModel::new("fixture", nl).with_uninit_regs(vec![0]);
    let found = findings(&model, "x-prop", Severity::Warn);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("register 0"), "{found:?}");
    assert!(found[0].contains("reaches output 'y'"), "{found:?}");
}

#[test]
fn contained_uninitialized_register_passes_x_prop() {
    // The same declaration on a hold-only register: the X never reaches
    // an output, so no warning.
    let model = DesignModel::new("fixture", hold_only_netlist()).with_uninit_regs(vec![0]);
    let found = findings(&model, "x-prop", Severity::Warn);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn hold_only_register_is_an_unobservable_site_warning() {
    let model = DesignModel::new("fixture", hold_only_netlist());
    let found = findings(&model, "unobservable-fault-site", Severity::Warn);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("register 0"), "{found:?}");
    assert!(found[0].contains("statically masked"), "{found:?}");
}

#[test]
fn constant_pruning_masks_the_gated_site() {
    // Under reset-0 the frozen q1 pins the AND, so q0 (register 0) has
    // no live path out; q1 itself reaches the output by flipping the
    // very gate that blocked q0.
    let model = DesignModel::new("fixture", frozen_gate_netlist());
    let found = findings(&model, "unobservable-fault-site", Severity::Warn);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].starts_with("register 0"), "{found:?}");
}

// ---------------------------------------------------------- clean designs

#[test]
fn elaborated_ga_core_is_error_free() {
    let model = DesignModel::ga_core().expect("elaboration");
    let report = run_all(&model);
    assert_eq!(
        report.error_count(),
        0,
        "GA core must lint clean:\n{}",
        report.to_text()
    );
    // The only accepted warnings are the 16 seed-register
    // unobservable-fault-site findings: the seed shadow register is
    // hold-only by design (the RNG seeds from the value bus directly),
    // and the fault campaign's --xcheck relies on exactly this verdict.
    let warns: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .collect();
    assert_eq!(warns.len(), 16, "{}", report.to_text());
    for (i, d) in warns.iter().enumerate() {
        assert_eq!(d.rule, "unobservable-fault-site", "{}", report.to_text());
        assert_eq!(d.element, Element::Register(16 + i), "seed occupies 16..32");
    }
}

#[test]
fn elaborated_ca_rng_is_error_free() {
    let model = DesignModel::ca_rng().expect("elaboration");
    let report = run_all(&model);
    assert_eq!(
        report.error_count(),
        0,
        "CA RNG must lint clean:\n{}",
        report.to_text()
    );
    assert_eq!(
        report.warn_count(),
        0,
        "every CA-RNG flip-flop drives the output bus directly:\n{}",
        report.to_text()
    );
}

#[test]
fn clean_report_serializes_for_ci() {
    let model = DesignModel::ca_rng().expect("elaboration");
    let json = run_all(&model).to_json();
    assert!(json.contains("\"design\":\"ca_rng\""));
    assert!(json.contains("\"errors\":0"));
}

#[test]
fn every_registered_rule_has_a_distinct_name() {
    let names: Vec<&str> = galint::registry().iter().map(|r| r.name()).collect();
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(names.len(), dedup.len(), "{names:?}");
    assert!(names.len() >= 14, "at least 14 rules: {names:?}");
}

#[test]
fn diagnostics_carry_usable_elements() {
    // The element of a finding must point at the offending item, not a
    // generic location — spot-check the State element formatting.
    let spec = fsm(2, 1, vec![t(0, Guard::always(), 0)]);
    let model = DesignModel::new("fixture", Netlist::default()).with_fsm(spec);
    let report = run_all(&model);
    let dead = report.by_rule("fsm-dead-state");
    assert!(dead.iter().any(|d| d.element
        == Element::State {
            index: 1,
            name: "S1".into()
        }));
}
