//! Soundness of the ternary abstract interpreter: for random netlists
//! and random concrete executions, the concrete value of every net on
//! every cycle must be covered by the fixpoint's abstract value
//! (`X` covers both Booleans; `Zero`/`One` cover only themselves).
//!
//! The netlists are sound-by-construction — register-Q and input gates
//! come first so combinational gates can only reference earlier nets,
//! which makes every generated netlist acyclic with a trivially valid
//! topological order.

use std::collections::HashMap;

use ga_synth::netlist::{Gate, GateKind, NetId, Netlist, RegCell};
use ga_synth::{CompiledNetlist, Tern};
use galint::ternary_fixpoint;
use proptest::prelude::*;

/// Deterministic stream for building one test case from a seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const COMB_KINDS: &[GateKind] = &[
    GateKind::Buf,
    GateKind::Inv,
    GateKind::And2,
    GateKind::Or2,
    GateKind::Xor2,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::CarryMux,
    GateKind::Const0,
    GateKind::Const1,
];

/// A random acyclic netlist: registers and inputs first, then
/// combinational gates over earlier nets, random register D pins and
/// one output bus.
fn random_netlist(mix: &mut Mix) -> Netlist {
    let n_regs = 1 + mix.below(5) as usize;
    let n_inputs = mix.below(4) as usize;
    let n_comb = 1 + mix.below(24) as usize;
    let mut nl = Netlist::default();
    for _ in 0..n_regs {
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        });
    }
    let mut input_bus = Vec::new();
    for _ in 0..n_inputs {
        input_bus.push(nl.gates.len() as NetId);
        nl.gates.push(Gate {
            kind: GateKind::Input,
            inputs: vec![],
        });
    }
    if !input_bus.is_empty() {
        nl.inputs.push(("in".into(), input_bus));
    }
    for _ in 0..n_comb {
        let kind = COMB_KINDS[mix.below(COMB_KINDS.len() as u64) as usize];
        let avail = nl.gates.len() as u64;
        let inputs = (0..kind.arity())
            .map(|_| mix.below(avail) as NetId)
            .collect();
        nl.gates.push(Gate { kind, inputs });
    }
    let total = nl.gates.len() as u64;
    for q in 0..n_regs {
        nl.regs.push(RegCell {
            d: mix.below(total) as NetId,
            q: q as NetId,
        });
    }
    let out_bus = (0..1 + mix.below(3))
        .map(|_| mix.below(total) as NetId)
        .collect();
    nl.outputs.push(("out".into(), out_bus));
    nl
}

/// Run `steps` concrete sequential cycles from `reg_state` with random
/// inputs, asserting every net of every cycle is covered by `fix_nets`.
fn check_refinement(
    nl: &Netlist,
    fix_nets: &[Tern],
    mut reg_state: Vec<bool>,
    steps: usize,
    mix: &mut Mix,
) {
    for step in 0..steps {
        let mut inputs: HashMap<NetId, bool> = HashMap::new();
        for (_, bus) in &nl.inputs {
            for &n in bus {
                inputs.insert(n, mix.flip());
            }
        }
        let regs: HashMap<NetId, bool> = nl
            .regs
            .iter()
            .zip(&reg_state)
            .map(|(r, &v)| (r.q, v))
            .collect();
        let vals = nl.eval_comb(&inputs, &regs);
        for (net, &concrete) in vals.iter().enumerate() {
            prop_assert!(
                fix_nets[net].covers(concrete),
                "step {step}, net {net}: abstract {:?} does not cover \
                 concrete {concrete} ({:?})",
                fix_nets[net],
                nl.gates[net].kind
            );
        }
        reg_state = nl.regs.iter().map(|r| vals[r.d as usize]).collect();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All-X register init (the scan-programmed contract): the fixpoint
    /// must cover concrete runs started from *any* register state.
    #[test]
    fn fixpoint_covers_arbitrary_initial_states(seed in any::<u64>()) {
        let mut mix = Mix(seed | 1);
        let nl = random_netlist(&mut mix);
        let cn = CompiledNetlist::compile(&nl).expect("sound by construction");
        let fix = ternary_fixpoint(&cn, &vec![Tern::X; cn.ff_count()]);
        let init: Vec<bool> = (0..cn.ff_count()).map(|_| mix.flip()).collect();
        check_refinement(&nl, &fix.nets, init, 8, &mut mix);
    }

    /// Reset-to-0 init: the fixpoint from the zero lattice must cover
    /// every state the netlist actually reaches from reset.
    #[test]
    fn fixpoint_covers_the_reset_trajectory(seed in any::<u64>()) {
        let mut mix = Mix(seed.rotate_left(17) | 1);
        let nl = random_netlist(&mut mix);
        let cn = CompiledNetlist::compile(&nl).expect("sound by construction");
        let fix = ternary_fixpoint(&cn, &vec![Tern::Zero; cn.ff_count()]);
        check_refinement(&nl, &fix.nets, vec![false; cn.ff_count()], 12, &mut mix);
    }

    /// The register fixpoint is itself covered: `reg_q` must cover the
    /// concrete register value on every reachable cycle (reset regime —
    /// the strongest lattice, so the most likely to be unsound).
    #[test]
    fn register_lattice_covers_reached_states(seed in any::<u64>()) {
        let mut mix = Mix(seed.rotate_left(33) | 1);
        let nl = random_netlist(&mut mix);
        let cn = CompiledNetlist::compile(&nl).expect("sound by construction");
        let fix = ternary_fixpoint(&cn, &vec![Tern::Zero; cn.ff_count()]);
        let mut reg_state = vec![false; cn.ff_count()];
        for step in 0..12 {
            for (i, &v) in reg_state.iter().enumerate() {
                prop_assert!(
                    fix.reg_q[i].covers(v),
                    "step {step}, register {i}: {:?} does not cover {v}",
                    fix.reg_q[i]
                );
            }
            let mut inputs: HashMap<NetId, bool> = HashMap::new();
            for (_, bus) in &nl.inputs {
                for &n in bus {
                    inputs.insert(n, mix.flip());
                }
            }
            let regs: HashMap<NetId, bool> = nl
                .regs
                .iter()
                .zip(&reg_state)
                .map(|(r, &v)| (r.q, v))
                .collect();
            let vals = nl.eval_comb(&inputs, &regs);
            reg_state = nl.regs.iter().map(|r| vals[r.d as usize]).collect();
        }
    }
}
