//! Programmable GA parameters (Table III) and preset modes (Table IV).
//!
//! The core's headline feature is that population size, number of
//! generations, crossover threshold, mutation threshold and RNG seed are
//! all *runtime-programmable* through the initialization handshake —
//! no re-synthesis, unlike every prior FPGA GA in Table I. Three preset
//! parameter sets can bypass initialization entirely (fault tolerance in
//! the ASIC version, and convenient starting points for the user).

use carng::seeds::PRESET_SEEDS;

/// Index values of the programmable parameters (Table III). The `index`
/// bus is 3 bits; the two halves of the 32-bit generation count take two
/// slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ParamIndex {
    /// Number of generations, bits \[15:0\].
    NumGensLo = 0,
    /// Number of generations, bits \[31:16\].
    NumGensHi = 1,
    /// Population size (8-bit).
    PopSize = 2,
    /// Crossover rate threshold (4-bit).
    CrossoverRate = 3,
    /// Mutation rate threshold (4-bit).
    MutationRate = 4,
    /// RNG seed (16-bit).
    RngSeed = 5,
}

impl ParamIndex {
    /// Decode a 3-bit index bus value.
    pub fn from_bus(v: u8) -> Option<Self> {
        Some(match v & 0x7 {
            0 => ParamIndex::NumGensLo,
            1 => ParamIndex::NumGensHi,
            2 => ParamIndex::PopSize,
            3 => ParamIndex::CrossoverRate,
            4 => ParamIndex::MutationRate,
            5 => ParamIndex::RngSeed,
            _ => return None,
        })
    }
}

/// Preset mode selector (2-bit `preset` input, Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum PresetMode {
    /// `00`: use the user-programmed parameter registers.
    #[default]
    User = 0b00,
    /// `01`: pop 32, 512 generations, thresholds 12/1.
    Small = 0b01,
    /// `10`: pop 64, 1024 generations, thresholds 13/2.
    Medium = 0b10,
    /// `11`: pop 128, 4096 generations, thresholds 14/3.
    Large = 0b11,
}

impl PresetMode {
    /// Decode the 2-bit preset bus.
    pub fn from_bus(v: u8) -> Self {
        match v & 0b11 {
            0b01 => PresetMode::Small,
            0b10 => PresetMode::Medium,
            0b11 => PresetMode::Large,
            _ => PresetMode::User,
        }
    }
}

/// A complete, validated GA parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaParams {
    /// Population size. The GA memory holds 256 words double-buffered
    /// into two banks, so at most 128 individuals (the largest preset).
    pub pop_size: u8,
    /// Number of generations (32-bit, programmed as two 16-bit halves).
    pub n_gens: u32,
    /// Crossover threshold 0–15: crossover happens when a fresh 4-bit
    /// random draw is **less than** this value (rate = threshold/16).
    pub xover_threshold: u8,
    /// Mutation threshold 0–15 (rate = threshold/16).
    pub mut_threshold: u8,
    /// RNG seed (zero is remapped to 1 by the RNG module).
    pub seed: u16,
}

impl GaParams {
    /// Largest population the double-buffered 256-word GA memory holds.
    pub const MAX_POP: u8 = 128;

    /// Validated constructor.
    pub fn new(
        pop_size: u8,
        n_gens: u32,
        xover_threshold: u8,
        mut_threshold: u8,
        seed: u16,
    ) -> Self {
        let p = GaParams {
            pop_size,
            n_gens,
            xover_threshold,
            mut_threshold,
            seed,
        };
        p.validate().expect("invalid GA parameters");
        p
    }

    /// Check the hardware ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.pop_size < 2 {
            return Err(format!("population size {} < 2", self.pop_size));
        }
        if self.pop_size > Self::MAX_POP {
            return Err(format!(
                "population size {} exceeds the double-buffered memory limit {}",
                self.pop_size,
                Self::MAX_POP
            ));
        }
        if self.xover_threshold > 15 {
            return Err(format!("crossover threshold {} > 15", self.xover_threshold));
        }
        if self.mut_threshold > 15 {
            return Err(format!("mutation threshold {} > 15", self.mut_threshold));
        }
        if self.n_gens == 0 {
            return Err("number of generations must be ≥ 1".into());
        }
        Ok(())
    }

    /// The parameter set of a preset mode (Table IV), or `None` for
    /// [`PresetMode::User`]. Each preset also selects one of the three
    /// built-in RNG seeds.
    pub fn preset(mode: PresetMode) -> Option<GaParams> {
        let (pop, gens, xover, mutn, seed) = match mode {
            PresetMode::User => return None,
            PresetMode::Small => (32, 512, 12, 1, PRESET_SEEDS[0]),
            PresetMode::Medium => (64, 1024, 13, 2, PRESET_SEEDS[1]),
            PresetMode::Large => (128, 4096, 14, 3, PRESET_SEEDS[2]),
        };
        Some(GaParams::new(pop, gens, xover, mutn, seed))
    }

    /// Apply one initialization write (decoded index + 16-bit value bus)
    /// to this parameter set, as the init FSM does. Out-of-range fields
    /// are truncated to their bus widths, like the hardware registers.
    pub fn apply_write(&mut self, index: ParamIndex, value: u16) {
        match index {
            ParamIndex::NumGensLo => {
                self.n_gens = (self.n_gens & 0xFFFF_0000) | value as u32;
            }
            ParamIndex::NumGensHi => {
                self.n_gens = (self.n_gens & 0x0000_FFFF) | ((value as u32) << 16);
            }
            ParamIndex::PopSize => self.pop_size = value as u8,
            ParamIndex::CrossoverRate => self.xover_threshold = (value & 0xF) as u8,
            ParamIndex::MutationRate => self.mut_threshold = (value & 0xF) as u8,
            ParamIndex::RngSeed => self.seed = value,
        }
    }

    /// Fitness evaluations one full run consumes: the initial
    /// population plus `pop − 1` offspring per generation (the elite
    /// slot is copied, not re-evaluated). This is the single source of
    /// truth for the formula — the behavioral engine's `evaluations()`
    /// instrumentation and the serving layer's per-job accounting both
    /// pin themselves to it.
    pub fn evaluations_per_run(&self) -> u64 {
        self.pop_size as u64 + self.n_gens as u64 * (self.pop_size as u64 - 1)
    }

    /// Crossover probability this parameter set realizes (threshold/16).
    pub fn xover_rate(&self) -> f64 {
        self.xover_threshold as f64 / 16.0
    }

    /// Mutation probability (threshold/16).
    pub fn mut_rate(&self) -> f64 {
        self.mut_threshold as f64 / 16.0
    }
}

impl Default for GaParams {
    /// Power-on values: the paper's most common experimental setting
    /// (pop 32, 32 generations, crossover 10/16, mutation 1/16,
    /// seed = first preset seed).
    fn default() -> Self {
        GaParams::new(32, 32, 10, 1, PRESET_SEEDS[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_index_roundtrip() {
        for v in 0..6u8 {
            let idx = ParamIndex::from_bus(v).unwrap();
            assert_eq!(idx as u8, v);
        }
        assert_eq!(ParamIndex::from_bus(6), None);
        assert_eq!(ParamIndex::from_bus(7), None);
        // Bus is 3 bits: higher bits ignored.
        assert_eq!(ParamIndex::from_bus(0b1000_0010), Some(ParamIndex::PopSize));
    }

    #[test]
    fn preset_table_iv_values() {
        let s = GaParams::preset(PresetMode::Small).unwrap();
        assert_eq!(
            (s.pop_size, s.n_gens, s.xover_threshold, s.mut_threshold),
            (32, 512, 12, 1)
        );
        let m = GaParams::preset(PresetMode::Medium).unwrap();
        assert_eq!(
            (m.pop_size, m.n_gens, m.xover_threshold, m.mut_threshold),
            (64, 1024, 13, 2)
        );
        let l = GaParams::preset(PresetMode::Large).unwrap();
        assert_eq!(
            (l.pop_size, l.n_gens, l.xover_threshold, l.mut_threshold),
            (128, 4096, 14, 3)
        );
        assert!(GaParams::preset(PresetMode::User).is_none());
    }

    #[test]
    fn preset_bus_decoding() {
        assert_eq!(PresetMode::from_bus(0b00), PresetMode::User);
        assert_eq!(PresetMode::from_bus(0b01), PresetMode::Small);
        assert_eq!(PresetMode::from_bus(0b10), PresetMode::Medium);
        assert_eq!(PresetMode::from_bus(0b11), PresetMode::Large);
        assert_eq!(PresetMode::from_bus(0b111), PresetMode::Large);
    }

    #[test]
    fn thirty_two_bit_generation_count_from_two_writes() {
        let mut p = GaParams::default();
        p.apply_write(ParamIndex::NumGensLo, 0x1234);
        p.apply_write(ParamIndex::NumGensHi, 0xABCD);
        assert_eq!(p.n_gens, 0xABCD_1234);
        // Writing halves in the other order must work too.
        let mut q = GaParams::default();
        q.apply_write(ParamIndex::NumGensHi, 0x0001);
        q.apply_write(ParamIndex::NumGensLo, 0x0000);
        assert_eq!(q.n_gens, 0x0001_0000);
    }

    #[test]
    fn threshold_writes_truncate_to_four_bits() {
        let mut p = GaParams::default();
        p.apply_write(ParamIndex::CrossoverRate, 0xFFFA);
        assert_eq!(p.xover_threshold, 10);
        p.apply_write(ParamIndex::MutationRate, 0x0013);
        assert_eq!(p.mut_threshold, 3);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(GaParams {
            pop_size: 1,
            ..GaParams::default()
        }
        .validate()
        .is_err());
        assert!(GaParams {
            pop_size: 129,
            ..GaParams::default()
        }
        .validate()
        .is_err());
        assert!(GaParams {
            n_gens: 0,
            ..GaParams::default()
        }
        .validate()
        .is_err());
        assert!(GaParams {
            xover_threshold: 16,
            ..GaParams::default()
        }
        .validate()
        .is_err());
        assert!(GaParams {
            mut_threshold: 200,
            ..GaParams::default()
        }
        .validate()
        .is_err());
        assert!(GaParams::default().validate().is_ok());
    }

    #[test]
    fn evaluation_formula_matches_the_engine_contract() {
        // pop + gens·(pop−1): both old call sites (the behavioral
        // engine's counter and the serve backend's RTL accounting) are
        // regression-pinned to this in their own test suites.
        assert_eq!(GaParams::new(16, 5, 10, 1, 3).evaluations_per_run(), 91);
        assert_eq!(GaParams::new(8, 3, 10, 1, 1).evaluations_per_run(), 29);
        assert_eq!(
            GaParams::new(128, 4096, 14, 3, 1).evaluations_per_run(),
            128 + 4096 * 127
        );
    }

    #[test]
    fn rates_are_sixteenths() {
        let p = GaParams::new(32, 32, 10, 1, 1);
        assert!((p.xover_rate() - 0.625).abs() < 1e-12);
        assert!((p.mut_rate() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn paper_mutation_rate_is_one_sixteenth() {
        // Every experiment in the paper uses mutation rate 0.0625 = 1/16,
        // i.e. threshold 1.
        assert!((GaParams::default().mut_rate() - 0.0625).abs() < 1e-12);
    }
}
