//! # ga-core — the customizable general-purpose GA IP core
//!
//! Rust reproduction of the paper's primary contribution: a
//! general-purpose, runtime-programmable genetic-algorithm engine
//! designed as a drop-in hardware IP block. Two models of the core are
//! provided, mirroring the paper's design levels:
//!
//! * [`behavioral::GaEngine`] — the behavioral model (the algorithm of
//!   Fig. 2 as plain code), generic over RNG and fitness function;
//! * [`hwcore::GaCoreHw`] + [`system::GaSystem`] — the cycle-accurate
//!   synthesized core with the full Table II port interface, Table III
//!   initialization handshake, Table IV preset modes, scan-chain test
//!   mode, and the Fig. 4 system wiring (RNG module, 256×32 GA memory,
//!   8-slot fitness bank, optional external FEM).
//!
//! The two models consume RNG draws in exactly the same order, so they
//! produce bit-identical populations — the cross-model differential
//! tests in `tests/` are the strongest correctness check in the repo.
//!
//! Chromosomes are 16 bits; [`scaling::GaEngine32`] implements the
//! §III-D recipe for ganging two cores into a 32-bit optimizer.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod behavioral;
pub mod hwcore;
pub mod init;
pub mod islands;
pub mod memory;
pub mod ops;
pub mod params;
pub mod ports;
pub mod rngmod;
pub mod scaling;
pub mod snapshot;
pub mod system;
pub mod system32;

pub use behavioral::{FieldMode, GaEngine, GaRun, GenStats, Individual};
pub use hwcore::GaCoreHw;
pub use islands::{
    run_islands, run_islands_over, IslandConfig, IslandMember, IslandRing, IslandRun,
};
pub use params::{GaParams, ParamIndex, PresetMode};
pub use ports::{GaCoreComb, GaCoreIn, GaCoreOut};
pub use scaling::GaEngine32;
pub use snapshot::{EngineSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use system::{GaSystem, HwRun, UserIn};
pub use system32::GaSystem32 as GaSystem32Hw;
