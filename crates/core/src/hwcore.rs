//! The cycle-accurate GA core — the FSM + datapath the AUDI HLS flow
//! synthesizes from the behavioral model.
//!
//! Faithful to the paper's sequential, unpipelined HLS output: every
//! micro-operation occupies its own state, block-RAM reads take the
//! architectural two cycles (address register + output register), the
//! 24×16 selection multiply occupies four states (a sequential
//! multiplier allocation), and all I/O follows the handshake protocols
//! of §III-B. The RNG consume enable and seed load are same-cycle wires
//! to the RNG module inside the GA-module boundary (Fig. 4).
//!
//! The FSM consumes random draws in **exactly** the order of the
//! behavioral [`crate::behavioral::GaEngine`]; the differential tests
//! exploit this to check population-for-population equality.

use hwsim::{AckSlave, Clocked, Reg};

use crate::behavioral::Individual;
use crate::memory::{pack, unpack, BANK0_BASE, BANK1_BASE};
use crate::ops;
use crate::params::{GaParams, ParamIndex, PresetMode};
use crate::ports::{GaCoreComb, GaCoreIn, GaCoreOut};

/// FSM states. The sub-phase registers `sel_phase` (parent 1/2) and
/// `off_phase` (offspring 1/2) keep the state count at the level the
/// paper's controller (synthesized via KISS/SIS) would have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum State {
    #[default]
    Idle,
    /// Parameter initialization mode (two-way handshake, Table III).
    InitParams,
    /// Resolve presets, load the RNG seed, clear the loop registers.
    Start,
    // --- initial population ---
    InitPopDraw,
    InitPopFitReq,
    InitPopFitWait,
    InitPopStore,
    InitPopUpdate,
    /// Loop header: next generation or done.
    GenCheck,
    // --- one generation ---
    ElitWrite,
    SelDraw,
    SelMulWait,
    SelScanAddr,
    SelScanWait,
    SelScanData,
    XoverDecide,
    MutDecide,
    OffFitReq,
    OffFitWait,
    OffStore,
    OffUpdate,
    GenEnd,
    Done,
}

/// The cycle-accurate GA IP core.
#[derive(Debug, Clone)]
pub struct GaCoreHw {
    state: Reg<State>,

    // Programmable parameter registers (Table III).
    pop_size: Reg<u8>,
    n_gens: Reg<u32>,
    xover_threshold: Reg<u8>,
    mut_threshold: Reg<u8>,
    seed: Reg<u16>,

    // Population bookkeeping.
    cur_base: Reg<u8>,
    new_base: Reg<u8>,
    gen: Reg<u32>,
    fit_sum: Reg<u32>,
    new_sum: Reg<u32>,
    best: Reg<u32>,     // packed Individual
    new_best: Reg<u32>, // packed Individual

    // Loop counters.
    i: Reg<u8>,        // initial-population index
    idx: Reg<u8>,      // new-population fill index
    scan_idx: Reg<u8>, // selection scan index

    // Selection datapath.
    threshold: Reg<u32>,
    cum: Reg<u32>,
    mult_cnt: Reg<u8>,
    sel_phase: Reg<bool>, // false: selecting parent 1

    // Breeding datapath.
    parent1: Reg<u16>,
    parent2: Reg<u16>,
    off1: Reg<u16>,
    off2: Reg<u16>,
    off_phase: Reg<bool>, // false: offspring 1

    // Candidate/fitness interface registers.
    cand: Reg<u16>,
    fit_reg: Reg<u16>,
    fit_request: Reg<bool>,

    // Memory interface registers.
    mem_address: Reg<u8>,
    mem_data_out: Reg<u32>,
    mem_wr: Reg<bool>,

    // Status.
    ga_done: Reg<bool>,

    // Init handshake.
    init_hs: AckSlave,

    // Scan chain.
    test_prev: Reg<bool>,
    scanout: Reg<bool>,
    scan_chain: Vec<bool>,

    // Instrumentation (not synthesized): draw counter for differential
    // testing against the behavioral engine, and a per-phase cycle
    // profile for the speedup analysis.
    rng_draws: u64,
    profile: CyclesByPhase,
}

/// Where the clock cycles go, by FSM phase (instrumentation; the
/// hardware analog of a software profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CyclesByPhase {
    /// Idle / Done / Start / GenCheck / GenEnd overhead.
    pub control: u64,
    /// Parameter-initialization handshake cycles.
    pub init_params: u64,
    /// Initial population generation (draw/store/update).
    pub init_pop: u64,
    /// Proportionate selection (threshold multiply + memory scan).
    pub selection: u64,
    /// Crossover + mutation states.
    pub breeding: u64,
    /// Fitness handshake cycles (request + wait).
    pub fitness_wait: u64,
    /// Offspring store/update cycles.
    pub store: u64,
}

impl CyclesByPhase {
    /// Total profiled cycles.
    pub fn total(&self) -> u64 {
        self.control
            + self.init_params
            + self.init_pop
            + self.selection
            + self.breeding
            + self.fitness_wait
            + self.store
    }
}

impl Default for GaCoreHw {
    fn default() -> Self {
        Self::new()
    }
}

impl GaCoreHw {
    /// A core with power-on default parameters ([`GaParams::default`]).
    pub fn new() -> Self {
        let d = GaParams::default();
        GaCoreHw {
            state: Reg::default(),
            pop_size: Reg::new(d.pop_size),
            n_gens: Reg::new(d.n_gens),
            xover_threshold: Reg::new(d.xover_threshold),
            mut_threshold: Reg::new(d.mut_threshold),
            seed: Reg::new(d.seed),
            cur_base: Reg::new(BANK0_BASE),
            new_base: Reg::new(BANK1_BASE),
            gen: Reg::default(),
            fit_sum: Reg::default(),
            new_sum: Reg::default(),
            best: Reg::default(),
            new_best: Reg::default(),
            i: Reg::default(),
            idx: Reg::default(),
            scan_idx: Reg::default(),
            threshold: Reg::default(),
            cum: Reg::default(),
            mult_cnt: Reg::default(),
            sel_phase: Reg::default(),
            parent1: Reg::default(),
            parent2: Reg::default(),
            off1: Reg::default(),
            off2: Reg::default(),
            off_phase: Reg::default(),
            cand: Reg::default(),
            fit_reg: Reg::default(),
            fit_request: Reg::default(),
            mem_address: Reg::default(),
            mem_data_out: Reg::default(),
            mem_wr: Reg::default(),
            ga_done: Reg::default(),
            init_hs: AckSlave::default(),
            test_prev: Reg::default(),
            scanout: Reg::default(),
            scan_chain: Vec::new(),
            rng_draws: 0,
            profile: CyclesByPhase::default(),
        }
    }

    /// Registered outputs (Table II).
    pub fn out(&self) -> GaCoreOut {
        GaCoreOut {
            data_ack: self.init_hs.ack(),
            fit_request: self.fit_request.get(),
            candidate: self.cand.get(),
            mem_address: self.mem_address.get(),
            mem_data_out: self.mem_data_out.get(),
            mem_wr: self.mem_wr.get(),
            ga_done: self.ga_done.get(),
            scanout: self.scanout.get(),
        }
    }

    /// The parameter registers as currently programmed.
    pub fn programmed_params(&self) -> GaParams {
        GaParams {
            pop_size: self.pop_size.get(),
            n_gens: self.n_gens.get(),
            xover_threshold: self.xover_threshold.get(),
            mut_threshold: self.mut_threshold.get(),
            seed: self.seed.get(),
        }
    }

    /// Number of RNG draws consumed since reset (instrumentation).
    pub fn rng_draws(&self) -> u64 {
        self.rng_draws
    }

    /// Per-phase cycle profile since reset (instrumentation).
    pub fn profile(&self) -> CyclesByPhase {
        self.profile
    }

    /// Base address of the bank holding the *current* population
    /// (testbench probe for differential checks).
    pub fn current_bank_base(&self) -> u8 {
        self.cur_base.get()
    }

    /// Current generation counter.
    pub fn generation(&self) -> u32 {
        self.gen.get()
    }

    /// Best individual register (testbench probe).
    pub fn best_individual(&self) -> Individual {
        self.best_ind()
    }

    /// Population fitness-sum register (testbench probe).
    pub fn fitness_sum(&self) -> u32 {
        self.fit_sum.get()
    }

    /// True when the optimizer is in its final state.
    pub fn is_done(&self) -> bool {
        self.state.get() == State::Done
    }

    /// Status wire for the dual-core scaling logic: the core is in its
    /// selection-scan data state this cycle (its memory-read fitness may
    /// be intercepted by `scalingLogic_parSel`).
    pub fn is_sel_scanning(&self) -> bool {
        self.state.get() == State::SelScanData
    }

    /// Status wire: the core computes its selection threshold this
    /// cycle (the slave core's `rn` is forced to zero here so any
    /// forced-max fitness wins the scan).
    pub fn is_sel_draw(&self) -> bool {
        self.state.get() == State::SelDraw
    }

    fn best_ind(&self) -> Individual {
        unpack(self.best.get())
    }

    fn new_best_ind(&self) -> Individual {
        unpack(self.new_best.get())
    }

    /// Evaluation phase. Returns the same-cycle combinational outputs
    /// (RNG wires + probe event).
    pub fn eval(&mut self, i: &GaCoreIn) -> GaCoreComb {
        let mut comb = GaCoreComb::default();

        // --- scan-chain test mode freezes the FSM ---------------------
        if i.test || self.test_prev.get() {
            self.eval_scan(i);
            if i.test {
                self.test_prev.set(true);
                return comb;
            }
        }
        self.test_prev.set(i.test);

        // Per-phase cycle tally (instrumentation only).
        match self.state.get() {
            State::Idle | State::Start | State::GenCheck | State::GenEnd | State::Done => {
                self.profile.control += 1;
            }
            State::InitParams => self.profile.init_params += 1,
            State::InitPopDraw | State::InitPopStore | State::InitPopUpdate => {
                self.profile.init_pop += 1;
            }
            State::InitPopFitReq | State::InitPopFitWait => self.profile.fitness_wait += 1,
            State::SelDraw
            | State::SelMulWait
            | State::SelScanAddr
            | State::SelScanWait
            | State::SelScanData => self.profile.selection += 1,
            State::XoverDecide | State::MutDecide => self.profile.breeding += 1,
            State::OffFitReq | State::OffFitWait => self.profile.fitness_wait += 1,
            State::ElitWrite | State::OffStore | State::OffUpdate => self.profile.store += 1,
        }

        // Defaults staged every cycle; states override below.
        self.mem_wr.set(false);

        // Fitness response mux: internal FEM bank or the external ports
        // (Table II 24–25) — unselected modules keep quiet, so the
        // first asserted valid wins.
        let valid_any = i.fit_valid || i.fit_valid_ext;
        let value_any = if i.fit_valid {
            i.fit_value
        } else {
            i.fit_value_ext
        };

        let pop = self.pop_size.get();

        match self.state.get() {
            State::Idle => {
                self.ga_done.set(false);
                if i.ga_load {
                    self.state.set(State::InitParams);
                } else if i.start_ga {
                    self.state.set(State::Start);
                }
            }

            State::InitParams => {
                let payload = ((i.index as u32) << 16) | i.value as u32;
                if let Some(p) = self.init_hs.eval(i.data_valid, payload) {
                    let idx = ((p >> 16) & 0x7) as u8;
                    let value = (p & 0xFFFF) as u16;
                    if let Some(pi) = ParamIndex::from_bus(idx) {
                        self.apply_param_write(pi, value);
                    }
                }
                if !i.ga_load {
                    self.state.set(State::Idle);
                }
            }

            State::Start => {
                // Preset resolution (Table IV): a nonzero preset bus
                // overrides the programmed registers, providing the
                // ASIC fault-tolerance path of §III-C.1.
                let mode = PresetMode::from_bus(i.preset);
                let effective = match GaParams::preset(mode) {
                    Some(p) => {
                        self.pop_size.set(p.pop_size);
                        self.n_gens.set(p.n_gens);
                        self.xover_threshold.set(p.xover_threshold);
                        self.mut_threshold.set(p.mut_threshold);
                        self.seed.set(p.seed);
                        p
                    }
                    None => self.programmed_params(),
                };
                comb.rn_seed_load = Some(effective.seed);
                self.cur_base.set(BANK0_BASE);
                self.new_base.set(BANK1_BASE);
                self.gen.set(0);
                self.fit_sum.set(0);
                self.best.set(0);
                self.i.set(0);
                self.ga_done.set(false);
                self.state.set(State::InitPopDraw);
            }

            // --- initial population ----------------------------------
            State::InitPopDraw => {
                self.cand.set(i.rn);
                comb.rn_consume = true;
                self.rng_draws += 1;
                self.state.set(State::InitPopFitReq);
            }
            State::InitPopFitReq => {
                self.fit_request.set(true);
                self.state.set(State::InitPopFitWait);
            }
            State::InitPopFitWait => {
                if valid_any {
                    self.fit_reg.set(value_any);
                    self.fit_request.set(false);
                    self.state.set(State::InitPopStore);
                }
            }
            State::InitPopStore => {
                self.mem_address
                    .set(self.cur_base.get().wrapping_add(self.i.get()));
                self.mem_data_out.set(pack(Individual {
                    chrom: self.cand.get(),
                    fitness: self.fit_reg.get(),
                }));
                self.mem_wr.set(true);
                self.state.set(State::InitPopUpdate);
            }
            State::InitPopUpdate => {
                let f = self.fit_reg.get();
                let sum = self.fit_sum.get().wrapping_add(f as u32);
                self.fit_sum.set(sum);
                let cur_best = self.best_ind();
                let is_better = self.i.get() == 0 || f > cur_best.fitness;
                let best_now = if is_better {
                    let b = Individual {
                        chrom: self.cand.get(),
                        fitness: f,
                    };
                    self.best.set(pack(b));
                    b
                } else {
                    cur_best
                };
                let ni = self.i.get().wrapping_add(1);
                self.i.set(ni);
                if ni == pop {
                    comb.stats_event = Some((0, best_now.chrom, best_now.fitness, sum));
                    self.state.set(State::GenCheck);
                } else {
                    self.state.set(State::InitPopDraw);
                }
            }

            State::GenCheck => {
                if self.gen.get() == self.n_gens.get() {
                    self.cand.set(self.best_ind().chrom);
                    self.ga_done.set(true);
                    self.state.set(State::Done);
                } else {
                    self.state.set(State::ElitWrite);
                }
            }

            // --- one generation --------------------------------------
            State::ElitWrite => {
                let elite = self.best_ind();
                self.mem_address.set(self.new_base.get());
                self.mem_data_out.set(pack(elite));
                self.mem_wr.set(true);
                self.new_sum.set(elite.fitness as u32);
                self.new_best.set(pack(elite));
                self.idx.set(1);
                self.sel_phase.set(false);
                self.state.set(State::SelDraw);
            }

            State::SelDraw => {
                self.threshold
                    .set(ops::selection_threshold(self.fit_sum.get(), i.rn));
                comb.rn_consume = true;
                self.rng_draws += 1;
                self.cum.set(0);
                self.scan_idx.set(0);
                // Sequential 24×16 multiplier: three further cycles.
                self.mult_cnt.set(3);
                self.state.set(State::SelMulWait);
            }
            State::SelMulWait => {
                let c = self.mult_cnt.get();
                if c == 0 {
                    self.state.set(State::SelScanAddr);
                } else {
                    self.mult_cnt.set(c - 1);
                }
            }
            State::SelScanAddr => {
                self.mem_address
                    .set(self.cur_base.get().wrapping_add(self.scan_idx.get()));
                self.state.set(State::SelScanWait);
            }
            State::SelScanWait => {
                self.state.set(State::SelScanData);
            }
            State::SelScanData => {
                let ind = unpack(i.mem_data_in);
                let cum = self.cum.get().wrapping_add(ind.fitness as u32);
                let last = self.scan_idx.get() == pop - 1;
                if ops::selection_hit(cum, self.threshold.get()) || last {
                    comb.sel_hit = true;
                    if !self.sel_phase.get() {
                        self.parent1.set(ind.chrom);
                        self.sel_phase.set(true);
                        self.state.set(State::SelDraw);
                    } else {
                        self.parent2.set(ind.chrom);
                        self.state.set(State::XoverDecide);
                    }
                } else {
                    self.cum.set(cum);
                    self.scan_idx.set(self.scan_idx.get().wrapping_add(1));
                    self.state.set(State::SelScanAddr);
                }
            }

            State::XoverDecide => {
                // One draw carries both fields (§III-B.7 "predefined
                // positions"; ops::xover_fields documents why).
                comb.rn_consume = true;
                self.rng_draws += 1;
                let (xd, cut) = ops::xover_fields(i.rn);
                let (o1, o2) = if ops::decision(xd, self.xover_threshold.get()) {
                    ops::crossover(self.parent1.get(), self.parent2.get(), cut)
                } else {
                    (self.parent1.get(), self.parent2.get())
                };
                self.off1.set(o1);
                self.off2.set(o2);
                self.off_phase.set(false);
                self.state.set(State::MutDecide);
            }
            State::MutDecide => {
                comb.rn_consume = true;
                self.rng_draws += 1;
                let (md, point) = ops::mut_fields(i.rn);
                if ops::decision(md, self.mut_threshold.get()) {
                    if self.off_phase.get() {
                        self.off2.set(ops::mutate(self.off2.get(), point));
                    } else {
                        self.off1.set(ops::mutate(self.off1.get(), point));
                    }
                }
                self.state.set(State::OffFitReq);
            }
            State::OffFitReq => {
                let chrom = if self.off_phase.get() {
                    self.off2.get()
                } else {
                    self.off1.get()
                };
                self.cand.set(chrom);
                self.fit_request.set(true);
                self.state.set(State::OffFitWait);
            }
            State::OffFitWait => {
                if valid_any {
                    self.fit_reg.set(value_any);
                    self.fit_request.set(false);
                    self.state.set(State::OffStore);
                }
            }
            State::OffStore => {
                self.mem_address
                    .set(self.new_base.get().wrapping_add(self.idx.get()));
                self.mem_data_out.set(pack(Individual {
                    chrom: self.cand.get(),
                    fitness: self.fit_reg.get(),
                }));
                self.mem_wr.set(true);
                self.state.set(State::OffUpdate);
            }
            State::OffUpdate => {
                let f = self.fit_reg.get();
                self.new_sum.set(self.new_sum.get().wrapping_add(f as u32));
                if f > self.new_best_ind().fitness {
                    self.new_best.set(pack(Individual {
                        chrom: self.cand.get(),
                        fitness: f,
                    }));
                }
                let ni = self.idx.get().wrapping_add(1);
                self.idx.set(ni);
                if ni == pop {
                    self.state.set(State::GenEnd);
                } else if !self.off_phase.get() {
                    self.off_phase.set(true);
                    self.state.set(State::MutDecide);
                } else {
                    self.sel_phase.set(false);
                    self.state.set(State::SelDraw);
                }
            }
            State::GenEnd => {
                // Swap population banks; publish the generation's best
                // on the candidate bus (§III-C.3: available "in case of
                // an emergency").
                let cb = self.cur_base.get();
                self.cur_base.set(self.new_base.get());
                self.new_base.set(cb);
                self.fit_sum.set(self.new_sum.get());
                let nb = self.new_best_ind();
                self.best.set(pack(nb));
                let g = self.gen.get().wrapping_add(1);
                self.gen.set(g);
                self.cand.set(nb.chrom);
                comb.stats_event = Some((g, nb.chrom, nb.fitness, self.new_sum.get()));
                self.state.set(State::GenCheck);
            }

            State::Done => {
                self.cand.set(self.best_ind().chrom);
                if i.start_ga {
                    // Restart: drop GA_done immediately so the
                    // application's completion edge is unambiguous.
                    self.ga_done.set(false);
                    self.state.set(State::Start);
                } else if i.ga_load {
                    self.ga_done.set(false);
                    self.state.set(State::InitParams);
                } else {
                    self.ga_done.set(true);
                }
            }
        }

        comb
    }

    fn apply_param_write(&mut self, idx: ParamIndex, value: u16) {
        match idx {
            ParamIndex::NumGensLo => {
                self.n_gens
                    .set((self.n_gens.get() & 0xFFFF_0000) | value as u32);
            }
            ParamIndex::NumGensHi => {
                self.n_gens
                    .set((self.n_gens.get() & 0x0000_FFFF) | ((value as u32) << 16));
            }
            ParamIndex::PopSize => self.pop_size.set(value as u8),
            ParamIndex::CrossoverRate => self.xover_threshold.set((value & 0xF) as u8),
            ParamIndex::MutationRate => self.mut_threshold.set((value & 0xF) as u8),
            ParamIndex::RngSeed => self.seed.set(value),
        }
    }

    // --- scan chain (§III-C.2) ---------------------------------------

    /// Serialize the architectural registers into the scan chain, in the
    /// documented order (LSB first within each field).
    fn scan_serialize(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(Self::SCAN_LENGTH);
        let mut push = |v: u64, w: u32| {
            for b in 0..w {
                bits.push((v >> b) & 1 == 1);
            }
        };
        push(self.seed.get() as u64, 16);
        push(self.pop_size.get() as u64, 8);
        push(self.n_gens.get() as u64, 32);
        push(self.xover_threshold.get() as u64, 4);
        push(self.mut_threshold.get() as u64, 4);
        push(self.cand.get() as u64, 16);
        push(self.fit_reg.get() as u64, 16);
        push(self.parent1.get() as u64, 16);
        push(self.parent2.get() as u64, 16);
        push(self.off1.get() as u64, 16);
        push(self.off2.get() as u64, 16);
        push(self.best.get() as u64, 32);
        push(self.new_best.get() as u64, 32);
        push(self.fit_sum.get() as u64, 32);
        push(self.new_sum.get() as u64, 32);
        push(self.threshold.get() as u64, 32);
        push(self.cum.get() as u64, 32);
        push(self.i.get() as u64, 8);
        push(self.idx.get() as u64, 8);
        push(self.scan_idx.get() as u64, 8);
        push(self.gen.get() as u64, 32);
        debug_assert_eq!(bits.len(), Self::SCAN_LENGTH);
        bits
    }

    /// Deserialize the scan chain back into the registers.
    fn scan_deserialize(&mut self, bits: &[bool]) {
        let mut pos = 0usize;
        let mut pull = |w: u32| -> u64 {
            let mut v = 0u64;
            for b in 0..w {
                if bits[pos + b as usize] {
                    v |= 1 << b;
                }
            }
            pos += w as usize;
            v
        };
        let seed = pull(16) as u16;
        let pop = pull(8) as u8;
        let ngens = pull(32) as u32;
        let xt = pull(4) as u8;
        let mt = pull(4) as u8;
        let cand = pull(16) as u16;
        let fit = pull(16) as u16;
        let p1 = pull(16) as u16;
        let p2 = pull(16) as u16;
        let o1 = pull(16) as u16;
        let o2 = pull(16) as u16;
        let best = pull(32) as u32;
        let nbest = pull(32) as u32;
        let fsum = pull(32) as u32;
        let nsum = pull(32) as u32;
        let thr = pull(32) as u32;
        let cum = pull(32) as u32;
        let i = pull(8) as u8;
        let idx = pull(8) as u8;
        let sidx = pull(8) as u8;
        let gen = pull(32) as u32;
        self.seed.set(seed);
        self.pop_size.set(pop);
        self.n_gens.set(ngens);
        self.xover_threshold.set(xt);
        self.mut_threshold.set(mt);
        self.cand.set(cand);
        self.fit_reg.set(fit);
        self.parent1.set(p1);
        self.parent2.set(p2);
        self.off1.set(o1);
        self.off2.set(o2);
        self.best.set(best);
        self.new_best.set(nbest);
        self.fit_sum.set(fsum);
        self.new_sum.set(nsum);
        self.threshold.set(thr);
        self.cum.set(cum);
        self.i.set(i);
        self.idx.set(idx);
        self.scan_idx.set(sidx);
        self.gen.set(gen);
    }

    /// Total scan-chain length in bits.
    pub const SCAN_LENGTH: usize = 16 + 8 + 32 + 4 + 4 + 16 * 6 + 32 * 6 + 8 * 3 + 32;

    /// `(field, width)` of every architectural register on the scan
    /// chain, in serialization order (LSB first within each field).
    /// This is the bit-position map of `scan_serialize` /
    /// `scan_deserialize`; static analyses join fault-campaign scan
    /// positions with gate-level register indices through it.
    pub const SCAN_FIELDS: &'static [(&'static str, usize)] = &[
        ("seed", 16),
        ("pop_size", 8),
        ("n_gens", 32),
        ("xover_threshold", 4),
        ("mut_threshold", 4),
        ("cand", 16),
        ("fit_reg", 16),
        ("parent1", 16),
        ("parent2", 16),
        ("off1", 16),
        ("off2", 16),
        ("best", 32),
        ("new_best", 32),
        ("fit_sum", 32),
        ("new_sum", 32),
        ("threshold", 32),
        ("cum", 32),
        ("i", 8),
        ("idx", 8),
        ("scan_idx", 8),
        ("gen", 32),
    ];

    fn eval_scan(&mut self, i: &GaCoreIn) {
        let rising = i.test && !self.test_prev.get();
        let falling = !i.test && self.test_prev.get();
        if rising {
            self.scan_chain = self.scan_serialize();
        }
        if i.test && !self.scan_chain.is_empty() {
            // Shift one position: scanout takes the tail, scanin enters
            // at the head.
            let out = self.scan_chain.pop().expect("chain non-empty");
            self.scanout.set(out);
            self.scan_chain.insert(0, i.scanin);
        }
        if falling && self.scan_chain.len() == Self::SCAN_LENGTH {
            let bits = std::mem::take(&mut self.scan_chain);
            self.scan_deserialize(&bits);
        } else if falling {
            self.scan_chain.clear();
        }
    }
}

impl Clocked for GaCoreHw {
    fn reset(&mut self) {
        *self = GaCoreHw::new();
    }

    fn commit(&mut self) {
        self.state.commit();
        self.pop_size.commit();
        self.n_gens.commit();
        self.xover_threshold.commit();
        self.mut_threshold.commit();
        self.seed.commit();
        self.cur_base.commit();
        self.new_base.commit();
        self.gen.commit();
        self.fit_sum.commit();
        self.new_sum.commit();
        self.best.commit();
        self.new_best.commit();
        self.i.commit();
        self.idx.commit();
        self.scan_idx.commit();
        self.threshold.commit();
        self.cum.commit();
        self.mult_cnt.commit();
        self.sel_phase.commit();
        self.parent1.commit();
        self.parent2.commit();
        self.off1.commit();
        self.off2.commit();
        self.off_phase.commit();
        self.cand.commit();
        self.fit_reg.commit();
        self.fit_request.commit();
        self.mem_address.commit();
        self.mem_data_out.commit();
        self.mem_wr.commit();
        self.ga_done.commit();
        self.init_hs.commit();
        self.test_prev.commit();
        self.scanout.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_defaults_are_sane() {
        let core = GaCoreHw::new();
        assert!(core.programmed_params().validate().is_ok());
        assert!(!core.out().ga_done);
        assert!(!core.out().fit_request);
    }

    #[test]
    fn scan_length_counts_every_register() {
        let core = GaCoreHw::new();
        assert_eq!(core.scan_serialize().len(), GaCoreHw::SCAN_LENGTH);
        assert_eq!(GaCoreHw::SCAN_LENGTH, 408);
    }

    #[test]
    fn scan_fields_tile_the_chain() {
        let total: usize = GaCoreHw::SCAN_FIELDS.iter().map(|&(_, w)| w).sum();
        assert_eq!(total, GaCoreHw::SCAN_LENGTH);
        // Field positions must match the serializer: setting one field
        // to all-ones lights up exactly its bit span.
        let mut offset = 0usize;
        for &(name, width) in GaCoreHw::SCAN_FIELDS {
            let mut core = GaCoreHw::new();
            match name {
                "seed" => core.seed.reset_to(0xFFFF),
                "pop_size" => core.pop_size.reset_to(0xFF),
                "n_gens" => core.n_gens.reset_to(u32::MAX),
                "xover_threshold" => core.xover_threshold.reset_to(0xF),
                "mut_threshold" => core.mut_threshold.reset_to(0xF),
                "cand" => core.cand.reset_to(0xFFFF),
                "fit_reg" => core.fit_reg.reset_to(0xFFFF),
                "parent1" => core.parent1.reset_to(0xFFFF),
                "parent2" => core.parent2.reset_to(0xFFFF),
                "off1" => core.off1.reset_to(0xFFFF),
                "off2" => core.off2.reset_to(0xFFFF),
                "best" => core.best.reset_to(u32::MAX),
                "new_best" => core.new_best.reset_to(u32::MAX),
                "fit_sum" => core.fit_sum.reset_to(u32::MAX),
                "new_sum" => core.new_sum.reset_to(u32::MAX),
                "threshold" => core.threshold.reset_to(u32::MAX),
                "cum" => core.cum.reset_to(u32::MAX),
                "i" => core.i.reset_to(0xFF),
                "idx" => core.idx.reset_to(0xFF),
                "scan_idx" => core.scan_idx.reset_to(0xFF),
                "gen" => core.gen.reset_to(u32::MAX),
                other => panic!("unmapped scan field {other}"),
            }
            let baseline = GaCoreHw::new().scan_serialize();
            let bits = core.scan_serialize();
            for (i, (&b, &base)) in bits.iter().zip(&baseline).enumerate() {
                if (offset..offset + width).contains(&i) {
                    assert!(b, "field '{name}' bit {i} not in its span");
                } else {
                    assert_eq!(b, base, "field '{name}' leaked into bit {i}");
                }
            }
            offset += width;
        }
    }

    #[test]
    fn scan_roundtrip_preserves_registers() {
        let mut core = GaCoreHw::new();
        core.seed.reset_to(0xDEAD);
        core.fit_sum.reset_to(123_456);
        core.parent1.reset_to(0x5A5A);
        let bits = core.scan_serialize();
        let mut other = GaCoreHw::new();
        other.scan_deserialize(&bits);
        other.commit();
        assert_eq!(other.seed.get(), 0xDEAD);
        assert_eq!(other.fit_sum.get(), 123_456);
        assert_eq!(other.parent1.get(), 0x5A5A);
    }

    #[test]
    fn full_scan_shift_restores_state() {
        // Shifting the entire chain through test mode with the original
        // serial stream re-fed must restore the registers bit-exactly.
        let mut core = GaCoreHw::new();
        core.seed.reset_to(0xBEEF);
        core.best.reset_to(0x1234_5678);
        let reference = core.scan_serialize();

        // Enter test mode and shift SCAN_LENGTH bits, feeding the
        // captured stream back in (out bit k is chain tail; feeding the
        // same stream back in restores the original contents).
        let mut captured = Vec::new();
        for k in 0..GaCoreHw::SCAN_LENGTH {
            // Feed the original stream tail-first so a full rotation
            // leaves the chain exactly as captured: after L shifts the
            // chain is the reversed feed, so feed[k] = reference[L-1-k].
            let feed = reference[GaCoreHw::SCAN_LENGTH - 1 - k];
            let input = GaCoreIn {
                test: true,
                scanin: feed,
                ..Default::default()
            };
            core.eval(&input);
            core.commit();
            captured.push(core.out().scanout);
        }
        // The captured stream is the chain tail-first.
        let expected: Vec<bool> = reference.iter().rev().copied().collect();
        assert_eq!(captured, expected);

        // Drop test: registers reload from the (rotated-back) chain.
        let input = GaCoreIn::default();
        core.eval(&input);
        core.commit();
        assert_eq!(core.seed.get(), 0xBEEF);
        assert_eq!(core.best.get(), 0x1234_5678);
    }

    #[test]
    fn test_mode_freezes_the_fsm() {
        let mut core = GaCoreHw::new();
        let input = GaCoreIn {
            test: true,
            start_ga: true,
            ..Default::default()
        };
        for _ in 0..5 {
            core.eval(&input);
            core.commit();
        }
        assert_eq!(
            core.state.get(),
            State::Idle,
            "start_GA ignored in test mode"
        );
    }

    #[test]
    fn start_enters_optimization() {
        let mut core = GaCoreHw::new();
        let start = GaCoreIn {
            start_ga: true,
            ..Default::default()
        };
        let comb = core.eval(&start);
        assert!(comb.rn_seed_load.is_none(), "seed loads in Start, not Idle");
        core.commit();
        assert_eq!(core.state.get(), State::Start);
        let comb = core.eval(&GaCoreIn::default());
        assert_eq!(comb.rn_seed_load, Some(GaParams::default().seed));
        core.commit();
        assert_eq!(core.state.get(), State::InitPopDraw);
    }

    #[test]
    fn profile_accounts_for_every_cycle() {
        use crate::system::{GaSystem, UserIn};
        use ga_fitness::{FemBank, FemSlot, LookupFem, TestFunction};
        let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(TestFunction::F3),
        )]));
        let params = GaParams::new(8, 3, 10, 1, 0x2961);
        sys.program_and_run(&params, 10_000_000).unwrap();
        // One more idle step so the final Done-state cycle is tallied.
        sys.step(UserIn::default());
        let p = sys.modules().core.profile();
        // Every clocked cycle lands in exactly one bucket.
        assert_eq!(p.total(), sys.cycles());
        // Selection dominates the paper's workload shape even at pop 8.
        assert!(p.selection > p.breeding);
        assert!(p.fitness_wait > 0 && p.init_params > 0);
    }

    #[test]
    fn preset_bus_overrides_programmed_registers() {
        let mut core = GaCoreHw::new();
        core.eval(&GaCoreIn {
            start_ga: true,
            ..Default::default()
        });
        core.commit();
        let comb = core.eval(&GaCoreIn {
            preset: 0b10,
            ..Default::default()
        });
        core.commit();
        let p = GaParams::preset(PresetMode::Medium).unwrap();
        assert_eq!(core.programmed_params(), p);
        assert_eq!(comb.rn_seed_load, Some(p.seed));
    }
}
