//! The complete GA module of Fig. 4: core + RNG + GA memory + FEM bank,
//! wired exactly as the paper's block diagram, plus the user-side
//! initialization module and a Chipscope-style probe.
//!
//! The per-cycle evaluation order implements the combinational wiring:
//! every module's registered outputs are sampled first, then each module
//! evaluates against those samples; the core's same-cycle combinational
//! outputs (RNG consume/seed wires) feed the RNG module inside the same
//! phase (an acyclic combinational path). A single commit latches the
//! whole system — one rising clock edge at 50 MHz.

use ga_fitness::fem::{Fem, FemBank, FemBankIn, FemIn};
use hwsim::vcd::VcdVar;
use hwsim::{Clocked, HandshakeMonitor, Sim, SimError, Trace, VcdWriter};

use crate::behavioral::{GaRun, GenStats, Individual};
use crate::hwcore::GaCoreHw;
use crate::memory::GaMemory;
use crate::params::GaParams;
use crate::ports::GaCoreIn;
use crate::rngmod::RngModule;

/// User-driven inputs for one clock cycle (everything in [`GaCoreIn`]
/// that does not come from the wired modules).
#[derive(Debug, Clone, Copy, Default)]
pub struct UserIn {
    /// `start_GA` pulse.
    pub start_ga: bool,
    /// `ga_load` — parameter initialization mode.
    pub ga_load: bool,
    /// Parameter index bus.
    pub index: u8,
    /// Parameter value bus.
    pub value: u16,
    /// Initialization handshake strobe.
    pub data_valid: bool,
    /// Scan-test enable.
    pub test: bool,
    /// Scan-chain input.
    pub scanin: bool,
}

/// The clocked modules of the GA system (one commit = one clock edge).
pub struct GaModules {
    /// The GA IP core.
    pub core: GaCoreHw,
    /// The RNG module.
    pub rng: RngModule,
    /// The 256×32 GA memory.
    pub mem: GaMemory,
    /// The 8-slot fitness bank.
    pub fems: FemBank,
    /// Optional external fitness module "on another chip" (hybrid
    /// intrinsic EHW, Fig. 5). Driven by the bank's forwarded request.
    pub ext_fem: Option<Box<dyn Fem>>,
}

impl Clocked for GaModules {
    fn reset(&mut self) {
        self.core.reset();
        self.rng.reset();
        self.mem.reset();
        self.fems.reset();
        if let Some(e) = self.ext_fem.as_mut() {
            e.reset();
        }
    }

    fn commit(&mut self) {
        self.core.commit();
        self.rng.commit();
        self.mem.commit();
        self.fems.commit();
        if let Some(e) = self.ext_fem.as_mut() {
            e.commit();
        }
    }
}

/// Result of a hardware run.
#[derive(Debug, Clone, PartialEq)]
pub struct HwRun {
    /// Best individual (from the candidate bus when `GA_done` rose,
    /// fitness from the final stats event).
    pub best: Individual,
    /// Clock cycles from `start_GA` to `GA_done`.
    pub cycles: u64,
    /// Wall-clock seconds at the 50 MHz GA clock.
    pub seconds: f64,
    /// Per-generation statistics captured by the probe.
    pub history: Vec<GenStats>,
    /// RNG draws consumed (instrumentation).
    pub rng_draws: u64,
}

impl HwRun {
    /// View as a [`GaRun`] for shared analysis code (convergence etc.).
    pub fn as_ga_run(&self) -> GaRun {
        GaRun {
            best: self.best,
            history: self.history.clone(),
            evaluations: 0,
            rng_draws: self.rng_draws,
        }
    }
}

/// The complete, wired GA system.
pub struct GaSystem {
    modules: GaModules,
    sim: Sim,
    /// 3-bit fitness function select presented to the bank and core.
    pub fitfunc_select: u8,
    /// 2-bit preset bus.
    pub preset: u8,
    /// Clock ratio of the application domain to the GA domain. The
    /// paper's board uses a DCM to run the GA module at 50 MHz and the
    /// initialization/application (FEM) modules at 200 MHz — ratio 4.
    /// The level-based handshakes make the crossing safe; a higher
    /// ratio shortens every fitness transaction as seen in GA cycles.
    pub fast_domain_ratio: u32,
    trace: Trace,
    history: Vec<GenStats>,
    pop_size_hint: u8,
    vcd: Option<VcdCapture>,
    monitor: Option<HandshakeMonitor>,
}

/// Waveform capture of the Table II interface (the ModelSim view).
struct VcdCapture {
    writer: VcdWriter,
    candidate: VcdVar,
    fit_request: VcdVar,
    fit_valid: VcdVar,
    mem_address: VcdVar,
    mem_wr: VcdVar,
    ga_done: VcdVar,
    rn: VcdVar,
}

impl GaSystem {
    /// Build a system around a fitness bank, with the paper's CA RNG.
    pub fn new(fems: FemBank) -> Self {
        let mut modules = GaModules {
            core: GaCoreHw::new(),
            rng: RngModule::new_ca(1),
            mem: GaMemory::new(),
            fems,
            ext_fem: None,
        };
        modules.reset();
        GaSystem {
            modules,
            sim: Sim::new_50mhz(),
            fitfunc_select: 0,
            preset: 0,
            fast_domain_ratio: 1,
            trace: Trace::new(),
            history: Vec::new(),
            pop_size_hint: GaParams::default().pop_size,
            vcd: None,
            monitor: None,
        }
    }

    /// Attach a protocol-assertion monitor to the fitness handshake;
    /// inspect it with [`GaSystem::protocol_monitor`] after the run.
    pub fn enable_protocol_monitor(&mut self) {
        // The slowest in-tree FEM (mShubert CORDIC) answers within ~350
        // fast-domain cycles; the drain bound only polices the *release*
        // side, which is a handful of cycles for every FEM.
        self.monitor = Some(HandshakeMonitor::new("fitness", 8));
    }

    /// The attached protocol monitor, if any.
    pub fn protocol_monitor(&self) -> Option<&HandshakeMonitor> {
        self.monitor.as_ref()
    }

    /// Start capturing a VCD waveform of the Table II interface signals
    /// (one sample per clock). Call [`GaSystem::finish_vcd`] to render.
    pub fn start_vcd(&mut self) {
        let mut writer = VcdWriter::new("ga_system", self.sim.period_ps());
        let candidate = writer.add_var("candidate", 16);
        let fit_request = writer.add_var("fit_request", 1);
        let fit_valid = writer.add_var("fit_valid", 1);
        let mem_address = writer.add_var("mem_address", 8);
        let mem_wr = writer.add_var("mem_wr", 1);
        let ga_done = writer.add_var("GA_done", 1);
        let rn = writer.add_var("rn", 16);
        self.vcd = Some(VcdCapture {
            writer,
            candidate,
            fit_request,
            fit_valid,
            mem_address,
            mem_wr,
            ga_done,
            rn,
        });
    }

    /// Stop capturing and render the VCD document, if capture was on.
    pub fn finish_vcd(&mut self) -> Option<String> {
        self.vcd.take().map(|c| c.writer.finish())
    }

    /// Replace the RNG module (e.g. with the LFSR kernel).
    pub fn with_rng(mut self, rng: RngModule) -> Self {
        self.modules.rng = rng;
        self
    }

    /// Attach an external fitness module (hybrid EHW configuration,
    /// Fig. 5). Route requests to it by selecting the bank slot that is
    /// declared [`ga_fitness::FemSlot::External`].
    pub fn with_external_fem(mut self, fem: Box<dyn Fem>) -> Self {
        self.modules.ext_fem = Some(fem);
        self
    }

    /// Access the wired modules (testbench backdoors).
    pub fn modules(&self) -> &GaModules {
        &self.modules
    }

    /// Elapsed cycles since construction.
    pub fn cycles(&self) -> u64 {
        self.sim.cycles()
    }

    /// The Chipscope-style trace (best/sum per generation).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// One clock cycle of the whole system.
    pub fn step(&mut self, user: UserIn) {
        let select = self.fitfunc_select;
        let preset = self.preset;
        let ratio = self.fast_domain_ratio.max(1);
        let m = &mut self.modules;
        let mut stats: Option<(u32, u16, u16, u32)> = None;

        self.sim.step(m, |m| {
            // Sample registered outputs.
            let core_out = m.core.out();
            let ext_out = m.ext_fem.as_ref().map(|e| e.out()).unwrap_or_default();
            let fem_out = m.fems.out(select, ext_out.fit_value, ext_out.fit_valid);
            let rn = m.rng.rn();
            let mem_dout = m.mem.dout();
            let ext_req = m.fems.ext_request();

            // Core evaluation (combinational RNG wires come back).
            let comb = m.core.eval(&GaCoreIn {
                ga_load: user.ga_load,
                index: user.index,
                value: user.value,
                data_valid: user.data_valid,
                fit_value: fem_out.fit_value,
                fit_valid: fem_out.fit_valid,
                mem_data_in: mem_dout,
                start_ga: user.start_ga,
                test: user.test,
                scanin: user.scanin,
                preset,
                rn,
                fitfunc_select: select,
                fit_value_ext: 0,
                fit_valid_ext: false,
            });
            stats = comb.stats_event;

            // RNG sees the core's same-cycle wires.
            m.rng.eval(comb.rn_consume, comb.rn_seed_load);
            // Memory and FEM bank see the core's registered outputs.
            m.mem
                .eval(core_out.mem_address, core_out.mem_data_out, core_out.mem_wr);
            // The FEM bank (and external module) live in the fast
            // application-clock domain: they get `ratio` clock edges per
            // GA cycle, seeing the core's (stable) registered outputs.
            for sub in 0..ratio {
                let ext_now = m.ext_fem.as_ref().map(|e| e.out()).unwrap_or_default();
                let ext_req_now = m.fems.ext_request();
                m.fems.eval(FemBankIn {
                    fit_request: core_out.fit_request,
                    candidate: core_out.candidate,
                    select,
                    ext_value: ext_now.fit_value,
                    ext_valid: ext_now.fit_valid,
                });
                if let Some(e) = m.ext_fem.as_mut() {
                    e.eval(FemIn {
                        fit_request: if sub == 0 { ext_req } else { ext_req_now },
                        candidate: core_out.candidate,
                    });
                }
                // All but the last fast edge commit inside the GA cycle;
                // the final one rides the common commit below.
                if sub + 1 < ratio {
                    m.fems.commit();
                    if let Some(e) = m.ext_fem.as_mut() {
                        e.commit();
                    }
                }
            }
        });

        if let Some(mon) = self.monitor.as_mut() {
            let o = self.modules.core.out();
            let fem_o = self.modules.fems.out(select, 0, false);
            mon.observe(o.fit_request, fem_o.fit_valid);
        }

        if let Some(cap) = self.vcd.as_mut() {
            let t = self.sim.cycles();
            let o = self.modules.core.out();
            let fem_o = self.modules.fems.out(select, 0, false);
            cap.writer.change(cap.candidate, t, o.candidate as u64);
            cap.writer.change(cap.fit_request, t, o.fit_request as u64);
            cap.writer.change(cap.fit_valid, t, fem_o.fit_valid as u64);
            cap.writer.change(cap.mem_address, t, o.mem_address as u64);
            cap.writer.change(cap.mem_wr, t, o.mem_wr as u64);
            cap.writer.change(cap.ga_done, t, o.ga_done as u64);
            cap.writer.change(cap.rn, t, self.modules.rng.rn() as u64);
        }

        if let Some((gen, chrom, fitness, sum)) = stats {
            let s = GenStats {
                gen,
                best: Individual { chrom, fitness },
                fit_sum: sum,
                pop_size: self.pop_size_hint,
            };
            self.history.push(s);
            // Chipscope-style: samples are stamped with the capture
            // clock cycle (monotone across reruns), not the generation.
            let t = self.sim.cycles();
            self.trace.record("best_fitness", t, fitness as u64);
            self.trace.record("sum_fitness", t, sum as u64);
        }
    }

    /// Program the parameter registers through the initialization
    /// handshake (§III-B.6, Table III), driven by the Fig. 4
    /// initialization-module FSM. Returns the cycles consumed.
    pub fn program(&mut self, params: &GaParams) -> u64 {
        params.validate().expect("invalid GA parameters");
        self.pop_size_hint = params.pop_size;
        let start = self.sim.cycles();
        let mut init = crate::init::InitModule::new(params);
        init.reset();
        init.start();
        let mut guard = 0;
        while !init.out().done {
            let io = init.out();
            // Both modules evaluate in the same phase against each
            // other's registered outputs, then latch together.
            let ack = self.modules.core.out().data_ack;
            init.eval(ack);
            self.step(UserIn {
                ga_load: io.ga_load,
                index: io.index,
                value: io.value,
                data_valid: io.data_valid,
                ..Default::default()
            });
            init.commit();
            guard += 1;
            assert!(guard < 1000, "init handshake hung");
        }
        // One idle cycle for the core to fall back to Idle.
        self.step(UserIn::default());
        self.sim.cycles() - start
    }

    /// Pulse `start_GA` and run until `GA_done`. `max_cycles` is the
    /// watchdog bound.
    pub fn run(&mut self, max_cycles: u64) -> Result<HwRun, SimError> {
        self.run_with_deadline(max_cycles, None)
    }

    /// [`GaSystem::run`] with an additional wall-clock budget: the
    /// cycle watchdog bounds *simulated* time, the [`Deadline`] bounds
    /// *host* time (the serving layer's per-job timeout). The deadline
    /// is checked between cycles with amortized clock reads, so an
    /// in-flight cycle always completes.
    pub fn run_with_deadline(
        &mut self,
        max_cycles: u64,
        deadline: Option<&mut hwsim::Deadline>,
    ) -> Result<HwRun, SimError> {
        self.run_inner(max_cycles, deadline, None)
            .map(|(run, _)| run)
    }

    /// Run to `GA_done` with one scan-chain fault injection: at
    /// `at_cycle` cycles after `start_GA`, the FSM is frozen in test
    /// mode and `ops` is applied to the architectural state through the
    /// scan chain ([`GaSystem::scan_inject`]), then the run resumes.
    /// The returned flag reports whether the injection actually landed
    /// (`false` when the run finished before `at_cycle`). The
    /// scan-shift cycles count toward both the watchdog and the
    /// reported cycle total, exactly as they would on silicon.
    pub fn run_with_faults(
        &mut self,
        max_cycles: u64,
        at_cycle: u64,
        ops: &[hwsim::ScanBitOp],
    ) -> Result<(HwRun, bool), SimError> {
        self.run_inner(max_cycles, None, Some((at_cycle, ops)))
    }

    fn run_inner(
        &mut self,
        max_cycles: u64,
        mut deadline: Option<&mut hwsim::Deadline>,
        fault: Option<(u64, &[hwsim::ScanBitOp])>,
    ) -> Result<(HwRun, bool), SimError> {
        self.history.clear();
        let start = self.sim.cycles();
        let mut injected = false;
        self.step(UserIn {
            start_ga: true,
            ..Default::default()
        });
        let mut guard = self.sim.cycles() - start;
        while !self.modules.core.out().ga_done {
            if guard >= max_cycles {
                return Err(SimError::Timeout { cycles: guard });
            }
            if let Some(d) = deadline.as_deref_mut() {
                if d.expired() {
                    return Err(SimError::DeadlineExceeded { cycles: guard });
                }
            }
            if let Some((at, ops)) = fault {
                if !injected && guard >= at {
                    self.scan_inject(ops);
                    injected = true;
                    guard = self.sim.cycles() - start;
                    continue;
                }
            }
            self.step(UserIn::default());
            guard = self.sim.cycles() - start;
        }
        let cycles = self.sim.cycles() - start;
        let best_fitness = self
            .history
            .last()
            .map(|s| s.best.fitness)
            .unwrap_or_default();
        Ok((
            HwRun {
                best: Individual {
                    chrom: self.modules.core.out().candidate,
                    fitness: best_fitness,
                },
                cycles,
                seconds: cycles as f64 * self.sim.period_ps() as f64 * 1e-12,
                history: self.history.clone(),
                rng_draws: self.modules.core.rng_draws(),
            },
            injected,
        ))
    }

    /// Corrupt the core's architectural state **through the scan chain**
    /// (§III-C.2), the way a DFT-based SEU campaign would on silicon:
    ///
    /// 1. raise `test` for [`GaCoreHw::SCAN_LENGTH`] cycles, capturing
    ///    the chain at `scanout` while shifting zeros in;
    /// 2. keep `test` high another full length, feeding the captured
    ///    stream back in with `ops` applied to their chain positions;
    /// 3. drop `test`, which deserializes the chain into the registers
    ///    and lets the (frozen, unscanned) FSM state resume.
    ///
    /// The RNG holds (no consume wires fire in test mode) and the FSM
    /// state register is outside the chain, so the only disturbance is
    /// the injected bits — plus any overwrite the resuming FSM itself
    /// performs, which is precisely the masking a real campaign
    /// measures. Returns the *pre-fault* chain contents in scan order
    /// (position 0 first).
    pub fn scan_inject(&mut self, ops: &[hwsim::ScanBitOp]) -> Vec<bool> {
        let len = crate::hwcore::GaCoreHw::SCAN_LENGTH;
        // Phase 1: capture. The k-th bit out is chain position len-1-k.
        let mut shifted_out = Vec::with_capacity(len);
        for _ in 0..len {
            self.step(UserIn {
                test: true,
                scanin: false,
                ..Default::default()
            });
            shifted_out.push(self.modules.core.out().scanout);
        }
        // Phase 2: feed the captured stream straight back. Re-feeding
        // in capture order restores every bit to its original position
        // (first bit fed ends deepest in the chain). A fault at chain
        // position p therefore corrupts stream index len-1-p.
        let mut feed = shifted_out.clone();
        for op in ops {
            assert!(
                op.position < len,
                "scan position {} out of range",
                op.position
            );
            let k = len - 1 - op.position;
            feed[k] = op.kind.apply(feed[k]);
        }
        for &bit in &feed {
            self.step(UserIn {
                test: true,
                scanin: bit,
                ..Default::default()
            });
        }
        // Falling edge: deserialize and hand control back to the FSM.
        self.step(UserIn::default());
        let mut chain = shifted_out;
        chain.reverse(); // scan order: position 0 first
        chain
    }

    /// Program, then run: the full usage flow of §III-B.8.
    pub fn program_and_run(
        &mut self,
        params: &GaParams,
        max_cycles: u64,
    ) -> Result<HwRun, SimError> {
        self.program(params);
        self.run(max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_fitness::{FemBank, FemSlot, LookupFem, TestFunction};

    fn system_for(f: TestFunction) -> GaSystem {
        GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(f),
        )]))
    }

    #[test]
    fn program_loads_all_parameters() {
        let mut sys = system_for(TestFunction::F3);
        let params = GaParams::new(16, 0x0002_0005, 9, 3, 0xCAFE);
        let cycles = sys.program(&params);
        assert_eq!(sys.modules.core.programmed_params(), params);
        assert!(cycles > 12, "six writes need at least two cycles each");
    }

    #[test]
    fn run_reaches_done_and_outputs_best() {
        let mut sys = system_for(TestFunction::F3);
        let params = GaParams::new(8, 4, 10, 1, 0x2961);
        let run = sys.program_and_run(&params, 2_000_000).unwrap();
        assert!(run.cycles > 0);
        assert_eq!(run.history.len(), 5, "gen 0 + 4 generations");
        // Best fitness must equal the fitness of the output candidate.
        assert_eq!(run.best.fitness, TestFunction::F3.eval_u16(run.best.chrom));
    }

    #[test]
    fn candidate_bus_outputs_best_each_generation() {
        let mut sys = system_for(TestFunction::F2);
        let params = GaParams::new(8, 6, 10, 1, 0x061F);
        let run = sys.program_and_run(&params, 2_000_000).unwrap();
        // History is monotone (elitism) and ends at the reported best.
        let mut prev = 0;
        for s in &run.history {
            assert!(s.best.fitness >= prev);
            prev = s.best.fitness;
        }
        assert_eq!(run.best.fitness, prev);
    }

    #[test]
    fn trace_records_chipscope_series() {
        let mut sys = system_for(TestFunction::F3);
        let params = GaParams::new(8, 3, 10, 1, 0xB342);
        sys.program_and_run(&params, 2_000_000).unwrap();
        let t = sys.trace();
        assert_eq!(t.series("best_fitness").unwrap().samples.len(), 4);
        assert_eq!(t.series("sum_fitness").unwrap().samples.len(), 4);
    }

    #[test]
    fn watchdog_times_out_on_empty_bank_deadlock_free() {
        // An Empty slot answers zero fitness: the system must still
        // complete (no deadlock) even with no real FEM.
        let mut sys = GaSystem::new(FemBank::new(vec![]));
        let params = GaParams::new(4, 2, 10, 1, 0x2961);
        let run = sys.program_and_run(&params, 1_000_000).unwrap();
        assert_eq!(run.best.fitness, 0);
    }

    #[test]
    fn restart_reruns_from_fresh_state() {
        let mut sys = system_for(TestFunction::F3);
        let params = GaParams::new(8, 3, 10, 1, 0xAAAA);
        let run1 = sys.program_and_run(&params, 2_000_000).unwrap();
        // Second run without reprogramming: Done → Start on start_GA.
        let run2 = sys.run(2_000_000).unwrap();
        assert_eq!(run1.best, run2.best, "same seed ⇒ same result");
        assert_eq!(run1.history, run2.history);
    }

    #[test]
    fn scan_inject_captures_state_in_documented_order() {
        let mut sys = system_for(TestFunction::F3);
        let params = GaParams::new(8, 4, 10, 1, 0xA5C3);
        sys.program(&params);
        let chain = sys.scan_inject(&[]);
        assert_eq!(chain.len(), crate::hwcore::GaCoreHw::SCAN_LENGTH);
        // Chain head: seed[0..16], pop_size[16..24] (LSB first).
        let field = |lo: usize, w: usize| -> u64 {
            (0..w).fold(0u64, |v, b| v | ((chain[lo + b] as u64) << b))
        };
        assert_eq!(field(0, 16) as u16, 0xA5C3, "seed field");
        assert_eq!(field(16, 8) as u8, 8, "pop_size field");
        assert_eq!(field(24, 32) as u32, 4, "n_gens field");
    }

    #[test]
    fn scan_inject_with_no_ops_preserves_the_run() {
        let params = GaParams::new(8, 4, 10, 1, 0x2961);
        let mut golden_sys = system_for(TestFunction::F3);
        let golden = golden_sys.program_and_run(&params, 2_000_000).unwrap();

        let mut sys = system_for(TestFunction::F3);
        sys.program(&params);
        let (run, injected) = sys.run_with_faults(2_000_000, 800, &[]).unwrap();
        assert!(injected, "injection point is mid-run");
        assert_eq!(run.best, golden.best, "empty fault list is a no-op");
        assert_eq!(run.history, golden.history);
        assert_eq!(run.rng_draws, golden.rng_draws);
        assert!(
            run.cycles > golden.cycles,
            "the 2×{}-cycle scan shift must show up in the cycle count",
            crate::hwcore::GaCoreHw::SCAN_LENGTH
        );
    }

    #[test]
    fn scan_fault_on_generation_counter_hangs_the_fsm() {
        // Force the MSB of the generation counter (the last chain bit):
        // the Fig. 6 FSM terminates on `gen == n_gens` (an equality
        // compare, as synthesized), so a counter thrown *past* the
        // target can never match and the run must spin until the
        // watchdog fires — the canonical "hung" outcome class.
        let params = GaParams::new(8, 4, 10, 1, 0x2961);
        let mut sys = system_for(TestFunction::F3);
        sys.program(&params);
        let op = hwsim::ScanBitOp {
            position: crate::hwcore::GaCoreHw::SCAN_LENGTH - 1,
            kind: hwsim::BitFault::Force1,
        };
        let err = sys
            .run_with_faults(200_000, 800, &[op])
            .expect_err("corrupted gen counter cannot reach GA_done");
        assert!(matches!(err, SimError::Timeout { .. }), "got {err:?}");
    }

    #[test]
    fn run_finishing_before_the_injection_point_reports_no_injection() {
        let params = GaParams::new(8, 2, 10, 1, 0x2961);
        let mut sys = system_for(TestFunction::F3);
        sys.program(&params);
        let (run, injected) = sys
            .run_with_faults(2_000_000, u64::MAX, &[])
            .expect("clean run");
        assert!(!injected, "fault scheduled after GA_done never lands");
        assert!(run.cycles > 0);
    }

    #[test]
    fn preset_mode_runs_without_programming() {
        let mut sys = system_for(TestFunction::F3);
        sys.preset = 0b01; // Table IV Small: pop 32, 512 gens
        sys.pop_size_hint = 32;
        let run = sys.run(200_000_000).unwrap();
        assert_eq!(run.history.len(), 513);
        assert_eq!(run.best.fitness, 3060, "512 generations solve F3");
    }
}
