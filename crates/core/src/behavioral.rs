//! The behavioral GA engine — the algorithm of Fig. 2, draw-for-draw
//! identical to the cycle-accurate hardware core.
//!
//! This is the model the authors wrote first ("the behavior of the GA
//! optimizer was modeled in VHDL and simulated to test its
//! correctness") and it is the reference the hardware FSM is checked
//! against: the differential tests in `tests/` assert that both models
//! produce the same populations, the same best individual, and consume
//! the same number of RNG draws for every parameter set.
//!
//! One optimization cycle (Fig. 2):
//!
//! 1. generate a random initial population and evaluate it;
//! 2. per generation: copy the elite into the new population, then fill
//!    it with offspring bred by proportionate selection, single-point
//!    crossover and single-bit mutation;
//! 3. after the programmed number of generations, output the best
//!    individual found.

use carng::{Rng16, SnapshotRng};

use crate::ops;
use crate::params::GaParams;
use crate::snapshot::{EngineSnapshot, SnapshotError};

/// A chromosome and its fitness, as stored in one 32-bit GA-memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Individual {
    /// 16-bit chromosome encoding.
    pub chrom: u16,
    /// 16-bit fitness value.
    pub fitness: u16,
}

/// Per-generation statistics — what the paper's Chipscope probes
/// recorded ("best fitness" and "sum of fitness" per generation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats {
    /// Generation index; 0 is the initial random population.
    pub gen: u32,
    /// Best individual in this population.
    pub best: Individual,
    /// Sum of all fitness values in this population.
    pub fit_sum: u32,
    /// Population size (for computing the average).
    pub pop_size: u8,
}

impl GenStats {
    /// Average fitness of the population.
    pub fn avg(&self) -> f64 {
        self.fit_sum as f64 / self.pop_size as f64
    }
}

/// Result of a complete optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaRun {
    /// Best individual found over the whole run.
    pub best: Individual,
    /// Statistics for generation 0 (initial population) through the
    /// final generation.
    pub history: Vec<GenStats>,
    /// Number of fitness evaluations requested.
    pub evaluations: u64,
    /// Number of 16-bit random numbers consumed.
    pub rng_draws: u64,
}

impl GaRun {
    /// Table V's "convergence" column: "the generation number when the
    /// difference in average fitness between the current generation and
    /// next generation is less than 5%". Interpreted as *settled
    /// permanently*: the first generation after which every subsequent
    /// generation-to-generation change stays below 5% (a single quiet
    /// window early in a still-improving run is not convergence).
    /// Returns `None` if the run never settled.
    pub fn convergence_generation(&self) -> Option<u32> {
        if self.history.len() < 2 {
            return None;
        }
        // Walk backward to find the last window that still moved ≥ 5%.
        let mut settled_from = 0usize;
        for (i, w) in self.history.windows(2).enumerate() {
            let (a, b) = (w[0].avg(), w[1].avg());
            let moved = a <= 0.0 || ((b - a).abs() / a) >= 0.05;
            if moved {
                settled_from = i + 1;
            }
        }
        if settled_from + 1 >= self.history.len() {
            None
        } else {
            Some(self.history[settled_from.max(1)].gen)
        }
    }
}

/// How the 4-bit operator fields are extracted from RNG draws — an
/// ablation axis (see [`crate::ops::xover_fields`] for why the shared
/// draw is the correct design for a CA PRNG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FieldMode {
    /// One 16-bit draw carries both the decision nibble and the
    /// cut/mutation point from disjoint predefined positions (the
    /// paper's "bits from predefined positions"; provably jointly
    /// uniform over the CA's full period). The hardware behaviour.
    #[default]
    SharedDraw,
    /// Decision and point come from the low nibbles of *consecutive*
    /// draws — the naive design. With a rule-90/150 CA this conditions
    /// the point on the decision through the local update and visibly
    /// cripples mutation (kept for the ablation study).
    ConsecutiveDraws,
}

/// The behavioral GA engine, generic over the RNG implementation (the
/// paper: "the operation of the GA core is independent of the RNG
/// implementation") and the fitness function.
pub struct GaEngine<R: Rng16, F: FnMut(u16) -> u16> {
    params: GaParams,
    rng: R,
    fitness: F,
    cur: Vec<Individual>,
    best: Individual,
    fit_sum: u32,
    gen: u32,
    evaluations: u64,
    rng_draws: u64,
    elitism: bool,
    field_mode: FieldMode,
}

impl<R: Rng16, F: FnMut(u16) -> u16> GaEngine<R, F> {
    /// Create an engine. The RNG is reseeded with `params.seed`.
    pub fn new(params: GaParams, mut rng: R, fitness: F) -> Self {
        params.validate().expect("invalid GA parameters");
        rng.reseed(params.seed);
        GaEngine {
            params,
            rng,
            fitness,
            cur: Vec::with_capacity(params.pop_size as usize),
            best: Individual::default(),
            fit_sum: 0,
            gen: 0,
            evaluations: 0,
            rng_draws: 0,
            elitism: true,
            field_mode: FieldMode::SharedDraw,
        }
    }

    /// Disable elitism (ablation only — the IP core is always elitist,
    /// which is what gives it Rudolph's convergence guarantee \[17\]).
    pub fn with_elitism(mut self, elitism: bool) -> Self {
        self.elitism = elitism;
        self
    }

    /// Select the field-extraction mode (ablation only).
    pub fn with_field_mode(mut self, mode: FieldMode) -> Self {
        self.field_mode = mode;
        self
    }

    /// Draw the (decision, point) pair for one operator according to
    /// the configured field mode.
    fn operator_fields(&mut self, for_mutation: bool) -> (u8, u8) {
        match self.field_mode {
            FieldMode::SharedDraw => {
                let d = self.draw();
                if for_mutation {
                    ops::mut_fields(d)
                } else {
                    ops::xover_fields(d)
                }
            }
            FieldMode::ConsecutiveDraws => {
                let decision = (self.draw() & 0xF) as u8;
                let point = (self.draw() & 0xF) as u8;
                (decision, point)
            }
        }
    }

    fn draw(&mut self) -> u16 {
        self.rng_draws += 1;
        self.rng.next_u16()
    }

    fn evaluate(&mut self, chrom: u16) -> u16 {
        self.evaluations += 1;
        (self.fitness)(chrom)
    }

    /// Generate and evaluate the random initial population (generation 0).
    /// The chromosomes come from one batched [`Rng16::fill_u16s`] call —
    /// by the trait contract this is the same stream as `pop_size`
    /// repeated draws, and on a replayed stream (the 64-lane pack path)
    /// it is a straight slice copy.
    pub fn init_population(&mut self) -> GenStats {
        self.cur.clear();
        self.fit_sum = 0;
        self.gen = 0;
        let mut chroms = vec![0u16; self.params.pop_size as usize];
        self.rng.fill_u16s(&mut chroms);
        self.rng_draws += chroms.len() as u64;
        let mut best = Individual::default();
        for (i, &chrom) in chroms.iter().enumerate() {
            let fitness = self.evaluate(chrom);
            let ind = Individual { chrom, fitness };
            self.cur.push(ind);
            if i == 0 || fitness > best.fitness {
                best = ind;
            }
            self.fit_sum += fitness as u32;
        }
        self.best = best;
        self.stats()
    }

    /// Proportionate selection over the current population: one RNG
    /// draw scales the fitness sum down to a threshold; the scan picks
    /// the first individual whose cumulative fitness exceeds it. If no
    /// individual does (all-zero fitness), the last one is returned.
    fn select(&mut self) -> Individual {
        let r = self.draw();
        let threshold = ops::selection_threshold(self.fit_sum, r);
        let mut cum: u32 = 0;
        for ind in &self.cur {
            cum += ind.fitness as u32;
            if ops::selection_hit(cum, threshold) {
                return *ind;
            }
        }
        *self.cur.last().expect("population is never empty")
    }

    /// Breed one full generation (Fig. 2's inner loop) and swap
    /// populations. Returns the new population's statistics.
    pub fn step_generation(&mut self) -> GenStats {
        let pop = self.params.pop_size as usize;
        let mut new_pop: Vec<Individual> = Vec::with_capacity(pop);
        let mut new_sum = 0u32;
        let mut new_best = self.best;
        if self.elitism {
            // Elitism: the best individual survives unmodified in slot 0.
            new_pop.push(self.best);
            new_sum = self.best.fitness as u32;
        } else {
            // Ablation mode: the whole population is replaced; track the
            // best-so-far only for reporting.
            new_best = Individual::default();
        }

        while new_pop.len() < pop {
            let p1 = self.select();
            let p2 = self.select();
            // One draw supplies both the crossover decision and the cut
            // point, from the predefined bit positions (see
            // [`ops::xover_fields`] for why they must share a draw).
            let (xd, cut) = self.operator_fields(false);
            let (o1, o2) = if ops::decision(xd, self.params.xover_threshold) {
                ops::crossover(p1.chrom, p2.chrom, cut)
            } else {
                (p1.chrom, p2.chrom)
            };
            for mut chrom in [o1, o2] {
                if new_pop.len() >= pop {
                    break;
                }
                let (md, point) = self.operator_fields(true);
                if ops::decision(md, self.params.mut_threshold) {
                    chrom = ops::mutate(chrom, point);
                }
                let fitness = self.evaluate(chrom);
                let ind = Individual { chrom, fitness };
                if fitness > new_best.fitness {
                    new_best = ind;
                }
                new_sum += fitness as u32;
                new_pop.push(ind);
            }
        }

        self.cur = new_pop;
        self.fit_sum = new_sum;
        self.best = new_best;
        self.gen += 1;
        self.stats()
    }

    fn stats(&self) -> GenStats {
        GenStats {
            gen: self.gen,
            best: self.best,
            fit_sum: self.fit_sum,
            pop_size: self.params.pop_size,
        }
    }

    /// Run the full optimization cycle.
    pub fn run(mut self) -> GaRun {
        let mut history = Vec::with_capacity(self.params.n_gens as usize + 1);
        history.push(self.init_population());
        for _ in 0..self.params.n_gens {
            history.push(self.step_generation());
        }
        // With elitism the final generation's best IS the best ever;
        // without it (ablation) the best can be lost, so report the
        // best over the whole run.
        let best = history
            .iter()
            .map(|s| s.best)
            .fold(Individual::default(), |a, b| {
                if b.fitness > a.fitness {
                    b
                } else {
                    a
                }
            });
        GaRun {
            best,
            history,
            evaluations: self.evaluations,
            rng_draws: self.rng_draws,
        }
    }

    /// Current population (testing / differential checks).
    pub fn population(&self) -> &[Individual] {
        &self.cur
    }

    /// Best individual so far.
    pub fn best(&self) -> Individual {
        self.best
    }

    /// Number of RNG draws consumed so far.
    pub fn rng_draws(&self) -> u64 {
        self.rng_draws
    }

    /// Number of fitness evaluations so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The parameter set in force.
    pub fn params(&self) -> GaParams {
        self.params
    }

    /// Capture the full engine state at a generation boundary. Requires
    /// an initialized population (like [`GaEngine::inject`]); restoring
    /// the snapshot — into this engine, a fresh one, or one on a
    /// different [`SnapshotRng`] backend — continues the run
    /// bit-identically.
    pub fn snapshot(&self) -> EngineSnapshot
    where
        R: SnapshotRng,
    {
        assert!(!self.cur.is_empty(), "snapshot before init_population");
        EngineSnapshot {
            params: self.params,
            elitism: self.elitism,
            field_mode: self.field_mode,
            gen: self.gen,
            fit_sum: self.fit_sum,
            evaluations: self.evaluations,
            rng_draws: self.rng_draws,
            rng_next: self.rng.save(),
            best: self.best,
            population: self.cur.clone(),
        }
    }

    /// Install a snapshot, replacing the engine's entire state (the
    /// fitness function stays — the caller is responsible for restoring
    /// into an engine serving the same workload). Fails with a typed
    /// error, leaving the engine untouched, when the snapshot is
    /// internally inconsistent or its RNG position is unreachable for
    /// this backend.
    pub fn restore(&mut self, snap: &EngineSnapshot) -> Result<(), SnapshotError>
    where
        R: SnapshotRng,
    {
        if snap.params.validate().is_err() {
            return Err(SnapshotError::BadValue {
                what: "invalid GA parameters",
            });
        }
        if snap.population.len() != snap.params.pop_size as usize {
            return Err(SnapshotError::BadValue {
                what: "population length disagrees with pop_size",
            });
        }
        self.rng
            .load(snap.rng_draws, snap.rng_next)
            .map_err(|what| SnapshotError::BadValue { what })?;
        self.params = snap.params;
        self.elitism = snap.elitism;
        self.field_mode = snap.field_mode;
        self.cur = snap.population.clone();
        self.best = snap.best;
        self.fit_sum = snap.fit_sum;
        self.gen = snap.gen;
        self.evaluations = snap.evaluations;
        self.rng_draws = snap.rng_draws;
        Ok(())
    }

    /// Replace the worst individual with `migrant` (island-model
    /// migration): the incoming individual takes the slot of the
    /// current population's minimum-fitness member, and the fitness sum
    /// is updated so subsequent proportionate selections stay exact.
    pub fn inject(&mut self, migrant: Individual) {
        assert!(!self.cur.is_empty(), "inject before init_population");
        let worst = self
            .cur
            .iter()
            .enumerate()
            .min_by_key(|(_, i)| i.fitness)
            .map(|(k, _)| k)
            .expect("population non-empty");
        self.fit_sum = self.fit_sum - self.cur[worst].fitness as u32 + migrant.fitness as u32;
        self.cur[worst] = migrant;
        if migrant.fitness > self.best.fitness {
            self.best = migrant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carng::CaRng;
    use ga_fitness::TestFunction;

    fn engine(f: TestFunction, params: GaParams) -> GaEngine<CaRng, impl FnMut(u16) -> u16> {
        GaEngine::new(params, CaRng::new(params.seed), move |c| f.eval_u16(c))
    }

    #[test]
    fn initial_population_is_the_rng_stream() {
        let params = GaParams::new(8, 4, 10, 1, 0x2961);
        let mut e = engine(TestFunction::F3, params);
        e.init_population();
        // First draw after reseed is the seed itself, then the CA stream.
        let mut rng = CaRng::new(0x2961);
        for ind in e.population() {
            assert_eq!(ind.chrom, rng.next_u16());
        }
    }

    #[test]
    fn elitism_keeps_best_monotone() {
        let params = GaParams::new(32, 32, 10, 1, 0xB342);
        let run = engine(TestFunction::Bf6, params).run();
        let mut prev = 0u16;
        for s in &run.history {
            assert!(
                s.best.fitness >= prev,
                "best fitness regressed at gen {}",
                s.gen
            );
            prev = s.best.fitness;
        }
    }

    #[test]
    fn elite_is_stored_in_slot_zero() {
        let params = GaParams::new(16, 3, 10, 1, 0x061F);
        let mut e = engine(TestFunction::F2, params);
        e.init_population();
        let elite = e.best();
        e.step_generation();
        assert_eq!(e.population()[0], elite);
    }

    #[test]
    fn easy_function_reaches_optimum() {
        // Table V/Fig. 12: F3 is solved with small populations and few
        // generations.
        let params = GaParams::new(32, 32, 10, 1, 1567);
        let run = engine(TestFunction::F3, params).run();
        assert_eq!(run.best.fitness, 3060, "F3 optimum not found");
    }

    #[test]
    fn f2_near_optimal_for_all_paper_seeds_optimal_for_some() {
        // Table V runs #6–#9: F2's optimum 3060 is found for some
        // parameter settings and seeds. Our CA rule vector differs from
        // the authors' (theirs is unpublished), so the *specific* seed
        // that succeeds differs too; we assert the paper's qualitative
        // claim — every seed gets within 1%, at least one setting finds
        // the exact optimum.
        let mut exact = 0;
        for seed in carng::seeds::TABLE5_SEEDS {
            for pop in [32u8, 64] {
                let params = GaParams::new(pop, 32, 10, 1, seed);
                let run = engine(TestFunction::F2, params).run();
                // Within ~2% of the optimum for every seed (the paper's
                // own hardware results are within 3.7% on the hard
                // functions).
                assert!(
                    run.best.fitness >= 3000,
                    "seed {seed} pop {pop}: {}",
                    run.best.fitness
                );
                if run.best.fitness == 3060 {
                    exact += 1;
                }
            }
        }
        assert!(exact >= 1, "no setting found the F2 optimum");
    }

    #[test]
    fn history_has_one_entry_per_generation_plus_initial() {
        let params = GaParams::new(8, 10, 10, 1, 7);
        let run = engine(TestFunction::F3, params).run();
        assert_eq!(run.history.len(), 11);
        assert_eq!(run.history[0].gen, 0);
        assert_eq!(run.history.last().unwrap().gen, 10);
    }

    #[test]
    fn evaluation_count_matches_formula() {
        // Initial pop + (pop − 1) offspring per generation (slot 0 is
        // the unevaluated elite copy).
        let params = GaParams::new(16, 5, 10, 1, 3);
        let run = engine(TestFunction::F3, params).run();
        assert_eq!(run.evaluations, 16 + 5 * 15);
    }

    #[test]
    fn fitness_sum_is_sum_of_population() {
        let params = GaParams::new(16, 4, 12, 2, 0xAAAA);
        let mut e = engine(TestFunction::Mbf6_2, params);
        e.init_population();
        for _ in 0..4 {
            let s = e.step_generation();
            let manual: u32 = e.population().iter().map(|i| i.fitness as u32).sum();
            assert_eq!(s.fit_sum, manual);
        }
    }

    #[test]
    fn zero_crossover_zero_mutation_clones_parents() {
        // With both operators disabled, every offspring is a selected
        // parent, so every chromosome in gen 1 already exists in gen 0.
        let params = GaParams::new(16, 1, 0, 0, 0x1234);
        let mut e = engine(TestFunction::Mbf7_2, params);
        e.init_population();
        let gen0: Vec<u16> = e.population().iter().map(|i| i.chrom).collect();
        e.step_generation();
        for ind in e.population() {
            assert!(gen0.contains(&ind.chrom));
        }
    }

    #[test]
    fn same_seed_same_run_different_seed_different_run() {
        let p1 = GaParams::new(32, 8, 10, 1, 0x2961);
        let r1 = engine(TestFunction::Bf6, p1).run();
        let r2 = engine(TestFunction::Bf6, p1).run();
        assert_eq!(r1, r2, "determinism");
        let p2 = GaParams { seed: 0x061F, ..p1 };
        let r3 = engine(TestFunction::Bf6, p2).run();
        assert_ne!(r1.history, r3.history, "seed must matter (§II-C)");
    }

    #[test]
    fn convergence_generation_detects_settling() {
        let params = GaParams::new(32, 32, 10, 1, 10593);
        let run = engine(TestFunction::Bf6, params).run();
        let conv = run.convergence_generation();
        assert!(conv.is_some(), "a 32-generation run settles (Table V)");
        assert!(conv.unwrap() <= 32);
    }

    #[test]
    fn all_zero_fitness_population_does_not_panic() {
        let params = GaParams::new(8, 3, 10, 1, 0x5555);
        let run = GaEngine::new(params, CaRng::new(params.seed), |_| 0u16).run();
        assert_eq!(run.best.fitness, 0);
        assert_eq!(run.history.len(), 4);
    }

    #[test]
    fn odd_population_size_fills_exactly() {
        let params = GaParams::new(15, 3, 10, 1, 0x2961);
        let mut e = engine(TestFunction::F3, params);
        e.init_population();
        for _ in 0..3 {
            e.step_generation();
            assert_eq!(e.population().len(), 15);
        }
    }

    #[test]
    fn non_elitist_ablation_can_regress_per_generation() {
        let params = GaParams::new(16, 32, 12, 2, 0x2961);
        let run = GaEngine::new(params, CaRng::new(params.seed), |c| {
            TestFunction::Bf6.eval_u16(c)
        })
        .with_elitism(false)
        .run();
        // The per-generation best must regress at least once over 32
        // generations without the elite copy...
        let regressed = run
            .history
            .windows(2)
            .any(|w| w[1].best.fitness < w[0].best.fitness);
        assert!(regressed, "non-elitist run never regressed — suspicious");
        // ...and the reported overall best is still the max over history.
        let max = run.history.iter().map(|s| s.best.fitness).max().unwrap();
        assert_eq!(run.best.fitness, max);
    }

    #[test]
    fn consecutive_draw_field_mode_cripples_mutation_on_f3() {
        // The ablation that motivated ops::xover_fields: with fields
        // taken from consecutive CA draws, the conditional mutation
        // point is nearly deterministic and F3 stalls below optimum.
        let params = GaParams::new(32, 200, 10, 1, 1567);
        let shared = GaEngine::new(params, CaRng::new(params.seed), |c| {
            TestFunction::F3.eval_u16(c)
        })
        .run();
        let naive = GaEngine::new(params, CaRng::new(params.seed), |c| {
            TestFunction::F3.eval_u16(c)
        })
        .with_field_mode(FieldMode::ConsecutiveDraws)
        .run();
        assert_eq!(
            shared.best.fitness, 3060,
            "shared-draw mode must solve F3 in 200 gens"
        );
        assert!(
            naive.best.fitness < 3060,
            "naive mode unexpectedly solved F3 (got {})",
            naive.best.fitness
        );
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let params = GaParams::new(16, 12, 10, 1, 0x2961);
        let mut reference = engine(TestFunction::Bf6, params);
        reference.init_population();
        for _ in 0..12 {
            reference.step_generation();
        }
        // Interrupt at generation 5, snapshot, restore into a FRESH
        // engine seeded with something unrelated, and finish the run.
        let mut first = engine(TestFunction::Bf6, params);
        first.init_population();
        for _ in 0..5 {
            first.step_generation();
        }
        let snap = first.snapshot();
        let wire = snap.to_hex();
        let back = EngineSnapshot::from_hex(&wire).expect("wire round trip");
        let mut resumed = engine(
            TestFunction::Bf6,
            GaParams {
                seed: 0xFFFF,
                ..params
            },
        );
        resumed.restore(&back).expect("restores");
        for _ in 0..7 {
            resumed.step_generation();
        }
        assert_eq!(resumed.population(), reference.population());
        assert_eq!(resumed.best(), reference.best());
        assert_eq!(resumed.rng_draws(), reference.rng_draws());
        assert_eq!(resumed.evaluations(), reference.evaluations());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let params = GaParams::new(8, 4, 10, 1, 0x061F);
        let mut e = engine(TestFunction::F3, params);
        e.init_population();
        let mut snap = e.snapshot();
        snap.population.pop();
        let before = e.snapshot();
        assert!(e.restore(&snap).is_err(), "short population rejected");
        assert_eq!(e.snapshot(), before, "failed restore leaves state alone");
        let mut zero = before.clone();
        zero.rng_next = 0;
        assert!(e.restore(&zero).is_err(), "unreachable RNG state rejected");
    }

    #[test]
    fn lfsr_rng_also_works() {
        use carng::Lfsr16;
        let params = GaParams::new(32, 16, 10, 1, 0x2961);
        let run = GaEngine::new(params, Lfsr16::new(params.seed), |c| {
            TestFunction::F3.eval_u16(c)
        })
        .run();
        assert!(run.best.fitness >= 2800, "LFSR-driven GA still optimizes");
    }
}
