//! Population analytics: the quantitative form of the paper's
//! convergence plots.
//!
//! Figs. 8–12 visualize convergence as the *set of distinct fitness
//! values* per generation shrinking ("as the population converges to
//! the best few candidates in the latter generations, the number of
//! points will be decreased"). This module turns that visual into
//! numbers: distinct-candidate counts, mean pairwise Hamming distance,
//! fitness entropy, and takeover time — computed per generation from a
//! population snapshot.

use crate::behavioral::Individual;

/// Diversity metrics of one population snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diversity {
    /// Number of distinct chromosomes.
    pub distinct_chromosomes: usize,
    /// Number of distinct fitness values (what Figs. 8–12 plot).
    pub distinct_fitness: usize,
    /// Mean pairwise Hamming distance between chromosomes (0..=16).
    pub mean_hamming: f64,
    /// Shannon entropy of the fitness distribution, in bits.
    pub fitness_entropy: f64,
    /// Fraction of the population equal to the best individual's
    /// chromosome (1.0 = fully taken over).
    pub takeover_fraction: f64,
}

/// Compute diversity metrics for a population.
pub fn diversity(pop: &[Individual]) -> Diversity {
    assert!(!pop.is_empty(), "population must be non-empty");
    let n = pop.len();

    let mut chroms: Vec<u16> = pop.iter().map(|i| i.chrom).collect();
    chroms.sort_unstable();
    let mut distinct_chromosomes = 1;
    for w in chroms.windows(2) {
        if w[0] != w[1] {
            distinct_chromosomes += 1;
        }
    }

    let mut fits: Vec<u16> = pop.iter().map(|i| i.fitness).collect();
    fits.sort_unstable();
    let mut distinct_fitness = 1;
    for w in fits.windows(2) {
        if w[0] != w[1] {
            distinct_fitness += 1;
        }
    }

    // Mean pairwise Hamming distance, computed per bit position in
    // O(16·n): for bit b with k ones, the number of differing pairs is
    // k·(n−k).
    let mut differing_pairs = 0u64;
    for b in 0..16 {
        let k = pop.iter().filter(|i| (i.chrom >> b) & 1 == 1).count() as u64;
        differing_pairs += k * (n as u64 - k);
    }
    let total_pairs = (n as u64) * (n as u64 - 1) / 2;
    let mean_hamming = if total_pairs == 0 {
        0.0
    } else {
        differing_pairs as f64 / total_pairs as f64
    };

    // Fitness entropy.
    let mut entropy = 0.0;
    let mut i = 0;
    while i < fits.len() {
        let mut j = i;
        while j < fits.len() && fits[j] == fits[i] {
            j += 1;
        }
        let p = (j - i) as f64 / n as f64;
        entropy -= p * p.log2();
        i = j;
    }

    // Takeover fraction of the best chromosome.
    let best = pop.iter().max_by_key(|i| i.fitness).expect("non-empty");
    let takeover = pop.iter().filter(|i| i.chrom == best.chrom).count() as f64 / n as f64;

    Diversity {
        distinct_chromosomes,
        distinct_fitness,
        mean_hamming,
        fitness_entropy: entropy,
        takeover_fraction: takeover,
    }
}

/// Takeover time: the first generation (index into `snapshots`) where
/// the best chromosome occupies at least `fraction` of the population.
/// `None` if it never does.
pub fn takeover_time(snapshots: &[Vec<Individual>], fraction: f64) -> Option<usize> {
    snapshots
        .iter()
        .position(|pop| diversity(pop).takeover_fraction >= fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::GaEngine;
    use crate::params::GaParams;
    use carng::CaRng;
    use ga_fitness::TestFunction;

    fn ind(chrom: u16, fitness: u16) -> Individual {
        Individual { chrom, fitness }
    }

    #[test]
    fn uniform_population_has_zero_diversity() {
        let pop = vec![ind(0x1234, 100); 8];
        let d = diversity(&pop);
        assert_eq!(d.distinct_chromosomes, 1);
        assert_eq!(d.distinct_fitness, 1);
        assert_eq!(d.mean_hamming, 0.0);
        assert_eq!(d.fitness_entropy, 0.0);
        assert_eq!(d.takeover_fraction, 1.0);
    }

    #[test]
    fn complementary_pair_has_max_hamming() {
        let pop = vec![ind(0x0000, 1), ind(0xFFFF, 2)];
        let d = diversity(&pop);
        assert_eq!(d.mean_hamming, 16.0);
        assert_eq!(d.distinct_chromosomes, 2);
        assert!(
            (d.fitness_entropy - 1.0).abs() < 1e-12,
            "two equiprobable values = 1 bit"
        );
        assert_eq!(d.takeover_fraction, 0.5);
    }

    #[test]
    fn entropy_of_uniform_four_values_is_two_bits() {
        let pop = vec![ind(1, 10), ind(2, 20), ind(3, 30), ind(4, 40)];
        let d = diversity(&pop);
        assert!((d.fitness_entropy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ga_run_diversity_collapses_over_generations() {
        // The Figs. 8–12 phenomenon, quantified: diversity at the end of
        // a converged run is well below the random initial population's.
        let params = GaParams::new(32, 32, 10, 1, 10593);
        let mut engine = GaEngine::new(params, CaRng::new(params.seed), |c| {
            TestFunction::F3.eval_u16(c)
        });
        engine.init_population();
        let d0 = diversity(engine.population());
        for _ in 0..32 {
            engine.step_generation();
        }
        let d_end = diversity(engine.population());
        assert!(
            d_end.distinct_fitness < d0.distinct_fitness / 2,
            "distinct fitness {} → {}",
            d0.distinct_fitness,
            d_end.distinct_fitness
        );
        assert!(d_end.mean_hamming < d0.mean_hamming / 2.0);
        assert!(d_end.takeover_fraction > d0.takeover_fraction);
    }

    #[test]
    fn takeover_time_detects_convergence_point() {
        let params = GaParams::new(16, 40, 10, 1, 0x2961);
        let mut engine = GaEngine::new(params, CaRng::new(params.seed), |c| {
            TestFunction::F3.eval_u16(c)
        });
        engine.init_population();
        let mut snaps = vec![engine.population().to_vec()];
        for _ in 0..40 {
            engine.step_generation();
            snaps.push(engine.population().to_vec());
        }
        let t = takeover_time(&snaps, 0.5);
        assert!(t.is_some(), "no 50% takeover in 40 generations");
        assert!(t.unwrap() > 0, "random init can't be taken over already");
    }

    #[test]
    #[should_panic]
    fn empty_population_rejected() {
        let _ = diversity(&[]);
    }
}
