//! The cycle-accurate 32-bit GA: two complete 16-bit GA systems ganged
//! per Fig. 6, with the `scalingLogic_parSel` block and a shared 32-bit
//! fitness module.
//!
//! Composition rules implemented exactly as §III-D describes them:
//!
//! * each core has its **own RNG** (core 2 is seeded with the
//!   complemented seed) and its own GA memory bank holding its half of
//!   every individual;
//! * the **fitness module** sees the concatenated `{MSB, LSB}`
//!   candidate; `fit_valid` is sent to both cores. (We also mirror the
//!   fitness *value* to core 2 — the one wire beyond the paper's text,
//!   which is what keeps both cores' elite/fitness-sum registers
//!   tracking the same 32-bit individual; without it core 2's elitism
//!   has no fitness to rank by.)
//! * **parent selection** is decided by core 1 alone. The scaling
//!   logic (a) forces core 2's threshold draw to zero (its `rn` input
//!   is muxed to 0 during the threshold state — the status wire is part
//!   of the core's Moore outputs) and (b) intercepts core 2's
//!   memory-read fitness during the scan: zero until core 1's exported
//!   `sel_hit` wire fires, full-scale on that cycle — so core 2's
//!   cumulative sum crosses its (zero) threshold at exactly core 1's
//!   parent index.
//!
//! Because the two FSMs are identical, take data-independent paths
//! through crossover/mutation (one state each), and re-synchronize at
//! every fitness handshake, the cores run in **lockstep** — asserted by
//! the differential tests against [`crate::scaling::GaEngine32`].

use hwsim::{Clocked, Reg, Sim, SimError};

use crate::memory::{pack, unpack, GaMemory};
use crate::params::GaParams;
use crate::ports::GaCoreIn;
use crate::rngmod::RngModule;
use crate::scaling::{GaRun32, GenStats32, Individual32};
use crate::system::UserIn;
use crate::GaCoreHw;

/// The shared 32-bit fitness module: same handshake and latency as the
/// 16-bit block-ROM FEM, evaluating the concatenated candidate.
struct Fem32<F: FnMut(u32) -> u16> {
    f: F,
    state: Reg<u8>, // 0 idle, 1 fetch, 2 hold
    value: Reg<u16>,
    valid: Reg<bool>,
}

impl<F: FnMut(u32) -> u16> Fem32<F> {
    fn new(f: F) -> Self {
        Fem32 {
            f,
            state: Reg::default(),
            value: Reg::default(),
            valid: Reg::default(),
        }
    }

    fn eval(&mut self, req_both: bool, cand32: u32) {
        match self.state.get() {
            0 => {
                if req_both {
                    self.value.set((self.f)(cand32));
                    self.state.set(1);
                }
            }
            1 => {
                self.valid.set(true);
                self.state.set(2);
            }
            _ => {
                if !req_both {
                    self.valid.set(false);
                    self.state.set(0);
                }
            }
        }
    }

    fn commit(&mut self) {
        self.state.commit();
        self.value.commit();
        self.valid.commit();
    }

    fn reset(&mut self) {
        self.state.reset_to(0);
        self.value.reset_to(0);
        self.valid.reset_to(false);
    }
}

/// The dual-core 32-bit GA system.
pub struct GaSystem32<F: FnMut(u32) -> u16> {
    core1: GaCoreHw,
    core2: GaCoreHw,
    rng1: RngModule,
    rng2: RngModule,
    mem1: GaMemory,
    mem2: GaMemory,
    fem: Fem32<F>,
    sim: Sim,
    history: Vec<GenStats32>,
    pop_size: u8,
}

impl<F: FnMut(u32) -> u16> GaSystem32<F> {
    /// Build the composite around a 32-bit fitness function.
    pub fn new(fitness: F) -> Self {
        let mut s = GaSystem32 {
            core1: GaCoreHw::new(),
            core2: GaCoreHw::new(),
            rng1: RngModule::new_ca(1),
            rng2: RngModule::new_ca(2),
            mem1: GaMemory::new(),
            mem2: GaMemory::new(),
            fem: Fem32::new(fitness),
            sim: Sim::new_50mhz(),
            history: Vec::new(),
            pop_size: GaParams::default().pop_size,
        };
        s.core1.reset();
        s.core2.reset();
        s.fem.reset();
        s
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.sim.cycles()
    }

    /// One clock of the whole composite.
    fn step(&mut self, user: UserIn) {
        // Sample all registered outputs.
        let o1 = self.core1.out();
        let o2 = self.core2.out();
        let rn1 = self.rng1.rn();
        let rn2 = self.rng2.rn();
        let m1 = self.mem1.dout();
        let m2 = self.mem2.dout();
        let fem_valid = self.fem.valid.get();
        let fem_value = self.fem.value.get();

        // --- core 1 (master) -----------------------------------------
        let comb1 = self.core1.eval(&GaCoreIn {
            ga_load: user.ga_load,
            index: user.index,
            value: user.value,
            data_valid: user.data_valid,
            fit_value: fem_value,
            fit_valid: fem_valid,
            mem_data_in: m1,
            start_ga: user.start_ga,
            rn: rn1,
            ..Default::default()
        });

        // --- scalingLogic_parSel ---------------------------------------
        // Core 2's threshold draw is forced to zero; its selection-scan
        // fitness reads are 0 until core 1's same-cycle hit, then max.
        let rn2_in = if self.core2.is_sel_draw() { 0 } else { rn2 };
        let mem2_in = if self.core2.is_sel_scanning() {
            let ind = unpack(m2);
            let forced = if comb1.sel_hit { 0xFFFF } else { 0 };
            pack(crate::behavioral::Individual {
                chrom: ind.chrom,
                fitness: forced,
            })
        } else {
            m2
        };

        // --- core 2 (slave) --------------------------------------------
        let comb2 = self.core2.eval(&GaCoreIn {
            ga_load: user.ga_load,
            index: user.index,
            value: user.value,
            data_valid: user.data_valid,
            // fit_valid to both cores; the value is mirrored (see the
            // module docs for why).
            fit_value: fem_value,
            fit_valid: fem_valid,
            mem_data_in: mem2_in,
            start_ga: user.start_ga,
            rn: rn2_in,
            ..Default::default()
        });

        // --- shared FEM -------------------------------------------------
        let cand32 = ((o1.candidate as u32) << 16) | o2.candidate as u32;
        self.fem.eval(o1.fit_request && o2.fit_request, cand32);

        // --- RNGs and memories ------------------------------------------
        // Core 2's RNG powers on with the complemented seed (matching
        // the behavioral GaEngine32 convention) regardless of what its
        // seed register was programmed with.
        let seed2 = comb2
            .rn_seed_load
            .map(|_| !self.core1.programmed_params().seed);
        self.rng1.eval(comb1.rn_consume, comb1.rn_seed_load);
        self.rng2.eval(comb2.rn_consume, seed2);
        self.mem1.eval(o1.mem_address, o1.mem_data_out, o1.mem_wr);
        self.mem2.eval(o2.mem_address, o2.mem_data_out, o2.mem_wr);

        // Probe: the generation event fires on both cores the same
        // cycle (lockstep); core 1 carries the fitness, core 2 the LSB.
        if let (Some((gen, msb, fit, sum)), Some((gen2, lsb, _, _))) =
            (comb1.stats_event, comb2.stats_event)
        {
            debug_assert_eq!(gen, gen2, "cores out of lockstep at a generation boundary");
            self.history.push(GenStats32 {
                gen,
                best: Individual32 {
                    chrom: ((msb as u32) << 16) | lsb as u32,
                    fitness: fit,
                },
                fit_sum: sum,
            });
        }

        // Commit everything: one clock edge.
        self.core1.commit();
        self.core2.commit();
        self.rng1.commit();
        self.rng2.commit();
        self.mem1.commit();
        self.mem2.commit();
        self.fem.commit();
        // Count the cycle (the composite commits its modules itself).
        struct Nop;
        impl Clocked for Nop {
            fn reset(&mut self) {}
            fn commit(&mut self) {}
        }
        let mut nop = Nop;
        self.sim.step(&mut nop, |_| {});
    }

    /// Program both cores with the same parameters (the user programs
    /// one init bus; both cores listen — Fig. 6 shows a single
    /// initialization path).
    pub fn program(&mut self, params: &GaParams) -> u64 {
        params.validate().expect("invalid GA parameters");
        self.pop_size = params.pop_size;
        let start = self.sim.cycles();
        let mut init = crate::init::InitModule::new(params);
        init.reset();
        init.start();
        let mut guard = 0;
        while !init.out().done {
            let io = init.out();
            let ack = self.core1.out().data_ack;
            init.eval(ack);
            self.step(UserIn {
                ga_load: io.ga_load,
                index: io.index,
                value: io.value,
                data_valid: io.data_valid,
                ..Default::default()
            });
            init.commit();
            guard += 1;
            assert!(guard < 1000, "init handshake hung");
        }
        self.step(UserIn::default());
        self.sim.cycles() - start
    }

    /// Pulse start and run to completion on both cores.
    pub fn run(&mut self, max_cycles: u64) -> Result<GaRun32, SimError> {
        self.run_with_deadline(max_cycles, None)
    }

    /// [`GaSystem32::run`] with an additional wall-clock budget,
    /// mirroring [`crate::GaSystem::run_with_deadline`]: the cycle
    /// watchdog bounds *simulated* time, the [`hwsim::Deadline`] bounds
    /// *host* time. Checked between cycles, so an in-flight cycle
    /// always completes.
    pub fn run_with_deadline(
        &mut self,
        max_cycles: u64,
        mut deadline: Option<&mut hwsim::Deadline>,
    ) -> Result<GaRun32, SimError> {
        self.history.clear();
        let start = self.sim.cycles();
        self.step(UserIn {
            start_ga: true,
            ..Default::default()
        });
        loop {
            let done1 = self.core1.out().ga_done;
            let done2 = self.core2.out().ga_done;
            if done1 && done2 {
                break;
            }
            let guard = self.sim.cycles() - start;
            if guard >= max_cycles {
                return Err(SimError::Timeout { cycles: guard });
            }
            if let Some(d) = deadline.as_deref_mut() {
                if d.expired() {
                    return Err(SimError::DeadlineExceeded { cycles: guard });
                }
            }
            self.step(UserIn::default());
        }
        let chrom = ((self.core1.out().candidate as u32) << 16) | self.core2.out().candidate as u32;
        let fitness = self
            .history
            .last()
            .map(|s| s.best.fitness)
            .unwrap_or_default();
        Ok(GaRun32 {
            best: Individual32 { chrom, fitness },
            history: self.history.clone(),
            evaluations: 0,
        })
    }

    /// Program, then run.
    pub fn program_and_run(
        &mut self,
        params: &GaParams,
        max_cycles: u64,
    ) -> Result<GaRun32, SimError> {
        self.program(params);
        self.run(max_cycles)
    }

    /// Testbench probe: the final 32-bit population, concatenated from
    /// both memories' current banks.
    pub fn population(&self) -> Vec<Individual32> {
        let b1 = self.core1.current_bank_base();
        let b2 = self.core2.current_bank_base();
        let p1 = self.mem1.backdoor_population(b1, self.pop_size);
        let p2 = self.mem2.backdoor_population(b2, self.pop_size);
        p1.iter()
            .zip(&p2)
            .map(|(m, l)| Individual32 {
                chrom: ((m.chrom as u32) << 16) | l.chrom as u32,
                fitness: m.fitness,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::GaEngine32;
    use carng::CaRng;

    fn sum_halves(c: u32) -> u16 {
        (((c >> 16) + (c & 0xFFFF)) / 2) as u16
    }

    fn minimax(c: u32) -> u16 {
        let msb = (c >> 16) as i64;
        let lsb = (c & 0xFFFF) as i64;
        ((msb - lsb) / 2 + 32768).clamp(0, 65535) as u16
    }

    /// The cycle-accurate composite must match the behavioral dual-core
    /// engine generation for generation.
    fn assert_32bit_models_agree(f: fn(u32) -> u16, params: GaParams) {
        let sw =
            GaEngine32::new(params, CaRng::new(params.seed), CaRng::new(!params.seed), f).run();
        let mut hw = GaSystem32::new(f);
        let run = hw
            .program_and_run(&params, 1_000_000_000)
            .expect("hardware run timed out");
        assert_eq!(run.history.len(), sw.history.len());
        for (h, s) in run.history.iter().zip(sw.history.iter()) {
            assert_eq!(h.gen, s.gen);
            assert_eq!(h.best, s.best, "best at gen {}", s.gen);
            assert_eq!(h.fit_sum, s.fit_sum, "fit_sum at gen {}", s.gen);
        }
        assert_eq!(run.best.chrom, sw.best.chrom);
        assert_eq!(run.best.fitness, sw.best.fitness);
    }

    #[test]
    fn models_agree_small() {
        assert_32bit_models_agree(sum_halves, GaParams::new(8, 4, 10, 1, 0x2961));
    }

    #[test]
    fn models_agree_paper_setting() {
        assert_32bit_models_agree(sum_halves, GaParams::new(32, 16, 10, 1, 0xB342));
    }

    #[test]
    fn models_agree_minimax_odd_pop() {
        assert_32bit_models_agree(minimax, GaParams::new(15, 8, 12, 3, 0x061F));
    }

    #[test]
    fn composite_population_is_consistent() {
        let params = GaParams::new(16, 6, 10, 1, 0xAAAA);
        let mut hw = GaSystem32::new(sum_halves);
        hw.program_and_run(&params, 500_000_000).unwrap();
        let pop = hw.population();
        assert_eq!(pop.len(), 16);
        // Every stored fitness must match the 32-bit function of the
        // stored chromosome (the mirrored-fitness wiring is coherent).
        for ind in &pop {
            assert_eq!(ind.fitness, sum_halves(ind.chrom), "{:#010X}", ind.chrom);
        }
    }

    #[test]
    fn dual_core_optimizes() {
        let params = GaParams::new(32, 32, 10, 1, 0x2961);
        let mut hw = GaSystem32::new(sum_halves);
        let run = hw.program_and_run(&params, 1_000_000_000).unwrap();
        assert!(run.best.fitness > 55_000, "fitness {}", run.best.fitness);
    }
}
