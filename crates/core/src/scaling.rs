//! Chromosome-length scaling: the 32-bit GA built from two 16-bit cores
//! (§III-D, Fig. 6).
//!
//! Two complete 16-bit cores — each with its own RNG — hold the MSB and
//! LSB halves of every 32-bit individual. The composition rules from the
//! paper:
//!
//! * **Parent selection** — only `GA_Core1` (MSB) performs real
//!   proportionate selection; the `scalingLogic_parSel` block forces
//!   `GA_Core2` to pick the *same index*, otherwise an offspring could
//!   concatenate halves of two different parents.
//! * **Crossover** — both halves cross independently, which acts on the
//!   32-bit chromosome as a (up to) three-point crossover with
//!   `xovProb32 = p_M + p_L − p_M·p_L`.
//! * **Mutation** — both halves mutate independently (at most two bits
//!   flip), with the same probability composition.
//! * **Fitness** — the halves are concatenated and evaluated once; the
//!   value is returned to core 1 only, and only core 1 writes the GA
//!   memory.
//!
//! [`GaEngine32`] is the behavioral model of this arrangement with the
//! same per-core draw semantics as [`crate::behavioral::GaEngine`];
//! [`compose_prob`]/[`split_prob`] are the paper's probability algebra.

use carng::Rng16;

use crate::ops;
use crate::params::GaParams;

/// The paper's composition equation:
/// `prob32 = prob16(MSB) + prob16(LSB) − prob16(MSB)·prob16(LSB)`.
pub fn compose_prob(p_msb: f64, p_lsb: f64) -> f64 {
    p_msb + p_lsb - p_msb * p_lsb
}

/// Invert [`compose_prob`] for equal per-half probabilities: the value
/// `p` such that `compose_prob(p, p) = target`.
pub fn split_prob(target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&target));
    1.0 - (1.0 - target).sqrt()
}

/// Nearest 4-bit threshold realizing a probability (threshold/16).
pub fn threshold_for_prob(p: f64) -> u8 {
    ((p * 16.0).round() as i64).clamp(0, 15) as u8
}

/// A 32-bit individual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Individual32 {
    /// 32-bit chromosome (MSB half = core 1, LSB half = core 2).
    pub chrom: u32,
    /// 16-bit fitness.
    pub fitness: u16,
}

/// Per-generation statistics of a 32-bit run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats32 {
    /// Generation index (0 = initial population).
    pub gen: u32,
    /// Best individual of the population.
    pub best: Individual32,
    /// Population fitness sum.
    pub fit_sum: u32,
}

/// Result of a 32-bit run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaRun32 {
    /// Best individual found.
    pub best: Individual32,
    /// Per-generation history.
    pub history: Vec<GenStats32>,
    /// Fitness evaluations performed.
    pub evaluations: u64,
}

/// Behavioral model of the dual-core 32-bit GA.
pub struct GaEngine32<R1: Rng16, R2: Rng16, F: FnMut(u32) -> u16> {
    params: GaParams,
    /// Per-core crossover thresholds (may differ, per the composition
    /// equations).
    xt_msb: u8,
    xt_lsb: u8,
    mt_msb: u8,
    mt_lsb: u8,
    rng1: R1,
    rng2: R2,
    fitness: F,
    cur: Vec<Individual32>,
    best: Individual32,
    fit_sum: u32,
    gen: u32,
    evaluations: u64,
}

impl<R1: Rng16, R2: Rng16, F: FnMut(u32) -> u16> GaEngine32<R1, R2, F> {
    /// Build the dual-core engine. `params.xover_threshold` /
    /// `params.mut_threshold` are applied to *both* halves; use
    /// [`GaEngine32::with_split_thresholds`] to program them separately.
    pub fn new(params: GaParams, mut rng1: R1, mut rng2: R2, fitness: F) -> Self {
        params.validate().expect("invalid GA parameters");
        rng1.reseed(params.seed);
        // Core 2 powers on with the complemented seed so the two halves
        // start decorrelated even when the user programs only one seed.
        rng2.reseed(!params.seed);
        GaEngine32 {
            params,
            xt_msb: params.xover_threshold,
            xt_lsb: params.xover_threshold,
            mt_msb: params.mut_threshold,
            mt_lsb: params.mut_threshold,
            rng1,
            rng2,
            fitness,
            cur: Vec::new(),
            best: Individual32::default(),
            fit_sum: 0,
            gen: 0,
            evaluations: 0,
        }
    }

    /// Program the per-half thresholds (the paper: "the individual
    /// crossover probabilities ... should be programmed according to the
    /// equation").
    pub fn with_split_thresholds(mut self, xt_msb: u8, xt_lsb: u8, mt_msb: u8, mt_lsb: u8) -> Self {
        assert!(xt_msb < 16 && xt_lsb < 16 && mt_msb < 16 && mt_lsb < 16);
        self.xt_msb = xt_msb;
        self.xt_lsb = xt_lsb;
        self.mt_msb = mt_msb;
        self.mt_lsb = mt_lsb;
        self
    }

    fn evaluate(&mut self, chrom: u32) -> u16 {
        self.evaluations += 1;
        (self.fitness)(chrom)
    }

    fn init_population(&mut self) -> GenStats32 {
        self.cur.clear();
        self.fit_sum = 0;
        for i in 0..self.params.pop_size {
            // Fig. 6(a): each core's RNG produces one half.
            let msb = self.rng1.next_u16();
            let lsb = self.rng2.next_u16();
            let chrom = ((msb as u32) << 16) | lsb as u32;
            let fitness = self.evaluate(chrom);
            let ind = Individual32 { chrom, fitness };
            if i == 0 || fitness > self.best.fitness {
                self.best = ind;
            }
            self.fit_sum += fitness as u32;
            self.cur.push(ind);
        }
        self.stats()
    }

    /// Parent selection (Fig. 6(b)): core 1 selects; core 2's threshold
    /// draw is consumed but its scan is overridden by the scaling logic.
    fn select(&mut self) -> Individual32 {
        let r = self.rng1.next_u16();
        let _r2 = self.rng2.next_u16(); // consumed and discarded by scalingLogic_parSel
        let threshold = ops::selection_threshold(self.fit_sum, r);
        let mut cum = 0u32;
        for ind in &self.cur {
            cum += ind.fitness as u32;
            if ops::selection_hit(cum, threshold) {
                return *ind;
            }
        }
        *self.cur.last().expect("population never empty")
    }

    fn breed_halves(&mut self, p1: u32, p2: u32) -> (u32, u32) {
        let (p1m, p1l) = ((p1 >> 16) as u16, p1 as u16);
        let (p2m, p2l) = ((p2 >> 16) as u16, p2 as u16);
        // Independent one-point crossover per half (Fig. 6(c)); each
        // core spends one draw, carrying both fields (ops::xover_fields).
        let (d1, cut1) = ops::xover_fields(self.rng1.next_u16());
        let (o1m, o2m) = if ops::decision(d1, self.xt_msb) {
            ops::crossover(p1m, p2m, cut1)
        } else {
            (p1m, p2m)
        };
        let (d2, cut2) = ops::xover_fields(self.rng2.next_u16());
        let (o1l, o2l) = if ops::decision(d2, self.xt_lsb) {
            ops::crossover(p1l, p2l, cut2)
        } else {
            (p1l, p2l)
        };
        (
            ((o1m as u32) << 16) | o1l as u32,
            ((o2m as u32) << 16) | o2l as u32,
        )
    }

    fn mutate32(&mut self, chrom: u32) -> u32 {
        let mut msb = (chrom >> 16) as u16;
        let mut lsb = chrom as u16;
        // Independent single-bit mutation per half (Fig. 6(d)): at most
        // two bits of the 32-bit chromosome flip.
        let (d1, pt1) = ops::mut_fields(self.rng1.next_u16());
        if ops::decision(d1, self.mt_msb) {
            msb = ops::mutate(msb, pt1);
        }
        let (d2, pt2) = ops::mut_fields(self.rng2.next_u16());
        if ops::decision(d2, self.mt_lsb) {
            lsb = ops::mutate(lsb, pt2);
        }
        ((msb as u32) << 16) | lsb as u32
    }

    fn step_generation(&mut self) -> GenStats32 {
        let pop = self.params.pop_size as usize;
        let mut new_pop = Vec::with_capacity(pop);
        new_pop.push(self.best);
        let mut new_sum = self.best.fitness as u32;
        let mut new_best = self.best;
        while new_pop.len() < pop {
            let p1 = self.select();
            let p2 = self.select();
            let (o1, o2) = self.breed_halves(p1.chrom, p2.chrom);
            for chrom in [o1, o2] {
                if new_pop.len() >= pop {
                    break;
                }
                let mutated = self.mutate32(chrom);
                let fitness = self.evaluate(mutated);
                let ind = Individual32 {
                    chrom: mutated,
                    fitness,
                };
                if fitness > new_best.fitness {
                    new_best = ind;
                }
                new_sum += fitness as u32;
                new_pop.push(ind);
            }
        }
        self.cur = new_pop;
        self.fit_sum = new_sum;
        self.best = new_best;
        self.gen += 1;
        self.stats()
    }

    fn stats(&self) -> GenStats32 {
        GenStats32 {
            gen: self.gen,
            best: self.best,
            fit_sum: self.fit_sum,
        }
    }

    /// Run the full 32-bit optimization.
    pub fn run(mut self) -> GaRun32 {
        let mut history = Vec::with_capacity(self.params.n_gens as usize + 1);
        history.push(self.init_population());
        for _ in 0..self.params.n_gens {
            history.push(self.step_generation());
        }
        GaRun32 {
            best: self.best,
            history,
            evaluations: self.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carng::CaRng;

    #[test]
    fn composition_equation_matches_paper() {
        // Independent events: P(any) = p + q − pq.
        assert!((compose_prob(0.5, 0.5) - 0.75).abs() < 1e-12);
        assert!((compose_prob(0.0, 0.3) - 0.3).abs() < 1e-12);
        assert!((compose_prob(1.0, 0.3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_prob_inverts_compose() {
        for target in [0.0, 0.1, 0.5, 0.625, 0.9, 1.0] {
            let p = split_prob(target);
            assert!(
                (compose_prob(p, p) - target).abs() < 1e-12,
                "target {target}"
            );
        }
    }

    #[test]
    fn split_gives_lower_per_half_rates() {
        // §III-D(c): "lower crossover probabilities should be used" on
        // each half to realize the same overall rate.
        let target = 0.625; // the paper's XR=10 rate
        let p = split_prob(target);
        assert!(p < target);
        let t = threshold_for_prob(p);
        assert!(t < 10);
    }

    #[test]
    fn threshold_rounding() {
        assert_eq!(threshold_for_prob(0.625), 10);
        assert_eq!(threshold_for_prob(0.0), 0);
        assert_eq!(threshold_for_prob(1.0), 15, "15/16 is the hardware maximum");
    }

    /// A separable 32-bit test function: maximize both halves.
    fn sum_halves(c: u32) -> u16 {
        let msb = (c >> 16) as u16;
        let lsb = c as u16;
        ((msb as u32 + lsb as u32) / 2) as u16
    }

    #[test]
    fn dual_core_optimizes_32bit_function() {
        let params = GaParams::new(32, 64, 10, 2, 0x2961);
        let run = GaEngine32::new(params, CaRng::new(1), CaRng::new(2), sum_halves).run();
        assert!(
            run.best.fitness > 60_000,
            "32-bit GA should approach the optimum, got {}",
            run.best.fitness
        );
        assert_eq!(run.history.len(), 65);
    }

    #[test]
    fn parents_are_never_mixed_across_individuals() {
        // With crossover and mutation disabled, every offspring must be
        // an existing 32-bit individual — the scalingLogic_parSel
        // guarantee (§III-D(b)).
        let params = GaParams::new(16, 4, 0, 0, 0xB342);
        let mut engine = GaEngine32::new(params, CaRng::new(3), CaRng::new(4), sum_halves);
        let mut history = vec![engine.init_population()];
        let gen0: Vec<u32> = engine.cur.iter().map(|i| i.chrom).collect();
        history.push(engine.step_generation());
        for ind in &engine.cur {
            assert!(
                gen0.contains(&ind.chrom),
                "offspring {:#010x} is not a gen-0 individual: halves were mixed",
                ind.chrom
            );
        }
    }

    #[test]
    fn elitism_monotone_in_32bit_runs() {
        let params = GaParams::new(16, 16, 12, 3, 0xAAAA);
        let run = GaEngine32::new(params, CaRng::new(5), CaRng::new(6), sum_halves).run();
        let mut prev = 0;
        for s in &run.history {
            assert!(s.best.fitness >= prev);
            prev = s.best.fitness;
        }
    }

    #[test]
    fn empirical_crossover_rate_matches_composition() {
        // Measure how often at least one half crosses, against the
        // composed probability, using the decision statistics of the
        // 4-bit threshold draws.
        let (xt, trials) = (6u8, 40_000u32);
        let mut rng1 = CaRng::new(0x1111);
        let mut rng2 = CaRng::new(0x2222);
        let mut any = 0u32;
        for _ in 0..trials {
            let a = ops::decision((rng1.next_u16() & 0xF) as u8, xt);
            let b = ops::decision((rng2.next_u16() & 0xF) as u8, xt);
            if a || b {
                any += 1;
            }
        }
        let measured = any as f64 / trials as f64;
        let expected = compose_prob(6.0 / 16.0, 6.0 / 16.0);
        assert!(
            (measured - expected).abs() < 0.02,
            "measured {measured:.3} vs composed {expected:.3}"
        );
    }
}
