//! Durable engine snapshots — the checkpoint/resume substrate.
//!
//! A [`EngineSnapshot`] captures everything the behavioral engine needs
//! to continue a run exactly where it stopped: the parameter set, the
//! live population, the elite/best-so-far, the generation counter, the
//! bookkeeping counters, and the RNG position as the backend-neutral
//! *(draws consumed, next draw)* pair (see [`carng::SnapshotRng`]).
//! Restoring a snapshot taken on one stepping backend into another —
//! behavioral CA register vs. a bitsim lane stream — reproduces the
//! remaining trajectory bit-for-bit, which is what makes sharded
//! multi-process islands resumable after a crash.
//!
//! The wire format is a hand-rolled versioned binary codec (the
//! workspace builds offline with no serde): a 2-byte magic, a version
//! byte, fixed-width little-endian fields, then the length-prefixed
//! population. [`hex_encode`]/[`hex_decode`] wrap it in lowercase hex
//! for JSONL transport and on-disk checkpoint files. The exact bytes
//! are pinned by a golden fixture test and property-tested for
//! round-trip identity and panic-free rejection of corrupted input.

use std::fmt;

use crate::behavioral::{FieldMode, Individual};
use crate::params::GaParams;

/// Current snapshot format version. Decoders reject anything newer.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Format magic: "GS" (GA snapshot).
const MAGIC: [u8; 2] = *b"GS";

/// Full behavioral-engine state at a generation boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// The parameter set in force (including the member's own seed).
    pub params: GaParams,
    /// Elitism toggle (always true outside ablation runs).
    pub elitism: bool,
    /// Operator field-extraction mode.
    pub field_mode: FieldMode,
    /// Generations completed so far.
    pub gen: u32,
    /// Sum of the current population's fitness values.
    pub fit_sum: u32,
    /// Fitness evaluations consumed so far.
    pub evaluations: u64,
    /// RNG draws consumed so far — the stream cursor for replay RNGs.
    pub rng_draws: u64,
    /// The value the next RNG draw will return.
    pub rng_next: u16,
    /// Best individual so far (the elite).
    pub best: Individual,
    /// The current population, in memory order.
    pub population: Vec<Individual>,
}

/// Typed decode failures. Corrupt or truncated input must land here —
/// never in a panic — which the proptest suite enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input ended before a field was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The leading magic is not `GS`.
    BadMagic,
    /// The version byte names a format newer than this decoder.
    UnsupportedVersion {
        /// The version byte found.
        version: u8,
    },
    /// A hex payload had a non-hex digit or odd length.
    BadHex {
        /// Character offset of the offense.
        pos: usize,
    },
    /// Well-formed prefix followed by unconsumed bytes.
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A field decoded but is not a reachable engine state.
    BadValue {
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: needed {needed} bytes, have {have}")
            }
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "snapshot version {version} is not supported (max {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadHex { pos } => write!(f, "invalid hex at offset {pos}"),
            SnapshotError::Trailing { extra } => {
                write!(f, "snapshot has {extra} trailing bytes")
            }
            SnapshotError::BadValue { what } => write!(f, "bad snapshot value: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A bounds-checked little-endian byte reader. Every take returns a
/// typed error instead of slicing out of range.
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Truncated {
                needed: self.pos + n,
                have: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Trailing {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

impl EngineSnapshot {
    /// Serialize to the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + 4 * self.population.len());
        out.extend_from_slice(&MAGIC);
        out.push(SNAPSHOT_VERSION);
        out.push(self.params.pop_size);
        out.extend_from_slice(&self.params.n_gens.to_le_bytes());
        out.push(self.params.xover_threshold);
        out.push(self.params.mut_threshold);
        out.extend_from_slice(&self.params.seed.to_le_bytes());
        let flags = (self.elitism as u8)
            | (matches!(self.field_mode, FieldMode::ConsecutiveDraws) as u8) << 1;
        out.push(flags);
        out.extend_from_slice(&self.gen.to_le_bytes());
        out.extend_from_slice(&self.fit_sum.to_le_bytes());
        out.extend_from_slice(&self.evaluations.to_le_bytes());
        out.extend_from_slice(&self.rng_draws.to_le_bytes());
        out.extend_from_slice(&self.rng_next.to_le_bytes());
        out.extend_from_slice(&self.best.chrom.to_le_bytes());
        out.extend_from_slice(&self.best.fitness.to_le_bytes());
        out.extend_from_slice(&(self.population.len() as u16).to_le_bytes());
        for ind in &self.population {
            out.extend_from_slice(&ind.chrom.to_le_bytes());
            out.extend_from_slice(&ind.fitness.to_le_bytes());
        }
        out
    }

    /// Decode and validate. Rejects wrong magic, future versions,
    /// truncation, trailing bytes, and states no engine can reach
    /// (invalid params, population/pop_size disagreement, fitness-sum
    /// mismatch) — always as a typed [`SnapshotError`], never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        if r.take(2)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { version });
        }
        let params = GaParams {
            pop_size: r.u8()?,
            n_gens: r.u32()?,
            xover_threshold: r.u8()?,
            mut_threshold: r.u8()?,
            seed: r.u16()?,
        };
        let flags = r.u8()?;
        if flags & !0b11 != 0 {
            return Err(SnapshotError::BadValue {
                what: "unknown flag bits set",
            });
        }
        let elitism = flags & 1 != 0;
        let field_mode = if flags & 2 != 0 {
            FieldMode::ConsecutiveDraws
        } else {
            FieldMode::SharedDraw
        };
        let gen = r.u32()?;
        let fit_sum = r.u32()?;
        let evaluations = r.u64()?;
        let rng_draws = r.u64()?;
        let rng_next = r.u16()?;
        let best = Individual {
            chrom: r.u16()?,
            fitness: r.u16()?,
        };
        let pop_len = r.u16()? as usize;
        let mut population = Vec::with_capacity(pop_len.min(GaParams::MAX_POP as usize));
        for _ in 0..pop_len {
            population.push(Individual {
                chrom: r.u16()?,
                fitness: r.u16()?,
            });
        }
        r.finish()?;

        if params.validate().is_err() {
            return Err(SnapshotError::BadValue {
                what: "invalid GA parameters",
            });
        }
        if population.len() != params.pop_size as usize {
            return Err(SnapshotError::BadValue {
                what: "population length disagrees with pop_size",
            });
        }
        let sum: u32 = population.iter().map(|i| i.fitness as u32).sum();
        if sum != fit_sum {
            return Err(SnapshotError::BadValue {
                what: "fitness sum disagrees with the population",
            });
        }
        let pop_max = population.iter().map(|i| i.fitness).max().unwrap_or(0);
        if best.fitness < pop_max {
            return Err(SnapshotError::BadValue {
                what: "best-so-far is worse than the population",
            });
        }
        Ok(EngineSnapshot {
            params,
            elitism,
            field_mode,
            gen,
            fit_sum,
            evaluations,
            rng_draws,
            rng_next,
            best,
            population,
        })
    }

    /// Lowercase-hex wire form (JSONL transport, checkpoint files).
    pub fn to_hex(&self) -> String {
        hex_encode(&self.encode())
    }

    /// Decode the hex wire form.
    pub fn from_hex(s: &str) -> Result<Self, SnapshotError> {
        Self::decode(&hex_decode(s)?)
    }
}

/// Lowercase hex encoding — two digits per byte, no separators.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    s
}

/// Strict hex decoding: even length, `[0-9a-fA-F]` only.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, SnapshotError> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return Err(SnapshotError::BadHex { pos: b.len() });
    }
    let digit = |c: u8, pos: usize| {
        (c as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or(SnapshotError::BadHex { pos })
    };
    let mut out = Vec::with_capacity(b.len() / 2);
    for (i, pair) in b.chunks_exact(2).enumerate() {
        out.push((digit(pair[0], 2 * i)? << 4) | digit(pair[1], 2 * i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        EngineSnapshot {
            params: GaParams::new(2, 4, 10, 1, 0x2961),
            elitism: true,
            field_mode: FieldMode::SharedDraw,
            gen: 1,
            fit_sum: 5,
            evaluations: 6,
            rng_draws: 7,
            rng_next: 0x1234,
            best: Individual {
                chrom: 0xABCD,
                fitness: 3,
            },
            population: vec![
                Individual {
                    chrom: 1,
                    fitness: 2,
                },
                Individual {
                    chrom: 3,
                    fitness: 3,
                },
            ],
        }
    }

    /// The golden fixture pinning format v1 byte-for-byte. If this test
    /// fails, the wire format changed: bump [`SNAPSHOT_VERSION`] and
    /// keep a decoder for v1 instead of editing this constant.
    const GOLDEN_HEX: &str = "47530102040000000a016129 01 01000000 05000000 \
                              0600000000000000 0700000000000000 3412 cdab 0300 \
                              0200 01000200 03000300";

    #[test]
    fn golden_fixture_encodes_exactly() {
        let golden: String = GOLDEN_HEX.split_whitespace().collect();
        assert_eq!(sample().to_hex(), golden);
    }

    #[test]
    fn golden_fixture_decodes_exactly() {
        let golden: String = GOLDEN_HEX.split_whitespace().collect();
        assert_eq!(EngineSnapshot::from_hex(&golden).unwrap(), sample());
    }

    #[test]
    fn round_trips_through_bytes_and_hex() {
        let s = sample();
        assert_eq!(EngineSnapshot::decode(&s.encode()).unwrap(), s);
        assert_eq!(EngineSnapshot::from_hex(&s.to_hex()).unwrap(), s);
    }

    #[test]
    fn future_version_is_rejected() {
        let mut b = sample().encode();
        b[2] = SNAPSHOT_VERSION + 1;
        assert_eq!(
            EngineSnapshot::decode(&b),
            Err(SnapshotError::UnsupportedVersion {
                version: SNAPSHOT_VERSION + 1
            })
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut b = sample().encode();
        b[0] = b'X';
        assert_eq!(EngineSnapshot::decode(&b), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let b = sample().encode();
        for n in 0..b.len() {
            let r = EngineSnapshot::decode(&b[..n]);
            assert!(r.is_err(), "prefix of {n} bytes decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut b = sample().encode();
        b.push(0);
        assert_eq!(
            EngineSnapshot::decode(&b),
            Err(SnapshotError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn inconsistent_fit_sum_is_rejected() {
        let mut s = sample();
        s.fit_sum += 1;
        assert_eq!(
            EngineSnapshot::decode(&s.encode()),
            Err(SnapshotError::BadValue {
                what: "fitness sum disagrees with the population"
            })
        );
    }

    #[test]
    fn hex_decoding_is_strict() {
        assert_eq!(hex_decode("abc"), Err(SnapshotError::BadHex { pos: 3 }));
        assert_eq!(hex_decode("zz"), Err(SnapshotError::BadHex { pos: 0 }));
        assert_eq!(hex_decode("00ff"), Ok(vec![0, 0xFF]));
        assert_eq!(hex_encode(&[0, 0xFF, 0x2A]), "00ff2a");
    }
}
