//! The RNG hardware module (Fig. 4's "RNG module").
//!
//! A free-standing clocked module holding the PRNG state register. The
//! GA core reads the output register through the `rn` port and pulses a
//! consume/enable wire when it has used the value, so the sequence of
//! numbers the optimizer sees is independent of how many cycles each
//! FSM state takes — which is what makes the behavioral and
//! cycle-accurate models bit-identical and the hardware verifiable
//! against simulation. (§III-B.7: "The GA core reads the output register
//! of the RNG module when it needs a random number.")
//!
//! The kernel (CA or LFSR) is a plain function over the state word,
//! demonstrating the paper's claim that "the operation of the GA core is
//! independent of the RNG implementation".

use carng::{ca, lfsr};
use hwsim::{Clocked, Reg};

/// Clocked RNG module with seed-load and consume-enable inputs.
#[derive(Debug, Clone)]
pub struct RngModule {
    state: Reg<u16>,
    step_fn: fn(u16) -> u16,
}

fn ca_step(s: u16) -> u16 {
    ca::CaRng::step_state(s, ca::MAXIMAL_RULE_VECTOR)
}

fn lfsr_step(s: u16) -> u16 {
    lfsr::Lfsr16::step_state(s, lfsr::MAXIMAL_TAPS)
}

impl RngModule {
    /// The paper's configuration: cellular-automaton kernel.
    pub fn new_ca(power_on_seed: u16) -> Self {
        RngModule {
            state: Reg::new(Self::guard(power_on_seed)),
            step_fn: ca_step,
        }
    }

    /// LFSR kernel (for RNG-independence experiments).
    pub fn new_lfsr(power_on_seed: u16) -> Self {
        RngModule {
            state: Reg::new(Self::guard(power_on_seed)),
            step_fn: lfsr_step,
        }
    }

    /// The all-zero state is a fixed point for both kernels.
    fn guard(seed: u16) -> u16 {
        if seed == 0 {
            1
        } else {
            seed
        }
    }

    /// The `rn` output port (registered).
    #[inline]
    pub fn rn(&self) -> u16 {
        self.state.get()
    }

    /// Evaluation phase: a seed load takes priority over a consume step.
    pub fn eval(&mut self, consume: bool, seed_load: Option<u16>) {
        if let Some(seed) = seed_load {
            self.state.set(Self::guard(seed));
        } else if consume {
            self.state.set((self.step_fn)(self.state.get()));
        }
    }
}

impl Clocked for RngModule {
    fn reset(&mut self) {
        // Reset does not scramble the seed register: the paper allows
        // programming the seed before starting, and the start state
        // reloads it anyway.
        let cur = self.state.get();
        self.state.reset_to(Self::guard(cur));
    }

    fn commit(&mut self) {
        self.state.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carng::{CaRng, Rng16};

    #[test]
    fn consume_steps_once_per_pulse() {
        let mut m = RngModule::new_ca(0x2961);
        let mut reference = CaRng::new(0x2961);
        for _ in 0..100 {
            assert_eq!(m.rn(), reference.output());
            m.eval(true, None);
            m.commit();
            reference.step();
        }
    }

    #[test]
    fn idle_cycles_hold_the_value() {
        let mut m = RngModule::new_ca(0xB342);
        let v = m.rn();
        for _ in 0..10 {
            m.eval(false, None);
            m.commit();
            assert_eq!(m.rn(), v, "value must hold while the core is busy");
        }
    }

    #[test]
    fn seed_load_overrides_consume() {
        let mut m = RngModule::new_ca(1);
        m.eval(true, Some(0xABCD));
        m.commit();
        assert_eq!(m.rn(), 0xABCD);
    }

    #[test]
    fn zero_seed_guarded() {
        let mut m = RngModule::new_ca(0);
        assert_eq!(m.rn(), 1);
        m.eval(false, Some(0));
        m.commit();
        assert_eq!(m.rn(), 1);
    }

    #[test]
    fn lfsr_kernel_differs_from_ca() {
        let mut a = RngModule::new_ca(0x1234);
        let mut b = RngModule::new_lfsr(0x1234);
        a.eval(true, None);
        b.eval(true, None);
        a.commit();
        b.commit();
        assert_ne!(a.rn(), b.rn());
    }
}
