//! Island-model parallel GA — the "advanced hardware acceleration"
//! axis of the paper's related work (§II-B: Multi-GAP, Jelodar et al.'s
//! SOPC parallel GA, Nedjah & Mourelle's massively parallel
//! architecture), built from multiple unmodified engines.
//!
//! Each island runs the paper's exact GA with its **own CA RNG at a
//! jump-ahead offset** on a shared stream (so streams are provably
//! disjoint, `carng::wide`), evolving independently for a migration
//! epoch and then passing its best individual to the next island on a
//! ring, where it replaces the worst member. Islands execute on
//! std scoped threads — the software realization of the
//! multi-FPGA layout those papers prototype, and a faithful model
//! because inter-island traffic happens only at epoch barriers.

use carng::ca::MAXIMAL_RULE_VECTOR;
use carng::wide::CaRngW;
use carng::{CaRng, SnapshotRng};

use crate::behavioral::{GaEngine, Individual};
use crate::params::GaParams;
use crate::snapshot::{EngineSnapshot, SnapshotError};

/// One island's engine, as the migration loop sees it: anything that
/// can initialize a population, evolve it one generation at a time,
/// report its elite, and accept a migrant. [`GaEngine`] implements it
/// for every RNG source, which is what lets the engine-layer composite
/// (`ga-engine`'s `IslandsEngine`) run islands over *any* stepping
/// backend — behavioral CA, LFSR, or a bitsim64 lane stream.
pub trait IslandMember: Send {
    /// Generate and evaluate the random initial population.
    fn init_population(&mut self);
    /// Breed one full generation.
    fn step_generation(&mut self);
    /// Best individual so far.
    fn best(&self) -> Individual;
    /// Replace the worst member with `migrant` (ring migration).
    fn inject(&mut self, migrant: Individual);
    /// Fitness evaluations consumed so far.
    fn evaluations(&self) -> u64;
    /// Capture the member's full state ([`GaEngine::snapshot`]).
    fn snapshot(&self) -> EngineSnapshot;
    /// Install a snapshot ([`GaEngine::restore`]); the member continues
    /// bit-identically from the captured position.
    fn restore(&mut self, snap: &EngineSnapshot) -> Result<(), SnapshotError>;
}

impl<R: SnapshotRng + Send, F: FnMut(u16) -> u16 + Send> IslandMember for GaEngine<R, F> {
    fn init_population(&mut self) {
        GaEngine::init_population(self);
    }

    fn step_generation(&mut self) {
        GaEngine::step_generation(self);
    }

    fn best(&self) -> Individual {
        GaEngine::best(self)
    }

    fn inject(&mut self, migrant: Individual) {
        GaEngine::inject(self, migrant);
    }

    fn evaluations(&self) -> u64 {
        GaEngine::evaluations(self)
    }

    fn snapshot(&self) -> EngineSnapshot {
        GaEngine::snapshot(self)
    }

    fn restore(&mut self, snap: &EngineSnapshot) -> Result<(), SnapshotError> {
        GaEngine::restore(self, snap)
    }
}

/// Island-model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IslandConfig {
    /// Number of islands (ring size).
    pub islands: usize,
    /// Generations between migrations.
    pub epoch: u32,
    /// Number of epochs (total generations = epoch × epochs).
    pub epochs: u32,
}

/// Result of an island run.
#[derive(Debug, Clone, PartialEq)]
pub struct IslandRun {
    /// Best individual across all islands.
    pub best: Individual,
    /// Per-island best at the end.
    pub island_best: Vec<Individual>,
    /// Total fitness evaluations across islands.
    pub evaluations: u64,
}

/// Seed for island `k`: the shared CA stream jumped ahead by
/// `k · 2^16 / islands` states, so island streams never overlap within
/// an epoch's draw budget.
pub fn island_seed(base_seed: u16, k: usize, islands: usize) -> u16 {
    let mut rng = CaRngW::<16>::new(base_seed as u64, MAXIMAL_RULE_VECTOR as u64);
    rng.jump((k as u64 * 65_535) / islands as u64);
    rng.output() as u16
}

/// Run the island model. `fitness` is shared by all islands (`Fn + Sync`
/// — e.g. a tabulated ROM lookup).
pub fn run_islands<F>(params: GaParams, config: IslandConfig, fitness: F) -> IslandRun
where
    F: Fn(u16) -> u16 + Sync,
{
    let fit = &fitness;
    let members: Vec<Box<dyn IslandMember + '_>> = (0..config.islands)
        .map(|k| {
            let seed = island_seed(params.seed, k, config.islands);
            let p = GaParams { seed, ..params };
            Box::new(GaEngine::new(p, CaRng::new(seed), fit)) as Box<dyn IslandMember + '_>
        })
        .collect();
    run_islands_over(config, members)
}

/// The epoch-granular island driver: members between epochs, one
/// scoped-thread fan-out per [`IslandRing::step_epoch`], ring migration
/// at every barrier. Splitting the loop open (instead of running it to
/// completion inside [`run_islands_over`]) is what lets the engine
/// layer checkpoint every member after each epoch and resume a killed
/// run from the snapshots — the trajectory is bit-identical either way
/// because all cross-island traffic happens at the barrier.
pub struct IslandRing<'a> {
    config: IslandConfig,
    engines: Vec<Box<dyn IslandMember + 'a>>,
    epochs_done: u32,
}

impl<'a> IslandRing<'a> {
    fn validated(
        config: IslandConfig,
        members: Vec<Box<dyn IslandMember + 'a>>,
        epochs_done: u32,
    ) -> Self {
        assert!(config.islands >= 1);
        assert_eq!(members.len(), config.islands, "one member per island");
        assert!(config.epoch >= 1 && config.epochs >= 1);
        IslandRing {
            config,
            engines: members,
            epochs_done,
        }
    }

    /// Start a fresh ring: every member's initial population is
    /// generated and evaluated. `members[k]` is island *k*; callers are
    /// responsible for seeding the members with disjoint streams
    /// ([`island_seed`]).
    pub fn new(config: IslandConfig, members: Vec<Box<dyn IslandMember + 'a>>) -> Self {
        let mut ring = Self::validated(config, members, 0);
        for e in ring.engines.iter_mut() {
            e.init_population();
        }
        ring
    }

    /// Rebuild a ring from members that were already positioned (via
    /// [`IslandMember::restore`]) at the `epochs_done` barrier: no
    /// initial populations are generated, no RNG draws are consumed.
    pub fn resume(
        config: IslandConfig,
        members: Vec<Box<dyn IslandMember + 'a>>,
        epochs_done: u32,
    ) -> Self {
        assert!(epochs_done <= config.epochs, "resuming past the end");
        Self::validated(config, members, epochs_done)
    }

    /// Evolve every island for `epoch` generations in parallel, then
    /// migrate: island *k*'s best replaces the worst member of island
    /// *(k+1) mod n* on the ring.
    pub fn step_epoch(&mut self) {
        let config = self.config;
        let engines = &mut self.engines;
        std::thread::scope(|s| {
            let handles: Vec<_> = engines
                .drain(..)
                .map(|mut e| {
                    s.spawn(move || {
                        for _ in 0..config.epoch {
                            e.step_generation();
                        }
                        e
                    })
                })
                .collect();
            engines.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("island thread panicked")),
            );
        });

        if config.islands > 1 {
            let migrants: Vec<Individual> = engines.iter().map(|e| e.best()).collect();
            for (k, m) in migrants.into_iter().enumerate() {
                let dst = (k + 1) % config.islands;
                engines[dst].inject(m);
            }
        }
        self.epochs_done += 1;
    }

    /// The configuration in force.
    pub fn config(&self) -> IslandConfig {
        self.config
    }

    /// Epoch barriers crossed so far.
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// True once every configured epoch has run.
    pub fn done(&self) -> bool {
        self.epochs_done >= self.config.epochs
    }

    /// Best individual across the ring right now.
    pub fn best(&self) -> Individual {
        self.engines
            .iter()
            .map(|e| e.best())
            .max_by_key(|i| i.fitness)
            .expect("at least one island")
    }

    /// Snapshot every member at the current barrier, in ring order.
    pub fn snapshots(&self) -> Vec<EngineSnapshot> {
        self.engines.iter().map(|e| e.snapshot()).collect()
    }

    /// Finish: fold the members into the run result.
    pub fn finish(self) -> IslandRun {
        let island_best: Vec<Individual> = self.engines.iter().map(|e| e.best()).collect();
        let best = island_best
            .iter()
            .copied()
            .max_by_key(|i| i.fitness)
            .expect("at least one island");
        IslandRun {
            best,
            island_best,
            evaluations: self.engines.iter().map(|e| e.evaluations()).sum(),
        }
    }
}

/// The migration loop run to completion — [`IslandRing`] driven over
/// every configured epoch in one call.
pub fn run_islands_over(
    config: IslandConfig,
    members: Vec<Box<dyn IslandMember + '_>>,
) -> IslandRun {
    let mut ring = IslandRing::new(config, members);
    while !ring.done() {
        ring.step_epoch();
    }
    ring.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_fitness::rom::FitnessRom;
    use ga_fitness::TestFunction;

    fn cfg(islands: usize) -> IslandConfig {
        IslandConfig {
            islands,
            epoch: 8,
            epochs: 4,
        }
    }

    #[test]
    fn island_seeds_are_distinct() {
        let seeds: Vec<u16> = (0..8).map(|k| island_seed(0x2961, k, 8)).collect();
        let distinct: std::collections::HashSet<u16> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), 8, "{seeds:?}");
    }

    #[test]
    fn runs_are_deterministic_despite_threads() {
        let rom = FitnessRom::tabulate(TestFunction::Bf6);
        let params = GaParams::new(32, 32, 10, 1, 0x2961);
        let a = run_islands(params, cfg(4), |c| rom.lookup(c));
        let b = run_islands(params, cfg(4), |c| rom.lookup(c));
        assert_eq!(a, b, "epoch-barrier migration must be deterministic");
    }

    #[test]
    fn four_islands_beat_or_match_one_island_budget_for_budget() {
        // Same total evaluation budget: 1 island × 32 gens of pop 32 vs
        // 4 islands × 32 gens of pop 8... population size floor makes
        // the honest comparison 4×(pop 32, 8 epochs of 4) vs 1×(pop 32,
        // 32 gens): same generations per island member.
        let rom = FitnessRom::tabulate(TestFunction::Bf6);
        let params = GaParams::new(32, 32, 10, 1, 0xB342);
        let single = run_islands(
            params,
            IslandConfig {
                islands: 1,
                epoch: 32,
                epochs: 1,
            },
            |c| rom.lookup(c),
        );
        let multi = run_islands(params, cfg(4), |c| rom.lookup(c));
        assert_eq!(multi.evaluations, 4 * single.evaluations);
        assert!(
            multi.best.fitness >= single.best.fitness,
            "4 islands {} vs 1 island {}",
            multi.best.fitness,
            single.best.fitness
        );
    }

    #[test]
    fn migration_spreads_the_best_individual() {
        let rom = FitnessRom::tabulate(TestFunction::F3);
        let params = GaParams::new(16, 16, 10, 1, 0x061F);
        let run = run_islands(
            params,
            IslandConfig {
                islands: 4,
                epoch: 4,
                epochs: 8,
            },
            |c| rom.lookup(c),
        );
        // After 8 migration rounds on a 4-ring, every island has seen
        // good genes: all island bests within 5% of the global best.
        for (k, b) in run.island_best.iter().enumerate() {
            assert!(
                b.fitness as f64 >= run.best.fitness as f64 * 0.95,
                "island {k} lagging: {} vs {}",
                b.fitness,
                run.best.fitness
            );
        }
    }

    #[test]
    fn ring_checkpoint_resume_is_bit_identical() {
        // Kill-and-resume at a barrier: snapshot after two epochs,
        // rebuild fresh members from the snapshots, finish — the result
        // must equal the uninterrupted run exactly.
        let rom = FitnessRom::tabulate(TestFunction::Bf6);
        let params = GaParams::new(16, 32, 10, 1, 0x2961);
        let config = cfg(4);
        let members = || -> Vec<Box<dyn IslandMember + '_>> {
            (0..config.islands)
                .map(|k| {
                    let seed = island_seed(params.seed, k, config.islands);
                    let p = GaParams { seed, ..params };
                    Box::new(GaEngine::new(p, CaRng::new(seed), |c| rom.lookup(c)))
                        as Box<dyn IslandMember + '_>
                })
                .collect()
        };
        let reference = run_islands_over(config, members());

        let mut ring = IslandRing::new(config, members());
        ring.step_epoch();
        ring.step_epoch();
        let snaps = ring.snapshots();
        drop(ring); // the "crash"

        let mut fresh = members();
        for (m, s) in fresh.iter_mut().zip(&snaps) {
            m.restore(s).expect("snapshot restores");
        }
        let mut resumed = IslandRing::resume(config, fresh, 2);
        assert_eq!(resumed.epochs_done(), 2);
        while !resumed.done() {
            resumed.step_epoch();
        }
        assert_eq!(resumed.finish(), reference);
    }

    #[test]
    fn single_island_matches_plain_engine() {
        // One island, one epoch = the plain engine exactly (plus the
        // jump-ahead seed derivation with k = 0, which is the identity).
        let rom = FitnessRom::tabulate(TestFunction::Mbf6_2);
        let params = GaParams::new(32, 16, 10, 1, 0xAAAA);
        let island = run_islands(
            params,
            IslandConfig {
                islands: 1,
                epoch: 16,
                epochs: 1,
            },
            |c| rom.lookup(c),
        );
        let seed0 = island_seed(params.seed, 0, 1);
        let p = GaParams {
            seed: seed0,
            ..params
        };
        let plain = GaEngine::new(p, carng::CaRng::new(seed0), |c| rom.lookup(c)).run();
        assert_eq!(island.best, plain.best);
    }
}
