//! The initialization module (Fig. 4's "Initialization module").
//!
//! "The initialization module consists of a simple finite state machine
//! to perform the two-way handshaking operation using the data valid
//! and data ack signals to initialize the various GA parameters one by
//! one" (§IV-B). This is that FSM as a clocked module: loaded with a
//! parameter set, it raises `ga_load`, walks the six Table III writes
//! through the valid/ack handshake, and drops `ga_load` when done.

use hwsim::{Clocked, Reg};

use crate::params::GaParams;

/// Outputs driven to the GA core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InitOut {
    /// `ga_load` — held through the whole initialization sequence.
    pub ga_load: bool,
    /// Parameter index bus (3 bits).
    pub index: u8,
    /// Parameter value bus.
    pub value: u16,
    /// Handshake strobe.
    pub data_valid: bool,
    /// All writes acknowledged; `ga_load` dropped.
    pub done: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum State {
    #[default]
    Idle,
    /// Drive index/value + data_valid, wait for ack.
    Present,
    /// Drop data_valid, wait for ack to fall.
    Release,
    Done,
}

/// The initialization FSM.
#[derive(Debug, Clone)]
pub struct InitModule {
    writes: [(u8, u16); 6],
    state: Reg<State>,
    pos: Reg<u8>,
    out_load: Reg<bool>,
    out_valid: Reg<bool>,
    out_index: Reg<u8>,
    out_value: Reg<u16>,
}

impl InitModule {
    /// Build the write sequence for a parameter set (Table III order:
    /// generation-count halves, population, thresholds, seed).
    pub fn new(params: &GaParams) -> Self {
        params.validate().expect("invalid GA parameters");
        InitModule {
            writes: [
                (0, (params.n_gens & 0xFFFF) as u16),
                (1, (params.n_gens >> 16) as u16),
                (2, params.pop_size as u16),
                (3, params.xover_threshold as u16),
                (4, params.mut_threshold as u16),
                (5, params.seed),
            ],
            state: Reg::default(),
            pos: Reg::default(),
            out_load: Reg::default(),
            out_valid: Reg::default(),
            out_index: Reg::default(),
            out_value: Reg::default(),
        }
    }

    /// Kick off the sequence (from Idle or Done).
    pub fn start(&mut self) {
        self.state.reset_to(State::Present);
        self.pos.reset_to(0);
        self.out_load.reset_to(true);
        let (i, v) = self.writes[0];
        self.out_index.reset_to(i);
        self.out_value.reset_to(v);
        self.out_valid.reset_to(false);
    }

    /// Registered outputs.
    pub fn out(&self) -> InitOut {
        InitOut {
            ga_load: self.out_load.get(),
            index: self.out_index.get(),
            value: self.out_value.get(),
            data_valid: self.out_valid.get(),
            done: self.state.get() == State::Done,
        }
    }

    /// Evaluation phase; `data_ack` is the core's registered acknowledge.
    pub fn eval(&mut self, data_ack: bool) {
        match self.state.get() {
            State::Idle | State::Done => {}
            State::Present => {
                self.out_valid.set(true);
                if data_ack {
                    // Core latched the value: drop the strobe.
                    self.out_valid.set(false);
                    self.state.set(State::Release);
                }
            }
            State::Release => {
                if !data_ack {
                    let next = self.pos.get() + 1;
                    if (next as usize) < self.writes.len() {
                        self.pos.set(next);
                        let (i, v) = self.writes[next as usize];
                        self.out_index.set(i);
                        self.out_value.set(v);
                        self.state.set(State::Present);
                    } else {
                        self.out_load.set(false);
                        self.state.set(State::Done);
                    }
                }
            }
        }
    }
}

impl Clocked for InitModule {
    fn reset(&mut self) {
        self.state.reset_to(State::Idle);
        self.pos.reset_to(0);
        self.out_load.reset_to(false);
        self.out_valid.reset_to(false);
        self.out_index.reset_to(0);
        self.out_value.reset_to(0);
    }

    fn commit(&mut self) {
        self.state.commit();
        self.pos.commit();
        self.out_load.commit();
        self.out_valid.commit();
        self.out_index.commit();
        self.out_value.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hwcore::GaCoreHw;
    use crate::ports::GaCoreIn;

    /// Wire the init module directly to a core and clock them together.
    fn program_core(params: &GaParams) -> (GaCoreHw, u32) {
        let mut core = GaCoreHw::new();
        let mut init = InitModule::new(params);
        init.reset();
        init.start();
        let mut cycles = 0;
        while !init.out().done {
            let io = init.out();
            let core_out = core.out();
            core.eval(&GaCoreIn {
                ga_load: io.ga_load,
                index: io.index,
                value: io.value,
                data_valid: io.data_valid,
                ..Default::default()
            });
            init.eval(core_out.data_ack);
            core.commit();
            init.commit();
            cycles += 1;
            assert!(cycles < 1000, "init sequence hung");
        }
        // One idle cycle for the core to leave InitParams.
        core.eval(&GaCoreIn::default());
        core.commit();
        (core, cycles)
    }

    #[test]
    fn programs_all_six_parameters() {
        let params = GaParams::new(48, 0x0003_0007, 11, 5, 0xFACE);
        let (core, cycles) = program_core(&params);
        assert_eq!(core.programmed_params(), params);
        // Six writes, each at least valid→ack→release→ack-low = 4 edges.
        assert!(cycles >= 24, "suspiciously fast: {cycles} cycles");
    }

    #[test]
    fn done_drops_ga_load() {
        let params = GaParams::default();
        let mut init = InitModule::new(&params);
        init.reset();
        assert!(!init.out().ga_load);
        init.start();
        assert!(init.out().ga_load);
        let (_, _) = program_core(&params);
    }

    #[test]
    fn sequence_is_restartable() {
        let p1 = GaParams::new(16, 100, 9, 2, 0x1111);
        let (core1, _) = program_core(&p1);
        assert_eq!(core1.programmed_params(), p1);
        // Reprogram the same core with a different set.
        let p2 = GaParams::new(32, 200, 3, 7, 0x2222);
        let mut core = core1;
        let mut init = InitModule::new(&p2);
        init.reset();
        init.start();
        let mut cycles = 0;
        while !init.out().done {
            let io = init.out();
            let ack = core.out().data_ack;
            core.eval(&GaCoreIn {
                ga_load: io.ga_load,
                index: io.index,
                value: io.value,
                data_valid: io.data_valid,
                ..Default::default()
            });
            init.eval(ack);
            core.commit();
            init.commit();
            cycles += 1;
            assert!(cycles < 1000);
        }
        core.eval(&GaCoreIn::default());
        core.commit();
        assert_eq!(core.programmed_params(), p2);
    }
}
