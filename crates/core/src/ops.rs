//! The genetic operators, bit-exact as the datapath computes them.
//!
//! Both the behavioral engine and the cycle-accurate core call these
//! functions, so the two models can only diverge in *when* they draw
//! random numbers — and the differential tests pin that down too.

/// Proportionate-selection threshold (§III-B.2): the population fitness
/// sum scaled down by a 16-bit random number. In hardware this is a
/// 24×16 multiply whose top bits are kept: `(sum · r) >> 16`, which is
/// always strictly less than `sum` whenever `sum > 0`.
#[inline]
pub fn selection_threshold(fit_sum: u32, r: u16) -> u32 {
    ((fit_sum as u64 * r as u64) >> 16) as u32
}

/// Scan step of proportionate selection: given the running cumulative
/// sum *after* adding the current individual's fitness, does this
/// individual win? (First individual whose fitness pushes the cumulative
/// sum **above** the threshold is selected.)
#[inline]
pub fn selection_hit(cum_sum: u32, threshold: u32) -> bool {
    cum_sum > threshold
}

/// Single-point crossover mask for cut point `n ∈ 0..=15`: ones in bit
/// positions `0..n`, zeros above (§III-B.3: "a mask is generated with 1s
/// from position 0 to n−1 and 0s after n").
#[inline]
pub fn crossover_mask(cut: u8) -> u16 {
    debug_assert!(cut < 16);
    // cut == 0 gives an empty mask: offspring1 == parent2 entirely.
    ((1u32 << cut) - 1) as u16
}

/// Single-point crossover: returns the two offspring (Fig. 3).
/// `off1` takes parent 1's low `cut` bits and parent 2's high bits;
/// `off2` is the complement.
#[inline]
pub fn crossover(p1: u16, p2: u16, cut: u8) -> (u16, u16) {
    let m = crossover_mask(cut);
    ((p1 & m) | (p2 & !m), (p1 & !m) | (p2 & m))
}

/// Single-bit mutation (§III-B.4): XOR with a one-hot mask at the
/// mutation point.
#[inline]
pub fn mutate(chrom: u16, point: u8) -> u16 {
    debug_assert!(point < 16);
    chrom ^ (1u16 << point)
}

/// Threshold comparison used for both crossover and mutation decisions:
/// the operator fires when a fresh 4-bit draw is **less than** the
/// programmed threshold, so threshold/16 is the firing probability
/// (threshold 0 never fires, 15 fires with probability 15/16).
#[inline]
pub fn decision(draw4: u8, threshold: u8) -> bool {
    (draw4 & 0xF) < (threshold & 0xF)
}

/// Crossover fields extracted from **one** 16-bit draw: decision nibble
/// from bits \[3:0\], cut point from bits \[7:4\].
///
/// §III-B.7: "Based on the number of random bits needed, the GA selects
/// the bits from predefined positions." Taking both fields from a single
/// draw is not just a cycle saving — it is statistically load-bearing
/// for a CA PRNG. Over the full period of a maximal-length CA every
/// 16-bit state occurs exactly once, so two disjoint bit fields of the
/// *same* draw are exactly jointly uniform. Fields taken from
/// *consecutive* draws are not: the rule-90/150 update is local, so
/// after conditioning on "low nibble = 0" (a successful mutation
/// decision at the paper's rate 1/16) the next state's low nibble is
/// almost deterministic — an early version of this model could only
/// ever flip chromosome bits 0 and 8, and the GA measurably stalled on
/// Test Function F3.
#[inline]
pub fn xover_fields(draw: u16) -> (u8, u8) {
    ((draw & 0xF) as u8, ((draw >> 4) & 0xF) as u8)
}

/// Mutation fields from one 16-bit draw: decision nibble from bits
/// \[3:0\], mutation point from bits \[11:8\] (see [`xover_fields`] for
/// why the fields share a draw).
#[inline]
pub fn mut_fields(draw: u16) -> (u8, u8) {
    ((draw & 0xF) as u8, ((draw >> 8) & 0xF) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_strictly_below_sum() {
        for sum in [1u32, 100, 65535, 128 * 65535] {
            for r in [0u16, 1, 0x8000, 0xFFFF] {
                assert!(selection_threshold(sum, r) < sum, "sum={sum} r={r}");
            }
        }
        assert_eq!(selection_threshold(0, 0xFFFF), 0);
    }

    #[test]
    fn threshold_scales_linearly() {
        // r = 0x8000 is exactly half.
        assert_eq!(selection_threshold(1000, 0x8000), 500);
        assert_eq!(selection_threshold(1 << 20, 0x4000), 1 << 18);
    }

    #[test]
    fn crossover_paper_example() {
        // Fig. 3: parents 1010_1010_1010_1010 and 0101_0101_0101_0101
        // with the cut in the middle swap halves exactly.
        let p1 = 0b1010_1010_1010_1010u16;
        let p2 = 0b0101_0101_0101_0101u16;
        let (o1, o2) = crossover(p1, p2, 8);
        assert_eq!(o1, 0b0101_0101_1010_1010);
        assert_eq!(o2, 0b1010_1010_0101_0101);
    }

    #[test]
    fn crossover_offspring_are_complementary() {
        for cut in 0..16u8 {
            let (o1, o2) = crossover(0xF0F0, 0x1234, cut);
            // Each bit position comes from exactly one parent in each
            // offspring, and the two offspring take opposite parents.
            assert_eq!(o1 ^ o2, 0xF0F0 ^ 0x1234);
            assert_eq!(o1 & crossover_mask(cut), 0xF0F0 & crossover_mask(cut));
            assert_eq!(o2 & crossover_mask(cut), 0x1234 & crossover_mask(cut));
        }
    }

    #[test]
    fn crossover_extremes() {
        // cut 0: offspring1 is entirely parent 2.
        assert_eq!(crossover(0xAAAA, 0x5555, 0), (0x5555, 0xAAAA));
        // cut 15: only the top bit comes from parent 2.
        let (o1, _) = crossover(0xFFFF, 0x0000, 15);
        assert_eq!(o1, 0x7FFF);
    }

    #[test]
    fn mask_shape() {
        assert_eq!(crossover_mask(0), 0x0000);
        assert_eq!(crossover_mask(1), 0x0001);
        assert_eq!(crossover_mask(8), 0x00FF);
        assert_eq!(crossover_mask(15), 0x7FFF);
    }

    #[test]
    fn mutation_flips_exactly_one_bit() {
        for point in 0..16u8 {
            let m = mutate(0x0000, point);
            assert_eq!(m.count_ones(), 1);
            assert_eq!(mutate(m, point), 0, "mutation is an involution");
        }
    }

    #[test]
    fn decision_rates() {
        // threshold 0 never fires; threshold 15 fires 15/16 of draws.
        for d in 0..16u8 {
            assert!(!decision(d, 0));
        }
        let fires = (0..16u8).filter(|&d| decision(d, 15)).count();
        assert_eq!(fires, 15);
        let fires10 = (0..16u8).filter(|&d| decision(d, 10)).count();
        assert_eq!(fires10, 10, "threshold 10 = rate 0.625 (the paper's XR=10)");
    }

    #[test]
    fn selection_hit_is_strict() {
        assert!(!selection_hit(5, 5));
        assert!(selection_hit(6, 5));
    }

    #[test]
    fn field_extraction_positions() {
        let draw = 0b1010_0110_1100_0011u16;
        assert_eq!(xover_fields(draw), (0b0011, 0b1100));
        assert_eq!(mut_fields(draw), (0b0011, 0b0110));
    }

    #[test]
    fn mutation_point_uniform_given_decision_over_full_ca_period() {
        // The property the shared-draw design buys: conditioned on the
        // mutation decision firing (low nibble < threshold), the
        // mutation point field is still uniform over 0..16 across the
        // CA's full period.
        use carng::{CaRng, Rng16};
        let mut rng = CaRng::new(1);
        let mut counts = [0u32; 16];
        for _ in 0..65535 {
            let d = rng.next_u16();
            let (dec, point) = mut_fields(d);
            if decision(dec, 1) {
                counts[point as usize] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        assert!(total > 3500, "≈ 65535/16 decisions expected, got {total}");
        for (p, &c) in counts.iter().enumerate() {
            let frac = c as f64 / total as f64;
            assert!(
                (frac - 1.0 / 16.0).abs() < 0.01,
                "mutation point {p} has probability {frac:.4}"
            );
        }
    }
}
