//! The GA memory module (Fig. 4's "GA memory").
//!
//! A single-port 256 × 32-bit synchronous memory — one Virtex-II Pro
//! block RAM (Table VI: 1% block-memory utilization). Each word packs an
//! individual: chromosome in the upper half, fitness in the lower half.
//! The 256 words are double-buffered into two banks of 128 (current and
//! new population), which is why the core's maximum population size is
//! 128 (the largest preset of Table IV).

use hwsim::{Clocked, SpRam};

use crate::behavioral::Individual;

/// Base address of population bank 0.
pub const BANK0_BASE: u8 = 0;
/// Base address of population bank 1.
pub const BANK1_BASE: u8 = 128;

/// Pack an individual into a 32-bit memory word.
#[inline]
pub fn pack(ind: Individual) -> u32 {
    ((ind.chrom as u32) << 16) | ind.fitness as u32
}

/// Unpack a 32-bit memory word.
#[inline]
pub fn unpack(word: u32) -> Individual {
    Individual {
        chrom: (word >> 16) as u16,
        fitness: (word & 0xFFFF) as u16,
    }
}

/// The 256-word GA memory.
#[derive(Debug, Clone)]
pub struct GaMemory {
    ram: SpRam,
}

impl Default for GaMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl GaMemory {
    /// A zeroed 256 × 32 memory.
    pub fn new() -> Self {
        GaMemory {
            ram: SpRam::new(256),
        }
    }

    /// Evaluation phase: drive the single port with the core's
    /// registered memory outputs.
    pub fn eval(&mut self, addr: u8, data: u32, wr: bool) {
        self.ram.eval(addr, data, wr);
    }

    /// Registered read data (valid one cycle after the address cycle).
    #[inline]
    pub fn dout(&self) -> u32 {
        self.ram.dout()
    }

    /// Testbench backdoor: read a whole population bank.
    pub fn backdoor_population(&self, base: u8, pop_size: u8) -> Vec<Individual> {
        (0..pop_size)
            .map(|i| unpack(self.ram.backdoor(base.wrapping_add(i))))
            .collect()
    }
}

impl Clocked for GaMemory {
    fn reset(&mut self) {
        self.ram.reset();
    }

    fn commit(&mut self) {
        self.ram.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (c, f) in [(0u16, 0u16), (0xFFFF, 0xFFFF), (0x1234, 0xABCD)] {
            let ind = Individual {
                chrom: c,
                fitness: f,
            };
            assert_eq!(unpack(pack(ind)), ind);
        }
    }

    #[test]
    fn banks_do_not_overlap() {
        assert_eq!(BANK1_BASE - BANK0_BASE, 128);
        let mut m = GaMemory::new();
        let a = Individual {
            chrom: 1,
            fitness: 10,
        };
        let b = Individual {
            chrom: 2,
            fitness: 20,
        };
        m.eval(BANK0_BASE, pack(a), true);
        m.commit();
        m.eval(BANK1_BASE, pack(b), true);
        m.commit();
        assert_eq!(m.backdoor_population(BANK0_BASE, 1), vec![a]);
        assert_eq!(m.backdoor_population(BANK1_BASE, 1), vec![b]);
    }

    #[test]
    fn read_latency_one_cycle() {
        let mut m = GaMemory::new();
        let ind = Individual {
            chrom: 0xBEEF,
            fitness: 77,
        };
        m.eval(5, pack(ind), true);
        m.commit();
        m.eval(5, 0, false);
        m.commit();
        assert_eq!(unpack(m.dout()), ind);
    }

    #[test]
    fn max_population_fits_either_bank() {
        let mut m = GaMemory::new();
        for i in 0..128u8 {
            m.eval(
                BANK1_BASE + i,
                pack(Individual {
                    chrom: i as u16,
                    fitness: i as u16,
                }),
                true,
            );
            m.commit();
        }
        let pop = m.backdoor_population(BANK1_BASE, 128);
        assert_eq!(pop.len(), 128);
        assert_eq!(pop[127].chrom, 127);
    }
}
