//! The GA core's port interface (Table II).
//!
//! All 25 signals of Table II are represented, grouped into the input
//! bundle sampled every cycle ([`GaCoreIn`]), the registered output
//! bundle ([`GaCoreOut`]), and the same-cycle combinational outputs
//! ([`GaCoreComb`]) that wire the core to its RNG module (the consume
//! enable and seed load are intra-module wires in the paper's "GA
//! module" — Fig. 4 draws the RNG inside the module boundary).
//!
//! Note on Table II as printed: signal 17 (`GA_done`) is listed with
//! direction "I", but the prose is unambiguous that the *core* asserts
//! it ("the GA_done signal is asserted" once the best candidate is
//! placed on the bus), so it is an output here. `reset` (1) and
//! `sys_clock` (2) are carried by the simulation kernel rather than the
//! bundle.

/// Inputs sampled by the core each clock (Table II signals 3–6, 8, 10,
/// 15–16, 18–19, 21–25).
#[derive(Debug, Clone, Copy, Default)]
pub struct GaCoreIn {
    /// (3) `ga_load` — enter/hold parameter-initialization mode.
    pub ga_load: bool,
    /// (4) `index` — 3-bit parameter index (Table III).
    pub index: u8,
    /// (5) `value` — 16-bit initialization value bus.
    pub value: u16,
    /// (6) `data_valid` — initialization handshake strobe.
    pub data_valid: bool,
    /// (8) `fit_value` — fitness from the selected internal FEM.
    pub fit_value: u16,
    /// (10) `fit_valid` — internal FEM validity strobe.
    pub fit_valid: bool,
    /// (15) `mem_data_in` — read data from the GA memory.
    pub mem_data_in: u32,
    /// (16) `start_GA` — start pulse from the application.
    pub start_ga: bool,
    /// (18) `test` — scan-chain test enable.
    pub test: bool,
    /// (19) `scanin` — scan-chain serial input.
    pub scanin: bool,
    /// (21) `preset` — 2-bit preset mode selector (Table IV).
    pub preset: u8,
    /// (22) `rn` — 16-bit random number from the RNG module.
    pub rn: u16,
    /// (23) `fitfunc_Select` — 3-bit fitness module select (sampled for
    /// completeness; routing happens in the FEM bank).
    pub fitfunc_select: u8,
    /// (24) `fit_value_ext` — fitness value from an external FEM.
    pub fit_value_ext: u16,
    /// (25) `fit_valid_ext` — validity strobe from an external FEM.
    pub fit_valid_ext: bool,
}

/// Registered outputs of the core (Table II signals 7, 9, 11–14, 17, 20).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GaCoreOut {
    /// (7) `data_ack` — initialization handshake acknowledge.
    pub data_ack: bool,
    /// (9) `fit_request` — fitness evaluation request.
    pub fit_request: bool,
    /// (11) `candidate` — candidate solution bus. Also carries the best
    /// individual of every generation ("the best candidate of every
    /// generation is always output to the application to use in case of
    /// an emergency") and the final answer when `GA_done` rises.
    pub candidate: u16,
    /// (12) `mem_address` — GA memory address.
    pub mem_address: u8,
    /// (13) `mem_data_out` — GA memory write data.
    pub mem_data_out: u32,
    /// (14) `mem_wr` — GA memory write strobe.
    pub mem_wr: bool,
    /// (17) `GA_done` — optimization complete.
    pub ga_done: bool,
    /// (20) `scanout` — scan-chain serial output.
    pub scanout: bool,
}

/// Same-cycle combinational outputs wiring the core to the RNG module.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaCoreComb {
    /// Consume/enable pulse: the RNG steps this cycle.
    pub rn_consume: bool,
    /// Seed register load (asserted in the start state).
    pub rn_seed_load: Option<u16>,
    /// Per-generation statistics event: `(generation, best chromosome,
    /// best fitness, population fitness sum)` — the values the paper's
    /// Chipscope probes captured. Emitted once per generation boundary.
    pub stats_event: Option<(u32, u16, u16, u32)>,
    /// Selection-hit status wire: high during the `SelScanData` cycle in
    /// which this core commits to a parent. Exported for the
    /// `scalingLogic_parSel` block of the dual-core composition
    /// (§III-D) — external logic snoops it to force the slave core onto
    /// the same parent index.
    pub sel_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II enumerates 25 signals. Two (reset, sys_clock) are
    /// carried by the simulation kernel; the remaining 23 are fields of
    /// the input/output bundles — this test is the interface-width
    /// contract DESIGN.md points at.
    #[test]
    fn table_ii_signal_inventory() {
        // Inputs: ga_load, index, value, data_valid, fit_value,
        // fit_valid, mem_data_in, start_GA, test, scanin, preset, rn,
        // fitfunc_Select, fit_value_ext, fit_valid_ext  → 15 signals.
        let i = GaCoreIn::default();
        let input_signals = [
            i.ga_load as u64,
            i.index as u64,
            i.value as u64,
            i.data_valid as u64,
            i.fit_value as u64,
            i.fit_valid as u64,
            i.mem_data_in as u64,
            i.start_ga as u64,
            i.test as u64,
            i.scanin as u64,
            i.preset as u64,
            i.rn as u64,
            i.fitfunc_select as u64,
            i.fit_value_ext as u64,
            i.fit_valid_ext as u64,
        ];
        assert_eq!(input_signals.len(), 15);
        // Outputs: data_ack, fit_request, candidate, mem_address,
        // mem_data_out, mem_wr, GA_done, scanout → 8 signals.
        let o = GaCoreOut::default();
        let output_signals = [
            o.data_ack as u64,
            o.fit_request as u64,
            o.candidate as u64,
            o.mem_address as u64,
            o.mem_data_out as u64,
            o.mem_wr as u64,
            o.ga_done as u64,
            o.scanout as u64,
        ];
        assert_eq!(output_signals.len(), 8);
        // 15 + 8 + reset + sys_clock = the paper's 25 rows.
        assert_eq!(input_signals.len() + output_signals.len() + 2, 25);
    }

    /// Bus widths match Table II's "width in bits" column (asserted via
    /// the carrier types' ranges used by the hardware: 3-bit index,
    /// 2-bit preset, 3-bit select are masked at their consumers).
    #[test]
    fn reset_state_is_all_deasserted() {
        let o = GaCoreOut::default();
        assert!(!o.data_ack && !o.fit_request && !o.mem_wr && !o.ga_done && !o.scanout);
        assert_eq!((o.candidate, o.mem_address, o.mem_data_out), (0, 0, 0));
    }
}
