//! Property-based tests of the snapshot wire codec. Checkpoint bundles
//! cross process boundaries and live on disk, so the decoder faces
//! arbitrary bytes: every corruption must land in a typed
//! [`SnapshotError`], never a panic, and every encodable state must
//! round-trip byte-identically (the invariant the multi-process resume
//! proof rests on).

#![allow(clippy::unwrap_used)]

use ga_core::behavioral::FieldMode;
use ga_core::snapshot::{hex_decode, EngineSnapshot, SnapshotError, SNAPSHOT_VERSION};
use ga_core::{GaParams, Individual};
use proptest::prelude::*;

/// Assemble a *reachable* engine state from primitive draws: the
/// population determines `fit_sum`, and the elite is at least as fit as
/// the fittest member (both are decoder-enforced invariants).
#[allow(clippy::too_many_arguments)]
fn snapshot(
    members: Vec<(u16, u16)>,
    xover: u8,
    mutation: u8,
    n_gens: u32,
    seed: u16,
    elitism: bool,
    consecutive: bool,
    gen: u32,
    evaluations: u64,
    rng_draws: u64,
    rng_next: u16,
    best_chrom: u16,
    best_margin: u16,
) -> EngineSnapshot {
    let population: Vec<Individual> = members
        .iter()
        .map(|&(chrom, fitness)| Individual { chrom, fitness })
        .collect();
    let pop_max = population.iter().map(|i| i.fitness).max().unwrap_or(0);
    EngineSnapshot {
        params: GaParams {
            pop_size: population.len() as u8,
            n_gens,
            xover_threshold: xover,
            mut_threshold: mutation,
            seed,
        },
        elitism,
        field_mode: if consecutive {
            FieldMode::ConsecutiveDraws
        } else {
            FieldMode::SharedDraw
        },
        gen,
        fit_sum: population.iter().map(|i| i.fitness as u32).sum(),
        evaluations,
        rng_draws,
        rng_next,
        best: Individual {
            chrom: best_chrom,
            fitness: pop_max.saturating_add(best_margin),
        },
        population,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Encode → decode is the identity, and re-encoding the decoded
    /// snapshot reproduces the original bytes exactly — same through
    /// the hex wire form.
    #[test]
    fn round_trips_are_byte_identical(
        members in prop::collection::vec((0u16..=u16::MAX, 0u16..=u16::MAX), 2..65),
        xover in 0u8..=15, mutation in 0u8..=15,
        n_gens in 1u32..=u32::MAX, seed in 0u16..=u16::MAX,
        elitism in any::<bool>(), consecutive in any::<bool>(),
        gen in 0u32..=u32::MAX,
        evaluations in 0u64..=u64::MAX, rng_draws in 0u64..=u64::MAX,
        rng_next in 0u16..=u16::MAX,
        best_chrom in 0u16..=u16::MAX, best_margin in 0u16..=64,
    ) {
        let snap = snapshot(
            members, xover, mutation, n_gens, seed, elitism, consecutive,
            gen, evaluations, rng_draws, rng_next, best_chrom, best_margin,
        );
        let bytes = snap.encode();
        let decoded = EngineSnapshot::decode(&bytes);
        prop_assert!(decoded.is_ok(), "own encoding rejected: {decoded:?}");
        let decoded = decoded.unwrap();
        prop_assert_eq!(&decoded, &snap);
        prop_assert_eq!(decoded.encode(), bytes.clone(), "re-encode drifted");
        let hexed = EngineSnapshot::from_hex(&snap.to_hex());
        prop_assert!(hexed.is_ok(), "hex round trip rejected: {hexed:?}");
        prop_assert_eq!(hexed.unwrap().encode(), bytes);
    }

    /// Every proper prefix of a valid encoding is a typed error —
    /// never a panic, never a silent partial decode.
    #[test]
    fn truncations_are_typed_never_panics(
        members in prop::collection::vec((0u16..=u16::MAX, 0u16..=u16::MAX), 2..17),
        seed in 0u16..=u16::MAX,
        cut_salt in 0usize..=usize::MAX,
    ) {
        let snap = snapshot(
            members, 10, 1, 32, seed, true, false, 3, 96, 500, 0x1234, 7, 0,
        );
        let bytes = snap.encode();
        // Exhaustive over every prefix, plus one salted deep cut to
        // keep the case count honest if the format grows.
        for n in (0..bytes.len()).chain([cut_salt % bytes.len()]) {
            let r = EngineSnapshot::decode(&bytes[..n]);
            prop_assert!(r.is_err(), "prefix of {n}/{} bytes decoded", bytes.len());
        }
        // Appending garbage is a typed trailing error.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0xAA, 0xBB]);
        prop_assert_eq!(
            EngineSnapshot::decode(&long),
            Err(SnapshotError::Trailing { extra: 2 })
        );
    }

    /// Flipping any single byte never panics the decoder: it either
    /// still decodes (the byte was free payload, e.g. a chromosome) or
    /// lands in a typed error. Flips that touch checked invariants are
    /// caught.
    #[test]
    fn single_byte_corruption_is_typed_or_benign(
        members in prop::collection::vec((0u16..=u16::MAX, 0u16..=u16::MAX), 2..17),
        pos_salt in 0usize..=usize::MAX,
        flip in 1u8..=u8::MAX,
    ) {
        let snap = snapshot(
            members, 10, 1, 32, 0x2961, true, false, 3, 96, 500, 0x1234, 7, 1,
        );
        let mut bytes = snap.encode();
        let pos = pos_salt % bytes.len();
        bytes[pos] ^= flip;
        // A typed rejection is the expected path; a benign flip must
        // still re-encode to exactly the mutated bytes — the codec has
        // no don't-care bits.
        if let Ok(decoded) = EngineSnapshot::decode(&bytes) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
        // Corrupting the magic specifically is always BadMagic.
        let mut magicless = snap.encode();
        magicless[0] ^= flip;
        prop_assert_eq!(
            EngineSnapshot::decode(&magicless),
            Err(SnapshotError::BadMagic)
        );
    }

    /// The version byte gates every future format: all 254 non-v1
    /// values are rejected up front with the version named, before any
    /// field is interpreted.
    #[test]
    fn future_versions_are_rejected_by_name(
        members in prop::collection::vec((0u16..=u16::MAX, 0u16..=u16::MAX), 2..9),
        version in 0u8..=u8::MAX,
    ) {
        let snap = snapshot(
            members, 10, 1, 32, 0xB342, true, true, 1, 32, 100, 0x0001, 0, 0,
        );
        let mut bytes = snap.encode();
        bytes[2] = version;
        let r = EngineSnapshot::decode(&bytes);
        if version == SNAPSHOT_VERSION {
            prop_assert!(r.is_ok());
        } else {
            prop_assert_eq!(r, Err(SnapshotError::UnsupportedVersion { version }));
        }
    }

    /// The hex layer is strict: odd lengths and non-hex digits are
    /// typed errors carrying the offending offset, and valid hex of
    /// garbage bytes falls through to the binary decoder's typed
    /// rejection — no panic anywhere on the path.
    #[test]
    fn hex_layer_rejections_are_typed(
        junk in prop::collection::vec(0u8..=u8::MAX, 0..64),
        salt in 0usize..=usize::MAX,
    ) {
        let hex: String = junk.iter().map(|b| format!("{b:02x}")).collect();
        match hex_decode(&hex) {
            Ok(bytes) => prop_assert_eq!(&bytes, &junk),
            Err(e) => prop_assert!(false, "valid hex rejected: {e}"),
        }
        // Garbage bytes through the full from_hex path: typed or valid.
        let _ = EngineSnapshot::from_hex(&hex);
        // Mangle one digit to a non-hex character.
        if !hex.is_empty() {
            let pos = salt % hex.len();
            let mut bad = hex.clone();
            bad.replace_range(pos..=pos, "z");
            prop_assert_eq!(hex_decode(&bad), Err(SnapshotError::BadHex { pos }));
        }
        // Odd length is rejected at the end offset.
        let odd = format!("{hex}a");
        prop_assert_eq!(
            hex_decode(&odd),
            Err(SnapshotError::BadHex { pos: odd.len() })
        );
    }
}
