//! Statistical properties of the genetic operators, measured over long
//! CA-RNG streams — the §II-A contract ("highly fit individuals have a
//! selection probability that is proportional to their fitness").

use carng::{CaRng, Rng16};
use ga_core::ops;

/// One proportionate selection over a fitness vector, exactly as the
/// core scans its population memory.
fn select_index(fits: &[u16], fit_sum: u32, r: u16) -> usize {
    let threshold = ops::selection_threshold(fit_sum, r);
    let mut cum = 0u32;
    for (i, &f) in fits.iter().enumerate() {
        cum += f as u32;
        if ops::selection_hit(cum, threshold) {
            return i;
        }
    }
    fits.len() - 1
}

#[test]
fn selection_frequency_is_proportional_to_fitness() {
    // A population with 1:2:4:8 fitness ratios.
    let fits = [1000u16, 2000, 4000, 8000];
    let fit_sum: u32 = fits.iter().map(|&f| f as u32).sum();
    let mut rng = CaRng::new(0x2961);
    let trials = 60_000u32;
    let mut counts = [0u32; 4];
    for _ in 0..trials {
        counts[select_index(&fits, fit_sum, rng.next_u16())] += 1;
    }
    for (i, &f) in fits.iter().enumerate() {
        let expected = f as f64 / fit_sum as f64;
        let measured = counts[i] as f64 / trials as f64;
        assert!(
            (measured - expected).abs() < 0.01,
            "individual {i}: measured {measured:.4}, expected {expected:.4}"
        );
    }
}

#[test]
fn zero_fitness_individuals_are_never_selected_mid_population() {
    // A zero-fitness individual can only win as the last-index fallback.
    let fits = [0u16, 5000, 0, 5000];
    let fit_sum = 10_000u32;
    let mut rng = CaRng::new(0x061F);
    for _ in 0..20_000 {
        let idx = select_index(&fits, fit_sum, rng.next_u16());
        assert!(idx == 1 || idx == 3, "selected zero-fitness index {idx}");
    }
}

#[test]
fn crossover_rate_matches_threshold_over_the_full_period() {
    // Exact rate over one full CA period: threshold/16 of all draws.
    for threshold in [0u8, 1, 8, 10, 15] {
        let mut rng = CaRng::new(1);
        let mut fired = 0u32;
        for _ in 0..65_535 {
            let (d, _) = ops::xover_fields(rng.next_u16());
            if ops::decision(d, threshold) {
                fired += 1;
            }
        }
        // Over the full period every 16-bit value appears once, so the
        // count is exactly threshold/16 of 65535 (±1 for the missing
        // all-zero state).
        let expected = threshold as u32 * 65_536 / 16;
        let diff = fired.abs_diff(expected);
        assert!(
            diff <= 1 + threshold as u32,
            "threshold {threshold}: fired {fired}, expected {expected}"
        );
    }
}

#[test]
fn crossover_cut_points_uniform_over_full_period() {
    let mut rng = CaRng::new(0xB342);
    let mut counts = [0u32; 16];
    for _ in 0..65_535 {
        let (_, cut) = ops::xover_fields(rng.next_u16());
        counts[cut as usize] += 1;
    }
    for (cut, &c) in counts.iter().enumerate() {
        // Each 4-bit field value appears 4096 times per period (4095
        // once, for the field containing the missing zero state).
        assert!((4095..=4096).contains(&c), "cut {cut} occurred {c} times");
    }
}

#[test]
fn offspring_preserve_allele_origin() {
    // Population-genetics sanity: over many random crossovers, each
    // offspring bit equals one of the parents' bits at that position.
    let mut rng = CaRng::new(0xAAAA);
    for _ in 0..10_000 {
        let p1 = rng.next_u16();
        let p2 = rng.next_u16();
        let (_, cut) = ops::xover_fields(rng.next_u16());
        let (o1, o2) = ops::crossover(p1, p2, cut);
        for bit in 0..16 {
            let m = 1u16 << bit;
            assert!(o1 & m == p1 & m || o1 & m == p2 & m);
            assert!(o2 & m == p1 & m || o2 & m == p2 & m);
        }
    }
}
