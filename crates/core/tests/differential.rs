//! Differential tests: the behavioral engine and the cycle-accurate
//! hardware system must agree bit-for-bit.
//!
//! This is the reproduction's strongest correctness check and mirrors
//! the paper's own verification methodology ("the RT-level VHDL model
//! was simulated thoroughly to test the correctness of the synthesized
//! netlist" against the behavioral model): same parameters + same seed
//! ⇒ identical populations, identical per-generation statistics,
//! identical RNG draw counts, identical final answer.

use carng::CaRng;
use ga_core::{GaEngine, GaParams, GaSystem};
use ga_fitness::{FemBank, FemSlot, LookupFem, TestFunction};
use proptest::prelude::*;

fn hw_system(f: TestFunction) -> GaSystem {
    GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(f),
    )]))
}

/// Run both models and compare everything observable.
fn assert_models_agree(f: TestFunction, params: GaParams) {
    let sw = GaEngine::new(params, CaRng::new(params.seed), |c| f.eval_u16(c)).run();

    let mut hw = hw_system(f);
    let hw_run = hw
        .program_and_run(&params, 500_000_000)
        .expect("hardware run timed out");

    // Final answer.
    assert_eq!(hw_run.best.chrom, sw.best.chrom, "best chromosome differs");
    assert_eq!(hw_run.best.fitness, sw.best.fitness, "best fitness differs");

    // Per-generation statistics (gen 0 .. n_gens).
    assert_eq!(hw_run.history.len(), sw.history.len(), "history length");
    for (h, s) in hw_run.history.iter().zip(sw.history.iter()) {
        assert_eq!(h.gen, s.gen);
        assert_eq!(h.best, s.best, "best at gen {}", s.gen);
        assert_eq!(h.fit_sum, s.fit_sum, "fitness sum at gen {}", s.gen);
    }

    // RNG consumption: draw-for-draw identical.
    assert_eq!(hw_run.rng_draws, sw.rng_draws, "RNG draw count differs");

    // Final population, individual for individual, via the memory
    // backdoor (like JTAG readback of the block RAM).
    let base = hw.modules().core.current_bank_base();
    let hw_pop = hw.modules().mem.backdoor_population(base, params.pop_size);
    assert_eq!(
        hw_pop.as_slice(),
        GaEngine::new(params, CaRng::new(params.seed), |c| f.eval_u16(c))
            .replay_final_population()
            .as_slice()
    );
}

/// Helper on the behavioral engine: run to completion and return the
/// final population.
trait ReplayExt {
    fn replay_final_population(self) -> Vec<ga_core::Individual>;
}

impl<R: carng::Rng16, F: FnMut(u16) -> u16> ReplayExt for GaEngine<R, F> {
    fn replay_final_population(mut self) -> Vec<ga_core::Individual> {
        self.init_population();
        for _ in 0..self.params().n_gens {
            self.step_generation();
        }
        self.population().to_vec()
    }
}

#[test]
fn models_agree_on_paper_rt_level_setting() {
    // Table V's workhorse setting: pop 32, 32 generations, XR 10.
    assert_models_agree(TestFunction::Bf6, GaParams::new(32, 32, 10, 1, 45890));
}

#[test]
fn models_agree_on_f2_and_f3() {
    assert_models_agree(TestFunction::F2, GaParams::new(32, 16, 10, 1, 10593));
    assert_models_agree(TestFunction::F3, GaParams::new(32, 16, 10, 1, 1567));
}

#[test]
fn models_agree_on_hardware_experiment_setting() {
    // Tables VII–IX: pop 64, 64 generations.
    assert_models_agree(TestFunction::Mbf6_2, GaParams::new(64, 64, 10, 1, 0x2961));
}

#[test]
fn models_agree_with_tiny_population() {
    assert_models_agree(TestFunction::F3, GaParams::new(2, 8, 10, 1, 0xFFFF));
}

#[test]
fn models_agree_with_odd_population() {
    assert_models_agree(TestFunction::Mbf7_2, GaParams::new(15, 8, 12, 3, 0xA0A0));
}

#[test]
fn models_agree_with_extreme_thresholds() {
    // Crossover/mutation always-off and (almost) always-on.
    assert_models_agree(TestFunction::F2, GaParams::new(16, 8, 0, 0, 0xB342));
    assert_models_agree(TestFunction::F2, GaParams::new(16, 8, 15, 15, 0xB342));
}

#[test]
fn models_agree_on_max_population() {
    assert_models_agree(
        TestFunction::MShubert2D,
        GaParams::new(128, 4, 13, 2, 0x061F),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random parameter vectors: the models must agree everywhere in the
    /// programmable space.
    #[test]
    fn models_agree_on_random_parameters(
        pop in 2u8..=40,
        n_gens in 1u32..=10,
        xt in 0u8..=15,
        mt in 0u8..=15,
        seed in 1u16..=u16::MAX,
        func in 0usize..6,
    ) {
        let f = TestFunction::ALL[func];
        let params = GaParams::new(pop, n_gens, xt, mt, seed);
        assert_models_agree(f, params);
    }
}

/// RNG independence, differentially: swap the CA for the LFSR in BOTH
/// models and they must still agree with each other (§III-B.7: "the
/// operation of the GA core is independent of the RNG implementation").
#[test]
fn models_agree_with_lfsr_rng() {
    use carng::Lfsr16;
    use ga_core::rngmod::RngModule;

    let params = GaParams::new(24, 12, 10, 1, 0x2961);
    let f = TestFunction::Mbf6_2;
    let sw = GaEngine::new(params, Lfsr16::new(params.seed), |c| f.eval_u16(c)).run();

    let mut hw = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(f),
    )]))
    .with_rng(RngModule::new_lfsr(1));
    let hw_run = hw.program_and_run(&params, 500_000_000).unwrap();

    assert_eq!(hw_run.best.chrom, sw.best.chrom);
    assert_eq!(hw_run.history.len(), sw.history.len());
    for (h, s) in hw_run.history.iter().zip(sw.history.iter()) {
        assert_eq!(h.best, s.best, "gen {}", s.gen);
        assert_eq!(h.fit_sum, s.fit_sum, "gen {}", s.gen);
    }
}
