//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! Provides the `RngCore`/`SeedableRng` trait surface and an `StdRng`
//! whose statistical quality is far above the hardware generators it is
//! compared against (SplitMix64 passes the batteries that matter for
//! the §II-C "good PRNG" role; it is *not* cryptographic, unlike the
//! real `StdRng`).

/// Core random-number generation trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Fill a byte slice with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (the only constructor the workspace uses).
    /// The state occupies only the low 8 seed bytes — repeating it
    /// across the seed invites folding schemes in `from_seed` to cancel
    /// the copies against each other.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (i, b) in seed.as_mut().iter_mut().take(8).enumerate() {
            *b = (state >> (8 * i)) as u8;
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // Rotate-multiply-add folding. Each step is a bijection of
            // the running state (rotation, odd multiplication mod 2^64,
            // addition), so distinct `seed_from_u64` values — which land
            // in the first word with the rest zero — map to distinct
            // states. XOR folding would cancel repeated words; SplitMix64
            // itself accepts any state, including 0.
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                state = state
                    .rotate_left(23)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from_le_bytes(word));
            }
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Fresh generators, first draw: different seeds must diverge
        // immediately (comparing against an already-advanced stream
        // would pass even if every seed produced the same state).
        assert_ne!(
            StdRng::seed_from_u64(42).next_u64(),
            StdRng::seed_from_u64(43).next_u64()
        );
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        // Regression: XOR-folding the repeated seed words once collapsed
        // every u64 seed to state 1, making seed sweeps meaningless.
        // Cover the exact seed schedule the rng_effect sweep uses.
        let first_draws: std::collections::HashSet<u64> = (0..64u64)
            .map(|k| StdRng::seed_from_u64(0x1000 + k * 977).next_u64())
            .collect();
        assert_eq!(first_draws.len(), 64);
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut r = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
