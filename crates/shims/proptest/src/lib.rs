//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build container has no network access and no registry cache, so
//! the real crate cannot be resolved. This shim reimplements exactly
//! the surface the workspace's tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any`,
//! integer-range strategies, tuple strategies, `prop_map`, and
//! `prop::collection::vec` — over a deterministic splitmix64 stream,
//! so every property test is reproducible run-to-run (no shrinking;
//! failures print the case number, and the per-test stream is seeded
//! from the test's module path so cases are stable across runs).

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// Per-test, per-case stream: hash the test name with FNV-1a and
    /// mix in the case index so each case draws from a distinct but
    /// stable stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)) | 1)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. Mirrors proptest's `Strategy` minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                // span == 0 means the full 2^64 domain of a 64-bit type.
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo + off as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Define property tests. Same surface as proptest's macro: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut prop_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property (no early-return semantics needed here).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Uniform choice between strategy expressions with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
    /// `prop::collection::vec(..)` etc.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u16..=u16::MAX).generate(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x", 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x", 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn macro_binds_arguments(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn macro_honours_config(v in prop::collection::vec(any::<u8>(), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn oneof_and_map() {
        #[derive(Debug, PartialEq)]
        enum Op {
            A(u8),
            B,
        }
        let s = prop_oneof![any::<u8>().prop_map(Op::A), Just(Op::B)];
        let mut rng = TestRng::new(99);
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Op::A(_) => saw_a = true,
                Op::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }
}
