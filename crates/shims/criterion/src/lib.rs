//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! No network, no registry cache — so the real crate can't be resolved.
//! This shim keeps the workspace's benches compiling and running with
//! the same API (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`) and reports a
//! simple mean wall-clock time per iteration. No statistics, plots, or
//! baselines — it exists so `cargo bench` produces honest numbers
//! offline, not to replace criterion's analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    reported: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time the routine: one warm-up call sizes the batch, then the
    /// batch is timed and the mean recorded.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.reported = Some((iters, t1.elapsed()));
    }
}

/// Identifies a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, b: &mut Bencher) {
        if let Some((iters, total)) = b.reported.take() {
            let per = total.as_nanos() as f64 / iters as f64;
            println!("bench {:<48} {:>14.1} ns/iter ({} iters)", format!("{}/{}", self.name, id), per, iters);
        }
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher { reported: None };
        f(&mut b);
        self.run(&id.to_string(), &mut b);
        self
    }

    /// Benchmark a closure against an input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { reported: None };
        f(&mut b, input);
        self.run(&id.id, &mut b);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher { reported: None };
        f(&mut b);
        if let Some((iters, total)) = b.reported.take() {
            let per = total.as_nanos() as f64 / iters as f64;
            println!("bench {:<48} {:>14.1} ns/iter ({} iters)", id.to_string(), per, iters);
        }
        self
    }
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for code importing `criterion::black_box`.
pub use std::hint::black_box;
