//! Simulation equivalence: the compiled engine ([`CompiledNetlist`] /
//! [`BitSim`]) against the reference interpreter
//! ([`Netlist::eval_comb`] / [`Netlist::step_seq`]) over the elaborated
//! CA-RNG netlist — scalar mode net-for-net, and every lane of the
//! 64-lane bit-sliced mode against an independent scalar run of the
//! same stimulus.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;

use carng::{CaRng, Rng16};
use ga_synth::bitsim::{BitSim, CompiledNetlist};
use ga_synth::gadesign::elaborate_ca_rng;
use ga_synth::netlist::{u64_to_bus, NetId, Netlist};
use proptest::prelude::*;

/// The two ctl bits of the RNG netlist: `[0]` = seed load, `[1]` = consume.
fn ctl_word(load: bool, consume: bool) -> u64 {
    (load as u64) | ((consume as u64) << 1)
}

struct Fixture {
    nl: Netlist,
    cn: CompiledNetlist,
    seed_bus: Vec<NetId>,
    ctl_bus: Vec<NetId>,
    rn_bus: Vec<NetId>,
}

fn fixture() -> Fixture {
    let nl = elaborate_ca_rng();
    let cn = CompiledNetlist::compile(&nl).expect("CA RNG netlist compiles");
    Fixture {
        seed_bus: nl.input_bus("seed").unwrap().to_vec(),
        ctl_bus: nl.input_bus("ctl").unwrap().to_vec(),
        rn_bus: nl.output_bus("rn").unwrap().to_vec(),
        nl,
        cn,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scalar compiled mode is net-for-net identical to the interpreter
    /// under a random load/consume stimulus stream.
    #[test]
    fn compiled_scalar_matches_interpreter(
        seed in 0u16..=u16::MAX,
        stimulus in prop::collection::vec((any::<bool>(), any::<bool>(), any::<u16>()), 1..24),
    ) {
        let f = fixture();
        let mut interp_regs: HashMap<NetId, bool> =
            f.nl.regs.iter().map(|r| (r.q, false)).collect();
        let mut compiled_regs = interp_regs.clone();

        let mut inp = HashMap::new();
        u64_to_bus(&f.seed_bus, seed as u64, &mut inp);
        inp.insert(f.ctl_bus[0], true);
        inp.insert(f.ctl_bus[1], false);
        interp_regs = f.nl.step_seq(&inp, &interp_regs);
        compiled_regs = f.cn.step_seq(&inp, &compiled_regs);
        prop_assert_eq!(&interp_regs, &compiled_regs);

        for &(load, consume, sval) in &stimulus {
            let mut inp = HashMap::new();
            u64_to_bus(&f.seed_bus, sval as u64, &mut inp);
            inp.insert(f.ctl_bus[0], load);
            inp.insert(f.ctl_bus[1], consume);
            // Net-for-net: the full combinational value vector agrees…
            let iv = f.nl.eval_comb(&inp, &interp_regs);
            let cv = f.cn.eval_comb(&inp, &compiled_regs);
            prop_assert_eq!(&iv, &cv);
            // …and so does the latched register state.
            interp_regs = f.nl.step_seq(&inp, &interp_regs);
            compiled_regs = f.cn.step_seq(&inp, &compiled_regs);
            prop_assert_eq!(&interp_regs, &compiled_regs);
        }
    }

    /// Every lane of a 64-lane run equals a scalar run fed with that
    /// lane's stimulus (64 different seeds drawn from the batch API).
    #[test]
    fn each_lane_matches_its_scalar_run(master in 0u16..=u16::MAX, cycles in 1usize..40) {
        let f = fixture();
        let mut seeds = [0u16; BitSim::LANES];
        CaRng::new(master).fill_u16s(&mut seeds);

        // 64-lane run: per-lane seed load, then `cycles` consumes.
        let mut wide = f.cn.sim();
        for (lane, &s) in seeds.iter().enumerate() {
            wide.set_bus_lane(&f.seed_bus, lane, s as u64);
        }
        wide.set_bus_all(&f.ctl_bus, ctl_word(true, false));
        wide.step();
        let mut wide_trace: Vec<[u16; BitSim::LANES]> = Vec::with_capacity(cycles);
        wide.set_bus_all(&f.ctl_bus, ctl_word(false, true));
        for _ in 0..cycles {
            wide.eval_comb();
            let mut row = [0u16; BitSim::LANES];
            for (lane, slot) in row.iter_mut().enumerate() {
                *slot = wide.bus_lane(&f.rn_bus, lane) as u16;
            }
            wide_trace.push(row);
            wide.step();
        }

        // Scalar reference runs, one per sampled lane (all 64 would be
        // 64× the work of the wide run for zero extra coverage — sample
        // a spread plus the boundaries).
        for lane in [0usize, 1, 31, 32, 62, 63] {
            let mut narrow = f.cn.sim();
            narrow.set_bus_lane(&f.seed_bus, 0, seeds[lane] as u64);
            narrow.set_bus_lane(&f.ctl_bus, 0, ctl_word(true, false));
            narrow.step();
            narrow.set_bus_lane(&f.ctl_bus, 0, ctl_word(false, true));
            for (cycle, row) in wide_trace.iter().enumerate() {
                narrow.eval_comb();
                prop_assert_eq!(
                    narrow.bus_lane(&f.rn_bus, 0) as u16,
                    row[lane],
                    "lane {} diverged at cycle {}",
                    lane,
                    cycle
                );
                narrow.step();
            }
        }
    }
}

/// All 64 lanes, checked against the behavioural `carng` reference:
/// the wide netlist simulation reproduces 64 independent RNG streams.
#[test]
fn sixty_four_lanes_track_the_reference_generators() {
    let f = fixture();
    let mut seeds = [0u16; BitSim::LANES];
    CaRng::new(0x2961).fill_u16s(&mut seeds);

    let mut sim = f.cn.sim();
    for (lane, &s) in seeds.iter().enumerate() {
        sim.set_bus_lane(&f.seed_bus, lane, s as u64);
    }
    sim.set_bus_all(&f.ctl_bus, ctl_word(true, false));
    sim.step();
    sim.set_bus_all(&f.ctl_bus, ctl_word(false, true));

    let mut refs: Vec<CaRng> = seeds.iter().map(|&s| CaRng::new(s)).collect();
    for cycle in 0..200 {
        sim.eval_comb();
        for (lane, r) in refs.iter_mut().enumerate() {
            assert_eq!(
                sim.bus_lane(&f.rn_bus, lane) as u16,
                r.next_u16(),
                "lane {lane} diverged at cycle {cycle}"
            );
        }
        sim.step();
    }
}
