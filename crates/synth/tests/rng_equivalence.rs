//! Gate-level functional equivalence: the synthesized CA RNG netlist
//! versus the `carng` reference implementation — the gate-level
//! verification step of the paper's flow ("the gate-level Verilog model
//! was also simulated ... to verify the functionality"), applied to the
//! one subsystem small enough to check exhaustively here.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;

use carng::{CaRng, Rng16};
use ga_synth::gadesign::elaborate_ca_rng;
use ga_synth::netlist::{bus_to_u64, u64_to_bus, NetId};

struct RngTb {
    nl: ga_synth::Netlist,
    regs: HashMap<NetId, bool>,
    seed_bus: Vec<NetId>,
    ctl: Vec<NetId>,
    rn_bus: Vec<NetId>,
}

impl RngTb {
    fn new() -> Self {
        let nl = elaborate_ca_rng();
        nl.validate().expect("rng netlist valid");
        let regs = nl.regs.iter().map(|r| (r.q, false)).collect();
        RngTb {
            seed_bus: nl.input_bus("seed").unwrap().to_vec(),
            ctl: nl.input_bus("ctl").unwrap().to_vec(),
            rn_bus: nl.output_bus("rn").unwrap().to_vec(),
            nl,
            regs,
        }
    }

    fn inputs(&self, seed: u16, load: bool, consume: bool) -> HashMap<NetId, bool> {
        let mut inp = HashMap::new();
        u64_to_bus(&self.seed_bus, seed as u64, &mut inp);
        inp.insert(self.ctl[0], load);
        inp.insert(self.ctl[1], consume);
        inp
    }

    fn clock(&mut self, seed: u16, load: bool, consume: bool) {
        let inp = self.inputs(seed, load, consume);
        self.regs = self.nl.step_seq(&inp, &self.regs);
    }

    fn rn(&self) -> u16 {
        let inp = self.inputs(0, false, false);
        let vals = self.nl.eval_comb(&inp, &self.regs);
        bus_to_u64(&self.rn_bus, &vals) as u16
    }
}

#[test]
fn gate_level_rng_matches_reference_for_500_steps() {
    let mut tb = RngTb::new();
    tb.clock(0x2961, true, false); // seed load
    let mut reference = CaRng::new(0x2961);
    for step in 0..500 {
        assert_eq!(tb.rn(), reference.output(), "diverged at step {step}");
        tb.clock(0, false, true); // consume
        reference.step();
    }
}

#[test]
fn gate_level_rng_holds_without_consume() {
    let mut tb = RngTb::new();
    tb.clock(0xB342, true, false);
    let v = tb.rn();
    for _ in 0..10 {
        tb.clock(0, false, false);
        assert_eq!(tb.rn(), v, "value must hold while consume is low");
    }
}

#[test]
fn gate_level_rng_reseeds_mid_stream() {
    let mut tb = RngTb::new();
    tb.clock(0x061F, true, false);
    for _ in 0..37 {
        tb.clock(0, false, true);
    }
    // Reload: the stream must restart exactly.
    tb.clock(0x061F, true, false);
    let mut reference = CaRng::new(0x061F);
    for _ in 0..100 {
        assert_eq!(tb.rn(), reference.output());
        tb.clock(0, false, true);
        reference.step();
    }
}

#[test]
fn load_takes_priority_over_consume() {
    let mut tb = RngTb::new();
    tb.clock(0xAAAA, true, true); // both asserted: load wins
    assert_eq!(tb.rn(), 0xAAAA);
}
