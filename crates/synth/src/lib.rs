//! # ga-synth — gate-level netlist, mapping, and timing
//!
//! The paper delivers its core as a *soft IP*: "a gate-level netlist is
//! provided which can be readily integrated with the user's system",
//! produced by the AUDI high-level-synthesis flow (Fig. 1: behavioral
//! VHDL → RT-level datapath + KISS controller → SIS logic synthesis →
//! gate-level Verilog over NAND/NOR/AND/OR/XOR/SCAN_REGISTER). Table VI
//! then reports the post-place-and-route numbers on a Virtex-II Pro
//! xc2vp30: 13% slice utilization, 50 MHz, 1% block RAM for the GA
//! memory and 48% for the fitness lookup.
//!
//! This crate rebuilds that tool stack in miniature:
//!
//! * [`netlist`] — the gate-level IR (the same primitive alphabet as
//!   the paper's netlists, plus the dedicated carry mux of the Virtex
//!   slice), with validation, topological levelization, and both
//!   combinational and sequential simulation;
//! * [`bitsim`] — the compiled simulation engine: a [`CompiledNetlist`]
//!   caches validation + topological order in a dense instruction
//!   stream, and [`BitSimW`] evaluates it with `W` `u64` words per net
//!   — 64·W independent simulation lanes per pass (word-level logic
//!   simulation, the netlist-regression analogue of the paper's
//!   population-parallel hardware; [`BitSim`] is the 64-lane `W = 1`
//!   case);
//! * [`builder`] — the RT-level component library (adders, comparators,
//!   muxes, decoders, mask networks, an array multiplier, scan register
//!   banks) elaborated into gates, each builder proven equivalent to
//!   its arithmetic reference by proptest;
//! * [`fsm`] — one-hot controller synthesis from a transition table
//!   (the KISS → SIS step);
//! * [`mapper`] — greedy fanout-free-cone technology mapping into
//!   4-input LUTs (carry muxes map to the dedicated MUXCY chain);
//! * [`timing`] — levelized static timing with Virtex-II-Pro-class
//!   delays → critical path and fmax;
//! * [`device`] — the xc2vp30 resource model (slices, block RAMs);
//! * [`gadesign`] — the structural inventory of the GA core itself,
//!   elaborated through all of the above to regenerate Table VI.

#![forbid(unsafe_code)]

pub mod asic;
pub mod bitsim;
pub mod builder;
pub mod device;
pub mod error;
pub mod fault;
pub mod fsm;
pub mod gadesign;
pub mod mapper;
pub mod netlist;
pub mod opt;
pub mod parser;
pub mod tern;
pub mod timing;
pub mod verilog;

pub use bitsim::{BitSim, BitSimW, CompiledNetlist, CompiledOp, OpKind};
pub use builder::Builder;
pub use device::Xc2vp30;
pub use error::SynthError;
pub use fault::{FaultInjector, NetFault, NetFaultKind};
pub use gadesign::{elaborate_ga_core, GaCoreReport};
pub use netlist::{GateKind, NetId, Netlist};
pub use tern::Tern;
pub use verilog::emit_verilog;
