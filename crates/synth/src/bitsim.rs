//! Compiled word-level netlist simulation.
//!
//! [`Netlist::eval_comb`](crate::netlist::Netlist::eval_comb) is the
//! reference interpreter: it re-validates (a full Kahn sort) on every
//! call, allocates a fresh value vector, and looks inputs up through
//! `HashMap`s. That is fine for unit tests and hopeless for sweeps — a
//! Table VII grid steps the sequential model millions of times.
//!
//! [`CompiledNetlist`] does the expensive work **once**: validation,
//! topological ordering, and flattening of the gate graph into a dense
//! instruction stream (`out ← op(a, b, c)` over plain array indices —
//! no hashing, no per-call allocation). [`BitSimW`] then evaluates that
//! stream over `W` `u64` **words per net**, which is the classic
//! word-level logic-simulation trick: every Boolean gate is a bitwise
//! instruction, so one pass through the gate array advances **64·W
//! independent simulation lanes** at once (64·W seeds, grid cells,
//! stimulus streams). Lane *k* lives in bit `k % 64` of word `k / 64`
//! of every net, and is a complete, independent simulation — the
//! software analogue of the full-population parallelism Torquato &
//! Fernandes get from replicated hardware. `W` is a const generic, so
//! each width compiles to straight-line word ops the autovectorizer can
//! fuse ([u64; 4] is one AVX2/AVX-512 lane-slice per gate).
//!
//! [`BitSim`] is the `W = 1` (64-lane) case and keeps the original
//! scalar-word API (`net`/`set_net`/`lane_mask` over a bare `u64`). A
//! scalar caller simply uses lane 0 (the compiled scalar fast path);
//! [`CompiledNetlist::eval_comb`] / [`CompiledNetlist::step_seq`] are
//! drop-in equivalents of the `Netlist` methods for existing
//! testbenches.

use crate::error::SynthError;
use crate::netlist::{GateKind, NetId, Netlist, RegCell};
use crate::tern::Tern;
use std::collections::HashMap;

/// Word-level opcode: only gates with inputs become instructions;
/// sources (constants, inputs, register Q pins) are plain state words.
/// Public so static analyses (`galint`'s dataflow passes) can walk the
/// compiled instruction stream instead of re-deriving the gate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// `out = a`
    Buf,
    /// `out = !a`
    Inv,
    /// `out = a & b`
    And,
    /// `out = a | b`
    Or,
    /// `out = a ^ b`
    Xor,
    /// `out = !(a & b)`
    Nand,
    /// `out = !(a | b)`
    Nor,
    /// `out = (a & b) | (!a & c)` — CarryMux with `a` as select.
    Mux,
}

/// One compiled gate: output slot plus up to three input slots, all
/// dense indices into the per-net state array. Unused input slots read
/// net 0 and are ignored by the opcode.
#[derive(Debug, Clone, Copy)]
pub struct CompiledOp {
    /// Opcode.
    pub kind: OpKind,
    /// Output net.
    pub out: u32,
    /// First input net (the select, for [`OpKind::Mux`]).
    pub a: u32,
    /// Second input net (the select-high leg, for [`OpKind::Mux`]).
    pub b: u32,
    /// Third input net (the select-low leg, for [`OpKind::Mux`]).
    pub c: u32,
}

/// A netlist compiled for repeated simulation: validated once, with the
/// topological order baked into a flat instruction stream and every
/// source net classified up front.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    ops: Vec<CompiledOp>,
    n_nets: usize,
    regs: Vec<RegCell>,
    /// Nets that must read constant one (constant zero is the reset
    /// value of the state array, so only ones need baking).
    const_ones: Vec<NetId>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
}

impl CompiledNetlist {
    /// Validate and compile. All structural errors surface here, so the
    /// per-cycle hot path is panic- and `Result`-free.
    pub fn compile(nl: &Netlist) -> Result<Self, SynthError> {
        let order = nl.validate()?;
        let mut ops = Vec::with_capacity(nl.gates.len());
        let mut const_ones = Vec::new();
        for &id in &order {
            let g = &nl.gates[id as usize];
            let kind = match g.kind {
                GateKind::Const0 | GateKind::Input | GateKind::RegQ => continue,
                GateKind::Const1 => {
                    const_ones.push(id);
                    continue;
                }
                GateKind::Buf => OpKind::Buf,
                GateKind::Inv => OpKind::Inv,
                GateKind::And2 => OpKind::And,
                GateKind::Or2 => OpKind::Or,
                GateKind::Xor2 => OpKind::Xor,
                GateKind::Nand2 => OpKind::Nand,
                GateKind::Nor2 => OpKind::Nor,
                GateKind::CarryMux => OpKind::Mux,
            };
            let pin = |i: usize| g.inputs.get(i).copied().unwrap_or(0);
            ops.push(CompiledOp {
                kind,
                out: id,
                a: pin(0),
                b: pin(1),
                c: pin(2),
            });
        }
        Ok(CompiledNetlist {
            ops,
            n_nets: nl.gates.len(),
            regs: nl.regs.clone(),
            const_ones,
            inputs: nl.inputs.clone(),
            outputs: nl.outputs.clone(),
        })
    }

    /// Number of nets (state-array length).
    pub fn n_nets(&self) -> usize {
        self.n_nets
    }

    /// Instructions executed per combinational pass (the logic gates;
    /// sources cost nothing at runtime).
    pub fn ops_per_pass(&self) -> usize {
        self.ops.len()
    }

    /// Flip-flop count.
    pub fn ff_count(&self) -> usize {
        self.regs.len()
    }

    /// The compiled scan registers, in scan-chain order (index =
    /// fault-injection site ID for [`crate::fault::FaultInjector`]).
    pub fn regs(&self) -> &[RegCell] {
        &self.regs
    }

    /// Look up a named input bus (LSB first), resolved at compile time.
    pub fn input_bus(&self, name: &str) -> Option<&[NetId]> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Look up a named output bus (LSB first).
    pub fn output_bus(&self, name: &str) -> Option<&[NetId]> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// The compiled instruction stream, in topological order. Static
    /// analyses walk this to get the gate graph with validation and
    /// ordering already done.
    pub fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }

    /// All named input buses, in declaration order.
    pub fn inputs(&self) -> &[(String, Vec<NetId>)] {
        &self.inputs
    }

    /// All named output buses, in declaration order.
    pub fn outputs(&self) -> &[(String, Vec<NetId>)] {
        &self.outputs
    }

    /// Fresh ternary state vector matching [`CompiledNetlist::sim`]'s
    /// reset semantics: every net `Zero`, constant-one sources baked to
    /// `One`. Callers then drive inputs/registers before evaluating.
    pub fn tern_state(&self) -> Vec<Tern> {
        let mut state = vec![Tern::Zero; self.n_nets];
        for &id in &self.const_ones {
            state[id as usize] = Tern::One;
        }
        state
    }

    /// One ternary combinational pass: the abstract-interpretation
    /// analogue of [`BitSimW::eval_comb`] — every logic gate once, in
    /// topological order, over the [`Tern`] domain. Because each gate
    /// op is a sound abstraction of its Boolean counterpart, a concrete
    /// evaluation from covered sources is covered on every net.
    pub fn eval_comb_tern(&self, state: &mut [Tern]) {
        debug_assert_eq!(state.len(), self.n_nets);
        for op in &self.ops {
            let a = state[op.a as usize];
            let v = match op.kind {
                OpKind::Buf => a,
                OpKind::Inv => a.not(),
                OpKind::And => a.and(state[op.b as usize]),
                OpKind::Or => a.or(state[op.b as usize]),
                OpKind::Xor => a.xor(state[op.b as usize]),
                OpKind::Nand => a.and(state[op.b as usize]).not(),
                OpKind::Nor => a.or(state[op.b as usize]).not(),
                OpKind::Mux => Tern::mux(a, state[op.b as usize], state[op.c as usize]),
            };
            state[op.out as usize] = v;
        }
    }

    /// Fresh simulation state bound to this compiled netlist, at any
    /// lane width: `W` words per net, `64·W` lanes per pass.
    pub fn sim_wide<const W: usize>(&self) -> BitSimW<'_, W> {
        let mut vals = vec![[0u64; W]; self.n_nets];
        for &id in &self.const_ones {
            vals[id as usize] = [u64::MAX; W];
        }
        BitSimW {
            cn: self,
            vals,
            latch: vec![[0u64; W]; self.regs.len()],
        }
    }

    /// Fresh 64-lane simulation state (the `W = 1` case of
    /// [`CompiledNetlist::sim_wide`]).
    pub fn sim(&self) -> BitSim<'_> {
        self.sim_wide::<1>()
    }

    /// Drop-in equivalent of [`Netlist::eval_comb`] on the compiled
    /// netlist (scalar: lane 0). Unmentioned inputs/registers read 0,
    /// exactly like the interpreter.
    pub fn eval_comb(
        &self,
        input_values: &HashMap<NetId, bool>,
        reg_values: &HashMap<NetId, bool>,
    ) -> Vec<bool> {
        let mut sim = self.sim();
        for (&net, &v) in input_values.iter().chain(reg_values.iter()) {
            sim.set_net(net, v as u64);
        }
        sim.eval_comb();
        (0..self.n_nets as u32)
            .map(|id| sim.lane_bool(id, 0))
            .collect()
    }

    /// Drop-in equivalent of [`Netlist::step_seq`]: evaluate, then
    /// latch every register, returning the new register state.
    pub fn step_seq(
        &self,
        input_values: &HashMap<NetId, bool>,
        reg_values: &HashMap<NetId, bool>,
    ) -> HashMap<NetId, bool> {
        let vals = self.eval_comb(input_values, reg_values);
        self.regs
            .iter()
            .map(|r| (r.q, vals[r.d as usize]))
            .collect()
    }
}

/// Per-word bitwise combinators over `[u64; W]` net words. Plain
/// `from_fn` loops over a const-known `W`: the optimizer unrolls them
/// and fuses adjacent words into SIMD lanes.
#[inline(always)]
fn map1<const W: usize>(a: [u64; W], f: impl Fn(u64) -> u64) -> [u64; W] {
    std::array::from_fn(|i| f(a[i]))
}

#[inline(always)]
fn map2<const W: usize>(a: [u64; W], b: [u64; W], f: impl Fn(u64, u64) -> u64) -> [u64; W] {
    std::array::from_fn(|i| f(a[i], b[i]))
}

/// Simulation state over a [`CompiledNetlist`]: `W` `u64` words per
/// net, bit `k % 64` of word `k / 64` belonging to independent lane
/// *k*. [`BitSim`] aliases the original 64-lane `W = 1` case.
#[derive(Debug, Clone)]
pub struct BitSimW<'a, const W: usize> {
    cn: &'a CompiledNetlist,
    vals: Vec<[u64; W]>,
    /// Scratch for the register latch (double-buffered so a Q net
    /// feeding another register's D directly latches the *pre-edge*
    /// value, as real flip-flops do).
    latch: Vec<[u64; W]>,
}

/// The original 64-lane simulator: one word per net.
pub type BitSim<'a> = BitSimW<'a, 1>;

impl<const W: usize> BitSimW<'_, W> {
    /// Number of independent simulation lanes in one net's words.
    pub const LANES: usize = 64 * W;

    /// Per-word mask with one bit set per *active* lane (`active` low
    /// lanes). A pack that carries fewer than `64·W` jobs must AND
    /// every per-net observation with this mask so the idle tail lanes
    /// — which sit at the all-zero reset state — can never leak into
    /// results or metrics (the padding-skew fix).
    #[inline]
    pub fn lane_mask_words(active: usize) -> [u64; W] {
        debug_assert!(active <= Self::LANES);
        std::array::from_fn(|w| match active.saturating_sub(w * 64) {
            0 => 0,
            n if n >= 64 => u64::MAX,
            n => (1u64 << n) - 1,
        })
    }

    /// The compiled netlist this state belongs to.
    pub fn compiled(&self) -> &CompiledNetlist {
        self.cn
    }

    /// Raw words of a net (all `64·W` lanes, lane 0 in bit 0 of word 0).
    #[inline]
    pub fn net_words(&self, net: NetId) -> [u64; W] {
        self.vals[net as usize]
    }

    /// Overwrite the words of a source net (input or register Q).
    /// Writing a logic net is allowed but will be recomputed by the
    /// next pass.
    #[inline]
    pub fn set_net_words(&mut self, net: NetId, words: [u64; W]) {
        self.vals[net as usize] = words;
    }

    /// Value of one lane of one net.
    #[inline]
    pub fn lane_bool(&self, net: NetId, lane: usize) -> bool {
        debug_assert!(lane < Self::LANES);
        (self.vals[net as usize][lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Broadcast `value` across **all** lanes of a bus (bit *i* of
    /// `value` drives every lane of `bus[i]`).
    pub fn set_bus_all(&mut self, bus: &[NetId], value: u64) {
        for (i, &net) in bus.iter().enumerate() {
            self.vals[net as usize] = if (value >> i) & 1 == 1 {
                [u64::MAX; W]
            } else {
                [0; W]
            };
        }
    }

    /// Drive `value` onto one lane of a bus, leaving other lanes alone.
    pub fn set_bus_lane(&mut self, bus: &[NetId], lane: usize, value: u64) {
        debug_assert!(lane < Self::LANES);
        let (word, bit) = (lane / 64, 1u64 << (lane % 64));
        for (i, &net) in bus.iter().enumerate() {
            if (value >> i) & 1 == 1 {
                self.vals[net as usize][word] |= bit;
            } else {
                self.vals[net as usize][word] &= !bit;
            }
        }
    }

    /// Read a bus back from one lane (LSB first).
    pub fn bus_lane(&self, bus: &[NetId], lane: usize) -> u64 {
        debug_assert!(lane < Self::LANES);
        let (word, shift) = (lane / 64, lane % 64);
        let mut v = 0u64;
        for (i, &net) in bus.iter().enumerate() {
            v |= ((self.vals[net as usize][word] >> shift) & 1) << i;
        }
        v
    }

    /// One combinational pass: every logic gate once, in topological
    /// order, all `64·W` lanes at a time.
    pub fn eval_comb(&mut self) {
        let vals = &mut self.vals;
        for op in &self.cn.ops {
            let a = vals[op.a as usize];
            let v = match op.kind {
                OpKind::Buf => a,
                OpKind::Inv => map1(a, |a| !a),
                OpKind::And => map2(a, vals[op.b as usize], |a, b| a & b),
                OpKind::Or => map2(a, vals[op.b as usize], |a, b| a | b),
                OpKind::Xor => map2(a, vals[op.b as usize], |a, b| a ^ b),
                OpKind::Nand => map2(a, vals[op.b as usize], |a, b| !(a & b)),
                OpKind::Nor => map2(a, vals[op.b as usize], |a, b| !(a | b)),
                OpKind::Mux => {
                    let (b, c) = (vals[op.b as usize], vals[op.c as usize]);
                    std::array::from_fn(|i| (a[i] & b[i]) | (!a[i] & c[i]))
                }
            };
            vals[op.out as usize] = v;
        }
    }

    /// One clock edge: combinational pass, then latch every register
    /// (`Q ← D`) simultaneously across all lanes.
    pub fn step(&mut self) {
        self.eval_comb();
        for (s, r) in self.latch.iter_mut().zip(&self.cn.regs) {
            *s = self.vals[r.d as usize];
        }
        for (s, r) in self.latch.iter().zip(&self.cn.regs) {
            self.vals[r.q as usize] = *s;
        }
    }

    /// Reset every register word (all lanes) to zero.
    pub fn clear_regs(&mut self) {
        for r in &self.cn.regs {
            self.vals[r.q as usize] = [0; W];
        }
    }
}

impl BitSim<'_> {
    /// Word mask with one bit set per *active* lane — the scalar-word
    /// (`W = 1`) form of [`BitSimW::lane_mask_words`].
    #[inline]
    pub fn lane_mask(active: usize) -> u64 {
        Self::lane_mask_words(active)[0]
    }

    /// Raw word of a net (all 64 lanes).
    #[inline]
    pub fn net(&self, net: NetId) -> u64 {
        self.vals[net as usize][0]
    }

    /// Overwrite the word of a source net (input or register Q). Writing
    /// a logic net is allowed but will be recomputed by the next pass.
    #[inline]
    pub fn set_net(&mut self, net: NetId, word: u64) {
        self.vals[net as usize] = [word];
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::netlist::{Gate, GateKind};

    fn toggle_netlist() -> Netlist {
        // q ← !q, plus a Const1-fed AND to cover constant baking.
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        }); // 0 = q
        nl.gates.push(Gate {
            kind: GateKind::Inv,
            inputs: vec![0],
        }); // 1 = d
        nl.gates.push(Gate {
            kind: GateKind::Const1,
            inputs: vec![],
        }); // 2
        nl.gates.push(Gate {
            kind: GateKind::And2,
            inputs: vec![0, 2],
        }); // 3 = q & 1
        nl.regs.push(RegCell { d: 1, q: 0 });
        nl.outputs.push(("y".into(), vec![3]));
        nl
    }

    #[test]
    fn compile_rejects_invalid() {
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![0],
        });
        assert!(matches!(
            CompiledNetlist::compile(&nl),
            Err(SynthError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn scalar_toggle_matches_interpreter() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut state: HashMap<NetId, bool> = [(0u32, false)].into();
        let mut cstate = state.clone();
        for _ in 0..8 {
            state = nl.step_seq(&HashMap::new(), &state);
            cstate = cn.step_seq(&HashMap::new(), &cstate);
            assert_eq!(state, cstate);
        }
    }

    #[test]
    fn lanes_are_independent() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = cn.sim();
        // Lane 0 starts at 0, lane 1 starts at 1: they must stay in
        // antiphase forever.
        sim.set_net(0, 0b10);
        for step in 0..16 {
            sim.step();
            assert_ne!(
                sim.lane_bool(0, 0),
                sim.lane_bool(0, 1),
                "lanes converged at step {step}"
            );
        }
    }

    #[test]
    fn const_one_is_baked() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = cn.sim();
        sim.set_net(0, u64::MAX);
        sim.eval_comb();
        assert_eq!(sim.net(3), u64::MAX, "q & 1 with q = all-ones");
    }

    #[test]
    fn bus_lane_roundtrip() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = cn.sim();
        let bus = [0u32, 1, 3];
        sim.set_bus_lane(&bus, 7, 0b101);
        assert_eq!(sim.bus_lane(&bus, 7), 0b101);
        assert_eq!(sim.bus_lane(&bus, 6), 0);
        sim.set_bus_all(&bus, 0b010);
        assert_eq!(sim.bus_lane(&bus, 0), 0b010);
        assert_eq!(sim.bus_lane(&bus, 63), 0b010);
    }

    #[test]
    fn mux_op_selects_per_lane() {
        let mut nl = Netlist::default();
        for _ in 0..3 {
            nl.gates.push(Gate {
                kind: GateKind::Input,
                inputs: vec![],
            });
        }
        nl.gates.push(Gate {
            kind: GateKind::CarryMux,
            inputs: vec![0, 1, 2],
        });
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = cn.sim();
        sim.set_net(0, 0b01); // lane 0 selects a, lane 1 selects b
        sim.set_net(1, 0b11); // a
        sim.set_net(2, 0b00); // b
        sim.eval_comb();
        assert_eq!(sim.net(3) & 0b11, 0b01);
    }

    #[test]
    fn ternary_eval_covers_concrete_eval() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        // Abstract: register q unknown. Concretely try both q values and
        // check coverage on every net.
        let mut abs = cn.tern_state();
        abs[0] = Tern::X;
        cn.eval_comb_tern(&mut abs);
        for q in [false, true] {
            let mut sim = cn.sim();
            sim.set_net(0, if q { u64::MAX } else { 0 });
            sim.eval_comb();
            for net in 0..cn.n_nets() as u32 {
                assert!(
                    abs[net as usize].covers(sim.lane_bool(net, 0)),
                    "net {net} with q={q}"
                );
            }
        }
        // Precision: d = !q and y = q & 1 must be X, the baked Const1
        // must stay One.
        assert_eq!(abs[1], Tern::X);
        assert_eq!(abs[2], Tern::One);
        assert_eq!(abs[3], Tern::X);
    }

    #[test]
    fn ternary_eval_propagates_constants() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut abs = cn.tern_state();
        abs[0] = Tern::One; // pin q to a known value
        cn.eval_comb_tern(&mut abs);
        assert_eq!(abs[1], Tern::Zero, "d = !q");
        assert_eq!(abs[3], Tern::One, "y = q & 1");
    }

    #[test]
    fn ops_view_matches_pass_count() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        assert_eq!(cn.ops().len(), cn.ops_per_pass());
        assert!(cn.outputs().iter().any(|(n, _)| n == "y"));
    }

    #[test]
    fn step_latches_pre_edge_value_through_reg_chains() {
        // Two registers in a chain: q1 → d2. After one edge, q2 must
        // hold q1's *old* value, not the freshly latched one.
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        }); // 0 = q1
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        }); // 1 = q2
        nl.gates.push(Gate {
            kind: GateKind::Inv,
            inputs: vec![0],
        }); // 2 = d1 = !q1
        nl.regs.push(RegCell { d: 2, q: 0 });
        nl.regs.push(RegCell { d: 0, q: 1 }); // d2 = q1 directly
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = cn.sim();
        sim.step(); // q1: 0→1, q2: ←old q1 = 0
        assert!(sim.lane_bool(0, 0));
        assert!(!sim.lane_bool(1, 0));
        sim.step(); // q1: 1→0, q2: ←old q1 = 1
        assert!(!sim.lane_bool(0, 0));
        assert!(sim.lane_bool(1, 0));
    }

    #[test]
    fn wide_lanes_are_independent_across_word_boundaries() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = cn.sim_wide::<4>();
        assert_eq!(BitSimW::<4>::LANES, 256);
        // Put lanes 1, 64, 130, and 255 in antiphase with lane 0: every
        // word boundary is crossed, and they must all stay antiphase.
        let odd = [1, 64, 130, 255];
        let mut words = [0u64; 4];
        for &lane in &odd {
            words[lane / 64] |= 1u64 << (lane % 64);
        }
        sim.set_net_words(0, words);
        for step in 0..16 {
            sim.step();
            for &lane in &odd {
                assert_ne!(
                    sim.lane_bool(0, 0),
                    sim.lane_bool(0, lane),
                    "lane {lane} converged at step {step}"
                );
            }
        }
    }

    #[test]
    fn wide_bus_lane_roundtrip_in_high_words() {
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut sim = cn.sim_wide::<2>();
        let bus = [0u32, 1, 3];
        sim.set_bus_lane(&bus, 100, 0b101);
        assert_eq!(sim.bus_lane(&bus, 100), 0b101);
        assert_eq!(sim.bus_lane(&bus, 99), 0);
        assert_eq!(sim.bus_lane(&bus, 36), 0);
        sim.set_bus_all(&bus, 0b010);
        assert_eq!(sim.bus_lane(&bus, 0), 0b010);
        assert_eq!(sim.bus_lane(&bus, 127), 0b010);
    }

    #[test]
    fn wide_matches_narrow_lane_for_lane() {
        // The same stimulus in lane k of a W=4 sim and lane k%64 of a
        // W=1 sim must produce identical traces: widening adds lanes,
        // never changes gate semantics.
        let nl = toggle_netlist();
        let cn = CompiledNetlist::compile(&nl).unwrap();
        let mut narrow = cn.sim();
        let mut wide = cn.sim_wide::<4>();
        narrow.set_net(0, 0b1); // lane 0 starts high
        wide.set_bus_lane(&[0], 192, 0b1); // word-3 lane starts high
        for _ in 0..12 {
            narrow.step();
            wide.step();
            assert_eq!(narrow.lane_bool(0, 0), wide.lane_bool(0, 192));
            assert_eq!(narrow.lane_bool(3, 0), wide.lane_bool(3, 192));
        }
    }

    #[test]
    fn lane_mask_words_covers_word_boundaries() {
        assert_eq!(BitSim::lane_mask(0), 0);
        assert_eq!(BitSim::lane_mask(1), 1);
        assert_eq!(BitSim::lane_mask(64), u64::MAX);
        assert_eq!(BitSimW::<2>::lane_mask_words(64), [u64::MAX, 0]);
        assert_eq!(BitSimW::<2>::lane_mask_words(65), [u64::MAX, 1]);
        assert_eq!(
            BitSimW::<4>::lane_mask_words(130),
            [u64::MAX, u64::MAX, 0b11, 0]
        );
        assert_eq!(BitSimW::<4>::lane_mask_words(256), [u64::MAX; 4]);
    }
}
