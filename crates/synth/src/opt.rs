//! Logic optimization — the SIS step of the paper's flow (Fig. 1 runs
//! the controller through Berkeley SIS before gate-level emission).
//!
//! Two classical passes, iterated to a fixpoint in one topological
//! sweep each:
//!
//! * **constant folding / identity rewriting** — `AND(x,0)→0`,
//!   `AND(x,1)→x`, `XOR(x,0)→x`, `XOR(x,x)→0`, buffer elision, carry
//!   muxes with constant selects, etc. The structural elaboration
//!   produces many of these (zero-extensions, constant preset values,
//!   disabled mux legs);
//! * **dead-gate sweep** — gates unreachable from any primary output or
//!   register D pin are deleted and the netlist re-indexed.
//!
//! Optimization preserves I/O names, bus order and the scan chain;
//! functional equivalence is checked by randomized co-simulation in the
//! tests.

use std::collections::HashMap;

use crate::error::SynthError;
use crate::netlist::{Gate, GateKind, NetId, Netlist, RegCell};

/// What the optimizer did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptReport {
    /// Gates before optimization.
    pub gates_before: usize,
    /// Gates after optimization.
    pub gates_after: usize,
    /// Gates rewritten to a constant or an existing net.
    pub folded: usize,
    /// Gates removed as unreachable.
    pub swept: usize,
}

/// Run constant folding + dead-gate elimination. Fails if the input
/// netlist does not validate (optimizing a broken netlist would mask
/// the defect).
pub fn optimize(nl: &Netlist) -> Result<(Netlist, OptReport), SynthError> {
    let order = nl.validate()?;
    let n = nl.gates.len();

    // Canonical constant nets (first Const0/Const1 encountered, created
    // lazily into the replacement space if none exist).
    let mut const0: Option<NetId> = None;
    let mut const1: Option<NetId> = None;
    for (i, g) in nl.gates.iter().enumerate() {
        match g.kind {
            GateKind::Const0 if const0.is_none() => const0 = Some(i as NetId),
            GateKind::Const1 if const1.is_none() => const1 = Some(i as NetId),
            _ => {}
        }
    }

    // repl[g]: the net g's output is equivalent to (identity or earlier
    // net / constant).
    let mut repl: Vec<NetId> = (0..n as NetId).collect();
    let mut folded = 0usize;

    // Canonicalize duplicate constant gates first (the elaboration mints
    // a fresh Const0 per zero-extension bit).
    for (i, g) in nl.gates.iter().enumerate() {
        match g.kind {
            GateKind::Const0 if Some(i as NetId) != const0 => {
                repl[i] = const0.expect("seen at least one Const0");
                folded += 1;
            }
            GateKind::Const1 if Some(i as NetId) != const1 => {
                repl[i] = const1.expect("seen at least one Const1");
                folded += 1;
            }
            _ => {}
        }
    }

    let is_const = |id: NetId, c0: Option<NetId>, c1: Option<NetId>| -> Option<bool> {
        if Some(id) == c0 {
            Some(false)
        } else if Some(id) == c1 {
            Some(true)
        } else {
            None
        }
    };

    for &id in &order {
        let g = &nl.gates[id as usize];
        let ins: Vec<NetId> = g.inputs.iter().map(|&i| repl[i as usize]).collect();
        let cv: Vec<Option<bool>> = ins.iter().map(|&i| is_const(i, const0, const1)).collect();
        let mut replacement: Option<NetId> = None;
        match g.kind {
            GateKind::Buf => replacement = Some(ins[0]),
            GateKind::Inv => {
                if cv[0] == Some(false) {
                    replacement = const1;
                } else if cv[0] == Some(true) {
                    replacement = const0;
                }
            }
            GateKind::And2 => {
                if cv[0] == Some(false) || cv[1] == Some(false) {
                    replacement = const0;
                } else if cv[0] == Some(true) {
                    replacement = Some(ins[1]);
                } else if cv[1] == Some(true) || ins[0] == ins[1] {
                    replacement = Some(ins[0]);
                }
            }
            GateKind::Or2 => {
                if cv[0] == Some(true) || cv[1] == Some(true) {
                    replacement = const1;
                } else if cv[0] == Some(false) {
                    replacement = Some(ins[1]);
                } else if cv[1] == Some(false) || ins[0] == ins[1] {
                    replacement = Some(ins[0]);
                }
            }
            GateKind::Xor2 => {
                if cv[0] == Some(false) {
                    replacement = Some(ins[1]);
                } else if cv[1] == Some(false) {
                    replacement = Some(ins[0]);
                } else if ins[0] == ins[1] {
                    replacement = const0;
                }
            }
            GateKind::CarryMux => {
                if cv[0] == Some(true) {
                    replacement = Some(ins[1]);
                } else if cv[0] == Some(false) {
                    replacement = Some(ins[2]);
                } else if ins[1] == ins[2] {
                    replacement = Some(ins[1]);
                }
            }
            _ => {}
        }
        if let Some(r) = replacement {
            repl[id as usize] = r;
            folded += 1;
        }
        // (no-replacement gates keep their identity mapping, including
        // the constants canonicalized in the pre-pass)
    }

    // Mark reachable gates: outputs, register D pins (through repl),
    // plus every RegQ and Input gate (interface/sequential anchors) and
    // the canonical constants if referenced.
    let mut live = vec![false; n];
    let mut stack: Vec<NetId> = Vec::new();
    let push = |id: NetId, live: &mut Vec<bool>, stack: &mut Vec<NetId>| {
        if !live[id as usize] {
            live[id as usize] = true;
            stack.push(id);
        }
    };
    for (_, bus) in &nl.outputs {
        for &b in bus {
            push(repl[b as usize], &mut live, &mut stack);
        }
    }
    for r in &nl.regs {
        push(repl[r.d as usize], &mut live, &mut stack);
        push(r.q, &mut live, &mut stack);
    }
    for (_, bus) in &nl.inputs {
        for &b in bus {
            push(b, &mut live, &mut stack);
        }
    }
    while let Some(id) = stack.pop() {
        // A gate that is itself replaced contributes nothing; its
        // replacement was already pushed. Traverse the ORIGINAL gate's
        // (replaced) inputs only if the gate survives.
        if repl[id as usize] != id {
            let r = repl[id as usize];
            if !live[r as usize] {
                live[r as usize] = true;
                stack.push(r);
            }
            continue;
        }
        for &inp in &nl.gates[id as usize].inputs {
            let r = repl[inp as usize];
            if !live[r as usize] {
                live[r as usize] = true;
                stack.push(r);
            }
        }
    }

    // Rebuild with compacted ids. Source gates go first: constant
    // canonicalization introduces edges to the canonical constant that
    // the original topological order knows nothing about.
    let mut remap: HashMap<NetId, NetId> = HashMap::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut rebuild_order: Vec<NetId> = Vec::with_capacity(order.len());
    rebuild_order.extend(
        order
            .iter()
            .copied()
            .filter(|&id| nl.gates[id as usize].kind.is_source()),
    );
    rebuild_order.extend(
        order
            .iter()
            .copied()
            .filter(|&id| !nl.gates[id as usize].kind.is_source()),
    );
    for &id in &rebuild_order {
        if !live[id as usize] || repl[id as usize] != id {
            continue;
        }
        let g = &nl.gates[id as usize];
        let new_inputs: Vec<NetId> = g.inputs.iter().map(|&i| remap[&repl[i as usize]]).collect();
        let new_id = gates.len() as NetId;
        gates.push(Gate {
            kind: g.kind,
            inputs: new_inputs,
        });
        remap.insert(id, new_id);
    }

    let lookup = |id: NetId| -> NetId { remap[&repl[id as usize]] };
    let out = Netlist {
        gates,
        inputs: nl
            .inputs
            .iter()
            .map(|(name, bus)| (name.clone(), bus.iter().map(|&b| lookup(b)).collect()))
            .collect(),
        outputs: nl
            .outputs
            .iter()
            .map(|(name, bus)| (name.clone(), bus.iter().map(|&b| lookup(b)).collect()))
            .collect(),
        regs: nl
            .regs
            .iter()
            .map(|r| RegCell {
                d: lookup(r.d),
                q: lookup(r.q),
            })
            .collect(),
    };
    let report = OptReport {
        gates_before: n,
        gates_after: out.gates.len(),
        folded,
        swept: n - out.gates.len(),
    };
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::builder::Builder;
    use crate::netlist::{bus_to_u64, u64_to_bus};
    use proptest::prelude::*;
    use std::collections::HashMap as Map;

    #[test]
    fn folds_constant_and() {
        let mut b = Builder::new();
        let i = b.input("i", 1);
        let zero = b.const0();
        let dead = b.and(i[0], zero); // → const0
        let one = b.const1();
        let live = b.and(i[0], one); // → i[0]
        let y = b.or(dead, live); // → i[0]
        b.output("y", &[y]);
        let (opt, report) = optimize(&b.finish()).unwrap();
        assert!(report.folded >= 3, "folded = {}", report.folded);
        assert!(opt.gate_count() < report.gates_before);
        // Functionally y == i.
        for v in [0u64, 1] {
            let mut inp = Map::new();
            u64_to_bus(opt.input_bus("i").unwrap(), v, &mut inp);
            let vals = opt.eval_comb(&inp, &Map::new());
            assert_eq!(bus_to_u64(opt.output_bus("y").unwrap(), &vals), v);
        }
    }

    #[test]
    fn sweeps_unreachable_logic() {
        let mut b = Builder::new();
        let i = b.input("i", 2);
        let _dead = b.xor(i[0], i[1]); // never used
        let y = b.and(i[0], i[1]);
        b.output("y", &[y]);
        let (opt, report) = optimize(&b.finish()).unwrap();
        assert!(report.swept >= 1);
        assert!(opt.validate().is_ok());
    }

    #[test]
    fn scan_chain_survives_optimization() {
        let mut b = Builder::new();
        let d = b.input("d", 4);
        let q = b.reg_bank(&d);
        b.output("q", &q);
        let (opt, _) = optimize(&b.finish()).unwrap();
        assert_eq!(opt.regs.len(), 4);
        assert!(opt.validate().is_ok());
    }

    proptest! {
        /// Co-simulation equivalence on a representative block: adder +
        /// comparator + crossover network with constant legs.
        #[test]
        fn optimized_netlist_is_equivalent(a in 0u64..1 << 16, c in 0u64..1 << 16, cut in 0u64..16) {
            let mut b = Builder::new();
            let x = b.input("x", 16);
            let y = b.input("y", 16);
            let cutb = b.input("cut", 4);
            let zero = b.const0();
            let (sum, cout) = b.adder(&x, &y, zero).unwrap();
            let gt = b.gt(&x, &y).unwrap();
            let (o1, o2) = b.crossover16(&x, &y, &cutb).unwrap();
            let mut all = sum;
            all.push(cout);
            all.push(gt);
            all.extend(o1);
            all.extend(o2);
            b.output("all", &all);
            let nl = b.finish();
            let (opt, report) = optimize(&nl).unwrap();
            prop_assert!(report.gates_after <= report.gates_before);

            let run = |n: &crate::netlist::Netlist| -> u64 {
                let mut inp = Map::new();
                u64_to_bus(n.input_bus("x").unwrap(), a, &mut inp);
                u64_to_bus(n.input_bus("y").unwrap(), c, &mut inp);
                u64_to_bus(n.input_bus("cut").unwrap(), cut, &mut inp);
                let vals = n.eval_comb(&inp, &Map::new());
                bus_to_u64(&n.output_bus("all").unwrap()[..50], &vals)
            };
            prop_assert_eq!(run(&nl), run(&opt));
        }
    }

    #[test]
    fn optimization_is_idempotent_on_the_ga_core() {
        // elaborate_ga_core() already runs the optimizer; a second pass
        // must find (almost) nothing left to do, and never lose state.
        let (nl, _) = crate::gadesign::elaborate_ga_core();
        let (opt, report) = optimize(&nl).unwrap();
        assert!(opt.validate().is_ok());
        assert!(
            report.gates_after >= report.gates_before * 99 / 100,
            "second optimization pass removed too much: {} → {}",
            report.gates_before,
            report.gates_after
        );
        assert_eq!(opt.regs.len(), nl.regs.len(), "no registers lost");
    }

    #[test]
    fn redundant_elaboration_shrinks_measurably() {
        // A block in the style the elaboration produces: wide zero
        // extensions and constant mux legs that must fold away.
        let mut b = Builder::new();
        let x = b.input("x", 16);
        let zero = b.const0();
        let zeros: Vec<_> = (0..16).map(|_| b.const0()).collect();
        let (sum, _) = b.adder(&x, &zeros, zero).unwrap(); // x + 0
        let sel = b.const0();
        let muxed = b.mux2_bus(sel, &zeros, &sum).unwrap(); // constant-deselect leg
        let q = b.reg_bank(&muxed);
        b.output("q", &q);
        let (opt, report) = optimize(&b.finish()).unwrap();
        assert!(opt.validate().is_ok());
        // x+0 folds its propagate XORs and the whole constant mux leg;
        // the carry-mux chain survives (non-constant selects), so the
        // shrink is large but not total.
        assert!(
            report.gates_after * 4 < report.gates_before * 3,
            "expected >25% shrink: {} -> {}",
            report.gates_before,
            report.gates_after
        );
        assert!(report.folded > 30, "folded only {}", report.folded);
    }
}
